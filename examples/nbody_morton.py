"""N-body load balancing through Morton-order sorting (§I's motivation).

Irregular particle simulations balance work by sorting particles along a
space-filling curve: after the sort, each rank owns a spatially compact,
equally sized slab of particles.  This example builds a clustered 3-D
particle set (two Gaussian blobs — deliberately *not* uniform), encodes
positions as 63-bit Morton keys, sorts them with the histogram sort under
perfect partitioning, and reports how much each rank's bounding-box volume
shrinks — the locality win that makes tree builds and neighbour search
cheap.

Run:  python examples/nbody_morton.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.mpi import run_spmd

P = 8
PARTICLES_PER_RANK = 40_000
BITS = 21  # 21 bits per axis -> 63-bit Morton keys


def _spread_bits(v: np.ndarray) -> np.ndarray:
    """Insert two zero bits between the low 21 bits of each value."""
    v = v.astype(np.uint64) & np.uint64((1 << BITS) - 1)
    v = (v | (v << np.uint64(32))) & np.uint64(0x1F00000000FFFF)
    v = (v | (v << np.uint64(16))) & np.uint64(0x1F0000FF0000FF)
    v = (v | (v << np.uint64(8))) & np.uint64(0x100F00F00F00F00F)
    v = (v | (v << np.uint64(4))) & np.uint64(0x10C30C30C30C30C3)
    v = (v | (v << np.uint64(2))) & np.uint64(0x1249249249249249)
    return v


def morton_encode(xyz: np.ndarray) -> np.ndarray:
    """Positions in [0, 1)^3 -> interleaved Morton keys (Z-order)."""
    scaled = np.clip((xyz * (1 << BITS)).astype(np.int64), 0, (1 << BITS) - 1)
    return (
        _spread_bits(scaled[:, 0])
        | (_spread_bits(scaled[:, 1]) << np.uint64(1))
        | (_spread_bits(scaled[:, 2]) << np.uint64(2))
    )


def morton_decode_axis(keys: np.ndarray, axis: int) -> np.ndarray:
    """Recover one axis (coarse) from Morton keys, for reporting only."""
    bits = np.zeros(keys.shape, dtype=np.uint64)
    for b in range(BITS):
        bit = (keys >> np.uint64(3 * b + axis)) & np.uint64(1)
        bits |= bit << np.uint64(b)
    return bits.astype(np.float64) / (1 << BITS)


def make_particles(rank: int) -> np.ndarray:
    """Two clusters: rank-striped samples of a bimodal galaxy toy model."""
    rng = np.random.default_rng([7, rank])
    n1 = PARTICLES_PER_RANK // 2
    blob1 = rng.normal([0.3, 0.3, 0.3], 0.05, size=(n1, 3))
    blob2 = rng.normal([0.7, 0.65, 0.6], 0.09, size=(PARTICLES_PER_RANK - n1, 3))
    return np.clip(np.vstack([blob1, blob2]), 0.0, 0.999999)


def bbox_volume(keys: np.ndarray) -> float:
    if keys.size == 0:
        return 0.0
    dims = [morton_decode_axis(keys, a) for a in range(3)]
    return float(np.prod([d.max() - d.min() + 1e-9 for d in dims]))


def program(comm):
    xyz = make_particles(comm.rank)
    keys = morton_encode(xyz)
    before = bbox_volume(keys)
    sorted_keys = repro.sort(comm, keys)  # perfect partitioning: equal slabs
    after = bbox_volume(sorted_keys)
    return before, after, sorted_keys.size, sorted_keys[:1], sorted_keys[-1:]


def main() -> None:
    out = run_spmd(P, program)
    print(f"{P} ranks x {PARTICLES_PER_RANK:,} clustered particles, Morton-sorted\n")
    print("rank  particles  bbox volume before  bbox volume after   shrink")
    shrink_total = 0.0
    for rank, (before, after, n, lo, hi) in enumerate(out):
        shrink = before / max(after, 1e-12)
        shrink_total += shrink
        print(f"{rank:>4}  {n:>9,}  {before:>18.4f}  {after:>17.4f}  {shrink:6.1f}x")
    print(f"\nmean bounding-box shrink: {shrink_total / P:.1f}x")

    # slab boundaries are globally ordered (the sort contract)
    for (_, _, _, _, hi), (_, _, _, lo, _) in zip(out[:-1], out[1:]):
        assert hi[0] <= lo[0]
    print("slab boundaries globally ordered - ready for tree construction")


if __name__ == "__main__":
    main()
