"""Auto-tuning demo: fingerprint a workload, plan, cache, and re-run.

The paper benchmarks one fixed configuration; ``repro.tune`` picks the
configuration per workload.  This script sorts a skewed distribution twice
through :func:`repro.autosort`: the first call fingerprints the input,
scores every candidate configuration with the closed-form cost model,
refines the best few with virtual-clock dry runs, and caches the winning
plan; the second call hits the cache and skips planning entirely.  The
explain table at the end is the planner's own audit trail.

Run:  python examples/autotune_demo.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

import repro
from repro.data import zipf_u64
from repro.machine import abstract_cluster
from repro.mpi import run_spmd
from repro.tune import PlanCache, dry_run_count

P = 8                  # ranks (threads in-process)
N_PER_RANK = 20_000    # keys per rank


def program(comm, cache_path):
    cache = PlanCache(cache_path)
    local = zipf_u64(N_PER_RANK, rank=comm.rank, seed=11)
    result = repro.autosort(comm, local, cache=cache, seed=0)
    return result


def main() -> None:
    machine = abstract_cluster(2, cores_per_node=4)
    cache_path = Path(tempfile.mkdtemp()) / "plans.json"

    before = dry_run_count()
    cold = run_spmd(P, program, cache_path, machine=machine, ranks_per_node=4)
    print(f"cold run: planned with {dry_run_count() - before} dry runs")

    before = dry_run_count()
    warm, rt_warm = run_spmd(
        P, program, cache_path, machine=machine, ranks_per_node=4, return_runtime=True
    )
    print(f"warm run: cache hit, {dry_run_count() - before} dry runs")

    res = warm[0]
    merged = np.concatenate([r.output for r in warm])
    assert np.all(merged[:-1] <= merged[1:]), "output must be globally sorted"
    assert res.cache_hit and not cold[0].cache_hit

    plan = res.plan
    print(f"\nchosen plan {plan.plan_id}: {plan.label}")
    print(f"  fingerprint bucket : {plan.key}")
    print(f"  predicted makespan : {plan.predicted_s * 1e3:.3f} ms (virtual)")
    print(f"  observed  makespan : {rt_warm.elapsed() * 1e3:.3f} ms (virtual)")
    print(f"  observed/predicted : {res.feedback.ratio:.2f}")

    print("\nplanner audit trail (None = not dry-run):")
    header = f"  {'candidate':<36} {'model ms':>10} {'dry ms':>10} {'refined ms':>10}"
    print(header)
    for cand in plan.provenance["candidates"]:
        def ms(x):
            return f"{x * 1e3:.4f}" if x is not None else "-"
        mark = "  <- chosen" if cand["label"] == plan.label else ""
        print(
            f"  {cand['label']:<36} {ms(cand['model_s']):>10}"
            f" {ms(cand['dry_s']):>10} {ms(cand['refined_s']):>10}{mark}"
        )


if __name__ == "__main__":
    main()
