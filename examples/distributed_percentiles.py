"""Distributed order statistics without moving data (``dash::nth_element``).

The selection algorithm (Algorithm 1) is exposed as
:func:`repro.nth_element`: it finds the globally k-th smallest key with a
handful of ALLREDUCE rounds and **zero data movement** — the building block
the paper reuses for its splitter search.

This example computes latency percentiles (p50/p90/p99/p99.9) over records
scattered across ranks — the classic telemetry query — and checks against
a gathered oracle.

Run:  python examples/distributed_percentiles.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.mpi import run_spmd

P = 12
SAMPLES_PER_RANK = 80_000
PERCENTILES = (50.0, 90.0, 99.0, 99.9)


def make_latencies(rank: int) -> np.ndarray:
    """Log-normal service times with a heavy tail plus rare timeouts."""
    rng = np.random.default_rng([2718, rank])
    base = rng.lognormal(mean=-2.0, sigma=0.6, size=SAMPLES_PER_RANK)  # ~150ms median
    timeouts = rng.uniform(5.0, 30.0, size=SAMPLES_PER_RANK // 1000)
    return np.concatenate([base, timeouts])


def program(comm):
    local = make_latencies(comm.rank)
    n_total = comm.allreduce(int(local.size))
    results = repro.percentile(comm, local, PERCENTILES + (100.0,))
    worst = repro.top_k(comm, local, 5)
    return local, results, worst, n_total


def nearest_rank(pct: float, n: int) -> int:
    """Nearest-rank position; exact at both edges (p100 = the maximum)."""
    import math

    return min(max(math.ceil(pct / 100.0 * n) - 1, 0), n - 1)


def main() -> None:
    out = run_spmd(P, program)
    locals_, results, worsts, n_total = zip(*out)
    answers = results[0]

    # every rank computed the same percentiles and the same top-5
    for r in results[1:]:
        assert r == answers
    for w in worsts[1:]:
        assert np.array_equal(w, worsts[0])

    oracle = np.sort(np.concatenate(locals_))
    print(f"latency percentiles over {n_total[0]:,} records on {P} ranks\n")
    print("percentile   distributed     oracle        match")
    for pct in PERCENTILES + (100.0,):
        ref = oracle[nearest_rank(pct, n_total[0])]
        ours = answers[pct]
        print(f"   p{pct:<6}  {ours * 1e3:9.2f} ms  {ref * 1e3:9.2f} ms   {ours == ref}")
        assert ours == ref
    assert np.array_equal(worsts[0], oracle[-5:][::-1])
    print(f"\nworst 5 latencies: {[f'{v:.2f}s' for v in worsts[0]]}")
    print("no record ever left its rank - selection moved O(P log N) scalars")


if __name__ == "__main__":
    main()
