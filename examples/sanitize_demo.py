"""Sanitizer demo: catch three memory hazards the checker cannot see.

``check=True`` verifies the *protocol* (congruent collectives, no leaked
requests); ``sanitize=True`` verifies the *memory model*: who may touch a
buffer, and when.  This script runs three deliberately buggy programs under
``run_spmd(..., sanitize=True)`` and prints the sanitizer's diagnosis of
each, then re-runs a correct 16-rank histogram sort twice to show the
non-perturbation guarantee: virtual clocks are bit-identical with the
sanitizer on and off.

Run:  python examples/sanitize_demo.py
"""

from __future__ import annotations

import numpy as np

from repro.core import histogram_sort
from repro.data import make_partition
from repro.mpi import run_spmd
from repro.sanitize import SanitizerError


def show(title, prog, ranks=2):
    print(f"--- {title}")
    try:
        run_spmd(ranks, prog, sanitize=True)
    except SanitizerError as exc:
        for finding in exc.findings:
            print(f"    {finding.format()}")
    else:
        print("    (no findings)")
    print()


# 1. WRITE-AFTER-ISEND: the eager-copy runtime makes this look fine, but
#    real MPI owns the buffer until the request completes — the receiver
#    would see the torn write.
def write_after_isend(comm):
    if comm.rank == 0:
        buf = np.arange(64, dtype=np.float64)
        req = comm.isend(buf, 1)
        buf[3] = -1.0  # deliberate bug for the demo  # spmd: ignore[BUFFER-REUSE]
        req.wait()
    elif comm.rank == 1:
        comm.recv(0)


# 2. RECV-ALIAS: a payload whose __deepcopy__ returns itself defeats the
#    runtime's copy discipline; sender and receiver share one array.
class SelfBox:
    def __init__(self, arr):
        self.arr = arr

    def __deepcopy__(self, memo):
        return self


def recv_alias(comm):
    if comm.rank == 0:
        box = SelfBox(np.ones(32))
        comm.send(box, 1)
        comm.recv(1)  # keep box alive until rank 1 has it
    elif comm.rank == 1:
        comm.recv(0)
        comm.send(0, 0)


# 3. HB-RACE: rank closures can capture the same Python object.  Annotate
#    accesses with mark_read/mark_write and the vector clocks prove whether
#    a send/recv or collective actually orders them.
def hb_race(comm):
    if comm.rank == 0:
        comm.mark_write(SHARED)
        SHARED["value"] = 42
    else:
        comm.mark_read(SHARED)
        _ = SHARED.get("value")  # no edge orders this against the write


SHARED: dict = {"value": 0}


def main():
    show("WRITE-AFTER-ISEND: buffer mutated while isend is in flight", write_after_isend)
    show("RECV-ALIAS: payload defeats the copy discipline", recv_alias)
    show("HB-RACE: unsynchronized access to a closure-shared dict", hb_race)

    print("--- non-perturbation: 16-rank histogram sort, sanitizer on vs off")

    def sort_prog(comm):
        local = make_partition("uniform_u64", 2000, rank=comm.rank, seed=3)
        return histogram_sort(comm, local).output

    _, rt_off = run_spmd(16, sort_prog, return_runtime=True, sanitize=False)
    _, rt_on = run_spmd(16, sort_prog, return_runtime=True, sanitize=True)
    identical = bool(np.array_equal(rt_off.clocks, rt_on.clocks))
    print(f"    virtual clocks bit-identical: {identical}")
    print(f"    modelled makespan (off/on): {rt_off.elapsed():.6f} / {rt_on.elapsed():.6f}")
    print(f"    findings in the correct sort: {rt_on.sanitizer.findings}")


if __name__ == "__main__":
    main()
