"""Compare the histogram sort against every baseline on one workload.

Runs the paper's algorithm and all §III related-work baselines on the same
distributed input (uniform uint64, the §VI-B workload) on a simulated
2-node SuperMUC slice, and prints modelled times, exchange volumes, and
balance quality — a small-scale echo of the Fig. 2/3 comparisons.

Run:  python examples/algorithm_shootout.py
"""

from __future__ import annotations

import numpy as np

from repro.baselines import BASELINES
from repro.core import histogram_sort
from repro.data import uniform_u64
from repro.machine import supermuc_phase2
from repro.mpi import run_spmd
from repro.seq import is_globally_sorted, is_permutation

P = 16                # power of two so hypercube baselines can play
N_PER_RANK = 30_000
MACHINE = supermuc_phase2(nodes=2)


def run_algo(name):
    def program(comm):
        local = uniform_u64(N_PER_RANK, rank=comm.rank, seed=7)
        if name == "histogram_sort":
            res = histogram_sort(comm, local)
            return local, res.output, res.phases
        res = BASELINES[name](comm, local)
        return local, res.output, res.phases

    out, rt = run_spmd(
        P, program, machine=MACHINE, ranks_per_node=8, return_runtime=True
    )
    ins = [o[0] for o in out]
    outs = [o[1] for o in out]
    assert is_globally_sorted(outs) and is_permutation(ins, outs), name
    sizes = np.array([o.size for o in outs])
    imbalance = float(sizes.max() / (N_PER_RANK))
    return rt.elapsed(), imbalance, int(rt.stats.summary()["collectives"].get("alltoallv", (0, 0))[1])


def main() -> None:
    names = ["histogram_sort", *sorted(BASELINES)]
    print(f"{P} ranks x {N_PER_RANK:,} uniform uint64 keys, 2 simulated nodes\n")
    print(f"{'algorithm':<16} {'virtual time':>13} {'max load':>9} {'alltoallv bytes':>16}")
    rows = []
    for name in names:
        seconds, imbalance, volume = run_algo(name)
        rows.append((name, seconds, imbalance, volume))
    for name, seconds, imbalance, volume in sorted(rows, key=lambda r: r[1]):
        print(f"{name:<16} {seconds * 1e3:>10.2f} ms {imbalance:>8.2f}x {volume:>16,}")
    print(
        "\nnotes: histogram_sort and bitonic guarantee perfect partitioning"
        " (max load 1.0x);\nsampling-based algorithms trade balance for fewer"
        " splitter rounds; hypercube\nalgorithms move data log(P) times."
        "  At this tiny N/P the splitter rounds dominate\nhistogram_sort"
        " - the paper's own 'N/P very small' caveat; the scaling benches\n"
        "show where it wins."
    )


if __name__ == "__main__":
    main()
