"""Sort-as-a-service: concurrent tenants, fused epochs, index queries.

The library's sort becomes a long-running service (:mod:`repro.serve`):
tenants submit jobs against a virtual service clock, compatible small
sorts fuse into shared SPMD epochs (one splitter search + one ALLTOALLV
amortized over the batch), and sorted datasets stay resident behind a
splitter-table index that answers percentile / top-k / range queries
with zero data movement.

This example runs a small interactive-style session by hand — submit,
drain, query — then replays the standard scripted workload and verifies
every result against the single-process oracle, once cleanly and once
with two mid-epoch rank crashes absorbed by the lossless-recovery tier.

Run:  python examples/sort_service.py
"""

from __future__ import annotations

import zlib

from repro.serve import (
    JobSpec,
    SortService,
    make_chaos,
    make_workload,
    oracle_all,
)

P = 4


def interactive_session() -> None:
    service = SortService(P)
    print(f"service up: p={P} ranks, virtual clock t={service.clock:.1f}s\n")

    # three compatible sorts from two tenants -> one fused epoch
    for tenant, name in [("acme", "orders"), ("acme", "events"), ("globex", "logs")]:
        service.submit(
            JobSpec(kind="sort", tenant=tenant, dataset=name,
                    dist="uniform_u64", n_per_rank=512,
                    seed=zlib.crc32(name.encode()) % 1000)
        )
    service.drain()
    epoch = next(e for e in service.events if e["kind"] == "sort")
    print(f"sort epoch 0: jobs {epoch['jobs']} fused={epoch['fused']} "
          f"(one exchange paid for {len(epoch['jobs'])} jobs)")

    # queries ride the resident index: no re-sort, no data movement
    q = service.submit(
        JobSpec(kind="percentile", tenant="acme", dataset="orders",
                pcts=(50.0, 99.0, 100.0))
    )
    t = service.submit(JobSpec(kind="top_k", tenant="globex", dataset="logs", k=3))
    service.drain()
    print(f"percentiles of acme/orders: {q.result.value}")
    print(f"top-3 of globex/logs:       {t.result.value}")
    print(f"query epochs moved no partitions: "
          f"alltoallv calls = {int(service.registry.value('serve_query_alltoallv_total'))}\n")


def scripted_replay(chaos: bool) -> None:
    workload = make_workload(P, seed=0)
    service = SortService(
        P, chaos=make_chaos(workload) if chaos else None
    )
    service.replay(workload)
    expected = oracle_all(workload, P)
    matches = sum(
        1 for job_id, want in enumerate(expected)
        if service.jobs[job_id].result is not None
        and service.jobs[job_id].result.value == want
    )
    stats = service.stats()
    label = "chaos (2 rank crashes)" if chaos else "clean"
    print(f"{label:<24} {matches}/{len(expected)} jobs match oracle, "
          f"{stats['epochs']} epochs, "
          f"{stats['jobs_per_vsecond']:.1f} jobs/virtual-s, "
          f"warm plan hits {int(stats['warm_plan_hits'])}")
    assert matches == len(expected)


def main() -> None:
    interactive_session()
    print("scripted workload replay (32+ jobs, 4 kinds, 2 tenants):")
    scripted_replay(chaos=False)
    scripted_replay(chaos=True)
    print("\nsame answers with and without crashes - the service is lossless")


if __name__ == "__main__":
    main()
