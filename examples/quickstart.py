"""Quickstart: sort a distributed array with the histogram sort.

Runs an SPMD program on the in-process runtime: every rank generates a
partition of uniform 64-bit keys (the paper's benchmark workload), calls
``repro.sort``, and the script verifies the global output contract and
prints the virtual-time phase breakdown.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.data import uniform_u64
from repro.machine import supermuc_phase2
from repro.mpi import run_spmd
from repro.seq import check_sorted_output
from repro.trace import combine_phases

P = 16                 # ranks (threads in-process)
N_PER_RANK = 50_000    # keys per rank


def program(comm):
    # Each rank owns a partition; nothing else is shared.
    local = uniform_u64(N_PER_RANK, rank=comm.rank, seed=2024)
    result = repro.sorted_result(comm, local)
    return local, result


def main() -> None:
    machine = supermuc_phase2(nodes=1)
    out, runtime = run_spmd(
        P, program, machine=machine, ranks_per_node=P, return_runtime=True
    )
    inputs = [pair[0] for pair in out]
    results = [pair[1] for pair in out]
    outputs = [r.output for r in results]

    check_sorted_output(inputs, outputs)
    print(f"sorted {P * N_PER_RANK:,} keys across {P} ranks - contract holds")
    print(f"histogramming rounds : {results[0].rounds}")
    print(f"modelled makespan    : {runtime.elapsed() * 1e3:.2f} ms (virtual)")

    phases = combine_phases([r.phases for r in results], how="max")
    total = sum(phases.values())
    print("phase breakdown (max over ranks):")
    for name, seconds in phases.items():
        print(f"  {name:<12} {seconds * 1e3:8.3f} ms  ({seconds / total:5.1%})")

    boundaries = [o[0] for o in outputs if o.size]
    print(f"first keys per rank  : {boundaries[:6]} ...")


if __name__ == "__main__":
    main()
