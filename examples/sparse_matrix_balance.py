"""Load balancing a sparse matrix by sorting nonzeros (§I, §VII use case).

A distributed sparse matrix often arrives badly partitioned: a few ranks
hold nearly all nonzeros (e.g. after reading blocks of a file), and some
hold none.  The paper highlights that its sort "handles sparse data
structures where a fraction of all processors do not contribute local
elements", and that splitter determination works for any target capacities.

This example stores nonzeros as (row-major linear index) keys, starts from
a pathologically skewed layout, and rebalances in one sort call with
*custom capacities* — ending with an even nonzero count per rank and
row-contiguous ownership.

Run:  python examples/sparse_matrix_balance.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.data import balanced_sizes
from repro.mpi import run_spmd

P = 8
ROWS, COLS = 4096, 4096
NNZ_TOTAL = 400_000


def make_skewed_nonzeros(rank: int) -> np.ndarray:
    """Ranks 0 and 1 hold ~everything; half the ranks hold nothing."""
    rng = np.random.default_rng([99, rank])
    if rank == 0:
        n = int(NNZ_TOTAL * 0.55)
    elif rank == 1:
        n = int(NNZ_TOTAL * 0.35)
    elif rank % 2 == 0:
        n = int(NNZ_TOTAL * 0.10 / (P // 2 - 1))
    else:
        return np.empty(0, dtype=np.uint64)
    # power-law row popularity: a banded + hub structure
    rows = np.minimum((rng.pareto(1.5, n) * 40).astype(np.int64), ROWS - 1)
    cols = rng.integers(0, COLS, n)
    return (rows.astype(np.uint64) * COLS + cols.astype(np.uint64)).astype(np.uint64)


def program(comm):
    local = make_skewed_nonzeros(comm.rank)
    total = comm.allreduce(int(local.size))
    capacities = balanced_sizes(total, comm.size)
    balanced = repro.sort(comm, local, capacities=capacities)

    # After the sort, this rank owns a contiguous band of the matrix.
    if balanced.size:
        row_lo = int(balanced[0] // COLS)
        row_hi = int(balanced[-1] // COLS)
    else:
        row_lo = row_hi = -1
    return local.size, balanced.size, row_lo, row_hi


def main() -> None:
    out = run_spmd(P, program)
    total = sum(o[0] for o in out)
    print(f"sparse matrix: {ROWS}x{COLS}, {total:,} nonzeros on {P} ranks\n")
    print("rank  nnz before  nnz after   owned rows")
    for rank, (before, after, lo, hi) in enumerate(out):
        rows = f"[{lo:>5} .. {hi:>5}]" if lo >= 0 else "(none)"
        print(f"{rank:>4}  {before:>10,}  {after:>9,}   {rows}")

    sizes_after = [o[1] for o in out]
    assert max(sizes_after) - min(sizes_after) <= 1
    print(f"\nimbalance before: {max(o[0] for o in out) / (total / P):.1f}x target")
    print("imbalance after : 1.0x target (perfect partitioning)")

    # ownership bands are disjoint and ordered
    bands = [(o[2], o[3]) for o in out if o[2] >= 0]
    for (lo_a, hi_a), (lo_b, hi_b) in zip(bands[:-1], bands[1:]):
        assert hi_a <= lo_b or (hi_a == lo_b)  # a row may straddle a boundary
    print("row bands are ordered - matvec halo exchange stays nearest-neighbour")


if __name__ == "__main__":
    main()
