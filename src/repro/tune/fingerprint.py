"""Workload fingerprints: what the tuner knows before it picks a plan.

A :class:`WorkloadFingerprint` compresses one distributed sort's input into
the handful of statistics the planner's cost scoring actually depends on:
problem shape (``n_total``, ``p``, ``ranks_per_node``, ``itemsize``), key
properties (dtype kind, effective key width), distribution character
(duplicate ratio, sortedness, skew), and the machine's cost signature.

Everything is computed from a **cheap deterministic sample** of the local
partition — an evenly strided slice, no RNG — so the same input always
produces the same fingerprint, and fingerprinting costs O(sample) per rank
plus one scalar allreduce when taken collectively.

The exact statistics are continuous; cache keys must not be.
:meth:`WorkloadFingerprint.bucket_key` coarsens them into discrete classes
(log2 size buckets, low/medium/high duplicate and skew classes) so "the
same kind of workload" maps to the same persistent cache entry.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Any, Mapping

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from ..machine.spec import MachineSpec
    from ..mpi import Comm

__all__ = ["WorkloadFingerprint", "fingerprint_partition", "fingerprint_collective"]

#: bump when the fingerprint statistics or bucketing change: old cache keys
#: must not alias new ones
FINGERPRINT_VERSION = 1

#: default per-rank sample budget; stride sampling, so cost is O(SAMPLE)
SAMPLE = 1024


@dataclass(frozen=True)
class WorkloadFingerprint:
    """The tuner's view of one (workload, machine) pair.

    Attributes
    ----------
    n_total, p, ranks_per_node, itemsize:
        Problem shape; ``n_total`` is the global element count.
    dtype_kind:
        Numpy kind character: ``"u"``, ``"i"``, ``"f"``.
    key_bits:
        Effective key width in bits — for integers the log2 span of the
        sampled value range (what bounds histogramming rounds, §V-A), for
        floats the format width.
    dup_ratio:
        ``1 - unique/sample`` in the sample: 0.0 all-distinct, → 1.0 heavy
        duplication.
    sortedness:
        Fraction of adjacent sample pairs already in non-descending order
        (the sample preserves input order): ~0.5 random, 1.0 sorted.
    skew:
        Normalized mean-median distance ``|mean - median| / (std + tiny)``,
        clipped to [0, 10]: 0 symmetric, large for Zipf/exponential tails.
    machine:
        :meth:`repro.machine.MachineSpec.signature` of the cost model.
    """

    n_total: int
    p: int
    ranks_per_node: int
    itemsize: int
    dtype_kind: str
    key_bits: int
    dup_ratio: float
    sortedness: float
    skew: float
    machine: str

    def __post_init__(self) -> None:
        if self.n_total < 0 or self.p < 1 or self.ranks_per_node < 1:
            raise ValueError("need n_total >= 0, p >= 1, ranks_per_node >= 1")
        if self.dtype_kind not in ("u", "i", "f"):
            raise ValueError(f"unsupported dtype kind {self.dtype_kind!r}")

    # ------------------------------------------------------------- bucketing

    @property
    def n_per_rank(self) -> int:
        return self.n_total // max(self.p, 1)

    def bucket_key(self) -> str:
        """Coarse, discrete cache key for this fingerprint.

        Continuous statistics collapse into classes so near-identical
        workloads share a cache entry: sizes bucket by log2, duplicate
        ratio into none/some/heavy, sortedness into random/presorted, skew
        into low/high.  The machine signature and fingerprint version are
        part of the key, so a different cluster — or a different
        fingerprint definition — can never alias.
        """
        logn = int(round(math.log2(self.n_total))) if self.n_total > 0 else 0
        dup = "heavy" if self.dup_ratio > 0.5 else ("some" if self.dup_ratio > 0.05 else "none")
        sorted_cls = "presorted" if self.sortedness > 0.9 else "random"
        skew_cls = "high" if self.skew > 0.5 else "low"
        bits = min(((self.key_bits + 7) // 8) * 8, 64)
        return (
            f"v{FINGERPRINT_VERSION}|m={self.machine}|p={self.p}|rpn={self.ranks_per_node}"
            f"|k={self.dtype_kind}{self.itemsize}|logn={logn}|bits={bits}"
            f"|dup={dup}|ord={sorted_cls}|skew={skew_cls}"
        )

    # ----------------------------------------------------------------- serde

    def to_dict(self) -> dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WorkloadFingerprint":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown WorkloadFingerprint field(s): {sorted(unknown)}")
        return cls(**data)


def _sample(local: np.ndarray, budget: int) -> np.ndarray:
    """An order-preserving strided sample of at most ``budget`` elements."""
    if local.size <= budget:
        return local
    stride = local.size // budget
    return local[:: max(stride, 1)][:budget]


def _local_stats(local: np.ndarray, budget: int) -> tuple[float, float, float, float, float]:
    """(dup_ratio, sortedness, skew, vmin, vmax) of one partition's sample."""
    s = _sample(np.asarray(local), budget)
    if s.size == 0:
        return 0.0, 1.0, 0.0, 0.0, 0.0
    dup = 1.0 - np.unique(s).size / s.size
    if s.size > 1:
        sortedness = float(np.count_nonzero(s[1:] >= s[:-1])) / (s.size - 1)
    else:
        sortedness = 1.0
    sf = s.astype(np.float64)
    std = float(sf.std())
    skew = min(abs(float(sf.mean()) - float(np.median(sf))) / (std + 1e-30), 10.0)
    return float(dup), sortedness, skew, float(sf.min()), float(sf.max())


def _key_bits(dtype: np.dtype, vmin: float, vmax: float) -> int:
    """Effective key width: value-range span for ints, format width for floats."""
    if dtype.kind == "f":
        return int(dtype.itemsize * 8)
    span = max(vmax - vmin, 0.0)
    return max(int(math.ceil(math.log2(span + 1))), 1) if span > 0 else 1


def fingerprint_partition(
    local: np.ndarray,
    *,
    p: int,
    machine: "MachineSpec",
    ranks_per_node: int | None = None,
    n_total: int | None = None,
    sample: int = SAMPLE,
) -> WorkloadFingerprint:
    """Fingerprint from a single local partition (no communication).

    Assumes the other ``p - 1`` partitions look statistically like this one
    (``n_total`` defaults to ``p * local.size``).  Use
    :func:`fingerprint_collective` inside an SPMD program for globally
    agreed statistics.
    """
    local = np.asarray(local)
    dup, sortedness, skew, vmin, vmax = _local_stats(local, sample)
    rpn = ranks_per_node if ranks_per_node is not None else min(p, machine.node.cores)
    return WorkloadFingerprint(
        n_total=int(n_total if n_total is not None else p * local.size),
        p=int(p),
        ranks_per_node=int(rpn),
        itemsize=int(local.dtype.itemsize),
        dtype_kind=str(local.dtype.kind),
        key_bits=_key_bits(local.dtype, vmin, vmax),
        dup_ratio=round(dup, 6),
        sortedness=round(sortedness, 6),
        skew=round(skew, 6),
        machine=machine.signature(),
    )


def fingerprint_collective(
    comm: "Comm", local: np.ndarray, *, sample: int = SAMPLE
) -> WorkloadFingerprint:
    """Collective fingerprint: every rank returns the identical value.

    One scalar allreduce combines the per-rank sample statistics
    (size-weighted means for the ratios, min/max for the value range), so
    the cost is O(sample) compute plus a single small collective — cheap
    enough to run in front of every tuned sort.
    """
    from ..mpi.ops import ReduceOp

    local = np.asarray(local)
    dup, sortedness, skew, vmin, vmax = _local_stats(local, sample)
    n = int(local.size)
    w = float(n)

    def _combine(a, b):
        na, nb = a[0], b[0]
        if na == 0:
            return b
        if nb == 0:
            return a
        wt = na + nb
        return (
            wt,
            (a[1] * na + b[1] * nb) / wt,
            (a[2] * na + b[2] * nb) / wt,
            (a[3] * na + b[3] * nb) / wt,
            min(a[4], b[4]),
            max(a[5], b[5]),
        )

    op = ReduceOp("fingerprint", _combine)
    tot, g_dup, g_sorted, g_skew, g_min, g_max = comm.allreduce(
        (w, dup, sortedness, skew, vmin, vmax), op=op
    )
    machine = comm.cost.machine
    placement = comm.cost.placement
    return WorkloadFingerprint(
        n_total=int(round(tot)),
        p=comm.size,
        ranks_per_node=int(placement.ranks_per_node),
        itemsize=int(local.dtype.itemsize),
        dtype_kind=str(local.dtype.kind),
        key_bits=_key_bits(local.dtype, g_min, g_max),
        dup_ratio=round(float(g_dup), 6),
        sortedness=round(float(g_sorted), 6),
        skew=round(float(g_skew), 6),
        machine=machine.signature(),
    )
