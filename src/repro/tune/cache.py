"""The persistent plan cache: fingerprint bucket -> best known plan.

A :class:`PlanCache` is a small JSON document on disk mapping
:meth:`~repro.tune.fingerprint.WorkloadFingerprint.bucket_key` strings to
serialized :class:`~repro.tune.planner.SortPlan` entries plus their
feedback history.  Lookups are invalidated — treated as misses — when:

* the on-disk schema version differs (:data:`CACHE_SCHEMA`),
* the entry was planned under a different closed-form model
  (:data:`repro.model.phases.MODEL_VERSION`) or planner
  (:data:`repro.tune.planner.PLANNER_VERSION`),
* the machine signature embedded in the bucket key differs (a different
  cluster can never alias: the signature is part of the key itself), or
* the feedback loop has demoted the entry (observed/predicted drift past
  threshold; see :mod:`repro.tune.feedback`).

Writes are atomic (temp file + rename) so a crashed run never leaves a
truncated cache, and a corrupt/unreadable file degrades to an empty cache
rather than an error — the cache is an accelerator, never a correctness
dependency.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from ..model.phases import MODEL_VERSION
from .planner import PLANNER_VERSION, SortPlan

__all__ = ["MemoryPlanCache", "PlanCache", "default_cache_path"]

#: on-disk layout version; any change to the entry structure bumps it
CACHE_SCHEMA = 1

#: environment override for the default cache location
CACHE_ENV = "REPRO_TUNE_CACHE"


def default_cache_path() -> Path:
    """``$REPRO_TUNE_CACHE``, else ``~/.cache/repro/plans.json``."""
    env = os.environ.get(CACHE_ENV, "").strip()
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME", "").strip()
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "plans.json"


@dataclass
class CacheEntry:
    """One cached plan plus its service record."""

    plan: SortPlan
    model_version: int
    planner_version: int
    hits: int = 0
    demoted: bool = False
    #: trailing observed/predicted makespan ratios from executed runs
    feedback: list[float] = field(default_factory=list)
    #: robust correction factor fitted from ``feedback`` (1.0 = unbiased)
    correction: float = 1.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "plan": self.plan.to_dict(),
            "model_version": self.model_version,
            "planner_version": self.planner_version,
            "hits": self.hits,
            "demoted": self.demoted,
            "feedback": self.feedback,
            "correction": self.correction,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CacheEntry":
        return cls(
            plan=SortPlan.from_dict(data["plan"]),
            model_version=int(data["model_version"]),
            planner_version=int(data["planner_version"]),
            hits=int(data.get("hits", 0)),
            demoted=bool(data.get("demoted", False)),
            feedback=[float(x) for x in data.get("feedback", [])],
            correction=float(data.get("correction", 1.0)),
        )


class PlanCache:
    """Disk-backed plan store; all mutation methods persist immediately."""

    def __init__(self, path: str | Path | None = None):
        self.path = Path(path) if path is not None else default_cache_path()
        self._entries: dict[str, CacheEntry] = {}
        self._load()

    # ------------------------------------------------------------ persistence

    def _load(self) -> None:
        try:
            data = json.loads(self.path.read_text())
        except (OSError, json.JSONDecodeError):
            return
        if not isinstance(data, dict) or data.get("schema") != CACHE_SCHEMA:
            return  # stale layout: start over rather than misread it
        for key, raw in data.get("entries", {}).items():
            try:
                self._entries[key] = CacheEntry.from_dict(raw)
            except (KeyError, TypeError, ValueError):
                continue  # one bad entry never poisons the rest

    def save(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": CACHE_SCHEMA,
            "entries": {k: e.to_dict() for k, e in sorted(self._entries.items())},
        }
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_text(json.dumps(payload, indent=2))
        tmp.replace(self.path)

    # ----------------------------------------------------------------- access

    def get(self, key: str) -> SortPlan | None:
        """The cached plan for ``key``, or ``None`` on miss/invalidation."""
        entry = self._entries.get(key)
        if entry is None or entry.demoted:
            return None
        if entry.model_version != MODEL_VERSION or entry.planner_version != PLANNER_VERSION:
            # planned under a different cost model / planner: stale
            del self._entries[key]
            self.save()
            return None
        entry.hits += 1
        self.save()
        return entry.plan

    def put(self, key: str, plan: SortPlan) -> None:
        self._entries[key] = CacheEntry(
            plan=plan, model_version=MODEL_VERSION, planner_version=PLANNER_VERSION
        )
        self.save()

    def entry(self, key: str) -> CacheEntry | None:
        """The raw entry (demoted/stale included); introspection only."""
        return self._entries.get(key)

    def record_feedback(self, key: str, ratio: float, *, correction: float | None = None,
                        demote: bool = False, window: int = 16) -> None:
        """Append one observed/predicted ratio to ``key``'s service record."""
        entry = self._entries.get(key)
        if entry is None:
            return
        entry.feedback = (entry.feedback + [float(ratio)])[-window:]
        if correction is not None:
            entry.correction = float(correction)
        if demote:
            entry.demoted = True
        self.save()

    def demote(self, key: str) -> None:
        """Mark ``key``'s plan as no longer trusted (future gets miss)."""
        entry = self._entries.get(key)
        if entry is not None:
            entry.demoted = True
            self.save()

    def clear(self) -> int:
        """Drop every entry; returns how many were removed."""
        n = len(self._entries)
        self._entries.clear()
        if self.path.exists():
            self.save()
        return n

    def items(self) -> Iterator[tuple[str, CacheEntry]]:
        return iter(sorted(self._entries.items()))

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries


class MemoryPlanCache(PlanCache):
    """A :class:`PlanCache` that never touches disk.

    Same hit/miss/feedback semantics, but entries live only for the
    process lifetime.  This is the default warm-plan tier of
    :class:`repro.serve.SortService`: a service run is hermetic unless
    it is explicitly handed a disk-backed cache to share plans across
    restarts.
    """

    def __init__(self) -> None:
        self.path = Path(os.devnull)
        self._entries = {}

    def _load(self) -> None:  # pragma: no cover - never called
        pass

    def save(self) -> None:
        pass
