"""The online feedback loop: executed makespans vs the plan's prediction.

After every tuned sort, :func:`record_feedback` compares the observed
virtual-clock makespan against the plan's ``predicted_s``:

* the ratio joins the cache entry's trailing window,
* a robust correction factor (median ratio, via
  :func:`repro.model.calibrate.fit_time_scale`) is refitted so ``explain``
  can report the de-biased prediction, and
* when the fitted correction drifts outside
  ``[1/DEMOTE_RATIO, DEMOTE_RATIO]`` with at least :data:`MIN_SAMPLES`
  observations, the entry is **demoted**: the next ``autosort`` of that
  fingerprint replans from scratch instead of trusting a model that
  reality keeps contradicting.

Everything here runs on virtual time carried in from the runtime — the
loop never reads a wall clock.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..model.calibrate import fit_time_scale
from .cache import PlanCache
from .planner import SortPlan

__all__ = ["FeedbackRecord", "record_feedback", "DEMOTE_RATIO", "MIN_SAMPLES"]

#: demote when the fitted observed/predicted correction leaves this band
DEMOTE_RATIO = 4.0

#: never demote on fewer observations than this
MIN_SAMPLES = 3


@dataclass(frozen=True)
class FeedbackRecord:
    """What one executed run taught the tuner."""

    plan_id: str
    observed_s: float
    predicted_s: float
    ratio: float
    correction: float
    demoted: bool


def record_feedback(
    cache: PlanCache | None,
    plan: SortPlan,
    observed_s: float,
    *,
    demote_ratio: float = DEMOTE_RATIO,
    min_samples: int = MIN_SAMPLES,
) -> FeedbackRecord:
    """Fold one executed makespan into the plan's cache entry.

    Works without a cache too (``cache=None``): the record is still
    computed and returned, it just isn't persisted anywhere.
    """
    if observed_s < 0 or plan.predicted_s <= 0:
        raise ValueError("need observed_s >= 0 and a positive prediction")
    ratio = observed_s / plan.predicted_s
    correction = ratio
    demoted = False
    if cache is not None:
        entry = cache.entry(plan.key)
        if entry is not None and entry.plan.plan_id == plan.plan_id:
            history = entry.feedback + [ratio]
            correction = fit_time_scale(
                observed=history, predicted=[1.0] * len(history)
            )
            demoted = len(history) >= min_samples and not (
                1.0 / demote_ratio <= correction <= demote_ratio
            )
            cache.record_feedback(
                plan.key, ratio, correction=correction, demote=demoted
            )
    return FeedbackRecord(
        plan_id=plan.plan_id,
        observed_s=float(observed_s),
        predicted_s=float(plan.predicted_s),
        ratio=float(ratio),
        correction=float(correction),
        demoted=demoted,
    )
