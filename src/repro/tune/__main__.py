"""Entry point for ``python -m repro.tune``."""

import sys

from .cli import main

sys.exit(main())
