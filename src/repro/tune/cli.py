"""``python -m repro.tune`` — plan recommendation and cache management.

Subcommands:

* ``recommend`` — fingerprint a synthetic workload (machine preset +
  distribution + shape), run the planner, print the chosen plan.
* ``explain`` — same planning, but print the full per-candidate audit
  trail (model score, dry-run time, refined prediction).
* ``cache ls`` / ``cache clear`` — inspect or drop the persistent plan
  cache.

Everything is deterministic in ``--seed``; dry runs advance virtual
clocks only, so the CLI is safe in CI.
"""

from __future__ import annotations

import argparse
import sys

from ..data import make_partition
from ..machine import presets
from .cache import PlanCache, default_cache_path
from .fingerprint import fingerprint_partition
from .planner import SortPlan, plan_sort

__all__ = ["main"]

_PRESETS = {
    "supermuc": presets.supermuc_phase2,
    "laptop": presets.laptop,
    "single_node": presets.single_node,
    "abstract": presets.abstract_cluster,
}


def _machine(preset: str, nodes: int | None):
    try:
        factory = _PRESETS[preset]
    except KeyError:
        raise SystemExit(
            f"unknown preset {preset!r}; available: {sorted(_PRESETS)}"
        ) from None
    if preset == "abstract":
        return factory(nodes if nodes is not None else 16)
    if preset == "supermuc" and nodes is not None:
        return factory(nodes=nodes)
    return factory()


def _plan_from_args(args: argparse.Namespace) -> SortPlan:
    machine = _machine(args.preset, args.nodes)
    local = make_partition(args.dist, args.n_per_rank, rank=0, seed=args.seed or 1)
    fp = fingerprint_partition(
        local, p=args.p, machine=machine, ranks_per_node=args.ranks_per_node
    )
    return plan_sort(
        fp, machine, eps=args.eps, seed=args.seed, dry_runs=not args.no_dry_runs
    )


def _fmt_s(x: float | None) -> str:
    return "-" if x is None else f"{x:.6f}s"


def _cmd_recommend(args: argparse.Namespace) -> int:
    plan = _plan_from_args(args)
    print(f"plan {plan.plan_id}: {plan.label}")
    print(f"  algo:      {plan.algo}")
    print(f"  predicted: {_fmt_s(plan.predicted_s)}")
    print(f"  key:       {plan.key}")
    cfg = plan.config.to_dict()
    splitter = cfg.pop("splitter")
    print("  config:    " + "  ".join(f"{k}={v}" for k, v in sorted(cfg.items())))
    print("  splitter:  " + "  ".join(f"{k}={v}" for k, v in sorted(splitter.items())))
    if args.store:
        cache = PlanCache(args.cache)
        cache.put(plan.key, plan)
        print(f"  stored in {cache.path}")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    plan = _plan_from_args(args)
    prov = plan.provenance
    print(f"plan {plan.plan_id}: {plan.label}  (predicted {_fmt_s(plan.predicted_s)})")
    print(
        f"  planner v{prov['planner_version']}  model v{prov['model_version']}"
        f"  seed={prov['seed']}  dry_runs={prov['dry_runs']}"
    )
    shape = prov["dry_shape"]
    print(
        f"  dry-run shape: p={shape['p']}  n/rank={shape['n_per_rank']}"
        f"  ranks/node={shape['ranks_per_node']}"
    )
    print(f"  fingerprint:   {plan.key}")
    print()
    header = f"{'candidate':<36} {'model':>12} {'dry-run':>12} {'refined':>12}"
    print(header)
    print("-" * len(header))
    for cand in prov["candidates"]:
        mark = " *" if cand["label"] == plan.label else ""
        print(
            f"{cand['label']:<36} {_fmt_s(cand['model_s']):>12}"
            f" {_fmt_s(cand['dry_s']):>12} {_fmt_s(cand['refined_s']):>12}{mark}"
        )
    return 0


def _cmd_cache_ls(args: argparse.Namespace) -> int:
    cache = PlanCache(args.cache)
    print(f"cache: {cache.path}  ({len(cache)} entries)")
    for key, entry in cache.items():
        flags = []
        if entry.demoted:
            flags.append("DEMOTED")
        if entry.feedback:
            flags.append(f"fb={len(entry.feedback)} corr={entry.correction:.3f}")
        suffix = ("  [" + ", ".join(flags) + "]") if flags else ""
        print(f"  {entry.plan.plan_id}  hits={entry.hits:<3} {entry.plan.label:<34} {key}{suffix}")
    return 0


def _cmd_cache_clear(args: argparse.Namespace) -> int:
    cache = PlanCache(args.cache)
    n = cache.clear()
    print(f"cleared {n} entr{'y' if n == 1 else 'ies'} from {cache.path}")
    return 0


def _add_planning_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--preset", default="abstract",
        help=f"machine preset: {', '.join(sorted(_PRESETS))} (default: abstract)",
    )
    sub.add_argument("--nodes", type=int, default=None, help="node count for the preset")
    sub.add_argument("-p", type=int, default=16, help="rank count (default: 16)")
    sub.add_argument(
        "-n", "--n-per-rank", type=int, default=1 << 20, dest="n_per_rank",
        help="elements per rank (default: 1Mi)",
    )
    sub.add_argument(
        "--ranks-per-node", type=int, default=None, help="ranks per node (default: packed)"
    )
    sub.add_argument(
        "--dist", default="uniform_u64", help="workload distribution (default: uniform_u64)"
    )
    sub.add_argument("--eps", type=float, default=0.0, help="partition slack (default: 0)")
    sub.add_argument("--seed", type=int, default=0, help="planning seed (default: 0)")
    sub.add_argument(
        "--no-dry-runs", action="store_true", help="plan from the closed forms only"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tune",
        description="Cost-model-driven sort auto-tuning: recommend plans, "
        "explain decisions, manage the plan cache.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    rec = sub.add_parser("recommend", help="plan a workload and print the choice")
    _add_planning_args(rec)
    rec.add_argument("--store", action="store_true", help="write the plan into the cache")
    rec.add_argument(
        "--cache", default=None,
        help=f"cache path for --store (default: {default_cache_path()})",
    )
    rec.set_defaults(func=_cmd_recommend)

    exp = sub.add_parser("explain", help="plan a workload and print the audit trail")
    _add_planning_args(exp)
    exp.set_defaults(func=_cmd_explain)

    cache = sub.add_parser("cache", help="inspect or clear the plan cache")
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    ls = cache_sub.add_parser("ls", help="list cached plans")
    ls.add_argument("--cache", default=None, help="cache path")
    ls.set_defaults(func=_cmd_cache_ls)
    clear = cache_sub.add_parser("clear", help="drop every cached plan")
    clear.add_argument("--cache", default=None, help="cache path")
    clear.set_defaults(func=_cmd_cache_clear)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via main() in tests
    sys.exit(main())
