"""``repro.tune`` — cost-model-driven auto-tuning with a persistent plan cache.

The paper's pitch is a sort that wins *without tuning*; this package is for
everyone who wants the last word anyway.  It closes the loop between the
closed-form cost model, the virtual-clock runtime, and executed results:

* :mod:`~repro.tune.fingerprint` — compress a workload + machine into the
  statistics planning depends on;
* :mod:`~repro.tune.planner` — enumerate algorithm/config candidates,
  model-score them, refine the top-k with deterministic virtual-clock dry
  runs, emit a :class:`~repro.tune.planner.SortPlan`;
* :mod:`~repro.tune.cache` — JSON-on-disk plan store keyed by fingerprint
  bucket, versioned against the cost model and planner;
* :mod:`~repro.tune.feedback` — compare executed makespans against the
  plan's prediction, refit the correction, demote drifting plans.

The one-call entry point is :func:`repro.core.api.autosort`; the CLI is
``python -m repro.tune`` (recommend / explain / cache ls / cache clear).
"""

from .cache import CacheEntry, MemoryPlanCache, PlanCache, default_cache_path
from .feedback import FeedbackRecord, record_feedback
from .fingerprint import WorkloadFingerprint, fingerprint_collective, fingerprint_partition
from .planner import (
    Candidate,
    SortPlan,
    dry_run_count,
    enumerate_candidates,
    model_score,
    plan_sort,
)

__all__ = [
    "CacheEntry",
    "Candidate",
    "FeedbackRecord",
    "MemoryPlanCache",
    "PlanCache",
    "SortPlan",
    "WorkloadFingerprint",
    "default_cache_path",
    "dry_run_count",
    "enumerate_candidates",
    "fingerprint_collective",
    "fingerprint_partition",
    "model_score",
    "plan_sort",
    "record_feedback",
]
