"""The candidate planner: model-score the knob space, dry-run the top-k.

Planning is two-staged, cheap-to-expensive:

1. **Closed-form scoring** — every enumerated candidate (algorithm +
   :class:`~repro.core.config.SortConfig`) is priced in microseconds with
   the analytic phase models of :mod:`repro.model.phases` at the
   fingerprint's full ``(N, P)``.
2. **Virtual-clock dry runs** — the top-k by model score (the paper-default
   configuration is always kept in the refinement set) are executed through
   the real SPMD runtime on a *reduced* problem: synthetic partitions
   matched to the fingerprint's distribution character, at most
   :data:`DRY_RUN_MAX_RANKS` ranks and :data:`DRY_RUN_MAX_N` elements per
   rank.  Dry runs advance only virtual clocks — tuning never reads the
   host's wall clock — and their measured/modelled ratio re-scales the
   full-size prediction, which is what the final selection minimizes.

The output is a :class:`SortPlan`: a frozen value object carrying the
chosen algorithm + config, the refined makespan prediction, and full
provenance (per-candidate scores, dry-run shape, versions, seed).  Planning
is a pure function of ``(fingerprint, machine, seed)``: the same inputs
always produce the identical plan.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from ..baselines import hss_sort, sample_sort
from ..core.config import SortConfig, SplitterConfig
from ..core.histsort import histogram_sort
from ..machine.spec import MachineSpec
from ..model.phases import (
    MODEL_VERSION,
    predict_histsort,
    predict_hss,
    predict_samplesort,
)
from ..mpi import run_spmd
from .fingerprint import WorkloadFingerprint

__all__ = ["Candidate", "SortPlan", "enumerate_candidates", "model_score", "plan_sort"]

#: bump when enumeration/scoring/dry-run logic changes; part of every plan id
PLANNER_VERSION = 1

#: dry runs never use more ranks / more elements per rank than this
DRY_RUN_MAX_RANKS = 16
DRY_RUN_MAX_N = 2048

#: total virtual-clock dry runs executed by this process (cache-hit tests
#: assert it stays put; reset is never needed — only deltas are meaningful)
_DRY_RUN_COUNT = 0


def dry_run_count() -> int:
    """Process-lifetime count of planner dry runs (monotonic)."""
    return _DRY_RUN_COUNT


@dataclass(frozen=True)
class Candidate:
    """One point of the knob space: an algorithm plus its configuration."""

    label: str
    algo: str  # "dash" | "hss" | "sample_sort"
    config: SortConfig


@dataclass(frozen=True)
class SortPlan:
    """A tuning decision: what to run, what it should cost, and why.

    ``provenance`` carries the full audit trail — per-candidate model and
    dry-run scores, the dry-run problem shape, planner/model versions, and
    the planning seed — so ``python -m repro.tune explain`` can replay the
    decision.  Plans are deterministic values: equal inputs give plans that
    compare equal field-for-field.
    """

    plan_id: str
    algo: str
    label: str
    config: SortConfig
    predicted_s: float
    key: str
    provenance: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "plan_id": self.plan_id,
            "algo": self.algo,
            "label": self.label,
            "config": self.config.to_dict(),
            "predicted_s": self.predicted_s,
            "key": self.key,
            "provenance": self.provenance,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SortPlan":
        extra = set(data) - {"plan_id", "algo", "label", "config", "predicted_s", "key", "provenance"}
        if extra:
            raise ValueError(f"unknown SortPlan field(s): {sorted(extra)}")
        return cls(
            plan_id=str(data["plan_id"]),
            algo=str(data["algo"]),
            label=str(data["label"]),
            config=SortConfig.from_dict(data["config"]),
            predicted_s=float(data["predicted_s"]),
            key=str(data["key"]),
            provenance=dict(data.get("provenance", {})),
        )


# --------------------------------------------------------------- enumeration


def enumerate_candidates(fp: WorkloadFingerprint, *, eps: float = 0.0) -> list[Candidate]:
    """The knob space the tuner searches, paper default first.

    Only ``dash`` candidates honour exact (``eps``-bounded) partition
    capacities; the one-shot ``sample_sort`` baseline is enumerated only
    when the caller tolerates real imbalance (``eps >= 0.1``).
    """
    base = SortConfig(eps=eps)
    sample_splitter = SplitterConfig(initial_guess="sample", cross_probe=True)
    out = [
        Candidate("dash/paper-default", "dash", base),
        Candidate("dash/adaptive-merge", "dash", base.with_(merge_strategy="adaptive")),
        Candidate("dash/sample-guess", "dash", base.with_(splitter=sample_splitter)),
        Candidate(
            "dash/sample-guess+adaptive-merge",
            "dash",
            base.with_(splitter=sample_splitter, merge_strategy="adaptive"),
        ),
        Candidate(
            "dash/overlap-exchange",
            "dash",
            base.with_(overlap_exchange=True, merge_strategy="binary_tree"),
        ),
        Candidate("hss/interval-sampling", "hss", base),
    ]
    if eps >= 0.1:
        out.append(Candidate("sample_sort/one-shot", "sample_sort", base))
    return out


# ------------------------------------------------------------- model scoring


def _round_estimate(fp: WorkloadFingerprint, splitter: SplitterConfig) -> int:
    """A-priori histogramming rounds: the §V-A min-gap bound.

    Rounds track ``min(key_bits, ~log2 N + c)``; sampled initial guesses
    start the brackets near their targets and historically cut rounds by
    roughly 3x on smooth inputs (the §III-B optimisation the ablation
    measures), less when duplicates dominate.
    """
    base = min(fp.key_bits, int(math.log2(max(fp.n_total, 2))) + 2)
    if splitter.initial_guess == "sample":
        base = max(3, base // 3)
    if splitter.cross_probe:
        base = max(2, int(base * 0.8))
    return max(base, 1)


def _resolve_merge(fp: WorkloadFingerprint, strategy: str) -> str:
    """Map ``adaptive`` onto what :func:`local_merge` would pick at size."""
    if strategy != "adaptive":
        return strategy
    chunk = fp.n_per_rank / max(fp.p, 1)
    return "sort" if (chunk < (1 << 14) and fp.p > 4) else "binary_tree"


def model_score(
    cand: Candidate, fp: WorkloadFingerprint, machine: MachineSpec, *, use_shm: bool = True
) -> float:
    """Closed-form predicted makespan of ``cand`` at the fingerprint's scale."""
    common = dict(
        ranks_per_node=fp.ranks_per_node, itemsize=fp.itemsize, use_shm=use_shm
    )
    if cand.algo == "dash":
        pred = predict_histsort(
            machine,
            fp.n_total,
            fp.p,
            rounds=_round_estimate(fp, cand.config.splitter),
            merge_strategy=_resolve_merge(fp, cand.config.merge_strategy),
            **common,
        )
        if cand.config.overlap_exchange:
            # 1-factor overlap hides merge work behind transfers (§VI-E.1);
            # credit the overlap conservatively rather than fully.
            return pred.total - 0.5 * min(pred.exchange, pred.merge)
        return pred.total
    if cand.algo == "hss":
        rounds = min(2 * fp.key_bits, 24)
        return predict_hss(
            machine, fp.n_total, fp.p, rounds=rounds, cand_per_round=12.0 * fp.p, **common
        ).total
    if cand.algo == "sample_sort":
        return predict_samplesort(machine, fp.n_total, fp.p, **common).total
    raise ValueError(f"unknown candidate algorithm {cand.algo!r}")


# ------------------------------------------------------------------ dry runs


def _dry_shape(fp: WorkloadFingerprint) -> tuple[int, int, int]:
    """(p, n_per_rank, ranks_per_node) of the reduced dry-run problem."""
    p = min(fp.p, DRY_RUN_MAX_RANKS)
    n_per_rank = max(min(fp.n_per_rank, DRY_RUN_MAX_N), 2)
    rpn = min(fp.ranks_per_node, p)
    return p, n_per_rank, rpn


def synth_partition(fp: WorkloadFingerprint, n: int, rank: int, seed: int) -> np.ndarray:
    """A synthetic partition with the fingerprint's statistical character.

    Deterministic in ``(fingerprint bucket, seed, rank)``: duplicates are
    matched by drawing from a reduced distinct pool, skew by an exponential
    value transform, sortedness by pre-sorting rank-contiguous ranges.
    """
    digest = hashlib.sha256(fp.bucket_key().encode()).digest()
    rng = np.random.Generator(
        np.random.MT19937([seed, rank, int.from_bytes(digest[:4], "big")])
    )
    if fp.dup_ratio > 0.05:
        distinct = max(int(n * (1.0 - fp.dup_ratio)), 1)
        vals = rng.integers(0, distinct, size=n).astype(np.float64)
    elif fp.skew > 0.5:
        vals = rng.exponential(1.0, size=n)
    else:
        vals = rng.random(size=n)
    span = float(2 ** min(fp.key_bits, 62) - 1)
    if fp.dtype_kind == "f":
        data = vals.astype(np.float64 if fp.itemsize == 8 else np.float32)
    else:
        scaled = vals / max(vals.max(), 1e-30) * span
        dtype = np.dtype(f"{fp.dtype_kind}{fp.itemsize}")
        data = scaled.astype(dtype)
    if fp.sortedness > 0.9:
        # globally nearly sorted: rank r holds the r-th slice of the range
        data = np.sort(data)
        if fp.dtype_kind != "f":
            width = span / max(fp.p, 1)
            data = (data / max(fp.p, 1) + rank * width).astype(data.dtype)
        else:
            data = data + rank * 4.0
    return data


def _dry_run_program(comm, cand_algo: str, config_dict: dict, fp_dict: dict, n: int, seed: int):
    fp = WorkloadFingerprint.from_dict(fp_dict)
    local = synth_partition(fp, n, comm.rank, seed)
    config = SortConfig.from_dict(config_dict)
    if cand_algo == "dash":
        histogram_sort(comm, local, config=config)
    elif cand_algo == "hss":
        hss_sort(comm, local, eps=config.eps, sampling="interval", seed=seed)
    elif cand_algo == "sample_sort":
        sample_sort(comm, local)
    else:  # pragma: no cover - enumeration and dry runs agree on algos
        raise ValueError(f"unknown candidate algorithm {cand_algo!r}")
    return None


def _dry_run_candidate(
    cand: Candidate,
    fp: WorkloadFingerprint,
    machine: MachineSpec,
    *,
    seed: int,
    use_shm: bool = True,
) -> float:
    """Virtual-clock makespan of one candidate on the reduced problem."""
    global _DRY_RUN_COUNT
    _DRY_RUN_COUNT += 1
    p, n_per_rank, rpn = _dry_shape(fp)
    _, rt = run_spmd(
        p,
        _dry_run_program,
        cand.algo,
        cand.config.to_dict(),
        fp.to_dict(),
        n_per_rank,
        seed,
        machine=machine,
        ranks_per_node=rpn,
        use_shm=use_shm,
        return_runtime=True,
    )
    return rt.elapsed()


# ------------------------------------------------------------------ planning


def plan_sort(
    fp: WorkloadFingerprint,
    machine: MachineSpec,
    *,
    eps: float = 0.0,
    seed: int = 0,
    top_k: int = 3,
    dry_runs: bool = True,
    use_shm: bool = True,
    candidates: list[Candidate] | None = None,
) -> SortPlan:
    """Plan the sort for ``fp`` on ``machine``; deterministic in the inputs.

    Stage 1 model-scores every candidate; stage 2 dry-runs the ``top_k``
    cheapest (the paper default always rides along as the control) and
    re-scales each full-size prediction by its measured/modelled dry-run
    ratio.  ``dry_runs=False`` plans from the closed forms alone.
    """
    if fp.machine != machine.signature():
        raise ValueError(
            "fingerprint was taken on a different machine "
            f"({fp.machine} != {machine.signature()})"
        )
    cands = candidates if candidates is not None else enumerate_candidates(fp, eps=eps)
    if not cands:
        raise ValueError("no candidates to plan over")

    scored = [(model_score(c, fp, machine, use_shm=use_shm), i, c) for i, c in enumerate(cands)]
    refine_idx = {i for _, i, _ in sorted(scored)[: max(top_k, 1)]}
    refine_idx.add(0)  # the paper default is always measured as the control

    p_dry, n_dry, rpn_dry = _dry_shape(fp)
    audit: list[dict[str, Any]] = []
    best: tuple[float, int] | None = None
    for model_s, i, cand in scored:
        dry_s = refined = None
        if dry_runs and i in refine_idx:
            fp_dry = WorkloadFingerprint(
                n_total=p_dry * n_dry,
                p=p_dry,
                ranks_per_node=rpn_dry,
                itemsize=fp.itemsize,
                dtype_kind=fp.dtype_kind,
                key_bits=fp.key_bits,
                dup_ratio=fp.dup_ratio,
                sortedness=fp.sortedness,
                skew=fp.skew,
                machine=fp.machine,
            )
            dry_s = _dry_run_candidate(cand, fp, machine, seed=seed, use_shm=use_shm)
            dry_model_s = model_score(cand, fp_dry, machine, use_shm=use_shm)
            refined = model_s * (dry_s / dry_model_s) if dry_model_s > 0 else dry_s
        score = refined if refined is not None else model_s
        audit.append(
            {
                "label": cand.label,
                "algo": cand.algo,
                "model_s": model_s,
                "dry_s": dry_s,
                "refined_s": refined,
            }
        )
        # strict <: at a tie the earlier (more paper-faithful) candidate wins
        if best is None or score < best[0]:
            best = (score, i)

    assert best is not None
    predicted_s, winner_idx = best
    winner = cands[winner_idx]
    key = fp.bucket_key()
    plan_id = hashlib.sha256(
        f"{key}|{winner.label}|seed={seed}|planner={PLANNER_VERSION}|model={MODEL_VERSION}".encode()
    ).hexdigest()[:12]
    return SortPlan(
        plan_id=plan_id,
        algo=winner.algo,
        label=winner.label,
        config=winner.config,
        predicted_s=float(predicted_s),
        key=key,
        provenance={
            "planner_version": PLANNER_VERSION,
            "model_version": MODEL_VERSION,
            "seed": seed,
            "dry_runs": bool(dry_runs),
            "dry_shape": {"p": p_dry, "n_per_rank": n_dry, "ranks_per_node": rpn_dry},
            "fingerprint": fp.to_dict(),
            "candidates": audit,
        },
    )
