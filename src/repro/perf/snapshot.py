"""Benchmark snapshots: the curated suite behind ``BENCH_<NNNN>.json``.

A *snapshot* is one durable point on the repository's performance
trajectory: a fixed grid of (algorithm, distribution, machine preset,
rank count) cells, each executed through :func:`repro.bench.harness.
repeat_sort_trials` and recorded with

* the **measured** virtual-clock makespan (median + 95% CI over seeds,
  via :func:`~repro.bench.harness.median_ci`),
* the **modelled** makespan and per-phase times from
  :mod:`repro.model.phases`, evaluated with the *measured* round count
  (:func:`repro.model.calibrate.fit_round_count`),
* the model-vs-measured attribution — per-phase ratios plus the robust
  time-scale correction (:func:`repro.model.calibrate.fit_time_scale`,
  the same statistic :mod:`repro.tune.feedback` folds into plan scoring),
* traffic totals (bytes on wire, message and collective-call counts)
  read from a :class:`repro.metrics.MetricsRegistry` fed by the harness,
* and the simulation overhead itself (wall-clock seconds, peak RSS).

Snapshots are schema-versioned; :func:`load_snapshot` refuses files whose
``schema_version`` it does not understand, so ``repro.perf compare`` never
silently compares incompatible records.  Virtual time is deterministic
per seed, which is what makes a committed snapshot a *reproducible*
baseline: re-running the suite at the same tree must land inside the
committed CI (and exactly on the median, on identical float hardware).
"""

from __future__ import annotations

import json
import math
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping

from .. import __version__
from ..bench.harness import median_ci, peak_rss_bytes, repeat_sort_trials
from ..core import SortConfig
from ..machine import MachineSpec, abstract_cluster, laptop, supermuc_phase2
from ..metrics import MetricsRegistry
from ..model.calibrate import fit_round_count, fit_time_scale
from ..model.phases import predict_histsort, predict_hss, predict_samplesort

__all__ = [
    "SCHEMA_VERSION",
    "SNAPSHOT_KIND",
    "CellSpec",
    "PRESETS",
    "SUITES",
    "SnapshotFormatError",
    "run_cell",
    "run_suite",
    "load_snapshot",
    "write_snapshot",
    "next_bench_path",
    "latest_bench_path",
]

#: bump on any incompatible change to the cell record layout
SCHEMA_VERSION = 1

SNAPSHOT_KIND = "repro-perf-snapshot"

_BENCH_RE = re.compile(r"^BENCH_(\d{4})\.json$")


class SnapshotFormatError(ValueError):
    """A snapshot file is missing, malformed, or of an unknown schema."""


#: machine presets a cell can name (factories, so specs stay immutable)
PRESETS: dict[str, Callable[[], MachineSpec]] = {
    "abstract2": lambda: abstract_cluster(2, cores_per_node=8),
    "abstract4": lambda: abstract_cluster(4, cores_per_node=8),
    "laptop8": lambda: laptop(8),
    "supermuc1": lambda: supermuc_phase2(nodes=1),
}


@dataclass(frozen=True)
class CellSpec:
    """One point of the snapshot grid."""

    algo: str
    dist: str
    preset: str
    p: int
    n_per_rank: int
    ranks_per_node: int | None = None
    overlap: bool = False
    config_kwargs: Mapping[str, Any] = field(default_factory=dict)

    @property
    def cell_id(self) -> str:
        algo = self.algo + ("+overlap" if self.overlap else "")
        return f"{algo}/{self.dist}/{self.preset}/p{self.p}"

    def machine(self) -> MachineSpec:
        try:
            return PRESETS[self.preset]()
        except KeyError:
            raise KeyError(
                f"unknown preset {self.preset!r}; available: {sorted(PRESETS)}"
            ) from None

    def sort_config(self) -> SortConfig:
        return SortConfig(overlap_exchange=self.overlap, **dict(self.config_kwargs))


#: the committed grids.  ``default`` is the per-PR snapshot (and the CI
#: gate's workload); ``quick`` is a two-cell smoke grid for tests.
SUITES: dict[str, tuple[CellSpec, ...]] = {
    "default": (
        CellSpec("dash", "uniform_u64", "abstract2", p=8, n_per_rank=4096, ranks_per_node=4),
        CellSpec("dash", "zipf_u64", "abstract2", p=8, n_per_rank=4096, ranks_per_node=4),
        CellSpec("dash", "uniform_u64", "supermuc1", p=8, n_per_rank=4096, ranks_per_node=8),
        CellSpec("dash", "uniform_u64", "abstract4", p=16, n_per_rank=2048, ranks_per_node=4),
        CellSpec(
            "dash", "uniform_u64", "abstract2", p=8, n_per_rank=4096,
            ranks_per_node=4, overlap=True,
        ),
        CellSpec("hss", "uniform_u64", "abstract2", p=8, n_per_rank=4096, ranks_per_node=4),
        CellSpec("sample_sort", "uniform_u64", "abstract2", p=8, n_per_rank=4096, ranks_per_node=4),
        CellSpec("psrs", "uniform_u64", "abstract2", p=8, n_per_rank=4096, ranks_per_node=4),
        CellSpec("serve", "mixed", "laptop8", p=4, n_per_rank=192),
    ),
    "quick": (
        CellSpec("dash", "uniform_u64", "abstract2", p=4, n_per_rank=1024, ranks_per_node=2),
        CellSpec("hss", "uniform_u64", "abstract2", p=4, n_per_rank=1024, ranks_per_node=2),
    ),
}


def _predict_cell(spec: CellSpec, trials) -> dict[str, Any] | None:
    """Closed-form prediction for a cell, with measured round counts.

    Returns ``None`` for algorithms without a closed form (their cells
    still track measured trends; ``model_error`` is simply absent).
    """
    machine = spec.machine()
    n_total = spec.p * spec.n_per_rank
    rpn = spec.ranks_per_node or machine.node.cores
    common = dict(ranks_per_node=rpn, itemsize=8)
    if spec.algo == "dash":
        pred = predict_histsort(
            machine, n_total, spec.p, rounds=fit_round_count(trials),
            merge_strategy=spec.sort_config().merge_strategy, **common,
        )
    elif spec.algo == "hss":
        pred = predict_hss(
            machine, n_total, spec.p, rounds=fit_round_count(trials),
            cand_per_round=12.0 * spec.p, **common,
        )
    elif spec.algo == "sample_sort":
        pred = predict_samplesort(machine, n_total, spec.p, **common)
    else:
        return None
    return {"total_s": pred.total, "phases_s": pred.as_dict()}


def _phase_median(trials) -> dict[str, float]:
    """Per-phase median across trials (robust attribution input)."""
    names: list[str] = []
    for t in trials:
        for name in t.phases:
            if name not in names:
                names.append(name)
    out: dict[str, float] = {}
    for name in names:
        vals = sorted(t.phases.get(name, 0.0) for t in trials)
        mid = len(vals) // 2
        med = vals[mid] if len(vals) % 2 else 0.5 * (vals[mid - 1] + vals[mid])
        out[name] = float(med)
    return out


def _model_error(modelled: dict[str, Any] | None, phases: dict[str, float],
                 totals: list[float]) -> dict[str, Any] | None:
    if modelled is None or modelled["total_s"] <= 0:
        return None
    per_phase = {
        name: (phases.get(name, 0.0) / pred if pred > 0 else None)
        for name, pred in modelled["phases_s"].items()
    }
    return {
        "time_scale": fit_time_scale(totals, [modelled["total_s"]] * len(totals)),
        "total_ratio": (sum(phases.values()) / modelled["total_s"]),
        "per_phase_ratio": per_phase,
    }


def _run_serve_cell(
    spec: CellSpec, *, repeats: int, warmup: int, seed0: int
) -> dict[str, Any]:
    """Service-throughput cell: replay the standard mixed workload.

    One trial = a fresh :class:`repro.serve.SortService` replaying
    :func:`repro.serve.make_workload` (sorts, percentiles, top-k, range
    queries; fused epochs; warm-plan repeats).  The gated statistic is
    **virtual seconds per completed job** — the inverse of the service's
    jobs/virtual-second throughput — so the gate's lower-is-better
    comparison applies unchanged.  There is no closed-form model for a
    whole service replay, so ``modelled`` is absent.
    """
    import time

    from ..serve import SortService, make_workload

    values: list[float] = []
    throughputs: list[float] = []
    walls: list[float] = []
    last_stats: dict[str, Any] = {}
    for i in range(warmup + repeats):
        t0 = time.perf_counter()
        service = SortService(
            spec.p, machine=spec.machine(), ranks_per_node=spec.ranks_per_node
        )
        service.replay(make_workload(spec.p, seed=seed0 + i, n_small=spec.n_per_rank))
        wall = time.perf_counter() - t0
        if i < warmup:
            continue
        st = service.stats()
        done = st["jobs"].get("DONE", 0)
        if done == 0 or st["jobs_per_vsecond"] <= 0:
            raise RuntimeError(f"serve cell replay completed no jobs: {st['jobs']}")
        values.append(service.clock / done)
        throughputs.append(st["jobs_per_vsecond"])
        walls.append(wall)
        last_stats = st
    stats = median_ci(values)
    return {
        "id": spec.cell_id,
        "algo": spec.algo,
        "dist": spec.dist,
        "preset": spec.preset,
        "machine": spec.machine().name,
        "p": spec.p,
        "n_per_rank": spec.n_per_rank,
        "ranks_per_node": spec.ranks_per_node,
        "overlap": spec.overlap,
        "repeats": repeats,
        "warmup": warmup,
        "seed0": seed0,
        "measured": {
            "median_s": stats.median,
            "ci_low_s": stats.ci_low,
            "ci_high_s": stats.ci_high,
            "n": stats.n,
            "values_s": list(stats.values),
        },
        "phases_s": {},
        "rounds": 0,
        "modelled": None,
        "model_error": None,
        "service": {
            "jobs_per_vsecond": sorted(throughputs)[len(throughputs) // 2],
            "jobs_done_per_run": last_stats.get("jobs", {}).get("DONE", 0),
            "epochs_per_run": last_stats.get("epochs", 0),
            "warm_plan_hits_per_run": last_stats.get("warm_plan_hits", 0.0),
        },
        "traffic": {},
        "sim": {
            "wall_s_per_run": sum(walls) / len(walls),
            "peak_rss_bytes": peak_rss_bytes(),
        },
    }


def run_cell(
    spec: CellSpec,
    *,
    repeats: int = 3,
    warmup: int = 1,
    seed0: int = 100,
) -> dict[str, Any]:
    """Execute one grid cell and build its snapshot record."""
    if spec.algo == "serve":
        return _run_serve_cell(spec, repeats=repeats, warmup=warmup, seed0=seed0)
    registry = MetricsRegistry()
    labels = {"algo": spec.algo, "dist": spec.dist, "machine": spec.preset}
    stats, trials = repeat_sort_trials(
        spec.p,
        spec.n_per_rank,
        repeats=repeats,
        warmup=warmup,
        seed0=seed0,
        algo=spec.algo,
        dist=spec.dist,
        machine=spec.machine(),
        ranks_per_node=spec.ranks_per_node,
        config=spec.sort_config(),
        metrics=registry,
        metrics_labels=labels,
    )
    runs = registry.value("repro_runs_total")  # warmup + repeats
    coll_calls: dict[str, float] = {}
    fam = registry.get("repro_collective_calls_total")
    if fam is not None:
        for lab, child in fam.samples():
            coll_calls[lab["op"]] = coll_calls.get(lab["op"], 0.0) + child.value
    phases = _phase_median(trials)
    modelled = _predict_cell(spec, trials)
    totals = [t.total for t in trials]
    return {
        "id": spec.cell_id,
        "algo": spec.algo,
        "dist": spec.dist,
        "preset": spec.preset,
        "machine": spec.machine().name,
        "p": spec.p,
        "n_per_rank": spec.n_per_rank,
        "ranks_per_node": spec.ranks_per_node,
        "overlap": spec.overlap,
        "repeats": repeats,
        "warmup": warmup,
        "seed0": seed0,
        "measured": {
            "median_s": stats.median,
            "ci_low_s": stats.ci_low,
            "ci_high_s": stats.ci_high,
            "n": stats.n,
            "values_s": list(stats.values),
        },
        "phases_s": phases,
        "rounds": int(max(t.rounds for t in trials)),
        "modelled": modelled,
        "model_error": _model_error(modelled, phases, totals),
        "traffic": {
            "wire_bytes_per_run": registry.value("repro_bytes_on_wire_total") / runs,
            "p2p_bytes_per_run": registry.value("repro_p2p_bytes_total") / runs,
            "messages_per_run": registry.value("repro_messages_total") / runs,
            "collective_calls_per_run": {
                op: n / runs for op, n in sorted(coll_calls.items())
            },
        },
        "sim": {
            "wall_s_per_run": sum(t.extra["wall_s"] for t in trials) / len(trials),
            "peak_rss_bytes": peak_rss_bytes(),
        },
    }


def run_suite(
    suite: str = "default",
    *,
    repeats: int = 3,
    warmup: int = 1,
    seed0: int = 100,
    label: str | None = None,
    progress: Callable[[str], None] | None = None,
) -> dict[str, Any]:
    """Run every cell of ``suite`` and assemble a snapshot document."""
    try:
        specs = SUITES[suite]
    except KeyError:
        raise KeyError(f"unknown suite {suite!r}; available: {sorted(SUITES)}") from None
    cells: dict[str, Any] = {}
    for spec in specs:
        if progress is not None:
            progress(f"running {spec.cell_id} ...")
        cells[spec.cell_id] = run_cell(
            spec, repeats=repeats, warmup=warmup, seed0=seed0
        )
    return {
        "kind": SNAPSHOT_KIND,
        "schema_version": SCHEMA_VERSION,
        "suite": suite,
        "label": label,
        "repro_version": __version__,
        "repeats": repeats,
        "warmup": warmup,
        "seed0": seed0,
        "cells": cells,
    }


def write_snapshot(snapshot: Mapping[str, Any], path: str | Path) -> Path:
    path = Path(path)
    doc = dict(snapshot)
    if doc.get("label") is None:
        doc["label"] = path.stem
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path


def load_snapshot(path: str | Path) -> dict[str, Any]:
    """Read and validate a snapshot; raises :class:`SnapshotFormatError`."""
    path = Path(path)
    if not path.exists():
        raise SnapshotFormatError(f"snapshot file not found: {path}")
    try:
        doc = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise SnapshotFormatError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("kind") != SNAPSHOT_KIND:
        raise SnapshotFormatError(
            f"{path} is not a {SNAPSHOT_KIND} document (kind={doc.get('kind')!r})"
        )
    version = doc.get("schema_version")
    if version != SCHEMA_VERSION:
        raise SnapshotFormatError(
            f"{path} has schema_version {version!r}, this build reads "
            f"{SCHEMA_VERSION}; re-run `python -m repro.perf run` to regenerate"
        )
    if not isinstance(doc.get("cells"), dict):
        raise SnapshotFormatError(f"{path} has no cells mapping")
    return doc


def _bench_files(directory: str | Path) -> list[tuple[int, Path]]:
    out = []
    if not Path(directory).is_dir():
        return out
    for p in Path(directory).iterdir():
        m = _BENCH_RE.match(p.name)
        if m:
            out.append((int(m.group(1)), p))
    return sorted(out)


def latest_bench_path(directory: str | Path = ".") -> Path | None:
    """Highest-numbered ``BENCH_NNNN.json`` in ``directory`` (None if none)."""
    files = _bench_files(directory)
    return files[-1][1] if files else None


def next_bench_path(directory: str | Path = ".") -> Path:
    """The next free ``BENCH_NNNN.json`` slot in ``directory``."""
    files = _bench_files(directory)
    n = files[-1][0] + 1 if files else 1
    return Path(directory) / f"BENCH_{n:04d}.json"


def cell_median(cell: Mapping[str, Any]) -> float:
    """A cell's measured median, NaN when absent or non-numeric."""
    try:
        value = cell["measured"]["median_s"]
    except (KeyError, TypeError):
        return math.nan
    try:
        value = float(value)
    except (TypeError, ValueError):
        return math.nan
    return value
