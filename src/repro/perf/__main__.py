"""Entry point: ``python -m repro.perf``."""

from .cli import main

raise SystemExit(main())
