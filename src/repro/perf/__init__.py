"""Benchmark snapshots and the CI regression gate (the perf observatory's
trajectory half).

``BENCH_<NNNN>.json`` files at the repository root are the committed
performance trajectory: one schema-versioned snapshot per PR, each cell
of a fixed (algorithm, distribution, machine preset, rank count) grid
recording measured virtual-clock makespans with confidence intervals,
modelled makespans with per-phase model-vs-measured attribution, traffic
totals from :mod:`repro.metrics`, and the simulator's own wall-clock /
memory overhead.

``python -m repro.perf`` drives it: ``run`` writes the next snapshot,
``compare`` diffs two files, ``gate`` re-measures the working tree
against the latest committed baseline and exits nonzero on a regression
(new median beyond the baseline's 95% CI plus a threshold) with the
per-phase attribution printed, and ``report`` renders a snapshot as a
table.  See :mod:`repro.perf.snapshot` for the schema and
:mod:`repro.perf.compare` for the decision rule.
"""

from .compare import (
    DEFAULT_THRESHOLD,
    CellDelta,
    PerfComparison,
    compare_snapshots,
)
from .snapshot import (
    PRESETS,
    SCHEMA_VERSION,
    SUITES,
    CellSpec,
    SnapshotFormatError,
    latest_bench_path,
    load_snapshot,
    next_bench_path,
    run_cell,
    run_suite,
    write_snapshot,
)

__all__ = [
    "CellDelta",
    "CellSpec",
    "DEFAULT_THRESHOLD",
    "PRESETS",
    "PerfComparison",
    "SCHEMA_VERSION",
    "SUITES",
    "SnapshotFormatError",
    "compare_snapshots",
    "latest_bench_path",
    "load_snapshot",
    "next_bench_path",
    "run_cell",
    "run_suite",
    "write_snapshot",
]
