"""``python -m repro.perf`` — run / compare / gate / report.

Exit codes (CI contract):

* ``0`` — success; for ``gate``/``compare``, no regression and every
  baseline cell verified;
* ``1`` — at least one regression or unverifiable (missing/NaN) cell;
* ``2`` — usage or format error: missing baseline file, schema-version
  mismatch, unknown suite/preset.

The per-PR workflow::

    python -m repro.perf run            # writes the next BENCH_NNNN.json
    git add BENCH_NNNN.json             # commit the new trajectory point
    python -m repro.perf gate           # CI: fresh run vs latest committed

``gate`` with no ``--new`` executes the baseline's own suite (same grid,
repeats, and seeds) so the comparison is measurement-vs-measurement of
the identical workload.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Any, Sequence

from .compare import DEFAULT_THRESHOLD, compare_snapshots
from .snapshot import (
    SUITES,
    SnapshotFormatError,
    latest_bench_path,
    load_snapshot,
    next_bench_path,
    run_suite,
    write_snapshot,
)

__all__ = ["main"]

USAGE_ERROR = 2


def _progress(msg: str) -> None:
    print(f"[repro.perf] {msg}", file=sys.stderr)


def _format_cells(doc: dict[str, Any]) -> str:
    from ..bench.results import format_table

    rows = []
    for cell_id, cell in sorted(doc.get("cells", {}).items()):
        measured = cell.get("measured", {})
        modelled = cell.get("modelled") or {}
        error = cell.get("model_error") or {}
        traffic = cell.get("traffic", {})
        sim = cell.get("sim", {})
        rows.append(
            {
                "cell": cell_id,
                "median_s": measured.get("median_s"),
                "ci_low_s": measured.get("ci_low_s"),
                "ci_high_s": measured.get("ci_high_s"),
                "model_s": modelled.get("total_s", ""),
                "model_x": error.get("time_scale", ""),
                "rounds": cell.get("rounds"),
                "wire_MB": float(traffic.get("wire_bytes_per_run", 0.0)) / 1e6,
                "msgs": traffic.get("messages_per_run"),
                "wall_s": sim.get("wall_s_per_run"),
            }
        )
    columns = [
        "cell", "median_s", "ci_low_s", "ci_high_s", "model_s", "model_x",
        "rounds", "wire_MB", "msgs", "wall_s",
    ]
    header = (
        f"suite={doc.get('suite')} schema={doc.get('schema_version')} "
        f"label={doc.get('label')} repeats={doc.get('repeats')} seed0={doc.get('seed0')}"
    )
    return header + "\n" + format_table(columns, rows)


def _cmd_run(args: argparse.Namespace) -> int:
    if args.suite not in SUITES:
        print(f"error: unknown suite {args.suite!r}; available: {sorted(SUITES)}",
              file=sys.stderr)
        return USAGE_ERROR
    out = Path(args.out) if args.out else next_bench_path(args.dir)
    doc = run_suite(
        args.suite,
        repeats=args.repeats,
        warmup=args.warmup,
        seed0=args.seed0,
        label=args.label or out.stem,
        progress=None if args.quiet else _progress,
    )
    write_snapshot(doc, out)
    print(_format_cells(doc))
    print(f"wrote {out}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    doc = load_snapshot(args.snapshot)
    print(_format_cells(doc))
    per_phase = []
    for cell_id, cell in sorted(doc.get("cells", {}).items()):
        err = cell.get("model_error") or {}
        for phase, ratio in (err.get("per_phase_ratio") or {}).items():
            if ratio is not None:
                per_phase.append((cell_id, phase, ratio))
    if per_phase and args.verbose:
        print("\nmodel-vs-measured per phase (measured / modelled):")
        for cell_id, phase, ratio in per_phase:
            print(f"  {cell_id:<44} {phase:<12} x{ratio:.3f}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    new = load_snapshot(args.new)
    baseline = load_snapshot(args.baseline)
    comparison = compare_snapshots(new, baseline, threshold=args.threshold)
    print(comparison.format(verbose=args.verbose))
    return comparison.exit_code


def _cmd_gate(args: argparse.Namespace) -> int:
    baseline_path = Path(args.baseline) if args.baseline else latest_bench_path(args.dir)
    if baseline_path is None:
        print(
            f"error: no committed BENCH_*.json baseline found in {Path(args.dir).resolve()}",
            file=sys.stderr,
        )
        return USAGE_ERROR
    baseline = load_snapshot(baseline_path)
    if args.new:
        new = load_snapshot(args.new)
    else:
        suite = args.suite or baseline.get("suite", "default")
        if suite not in SUITES:
            print(f"error: unknown suite {suite!r}; available: {sorted(SUITES)}",
                  file=sys.stderr)
            return USAGE_ERROR
        new = run_suite(
            suite,
            repeats=args.repeats or int(baseline.get("repeats", 3)),
            warmup=int(baseline.get("warmup", 1)),
            seed0=int(baseline.get("seed0", 100)),
            label="working-tree",
            progress=None if args.quiet else _progress,
        )
    comparison = compare_snapshots(new, baseline, threshold=args.threshold)
    print(comparison.format(verbose=args.verbose))
    return comparison.exit_code


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf",
        description="Performance snapshots and the CI regression gate.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--verbose", action="store_true", help="show full attributions")
        p.add_argument("--quiet", action="store_true", help="suppress progress output")

    p_run = sub.add_parser("run", help="execute the snapshot suite and write BENCH_NNNN.json")
    p_run.add_argument("--suite", default="default", help=f"grid to run {sorted(SUITES)}")
    p_run.add_argument("--out", help="output path (default: next free BENCH_NNNN.json)")
    p_run.add_argument("--dir", default=".", help="directory for auto-numbered snapshots")
    p_run.add_argument("--repeats", type=int, default=3)
    p_run.add_argument("--warmup", type=int, default=1)
    p_run.add_argument("--seed0", type=int, default=100)
    p_run.add_argument("--label", help="snapshot label (default: output file stem)")
    common(p_run)
    p_run.set_defaults(fn=_cmd_run)

    p_rep = sub.add_parser("report", help="render one snapshot as a table")
    p_rep.add_argument("snapshot")
    common(p_rep)
    p_rep.set_defaults(fn=_cmd_report)

    p_cmp = sub.add_parser("compare", help="compare two snapshot files")
    p_cmp.add_argument("new")
    p_cmp.add_argument("baseline")
    p_cmp.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD)
    common(p_cmp)
    p_cmp.set_defaults(fn=_cmd_compare)

    p_gate = sub.add_parser(
        "gate", help="fail (exit 1) when the working tree regresses the baseline"
    )
    p_gate.add_argument("--baseline", help="baseline snapshot (default: latest BENCH_*.json)")
    p_gate.add_argument("--new", help="pre-recorded candidate snapshot (default: run fresh)")
    p_gate.add_argument("--dir", default=".", help="where to look for BENCH_*.json")
    p_gate.add_argument("--suite", help="override the baseline's suite for the fresh run")
    p_gate.add_argument("--repeats", type=int, help="override the baseline's repeat count")
    p_gate.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD)
    common(p_gate)
    p_gate.set_defaults(fn=_cmd_gate)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except SnapshotFormatError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return USAGE_ERROR
    except KeyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return USAGE_ERROR


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
