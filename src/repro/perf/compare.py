"""Noise-aware snapshot comparison and the CI regression verdict.

The decision rule is built on the baseline's own confidence interval
rather than a bare ratio: seeds are the only noise source in the
virtual-clock harness, the committed baseline records the 95% CI of its
median over those seeds, and a candidate median is a **regression** only
when it lands *above* the baseline CI's upper edge by more than the
configurable threshold::

    new_median > baseline.ci_high * (1 + threshold)

(symmetrically, an **improvement** must undercut ``ci_low``).  Inside the
CI-plus-threshold band the verdict is ``ok`` — re-measurement noise never
fails the gate.

Every regression carries a per-phase attribution: the delta of the
cell's measured phase medians against the baseline's, ordered by
contribution, so a failing gate names the phase that slowed down (the
paper's phase-level accounting, applied to the repo's own history).

Cells that cannot be verified — present in the baseline but missing from
the candidate, or carrying NaN/absent measurements — are
``incomparable`` and fail the gate too: an unverifiable baseline cell is
indistinguishable from a hidden regression.  Cells only the candidate
has are informational (``new-only``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Mapping

from .snapshot import cell_median

__all__ = ["DEFAULT_THRESHOLD", "CellDelta", "PerfComparison", "compare_snapshots"]

#: slack on top of the baseline CI before a median counts as moved
DEFAULT_THRESHOLD = 0.05


@dataclass(frozen=True)
class CellDelta:
    """Verdict for one grid cell."""

    cell_id: str
    status: str  # ok | regression | improvement | incomparable | new-only
    new_median: float
    base_median: float
    base_ci: tuple[float, float]
    #: new / baseline medians (NaN when incomparable)
    ratio: float
    #: per-phase (name, delta seconds, share of total delta), worst first
    attribution: tuple[tuple[str, float, float], ...] = ()
    note: str = ""

    @property
    def failed(self) -> bool:
        return self.status in ("regression", "incomparable")


def _attribute(new_cell: Mapping[str, Any], base_cell: Mapping[str, Any]) -> tuple:
    new_phases = new_cell.get("phases_s") or {}
    base_phases = base_cell.get("phases_s") or {}
    names = list(new_phases) + [n for n in base_phases if n not in new_phases]
    deltas = [
        (name, float(new_phases.get(name, 0.0)) - float(base_phases.get(name, 0.0)))
        for name in names
    ]
    total = sum(d for _, d in deltas)
    scale = abs(total) if abs(total) > 0 else 1.0
    deltas.sort(key=lambda kv: kv[1], reverse=True)
    return tuple((name, d, d / scale) for name, d in deltas)


def _compare_cell(
    cell_id: str,
    new_cell: Mapping[str, Any] | None,
    base_cell: Mapping[str, Any],
    threshold: float,
) -> CellDelta:
    base_med = cell_median(base_cell)
    base_ci = (
        float(base_cell.get("measured", {}).get("ci_low_s", base_med)),
        float(base_cell.get("measured", {}).get("ci_high_s", base_med)),
    )
    if new_cell is None:
        return CellDelta(
            cell_id, "incomparable", math.nan, base_med, base_ci, math.nan,
            note="cell missing from candidate snapshot",
        )
    new_med = cell_median(new_cell)
    if math.isnan(new_med):
        return CellDelta(
            cell_id, "incomparable", new_med, base_med, base_ci, math.nan,
            note="candidate measurement is NaN or absent",
        )
    if math.isnan(base_med):
        return CellDelta(
            cell_id, "incomparable", new_med, base_med, base_ci, math.nan,
            note="baseline measurement is NaN or absent",
        )
    ratio = new_med / base_med if base_med > 0 else math.inf
    if new_med > base_ci[1] * (1.0 + threshold):
        status = "regression"
        attribution = _attribute(new_cell, base_cell)
    elif new_med < base_ci[0] * (1.0 - threshold):
        status = "improvement"
        attribution = _attribute(new_cell, base_cell)
    else:
        status = "ok"
        attribution = ()
    return CellDelta(cell_id, status, new_med, base_med, base_ci, ratio, attribution)


@dataclass
class PerfComparison:
    """The full verdict of candidate-vs-baseline."""

    baseline_label: str
    new_label: str
    threshold: float
    deltas: list[CellDelta] = field(default_factory=list)

    @property
    def regressions(self) -> list[CellDelta]:
        return [d for d in self.deltas if d.status == "regression"]

    @property
    def improvements(self) -> list[CellDelta]:
        return [d for d in self.deltas if d.status == "improvement"]

    @property
    def incomparable(self) -> list[CellDelta]:
        return [d for d in self.deltas if d.status == "incomparable"]

    @property
    def ok(self) -> bool:
        return not any(d.failed for d in self.deltas)

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def format(self, *, verbose: bool = False) -> str:
        lines = [
            f"perf gate: {self.new_label} vs baseline {self.baseline_label} "
            f"(threshold {self.threshold:.0%} beyond the baseline 95% CI)"
        ]
        for d in self.deltas:
            if d.status == "new-only":
                lines.append(f"  [new]  {d.cell_id}: median {d.new_median:.6g}s (no baseline)")
                continue
            if d.status == "incomparable":
                lines.append(f"  [FAIL] {d.cell_id}: incomparable — {d.note}")
                continue
            tag = {"ok": " ok ", "regression": "FAIL", "improvement": "GOOD"}[d.status]
            lines.append(
                f"  [{tag}] {d.cell_id}: median {d.new_median:.6g}s vs "
                f"{d.base_median:.6g}s (x{d.ratio:.3f}, baseline CI "
                f"[{d.base_ci[0]:.6g}, {d.base_ci[1]:.6g}])"
            )
            if d.attribution and (d.status == "regression" or verbose):
                attr_lines = [
                    f"           {name:<12} {delta:+.6g}s ({share:+.0%} of total delta)"
                    for name, delta, share in d.attribution
                    if delta != 0.0 or verbose
                ]
                if attr_lines:
                    lines.append("         per-phase attribution (delta vs baseline):")
                    lines.extend(attr_lines)
        n_reg, n_imp, n_inc = (
            len(self.regressions), len(self.improvements), len(self.incomparable),
        )
        verdict = "PASS" if self.ok else "FAIL"
        lines.append(
            f"  => {verdict}: {len(self.deltas)} cell(s), {n_reg} regression(s), "
            f"{n_imp} improvement(s), {n_inc} incomparable"
        )
        return "\n".join(lines)


def compare_snapshots(
    new: Mapping[str, Any],
    baseline: Mapping[str, Any],
    *,
    threshold: float = DEFAULT_THRESHOLD,
) -> PerfComparison:
    """Compare two loaded snapshot documents cell by cell.

    Both documents must already be schema-validated (see
    :func:`repro.perf.snapshot.load_snapshot`); this function assumes the
    shared layout and judges only the measurements.
    """
    if threshold < 0:
        raise ValueError("threshold must be >= 0")
    new_cells: Mapping[str, Any] = new.get("cells", {})
    base_cells: Mapping[str, Any] = baseline.get("cells", {})
    comparison = PerfComparison(
        baseline_label=str(baseline.get("label") or "baseline"),
        new_label=str(new.get("label") or "candidate"),
        threshold=threshold,
    )
    for cell_id in sorted(set(base_cells) | set(new_cells)):
        base_cell = base_cells.get(cell_id)
        if base_cell is None:
            comparison.deltas.append(
                CellDelta(
                    cell_id, "new-only", cell_median(new_cells[cell_id]),
                    math.nan, (math.nan, math.nan), math.nan,
                )
            )
            continue
        comparison.deltas.append(
            _compare_cell(cell_id, new_cells.get(cell_id), base_cell, threshold)
        )
    return comparison
