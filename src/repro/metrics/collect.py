"""Collectors: feed a registry from runtime stats, trace spans, and phases.

Collection is strictly *post-hoc*: every function here reads finished,
immutable state — a :class:`~repro.mpi.StatsSnapshot`, the span list of a
completed :class:`~repro.trace.TraceRecorder`, a phase dictionary produced
by :class:`~repro.trace.PhaseTimer` — and never calls into a live rank or
advances a clock.  That is the non-perturbation guarantee: attaching a
registry to a run (e.g. via ``run_sort_trial(metrics=...)``) leaves the
run bit-identical to an unobserved one.

``labels`` is the caller's identity for the run being observed — the
conventional keys are ``algo``, ``dist``, ``machine``, ``plan_id`` — and
becomes part of every family's label-name tuple, alongside intrinsic
labels (``op`` for collectives, ``phase`` for phase times, ``cat`` for
trace spans).  One registry can therefore accumulate many runs and stay
queryable per run, per algorithm, or in aggregate.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Mapping

from .registry import BYTES_BUCKETS, TIME_BUCKETS, MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover
    from ..mpi.runtime import Runtime
    from ..trace.events import TraceRecorder

__all__ = ["collect_runtime", "collect_phases", "collect_trace"]


def _base(labels: Mapping[str, Any] | None) -> dict[str, str]:
    return {k: str(v) for k, v in (labels or {}).items()}


def collect_runtime(
    registry: MetricsRegistry,
    runtime: "Runtime",
    *,
    labels: Mapping[str, Any] | None = None,
) -> None:
    """Fold a finished runtime's statistics into ``registry``.

    Emits traffic counters (bytes on wire, message and collective-call
    counts), the modelled makespan gauge, and per-rank virtual-time /
    bytes histograms — everything sourced from one consistent
    :meth:`~repro.mpi.Stats.snapshot`.
    """
    base = _base(labels)
    names = tuple(base)
    snap = runtime.stats.snapshot()

    registry.counter(
        "repro_bytes_on_wire_total",
        "Payload bytes on the wire: point-to-point plus collective payloads",
        names,
    ).labels(**base).inc(snap.wire_bytes)
    registry.counter(
        "repro_p2p_bytes_total", "Point-to-point payload bytes sent by all ranks", names
    ).labels(**base).inc(snap.total_bytes_sent)
    registry.counter(
        "repro_messages_total",
        "Messages on the wire: point-to-point sends plus collective calls",
        names,
    ).labels(**base).inc(snap.total_msgs_sent + snap.total_collective_calls)
    registry.counter(
        "repro_compute_seconds_total", "Virtual compute seconds over all ranks", names
    ).labels(**base).inc(snap.total_compute_time)
    registry.counter(
        "repro_runs_total", "Observed runtime executions", names
    ).labels(**base).inc()
    registry.gauge(
        "repro_makespan_seconds", "Modelled makespan (max rank clock) of the last run", names
    ).labels(**base).set(runtime.elapsed())
    registry.gauge(
        "repro_ranks", "World size of the last observed run", names
    ).labels(**base).set(runtime.size)

    # Control-plane traffic (ARQ acks/retransmissions, buddy checkpoints,
    # heartbeats) is accounted separately from the data-plane families
    # above, so repro_bytes_on_wire_total stays comparable across runs
    # with and without the recovery machinery enabled.
    ctl_names = names + ("kind",)
    ctl_msgs = registry.counter(
        "repro_control_messages_total",
        "Control-plane messages by kind (excluded from repro_messages_total)",
        ctl_names,
    )
    ctl_bytes = registry.counter(
        "repro_control_bytes_total",
        "Control-plane bytes by kind (excluded from repro_bytes_on_wire_total)",
        ctl_names,
    )
    for kind, (n_msgs, n_bytes) in snap.control.items():
        ctl_msgs.labels(kind=kind, **base).inc(n_msgs)
        ctl_bytes.labels(kind=kind, **base).inc(n_bytes)

    fs = runtime.fault_stats
    fault_events = registry.counter(
        "repro_fault_events_total",
        "Injected faults and recovery-machinery responses, by event",
        names + ("event",),
    )
    for event, count in (
        ("dropped", fs.dropped),
        ("duplicated", fs.duplicated),
        ("delayed", fs.delayed),
        ("crashed", len(fs.crashed)),
        ("detections", fs.detections),
        ("breaker_trips", fs.breaker_trips),
        ("recoveries", fs.recoveries),
        ("spares_used", fs.spares_used),
        ("checkpoints", fs.checkpoints),
        ("restored", fs.restored),
        ("lost", fs.lost),
    ):
        if count:
            fault_events.labels(event=event, **base).inc(count)

    coll_names = names + ("op",)
    calls = registry.counter(
        "repro_collective_calls_total", "Collective invocations by operation", coll_names
    )
    cbytes = registry.counter(
        "repro_collective_bytes_total", "Collective payload bytes by operation", coll_names
    )
    cranks = registry.counter(
        "repro_collective_rank_participations_total",
        "Summed participant counts by operation (ranks / calls = mean comm size)",
        coll_names,
    )
    for op, (n_calls, n_bytes, n_ranks) in snap.collectives.items():
        calls.labels(op=op, **base).inc(n_calls)
        cbytes.labels(op=op, **base).inc(n_bytes)
        cranks.labels(op=op, **base).inc(n_ranks)

    clock_hist = registry.histogram(
        "repro_rank_clock_seconds",
        "Per-rank final virtual clocks",
        names,
        buckets=TIME_BUCKETS,
    ).labels(**base)
    bytes_hist = registry.histogram(
        "repro_rank_bytes_sent",
        "Per-rank payload bytes sent",
        names,
        buckets=BYTES_BUCKETS,
    ).labels(**base)
    for rank in range(snap.size):
        clock_hist.observe(float(runtime.clocks[rank]))
        bytes_hist.observe(float(snap.bytes_sent[rank]))


def collect_phases(
    registry: MetricsRegistry,
    phases: Mapping[str, float],
    *,
    labels: Mapping[str, Any] | None = None,
) -> None:
    """Observe one run's phase breakdown (seconds per named phase).

    ``phases`` is a :class:`~repro.trace.PhaseTimer` / ``combine_phases``
    dictionary — the sort phase boundaries recorded by
    ``core/histsort.py`` (and the overlap path's fused exchange+merge).
    Each value lands in both a virtual-time histogram (distribution over
    runs) and a running counter (total attribution).
    """
    base = _base(labels)
    names = tuple(base) + ("phase",)
    hist = registry.histogram(
        "repro_phase_seconds",
        "Virtual seconds per sort phase and run (max over ranks)",
        names,
        buckets=TIME_BUCKETS,
    )
    total = registry.counter(
        "repro_phase_seconds_total", "Accumulated virtual seconds per sort phase", names
    )
    for phase, seconds in phases.items():
        hist.labels(phase=phase, **base).observe(float(seconds))
        total.labels(phase=phase, **base).inc(max(float(seconds), 0.0))


def collect_trace(
    registry: MetricsRegistry,
    recorder: "TraceRecorder",
    *,
    labels: Mapping[str, Any] | None = None,
) -> None:
    """Aggregate a trace recorder's finished spans by category.

    Span durations feed virtual-time histograms and idle time a counter,
    which is the cheap always-exportable summary of a trace too large to
    ship whole.
    """
    base = _base(labels)
    names = tuple(base) + ("cat",)
    dur = registry.histogram(
        "repro_span_seconds",
        "Virtual-time span durations by category",
        names,
        buckets=TIME_BUCKETS,
    )
    idle = registry.counter(
        "repro_span_idle_seconds_total",
        "Blocked virtual seconds inside spans, by category",
        names,
    )
    span_bytes = registry.counter(
        "repro_span_bytes_total", "Payload bytes attributed to spans, by category", names
    )
    for span in recorder.spans():
        dur.labels(cat=span.cat, **base).observe(span.duration)
        idle.labels(cat=span.cat, **base).inc(span.idle)
        span_bytes.labels(cat=span.cat, **base).inc(span.nbytes)
