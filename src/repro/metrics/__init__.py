"""Typed metrics over the virtual-clock runtime (the perf observatory's
measurement half).

Three layers:

- registry — :class:`MetricsRegistry` with counter / gauge / histogram
  families, fixed label-name tuples, and exponential virtual-time buckets
  (:mod:`repro.metrics.registry`);
- collectors — feed a registry from :meth:`repro.mpi.Stats.snapshot`,
  finished trace spans, and sort phase dictionaries, strictly post-hoc so
  observed runs stay bit-identical to unobserved ones
  (:mod:`repro.metrics.collect`);
- exposition — deterministic Prometheus text and JSON renderings
  (:mod:`repro.metrics.expose`).

The benchmark harness threads a registry through trials
(``run_sort_trial(metrics=...)``), and :mod:`repro.perf` reads traffic
totals out of it when building ``BENCH_*.json`` snapshot cells.
"""

from .collect import collect_phases, collect_runtime, collect_trace
from .expose import to_json, to_prometheus, write_json, write_prometheus
from .registry import (
    BYTES_BUCKETS,
    TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    exponential_buckets,
)

__all__ = [
    "BYTES_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "TIME_BUCKETS",
    "collect_phases",
    "collect_runtime",
    "collect_trace",
    "exponential_buckets",
    "to_json",
    "to_prometheus",
    "write_json",
    "write_prometheus",
]
