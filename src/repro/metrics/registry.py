"""The typed metrics registry: counters, gauges, virtual-time histograms.

A :class:`MetricsRegistry` owns metric *families*; a family has a name, a
help string, a type, and a fixed tuple of label names.  ``family.labels``
resolves (and lazily creates) one *child* per label-value combination —
the Prometheus data model, scaled down to what this repository needs:

* :class:`Counter` — monotone float, ``inc()`` only;
* :class:`Gauge` — settable float (``set``/``inc``/``dec``);
* :class:`Histogram` — observation counts over **fixed exponential
  buckets**.  All histograms in this codebase observe virtual-time
  seconds or payload bytes, both of which span many orders of magnitude,
  so linear buckets are useless; :func:`exponential_buckets` builds the
  geometric ``le`` ladders and two canonical ladders are provided
  (:data:`TIME_BUCKETS`, :data:`BYTES_BUCKETS`).

Determinism and non-perturbation
--------------------------------
The registry is plain Python state fed *after* (or strictly outside of)
virtual-time accounting — collectors in :mod:`repro.metrics.collect` read
:meth:`repro.mpi.Stats.snapshot`, finished trace spans, and phase
dictionaries, and never touch a clock.  A run observed into a registry is
bit-identical to an unobserved one (asserted by the 16-rank parity test).
Exposition (:meth:`MetricsRegistry.to_prometheus` /
:meth:`~MetricsRegistry.to_json`) orders families by name and children by
label values, so rendered output is deterministic too.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Any, Iterable, Mapping, Sequence

__all__ = [
    "BYTES_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "TIME_BUCKETS",
    "exponential_buckets",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def exponential_buckets(start: float, factor: float, count: int) -> tuple[float, ...]:
    """``count`` geometric upper bounds ``start * factor**i`` (no +Inf entry;
    the histogram adds the implicit overflow bucket itself)."""
    if start <= 0 or factor <= 1 or count < 1:
        raise ValueError("need start > 0, factor > 1, count >= 1")
    return tuple(start * factor**i for i in range(count))


#: virtual-time seconds: 1 µs .. ~4.4 ks in ×4 steps (17 buckets)
TIME_BUCKETS = exponential_buckets(1e-6, 4.0, 17)

#: payload bytes: 64 B .. 4 GiB in ×4 steps (14 buckets)
BYTES_BUCKETS = exponential_buckets(64.0, 4.0, 14)


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up (inc by {amount})")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Observation counts over fixed exponential buckets.

    ``counts[i]`` counts observations ``<= buckets[i]`` *non*-cumulatively;
    the exposition layer renders the cumulative Prometheus form.  The last
    implicit bucket (``+Inf``) is ``overflow``.
    """

    __slots__ = ("buckets", "counts", "overflow", "sum", "count")

    def __init__(self, buckets: Sequence[float]):
        self.buckets = tuple(float(b) for b in buckets)
        if list(self.buckets) != sorted(set(self.buckets)):
            raise ValueError("histogram buckets must be strictly increasing")
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket")
        self.counts = [0] * len(self.buckets)
        self.overflow = 0
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        if math.isnan(value):
            raise ValueError("cannot observe NaN")
        self.sum += value
        self.count += 1
        # buckets are few (<= ~17): linear scan beats bisect overhead here
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.overflow += 1

    def cumulative(self) -> list[tuple[float, int]]:
        """``(le, cumulative_count)`` pairs, ending with ``(inf, count)``."""
        out: list[tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.buckets, self.counts):
            running += n
            out.append((bound, running))
        out.append((math.inf, running + self.overflow))
        return out

    @property
    def value(self) -> float:
        """The sum, so mixed-type family reports have a scalar to show."""
        return self.sum


_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """One named metric with a fixed label-name tuple and many children."""

    def __init__(
        self,
        name: str,
        help: str,
        type: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] | None = None,
    ):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for ln in labelnames:
            if not _LABEL_RE.match(ln):
                raise ValueError(f"invalid label name {ln!r}")
        if type not in _TYPES:
            raise ValueError(f"metric type must be one of {sorted(_TYPES)}, got {type!r}")
        if buckets is not None and type != "histogram":
            raise ValueError("buckets only apply to histograms")
        self.name = name
        self.help = help
        self.type = type
        self.labelnames = tuple(labelnames)
        self.buckets = tuple(buckets) if buckets is not None else TIME_BUCKETS
        self._children: dict[tuple[str, ...], Any] = {}
        self._lock = threading.Lock()

    def _make_child(self):
        if self.type == "histogram":
            return Histogram(self.buckets)
        return _TYPES[self.type]()

    def labels(self, **labels: Any) -> Any:
        """The child for this label-value combination (created on demand)."""
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name} takes labels {list(self.labelnames)}, got {sorted(labels)}"
            )
        key = tuple(str(labels[ln]) for ln in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = self._make_child()
            return child

    def samples(self) -> list[tuple[dict[str, str], Any]]:
        """``(labels_dict, child)`` pairs ordered by label values."""
        with self._lock:
            items = sorted(self._children.items())
        return [
            (dict(zip(self.labelnames, key)), child) for key, child in items
        ]

    def total(self) -> float:
        """Sum of child values across every label combination."""
        return float(sum(child.value for _, child in self.samples()))

    # convenience for the no-label case ------------------------------------
    def default(self) -> Any:
        if self.labelnames:
            raise ValueError(f"{self.name} is labelled; use .labels(...)")
        return self.labels()


class MetricsRegistry:
    """A collection of metric families, keyed by name.

    Registration is idempotent when the re-declaration matches exactly
    (same type, help, label names, buckets) — collectors can declare their
    families on every collection pass — and raises on any mismatch, so two
    subsystems cannot silently share a name with different meanings.
    """

    def __init__(self) -> None:
        self._families: dict[str, MetricFamily] = {}
        self._lock = threading.Lock()

    def _register(
        self,
        name: str,
        help: str,
        type: str,
        labelnames: Sequence[str],
        buckets: Sequence[float] | None = None,
    ) -> MetricFamily:
        with self._lock:
            fam = self._families.get(name)
            if fam is None:
                fam = MetricFamily(name, help, type, labelnames, buckets)
                self._families[name] = fam
                return fam
        if (
            fam.type != type
            or fam.help != help
            or fam.labelnames != tuple(labelnames)
            or (buckets is not None and fam.buckets != tuple(buckets))
        ):
            raise ValueError(
                f"metric {name!r} already registered as {fam.type} "
                f"labels={list(fam.labelnames)}; redeclaration does not match"
            )
        return fam

    def counter(self, name: str, help: str, labelnames: Sequence[str] = ()) -> MetricFamily:
        return self._register(name, help, "counter", labelnames)

    def gauge(self, name: str, help: str, labelnames: Sequence[str] = ()) -> MetricFamily:
        return self._register(name, help, "gauge", labelnames)

    def histogram(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = TIME_BUCKETS,
    ) -> MetricFamily:
        return self._register(name, help, "histogram", labelnames, buckets)

    def collect(self) -> list[MetricFamily]:
        """All families, ordered by name (the exposition order)."""
        with self._lock:
            return [self._families[k] for k in sorted(self._families)]

    def get(self, name: str) -> MetricFamily | None:
        with self._lock:
            return self._families.get(name)

    def value(self, name: str, labels: Mapping[str, Any] | None = None) -> float:
        """Scalar read: a child's value, or the family total without labels."""
        fam = self.get(name)
        if fam is None:
            raise KeyError(f"no metric named {name!r}")
        if labels is None:
            return fam.total()
        return float(fam.labels(**labels).value)

    def __len__(self) -> int:
        with self._lock:
            return len(self._families)

    def __iter__(self) -> Iterable[MetricFamily]:
        return iter(self.collect())

    # exposition (implemented in expose.py, re-exported here for ergonomics)

    def to_prometheus(self) -> str:
        from .expose import to_prometheus

        return to_prometheus(self)

    def to_json(self) -> dict[str, Any]:
        from .expose import to_json

        return to_json(self)
