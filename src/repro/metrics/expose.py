"""Exposition: Prometheus text format and JSON for a metrics registry.

Both renderers are deterministic — families ordered by name, children by
label values, floats via ``repr`` (shortest round-trip form) — so that two
registries fed the same virtual-time run render byte-identical output.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from .registry import MetricsRegistry

__all__ = ["to_prometheus", "to_json", "write_prometheus", "write_json"]


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labelstr(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape(v)}"' for k, v in labels.items())
    return "{" + inner + "}"


def _fmt(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 2**53:
        return str(int(value))
    return repr(float(value))


def to_prometheus(registry: "MetricsRegistry") -> str:
    """The registry in Prometheus text exposition format (version 0.0.4)."""
    lines: list[str] = []
    for fam in registry.collect():
        lines.append(f"# HELP {fam.name} {_escape(fam.help)}")
        lines.append(f"# TYPE {fam.name} {fam.type}")
        for labels, child in fam.samples():
            if fam.type == "histogram":
                for le, cum in child.cumulative():
                    blabels = dict(labels)
                    blabels["le"] = _fmt(le)
                    lines.append(f"{fam.name}_bucket{_labelstr(blabels)} {cum}")
                lines.append(f"{fam.name}_sum{_labelstr(labels)} {_fmt(child.sum)}")
                lines.append(f"{fam.name}_count{_labelstr(labels)} {child.count}")
            else:
                lines.append(f"{fam.name}{_labelstr(labels)} {_fmt(child.value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def to_json(registry: "MetricsRegistry") -> dict[str, Any]:
    """The registry as a plain JSON-serializable dictionary."""
    families = []
    for fam in registry.collect():
        samples: list[dict[str, Any]] = []
        for labels, child in fam.samples():
            if fam.type == "histogram":
                samples.append(
                    {
                        "labels": labels,
                        "buckets": {
                            _fmt(le): cum for le, cum in child.cumulative()
                        },
                        "sum": child.sum,
                        "count": child.count,
                    }
                )
            else:
                samples.append({"labels": labels, "value": child.value})
        families.append(
            {
                "name": fam.name,
                "type": fam.type,
                "help": fam.help,
                "labelnames": list(fam.labelnames),
                "samples": samples,
            }
        )
    return {"metrics": families}


def write_prometheus(path: str | Path, registry: "MetricsRegistry") -> Path:
    path = Path(path)
    path.write_text(to_prometheus(registry))
    return path


def write_json(path: str | Path, registry: "MetricsRegistry") -> Path:
    path = Path(path)
    path.write_text(json.dumps(to_json(registry), indent=2, sort_keys=True))
    return path
