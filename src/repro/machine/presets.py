"""Machine presets.

:func:`supermuc_phase2` reproduces Table I of the paper; the other presets
are conveniences for tests and examples.
"""

from __future__ import annotations

from .spec import ComputeSpec, Level, LinkSpec, MachineSpec, NodeSpec

__all__ = ["supermuc_phase2", "laptop", "single_node", "abstract_cluster"]


def supermuc_phase2(nodes: int = 512) -> MachineSpec:
    """SuperMUC Phase 2 (LRZ) as described in Table I of the paper.

    One island: 512 Haswell nodes, 2x Intel Xeon E5-2697v3 (14 cores each,
    4 NUMA domains per node), 64 GB of which 56 GB usable, Infiniband FDR14
    in a non-blocking fat tree with 5.1 TB/s peak bisection bandwidth.

    The kernel constants are calibrated so that the weak-scaling baseline of
    the paper (128 MB of ``uint64`` per rank, 28 ranks/node) lands near the
    reported 2.3 s single-node runtime.
    """
    node = NodeSpec(
        sockets=2,
        numa_per_socket=2,
        cores_per_numa=7,
        threads_per_core=2,
        mem_bytes=56 * 2**30,
        cpu_model="E5-2697v3",
        freq_ghz=2.6,
    )
    links = {
        Level.NUMA: LinkSpec(latency=1.5e-7, bandwidth=10.0e9),
        Level.SOCKET: LinkSpec(latency=2.5e-7, bandwidth=8.0e9),
        Level.NODE: LinkSpec(latency=4.0e-7, bandwidth=6.5e9),
        Level.NETWORK: LinkSpec(latency=1.7e-6, bandwidth=6.0e9),
    }
    compute = ComputeSpec(
        c_sort=3.2e-9,
        c_merge=1.6e-9,
        c_partition=1.2e-9,
        c_search=7.0e-9,
        c_select=2.6e-9,
        memcpy_bandwidth=6.5e9,
        call_overhead=2.0e-7,
    )
    return MachineSpec(
        name="SuperMUC Phase 2",
        nodes=nodes,
        node=node,
        links=links,
        compute=compute,
        bisection_bandwidth=5.1e12,
        network_name="Infiniband FDR14 (non-blocking fat tree)",
    )


def single_node(cores_per_numa: int = 7, numa_domains: int = 4) -> MachineSpec:
    """One SuperMUC-style node, for the shared-memory study (Fig. 4)."""
    if numa_domains % 2 == 0:
        sockets, per_socket = 2, numa_domains // 2
    else:
        sockets, per_socket = 1, numa_domains
    node = NodeSpec(
        sockets=sockets,
        numa_per_socket=per_socket,
        cores_per_numa=cores_per_numa,
        cpu_model="E5-2697v3",
    )
    base = supermuc_phase2(nodes=1)
    links = {lv: sp for lv, sp in base.links.items() if lv != Level.NETWORK}
    return MachineSpec(
        name="SuperMUC node",
        nodes=1,
        node=node,
        links=links,
        compute=base.compute,
        bisection_bandwidth=40e9,
        network_name="(single node)",
    )


def laptop(cores: int = 8) -> MachineSpec:
    """A small single-socket machine for examples and quick tests."""
    node = NodeSpec(
        sockets=1,
        numa_per_socket=1,
        cores_per_numa=cores,
        mem_bytes=16 * 2**30,
        cpu_model="laptop",
        freq_ghz=3.0,
    )
    links = {
        Level.NUMA: LinkSpec(latency=1.0e-7, bandwidth=10.0e9),
        # single socket, but the cost model still prices NODE-level traffic
        Level.NODE: LinkSpec(latency=1.2e-7, bandwidth=9.0e9),
    }
    return MachineSpec(
        name="laptop",
        nodes=1,
        node=node,
        links=links,
        bisection_bandwidth=40e9,
        network_name="(single node)",
    )


def abstract_cluster(
    nodes: int,
    cores_per_node: int = 16,
    net_latency: float = 2.0e-6,
    net_bandwidth: float = 5.0e9,
) -> MachineSpec:
    """A flat cluster with one NUMA domain per node — minimal knob surface."""
    node = NodeSpec(
        sockets=1,
        numa_per_socket=1,
        cores_per_numa=cores_per_node,
        cpu_model="abstract",
    )
    links = {
        Level.NUMA: LinkSpec(latency=2.0e-7, bandwidth=8.0e9),
        Level.NETWORK: LinkSpec(latency=net_latency, bandwidth=net_bandwidth),
    }
    return MachineSpec(
        name=f"abstract-{nodes}n",
        nodes=nodes,
        node=node,
        links=links,
        bisection_bandwidth=net_bandwidth * nodes / 2,
        network_name="abstract",
    )
