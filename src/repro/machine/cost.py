"""Virtual-time cost model for communication and compute.

Every operation of the SPMD runtime (:mod:`repro.mpi`) asks this model how
long it took.  The model is the classic :math:`\\alpha`-:math:`\\beta`
(latency/bandwidth) model, made hierarchy-aware through
:class:`repro.machine.topology.Placement`:

* point-to-point cost depends on the locality level of the pair,
* tree collectives pay ``ceil(log2 P)`` rounds at the widest level spanned
  by the group,
* ``alltoallv`` is priced per rank from the full volume matrix, with a
  1-factor round structure and a bisection-bandwidth congestion floor.

The PGAS shared-memory optimisation of the paper (intra-node traffic through
MPI-3 shared-memory windows, i.e. plain ``memcpy``) is the default;
``use_shm=False`` reprices intra-node traffic as loop-back MPI messages,
which is the ablation studied in ``benchmarks/bench_ablations.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .spec import Level, LinkSpec, MachineSpec
from .topology import Placement


def _log2_ceil(p: int) -> int:
    return int(math.ceil(math.log2(p))) if p > 1 else 0


@dataclass
class CostModel:
    """Prices runtime operations on a given placement.

    Parameters
    ----------
    placement:
        Where each rank lives.
    use_shm:
        If True (paper's DASH configuration) intra-node transfers cost a
        ``memcpy``; if False they go through the MPI loop-back device.
    software_overhead:
        Fixed per-call software cost of entering any communication routine.
    """

    placement: Placement
    use_shm: bool = True
    software_overhead: float = 5.0e-7
    #: ranks on a node share its NIC: inter-node bandwidth divides by the
    #: concurrently communicating ranks per node (the multi-threaded-MPI
    #: effect §VI highlights).  Applied to collectives, where all ranks
    #: drive the network at once.
    nic_sharing: bool = True
    #: measured slow-down of MPI_Alltoallv on bulk payloads relative to the
    #: raw link bandwidth (§VI-E.1: "MPI ALL-TO-ALL communication is more
    #: optimized for small messages and not for huge chunks"); calibrated
    #: against the paper's weak-scaling exchange times.
    alltoallv_inefficiency: float = 2.5

    def __post_init__(self) -> None:
        self._machine = self.placement.machine
        self._compute = self._machine.compute
        # Loop-back MPI link used when shared-memory windows are disabled.
        net = self._machine.link(Level.NETWORK) if self._machine.nodes > 1 else None
        node_link = self._machine.link(Level.NODE)
        self._mpi_loopback = LinkSpec(
            latency=max(node_link.latency * 4, (net.latency * 0.6) if net else 1.0e-6),
            bandwidth=node_link.bandwidth * 0.5,
        )

    # ------------------------------------------------------------------ links

    @property
    def machine(self) -> MachineSpec:
        return self._machine

    @property
    def compute(self):
        return self._compute

    def link_for(self, level: Level) -> LinkSpec:
        if not self.use_shm and Level.SELF < level < Level.NETWORK:
            return self._mpi_loopback
        return self._machine.link(level)

    def ptp(self, src: int, dst: int, nbytes: float) -> float:
        """Point-to-point message cost."""
        level = self.placement.level(src, dst)
        return self.software_overhead + self.link_for(level).cost(nbytes)

    def _group_link(self, ranks: Sequence[int]) -> LinkSpec:
        level = self.placement.span_level(ranks)
        link = self.link_for(level)
        if level >= Level.NETWORK and self.nic_sharing:
            ranks = list(ranks)
            sharers = min(self.placement.ranks_per_node, max(len(ranks), 1))
            if sharers > 1:
                link = LinkSpec(latency=link.latency, bandwidth=link.bandwidth / sharers)
        return link

    # ------------------------------------------------------------ collectives

    def barrier(self, ranks: Sequence[int]) -> float:
        link = self._group_link(ranks)
        return self.software_overhead + _log2_ceil(len(ranks)) * link.latency * 2

    def bcast(self, nbytes: float, ranks: Sequence[int]) -> float:
        link = self._group_link(ranks)
        rounds = _log2_ceil(len(ranks))
        return self.software_overhead + rounds * link.cost(nbytes)

    def reduce(self, nbytes: float, ranks: Sequence[int]) -> float:
        return self.bcast(nbytes, ranks)

    def allreduce(self, nbytes: float, ranks: Sequence[int]) -> float:
        """Reduce + broadcast tree (2 log P rounds of the payload)."""
        link = self._group_link(ranks)
        rounds = _log2_ceil(len(ranks))
        return self.software_overhead + 2 * rounds * link.cost(nbytes)

    def gather(self, nbytes_per_rank: float, ranks: Sequence[int]) -> float:
        """Binomial-tree gather: log P latency, (P-1)·n bandwidth at the root."""
        link = self._group_link(ranks)
        p = len(ranks)
        return (
            self.software_overhead
            + _log2_ceil(p) * link.latency
            + (p - 1) * nbytes_per_rank * link.beta
        )

    def scatter(self, nbytes_per_rank: float, ranks: Sequence[int]) -> float:
        return self.gather(nbytes_per_rank, ranks)

    def allgather(self, nbytes_per_rank: float, ranks: Sequence[int]) -> float:
        """Ring/Bruck allgather: log P latency, (P-1)·n bandwidth."""
        link = self._group_link(ranks)
        p = len(ranks)
        return (
            self.software_overhead
            + _log2_ceil(p) * link.latency
            + (p - 1) * nbytes_per_rank * link.beta
        )

    def scan(self, nbytes: float, ranks: Sequence[int]) -> float:
        link = self._group_link(ranks)
        return self.software_overhead + _log2_ceil(len(ranks)) * link.cost(nbytes)

    def alltoall(self, nbytes_per_pair: float, ranks: Sequence[int]) -> float:
        """Uniform all-to-all: Bruck for latency + direct bandwidth term."""
        link = self._group_link(ranks)
        p = len(ranks)
        if p <= 1:
            return self.software_overhead
        return (
            self.software_overhead
            + _log2_ceil(p) * link.latency
            + (p - 1) * nbytes_per_pair * link.beta
        )

    def comm_split(self, ranks: Sequence[int]) -> float:
        """MPI_Comm_split is linear in the communicator size (paper §III-C)."""
        link = self._group_link(ranks)
        p = len(ranks)
        return self.software_overhead + p * 16 * link.beta + _log2_ceil(p) * link.latency * 2

    # --------------------------------------------------------------- alltoallv

    def alltoallv_per_rank(
        self, volumes: np.ndarray, ranks: Sequence[int]
    ) -> np.ndarray:
        """Per-rank cost of an irregular all-to-all.

        ``volumes[i, j]`` is the number of bytes rank ``i`` (group index)
        sends to rank ``j``.  The model charges each rank the larger of its
        outgoing and incoming serialized transfer time (1-factor rounds move
        disjoint pairs concurrently, so a rank's own transfers serialize),
        plus one latency per non-empty peer, plus a global congestion floor
        of (total inter-node bytes) / (bisection bandwidth).
        """
        ranks = list(ranks)
        p = len(ranks)
        volumes = np.asarray(volumes, dtype=np.float64)
        if volumes.shape != (p, p):
            raise ValueError(f"volumes must be {p}x{p}, got {volumes.shape}")
        if p == 1:
            return np.full(1, self.software_overhead + self._compute.memcpy(volumes[0, 0]))

        lv = self.placement.level_matrix(ranks)
        beta = np.empty_like(volumes)
        lat = np.empty_like(volumes)
        for level in Level:
            mask = lv == int(level)
            if not mask.any():
                continue  # single-node machines have no NETWORK link to price
            link = self.link_for(level)
            b = link.beta
            if level >= Level.NETWORK:
                if self.nic_sharing:
                    b *= min(self.placement.ranks_per_node, p)
                b *= self.alltoallv_inefficiency
            beta[mask] = b
            lat[mask] = link.latency
        # loop-back (diagonal) always moves at memcpy speed
        diag = np.arange(p)
        beta[diag, diag] = 1.0 / (self._compute.memcpy_bandwidth * 2)
        lat[diag, diag] = 5.0e-8

        nonzero = volumes > 0
        send_time = (volumes * beta).sum(axis=1) + (lat * nonzero).sum(axis=1)
        recv_time = (volumes * beta).sum(axis=0) + (lat * nonzero).sum(axis=0)
        per_rank = np.maximum(send_time, recv_time) + self.software_overhead

        internode = lv >= int(Level.NETWORK)
        cross_bytes = float(volumes[internode].sum())
        if cross_bytes > 0:
            floor = cross_bytes / self._machine.bisection_bandwidth
            per_rank = np.maximum(per_rank, floor)
        return per_rank

    def alltoallv(self, volumes: np.ndarray, ranks: Sequence[int]) -> float:
        """Completion time of the whole irregular exchange (max over ranks)."""
        return float(self.alltoallv_per_rank(volumes, ranks).max())


@dataclass
class ZeroCostModel(CostModel):
    """A cost model in which everything is free.

    Useful for pure-correctness tests where virtual time is irrelevant.
    """

    software_overhead: float = 0.0

    def __getattribute__(self, name):  # pragma: no cover - trivial dispatch
        attr = object.__getattribute__(self, name)
        return attr

    def ptp(self, src, dst, nbytes):
        return 0.0

    def barrier(self, ranks):
        return 0.0

    def bcast(self, nbytes, ranks):
        return 0.0

    def reduce(self, nbytes, ranks):
        return 0.0

    def allreduce(self, nbytes, ranks):
        return 0.0

    def gather(self, nbytes_per_rank, ranks):
        return 0.0

    def scatter(self, nbytes_per_rank, ranks):
        return 0.0

    def allgather(self, nbytes_per_rank, ranks):
        return 0.0

    def scan(self, nbytes, ranks):
        return 0.0

    def alltoall(self, nbytes_per_pair, ranks):
        return 0.0

    def comm_split(self, ranks):
        return 0.0

    def alltoallv_per_rank(self, volumes, ranks):
        return np.zeros(len(list(ranks)))
