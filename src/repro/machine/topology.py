"""Rank placement: mapping SPMD ranks onto the machine's cores.

The placement is *block by node* (ranks ``0..r-1`` on node 0, the next ``r``
on node 1, ...), matching how ``mpiexec`` fills nodes by default and how the
paper schedules 16 or 28 ranks per node.  Within a node, ranks fill NUMA
domains in order, which mirrors ``numactl`` pinning used in the paper's
shared-memory study.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import Iterable, Sequence

import numpy as np

from .spec import Level, MachineSpec


@dataclass(frozen=True)
class Placement:
    """Placement of ``nranks`` ranks on ``machine`` with ``ranks_per_node``."""

    machine: MachineSpec
    nranks: int
    ranks_per_node: int

    def __post_init__(self) -> None:
        if self.nranks < 1:
            raise ValueError("nranks must be >= 1")
        if self.ranks_per_node < 1:
            raise ValueError("ranks_per_node must be >= 1")
        nodes_needed = -(-self.nranks // self.ranks_per_node)
        if nodes_needed > self.machine.nodes:
            raise ValueError(
                f"{self.nranks} ranks at {self.ranks_per_node}/node need "
                f"{nodes_needed} nodes but machine {self.machine.name!r} has "
                f"{self.machine.nodes}"
            )

    # -- per-rank coordinates ------------------------------------------------

    def node_of(self, rank: int) -> int:
        self._check(rank)
        return rank // self.ranks_per_node

    def local_index(self, rank: int) -> int:
        """Index of ``rank`` among the ranks of its node."""
        self._check(rank)
        return rank % self.ranks_per_node

    def numa_of(self, rank: int) -> int:
        """Global NUMA-domain id of ``rank``.

        Ranks fill NUMA domains of a node round-robin by blocks: with ``d``
        domains and ``r`` ranks per node, local ranks ``0..ceil(r/d)-1`` land
        in domain 0, and so on.
        """
        node = self.node_of(rank)
        dom = self.machine.node.numa_domains
        per_dom = -(-self.ranks_per_node // dom)
        return node * dom + min(self.local_index(rank) // per_dom, dom - 1)

    def socket_of(self, rank: int) -> int:
        numa_local = self.numa_of(rank) % self.machine.node.numa_domains
        return self.node_of(rank) * self.machine.node.sockets + (
            numa_local // self.machine.node.numa_per_socket
        )

    def level(self, a: int, b: int) -> Level:
        """Locality level of the pair ``(a, b)``."""
        if a == b:
            return Level.SELF
        if self.node_of(a) != self.node_of(b):
            return Level.NETWORK
        if self.socket_of(a) != self.socket_of(b):
            return Level.NODE
        if self.numa_of(a) != self.numa_of(b):
            return Level.SOCKET
        return Level.NUMA

    # -- group-level queries ---------------------------------------------------

    def span_level(self, ranks: Sequence[int] | Iterable[int]) -> Level:
        """The widest locality level present within a group of ranks."""
        ranks = list(ranks)
        if not ranks:
            raise ValueError("span_level of empty group")
        if len(ranks) == 1:
            return Level.SELF
        nodes = {self.node_of(r) for r in ranks}
        if len(nodes) > 1:
            return Level.NETWORK
        sockets = {self.socket_of(r) for r in ranks}
        if len(sockets) > 1:
            return Level.NODE
        numas = {self.numa_of(r) for r in ranks}
        if len(numas) > 1:
            return Level.SOCKET
        return Level.NUMA

    def nodes_used(self, ranks: Sequence[int] | None = None) -> int:
        if ranks is None:
            return -(-self.nranks // self.ranks_per_node)
        return len({self.node_of(r) for r in ranks})

    def level_matrix(self, ranks: Sequence[int]) -> np.ndarray:
        """Dense ``len(ranks) x len(ranks)`` matrix of locality levels."""
        ranks = np.asarray(list(ranks), dtype=np.int64)
        nodes = ranks // self.ranks_per_node
        numas = np.array([self.numa_of(int(r)) for r in ranks])
        sockets = np.array([self.socket_of(int(r)) for r in ranks])
        out = np.full((len(ranks), len(ranks)), int(Level.NUMA), dtype=np.int8)
        out[numas[:, None] != numas[None, :]] = int(Level.SOCKET)
        out[sockets[:, None] != sockets[None, :]] = int(Level.NODE)
        out[nodes[:, None] != nodes[None, :]] = int(Level.NETWORK)
        np.fill_diagonal(out, int(Level.SELF))
        return out

    def _check(self, rank: int) -> None:
        if not 0 <= rank < self.nranks:
            raise IndexError(f"rank {rank} out of range [0, {self.nranks})")


def make_placement(
    machine: MachineSpec, nranks: int, ranks_per_node: int | None = None
) -> Placement:
    """Create a placement.

    When ``ranks_per_node`` is omitted, one rank per core is assumed, widened
    only if the ranks would not otherwise fit on the machine.
    """
    if ranks_per_node is None:
        ranks_per_node = machine.node.cores
        nodes_needed = -(-nranks // ranks_per_node)
        if nodes_needed > machine.nodes:
            ranks_per_node = -(-nranks // machine.nodes)
    return Placement(machine, nranks, ranks_per_node)
