"""Machine specifications: nodes, NUMA topology, link and kernel constants.

A :class:`MachineSpec` is a purely declarative description of a cluster.  It
is consumed by :mod:`repro.machine.cost` to price communication and compute
operations in *virtual time*, and by :mod:`repro.machine.topology` to place
ranks onto cores.

The default presets live in :mod:`repro.machine.presets`; the most important
one is :func:`repro.machine.presets.supermuc_phase2`, which mirrors Table I
of the paper.
"""

from __future__ import annotations

import enum
import hashlib
import math
from dataclasses import dataclass, field, replace
from typing import Mapping


class Level(enum.IntEnum):
    """Locality level of a pair of ranks, ordered from closest to farthest."""

    SELF = 0      #: the same rank (loop-back)
    NUMA = 1      #: same NUMA domain
    SOCKET = 2    #: same socket, different NUMA domain
    NODE = 3      #: same node, different socket
    NETWORK = 4   #: different nodes


@dataclass(frozen=True)
class LinkSpec:
    """An :math:`\\alpha`-:math:`\\beta` cost description of one locality level.

    ``latency`` is the per-message overhead in seconds and ``bandwidth`` the
    sustained point-to-point bandwidth in bytes per second.
    """

    latency: float
    bandwidth: float

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ValueError(f"latency must be >= 0, got {self.latency}")
        if self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be > 0, got {self.bandwidth}")

    @property
    def beta(self) -> float:
        """Seconds per byte."""
        return 1.0 / self.bandwidth

    def cost(self, nbytes: float) -> float:
        """Time to move ``nbytes`` once over this link."""
        return self.latency + nbytes / self.bandwidth


@dataclass(frozen=True)
class NodeSpec:
    """Per-node hardware description."""

    sockets: int = 2
    numa_per_socket: int = 2
    cores_per_numa: int = 7
    threads_per_core: int = 2
    mem_bytes: int = 56 * 2**30
    cpu_model: str = "generic"
    freq_ghz: float = 2.6

    def __post_init__(self) -> None:
        for name in ("sockets", "numa_per_socket", "cores_per_numa", "threads_per_core"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        if self.mem_bytes <= 0:
            raise ValueError("mem_bytes must be > 0")

    @property
    def numa_domains(self) -> int:
        return self.sockets * self.numa_per_socket

    @property
    def cores(self) -> int:
        return self.numa_domains * self.cores_per_numa

    @property
    def hw_threads(self) -> int:
        return self.cores * self.threads_per_core


@dataclass(frozen=True)
class ComputeSpec:
    """Per-element kernel constants, in seconds.

    The constants price the sequential kernels the sort is built from.  They
    are deliberately coarse (a single constant per kernel family); the
    calibration helpers in :mod:`repro.model.calibrate` can refit them from
    measured runs.
    """

    #: comparison-sort constant: ``sort(n) = c_sort * n * log2(n)``
    c_sort: float = 3.0e-9
    #: per-element cost of one binary-merge pass
    c_merge: float = 1.5e-9
    #: per-element cost of a 3-way partition / scan pass
    c_partition: float = 1.2e-9
    #: per-probe binary search: ``c_search * log2(n)``
    c_search: float = 6.0e-9
    #: linear-time selection constant (quickselect expected cost per element)
    c_select: float = 2.5e-9
    #: local memory copy bandwidth in bytes/s (single core, streaming)
    memcpy_bandwidth: float = 6.0e9
    #: fixed per-call software overhead of any kernel invocation
    call_overhead: float = 2.0e-7

    def sort(self, n: int, itemsize: int = 8) -> float:
        """Modelled time of a comparison sort of ``n`` items."""
        if n <= 1:
            return self.call_overhead
        return self.call_overhead + self.c_sort * n * math.log2(n)

    def merge_pass(self, n: int) -> float:
        """One pass of a two-way merge over ``n`` total items."""
        return self.call_overhead + self.c_merge * max(n, 0)

    def kway_merge(self, n: int, k: int) -> float:
        """Binary merge tree over ``k`` runs totalling ``n`` items."""
        if n <= 0 or k <= 1:
            return self.call_overhead
        passes = math.ceil(math.log2(k))
        return self.call_overhead + self.c_merge * n * passes

    def partition(self, n: int) -> float:
        return self.call_overhead + self.c_partition * max(n, 0)

    def search(self, nprobes: int, n: int) -> float:
        """``nprobes`` binary searches over a sorted run of length ``n``."""
        if nprobes <= 0:
            return self.call_overhead
        return self.call_overhead + self.c_search * nprobes * math.log2(max(n, 2))

    def select(self, n: int) -> float:
        """Expected quickselect cost on ``n`` items."""
        return self.call_overhead + self.c_select * max(n, 0)

    def memcpy(self, nbytes: float) -> float:
        return self.call_overhead + max(nbytes, 0) / self.memcpy_bandwidth


@dataclass(frozen=True)
class MachineSpec:
    """A cluster: homogeneous nodes joined by a network.

    ``links`` maps every :class:`Level` to a :class:`LinkSpec`.  Missing
    levels inherit the next-farther level's spec (i.e. a machine defined only
    with ``NODE`` and ``NETWORK`` treats NUMA/SOCKET traffic at NODE cost).
    """

    name: str
    nodes: int
    node: NodeSpec = field(default_factory=NodeSpec)
    links: Mapping[Level, LinkSpec] = field(default_factory=dict)
    compute: ComputeSpec = field(default_factory=ComputeSpec)
    #: aggregate bisection bandwidth of the interconnect, bytes/s
    bisection_bandwidth: float = 5.1e12
    network_name: str = "generic"

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError("nodes must be >= 1")
        if Level.NETWORK not in self.links and self.nodes > 1:
            raise ValueError("multi-node machine requires a NETWORK link spec")
        if self.bisection_bandwidth <= 0:
            raise ValueError("bisection_bandwidth must be > 0")

    def link(self, level: Level) -> LinkSpec:
        """The link spec for ``level``, inheriting from farther levels."""
        if level == Level.SELF and Level.SELF not in self.links:
            # Loop-back defaults to a fast memcpy-like link.
            return LinkSpec(latency=5.0e-8, bandwidth=self.compute.memcpy_bandwidth * 2)
        for lv in range(int(level), int(Level.NETWORK) + 1):
            spec = self.links.get(Level(lv))
            if spec is not None:
                return spec
        raise KeyError(f"no link spec at or above level {level!r}")

    @property
    def total_cores(self) -> int:
        return self.nodes * self.node.cores

    def with_nodes(self, nodes: int) -> "MachineSpec":
        """A copy of this machine with a different node count."""
        return replace(self, nodes=nodes)

    def signature(self) -> str:
        """Stable short hash over everything that affects modelled cost.

        Two machines with identical topology, link, and kernel constants
        share a signature regardless of their display ``name``; any change
        to a cost-relevant field changes it.  Used by :mod:`repro.tune` to
        key and invalidate cached sort plans.
        """
        parts: list[str] = [f"nodes={self.nodes}", f"bisect={self.bisection_bandwidth!r}"]
        n = self.node
        parts.append(
            "node="
            f"{n.sockets},{n.numa_per_socket},{n.cores_per_numa},"
            f"{n.threads_per_core},{n.mem_bytes},{n.freq_ghz!r}"
        )
        for lv in sorted(self.links):
            spec = self.links[lv]
            parts.append(f"link{int(lv)}={spec.latency!r},{spec.bandwidth!r}")
        c = self.compute
        parts.append(
            "compute="
            f"{c.c_sort!r},{c.c_merge!r},{c.c_partition!r},{c.c_search!r},"
            f"{c.c_select!r},{c.memcpy_bandwidth!r},{c.call_overhead!r}"
        )
        return hashlib.sha256("|".join(parts).encode()).hexdigest()[:12]

    def describe(self) -> str:
        """Human-readable multi-line description (Table I style)."""
        n = self.node
        rows = [
            ("Machine", self.name),
            ("Nodes", str(self.nodes)),
            ("CPU", f"{n.sockets} x {n.cpu_model}"),
            ("Cores/node", f"{n.cores} ({n.numa_domains} NUMA domains x {n.cores_per_numa} cores)"),
            ("Memory/node", f"{n.mem_bytes / 2**30:.0f}GB usable"),
            ("Network", self.network_name),
            ("Bisection BW", f"{self.bisection_bandwidth / 1e12:.1f} TB/s"),
        ]
        width = max(len(k) for k, _ in rows)
        return "\n".join(f"{k:<{width}}  {v}" for k, v in rows)
