"""Machine model: topology, link/kernel costs, virtual-time pricing.

This package is the "hardware" substitute for the paper's SuperMUC Phase 2
testbed: a declarative :class:`~repro.machine.spec.MachineSpec`, a rank
:class:`~repro.machine.topology.Placement`, and a
:class:`~repro.machine.cost.CostModel` that prices every runtime operation
in virtual seconds.
"""

from .cost import CostModel, ZeroCostModel
from .presets import abstract_cluster, laptop, single_node, supermuc_phase2
from .spec import ComputeSpec, Level, LinkSpec, MachineSpec, NodeSpec
from .topology import Placement, make_placement

__all__ = [
    "ComputeSpec",
    "CostModel",
    "Level",
    "LinkSpec",
    "MachineSpec",
    "NodeSpec",
    "Placement",
    "ZeroCostModel",
    "abstract_cluster",
    "laptop",
    "make_placement",
    "single_node",
    "supermuc_phase2",
]
