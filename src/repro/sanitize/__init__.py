"""Happens-before race detector + buffer-lifetime sanitizer (runtime half).

The in-process SPMD runtime passes numpy payloads between rank *threads*,
so the aliasing bugs real MPI programs hit — mutating a buffer that an
``isend`` still owns, holding a received reference that aliases the
sender's live array, racing on an object shared through closures — are
all expressible here, and all invisible to the protocol-level checker
(``check=True``).  ``run_spmd(..., sanitize=True)`` (or ``REPRO_SANITIZE=1``)
attaches a :class:`Sanitizer` that catches them deterministically:

* **WRITE-AFTER-ISEND** — buffers handed to ``isend`` are fingerprinted
  (strided content samples, shape, dtype) and re-checked when the request
  completes; a digest change means the sender mutated an in-flight buffer.
  Legal on this eager-copy runtime, silent corruption on real MPI.
* **RECV-ALIAS** — every message carries weak references to the sender's
  original arrays; at delivery (and at collective extraction) the payload
  is tested with ``np.shares_memory`` against the live originals.  A hit
  means the copy discipline broke (e.g. a payload object whose
  ``__deepcopy__`` returns ``self``) and two ranks now share one buffer.
* **HB-RACE** — per-rank vector clocks (:mod:`~repro.sanitize.vclock`)
  advance at every send/recv/collective edge; accesses to objects shared
  across rank closures (annotated with ``comm.mark_read`` /
  ``comm.mark_write``, plus automatic read annotations when a tracked
  array is sent) are checked FastTrack-style for unordered pairs.

The sanitizer only *observes*: it never touches ``runtime.clocks``, so a
sanitized run's virtual clocks and results are bit-identical to an
unsanitized run's — the same guarantee tracing and checking give, and
the three layers compose freely.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterator

import numpy as np

from ..mpi.payload import iter_arrays
from .report import (
    HB_RACE,
    RECV_ALIAS,
    WRITE_AFTER_ISEND,
    SanitizeFinding,
    SanitizerError,
    user_site,
)
from .shadow import AccessHistory, InflightRecord, fingerprint, payload_fingerprints
from .vclock import VClockTable, leq

if TYPE_CHECKING:  # pragma: no cover
    from ..mpi.comm import _CommState
    from ..mpi.runtime import Runtime

__all__ = [
    "Sanitizer",
    "SanitizeFinding",
    "SanitizerError",
    "WRITE_AFTER_ISEND",
    "RECV_ALIAS",
    "HB_RACE",
]


@dataclass
class _MsgNote:
    """Sanitizer annotation piggybacked on one in-flight message."""

    vc: tuple[int, ...]
    origins: list  # weakrefs to the sender's original arrays
    src_world: int


def _describe(arr: np.ndarray) -> str:
    return f"ndarray(shape={arr.shape}, dtype={arr.dtype}, id=0x{id(arr):x})"


class Sanitizer:
    """Online memory-hazard detector for one :class:`~repro.mpi.Runtime`.

    All state lives behind one lock; every hook is called with no runtime
    lock held (send hooks run before the mailbox append, receive hooks
    after the message left the mailbox, collective hooks outside the
    barrier waits), so the lock is a leaf and cannot deadlock.
    """

    def __init__(self, runtime: "Runtime"):
        self.runtime = runtime
        self.size = runtime.size
        self._lock = threading.Lock()
        self.vclocks = VClockTable(self.size)
        self._opnum = [0] * self.size
        self._findings: list[SanitizeFinding] = []
        self._seen: set[tuple] = set()
        #: id(obj) -> AccessHistory for closure-shared objects
        self._shared: dict[int, AccessHistory] = {}
        #: (comm trace_id, member idx) -> next collective generation
        self._coll_gen: dict[tuple[int, int], int] = {}
        #: (comm trace_id, generation) -> entry snapshots + deposit refs
        self._coll: dict[tuple[int, int], dict[str, Any]] = {}

    # ------------------------------------------------------------- findings

    @property
    def findings(self) -> list[SanitizeFinding]:
        """Deduplicated findings in deterministic order."""
        with self._lock:
            out = list(self._findings)
        return sorted(out, key=lambda f: (f.world_rank, f.opnum, f.kind, f.message))

    def raise_if_findings(self) -> None:
        """Raise :class:`SanitizerError` when the run detected hazards."""
        found = self.findings
        if found:
            raise SanitizerError(found)

    def _report_locked(
        self, kind: str, world_rank: int, op: str, message: str
    ) -> None:
        finding = SanitizeFinding(
            kind,
            world_rank,
            op,
            self._opnum[world_rank],
            self.vclocks.snapshot(world_rank),
            message,
        )
        if finding.key not in self._seen:
            self._seen.add(finding.key)
            self._findings.append(finding)

    # ---------------------------------------------------------------- p2p

    def on_send(
        self, world_rank: int, payload: Any, dest: int, tag: int, op: str = "send"
    ) -> _MsgNote:
        """Send edge: auto-read tracked arrays, tick, snapshot for piggyback."""
        arrays = list(iter_arrays(payload))
        with self._lock:
            self._opnum[world_rank] += 1
            for arr in arrays:
                self._auto_read_locked(world_rank, arr, op)
            self.vclocks.tick(world_rank)
            note = _MsgNote(
                self.vclocks.snapshot(world_rank),
                [ref for ref, _ in payload_fingerprints(payload, iter_arrays)],
                world_rank,
            )
        return note

    def on_recv(
        self,
        world_rank: int,
        payload: Any,
        note: "_MsgNote | None",
        src_world: int,
        tag: int,
        op: str = "recv",
    ) -> None:
        """Delivery edge: join the sender's clock, then alias-check the
        delivered payload against the sender's live originals."""
        delivered = list(iter_arrays(payload))
        with self._lock:
            self._opnum[world_rank] += 1
            if note is not None:
                self.vclocks.merge(world_rank, note.vc)
            self.vclocks.tick(world_rank)
            if note is None:
                return
            for ref in note.origins:
                src_arr = ref() if ref is not None else None
                if src_arr is None:
                    continue
                for arr in delivered:
                    if np.shares_memory(arr, src_arr):
                        self._report_locked(
                            RECV_ALIAS,
                            world_rank,
                            op,
                            f"payload received from rank {src_world} "
                            f"(tag={tag}) aliases the sender's live "
                            f"{_describe(src_arr)}; the copy discipline is "
                            "broken (payload defeats copy_payload?) and both "
                            "ranks now mutate one buffer",
                        )

    def begin_isend(
        self, world_rank: int, payload: Any, dest: int, tag: int
    ) -> "InflightRecord | None":
        """Fingerprint the user's buffers at ``isend`` entry; the record is
        re-checked by :meth:`check_inflight` when the request completes."""
        entries = payload_fingerprints(payload, iter_arrays)
        if not entries:
            return None
        with self._lock:
            return InflightRecord(
                world_rank,
                dest,
                tag,
                self._opnum[world_rank] + 1,  # the send edge about to happen
                self.vclocks.snapshot(world_rank),
                user_site(),
                entries,
            )

    def check_inflight(self, record: InflightRecord) -> None:
        """Completion edge of an ``isend`` request (``wait()``/``test()``)."""
        mutated = record.mutated()
        if not mutated:
            return
        with self._lock:
            for arr in mutated:
                self._report_locked(
                    WRITE_AFTER_ISEND,
                    record.world_rank,
                    "isend",
                    f"buffer {_describe(arr)} passed to isend(dest="
                    f"{record.dest}, tag={record.tag}) at {record.site} was "
                    "mutated before the request completed; real MPI does not "
                    "copy eagerly, so the receiver would see the torn write",
                )

    # --------------------------------------------------------- collectives

    def collective_entry(
        self, state: "_CommState", idx: int, deposit: Any, op: str
    ) -> None:
        """Deposit edge (before barrier A): snapshot the member's clock and
        keep weak references to its deposit arrays for the exit-side
        alias check."""
        arrays = list(iter_arrays(deposit))
        refs = [ref for ref, _ in payload_fingerprints(deposit, iter_arrays)]
        wr = state.world_ranks[idx]
        key = (state.trace_id, idx)
        with self._lock:
            self._opnum[wr] += 1
            for arr in arrays:
                self._auto_read_locked(wr, arr, op)
            gen = self._coll_gen.get(key, 0)
            self._coll_gen[key] = gen + 1
            ent = self._coll.setdefault(
                (state.trace_id, gen), {"vcs": {}, "deps": {}, "exits": 0}
            )
            ent["vcs"][idx] = self.vclocks.snapshot(wr)
            ent["deps"][idx] = refs

    def collective_exit(
        self, state: "_CommState", idx: int, out: Any, op: str
    ) -> None:
        """Extraction edge (after barrier B, before the slots are reused):
        join every member's entry clock — a collective is a full
        synchronization — and alias-check this member's result against the
        other members' live deposits."""
        extracted = list(iter_arrays(out))
        wr = state.world_ranks[idx]
        gen = self._coll_gen[(state.trace_id, idx)] - 1
        with self._lock:
            ent = self._coll.get((state.trace_id, gen))
            if ent is None:  # peer finished the generation's cleanup already
                return
            for snap in ent["vcs"].values():
                self.vclocks.merge(wr, snap)
            self.vclocks.tick(wr)
            for j, refs in ent["deps"].items():
                if j == idx:
                    continue
                for ref in refs:
                    src_arr = ref() if ref is not None else None
                    if src_arr is None:
                        continue
                    for arr in extracted:
                        if np.shares_memory(arr, src_arr):
                            self._report_locked(
                                RECV_ALIAS,
                                wr,
                                op,
                                f"result extracted from collective '{op}' on "
                                f"comm#{state.trace_id} aliases rank "
                                f"{state.world_ranks[j]}'s live deposit "
                                f"{_describe(src_arr)}",
                            )
            ent["exits"] += 1
            if ent["exits"] >= state.size:
                del self._coll[(state.trace_id, gen)]

    # ------------------------------------------------------- shared objects

    def mark_write(self, world_rank: int, obj: Any) -> None:
        """Record a write to a closure-shared object by ``world_rank``."""
        site = user_site()
        with self._lock:
            hist = self._history_locked(obj)
            now = self.vclocks.snapshot(world_rank)
            if hist.write is not None:
                w_rank, w_vc, w_site = hist.write
                if w_rank != world_rank and not leq(w_vc, now):
                    self._race_locked(
                        world_rank, "write", site, w_rank, "write", w_site, obj
                    )
            for q, (r_vc, r_site) in hist.reads.items():
                if q != world_rank and not leq(r_vc, now):
                    self._race_locked(
                        world_rank, "write", site, q, "read", r_site, obj
                    )
            hist.write = (world_rank, now, site)
            hist.reads.clear()

    def mark_read(self, world_rank: int, obj: Any) -> None:
        """Record a read of a closure-shared object by ``world_rank``."""
        site = user_site()
        with self._lock:
            self._read_locked(world_rank, obj, site, create=True)

    def _read_locked(
        self, world_rank: int, obj: Any, site: str, *, create: bool
    ) -> None:
        if not create and id(obj) not in self._shared:
            return
        hist = self._history_locked(obj)
        now = self.vclocks.snapshot(world_rank)
        if hist.write is not None:
            w_rank, w_vc, w_site = hist.write
            if w_rank != world_rank and not leq(w_vc, now):
                self._race_locked(
                    world_rank, "read", site, w_rank, "write", w_site, obj
                )
        hist.reads[world_rank] = (now, site)

    def _auto_read_locked(self, world_rank: int, arr: np.ndarray, op: str) -> None:
        """Payload arrays count as reads — but only for objects already
        tracked via ``mark_read``/``mark_write`` (auto-tracking every
        payload would bloat the table with rank-private buffers)."""
        self._read_locked(world_rank, arr, f"payload of {op}()", create=False)

    def _history_locked(self, obj: Any) -> AccessHistory:
        hist = self._shared.get(id(obj))
        if hist is None:
            hist = self._shared[id(obj)] = AccessHistory(obj)
        return hist

    def _race_locked(
        self,
        rank_b: int,
        kind_b: str,
        site_b: str,
        rank_a: int,
        kind_a: str,
        site_a: str,
        obj: Any,
    ) -> None:
        what = _describe(obj) if isinstance(obj, np.ndarray) else repr(type(obj).__name__)
        self._report_locked(
            HB_RACE,
            rank_b,
            kind_b,
            f"{kind_b} of shared {what} at {site_b} races with rank "
            f"{rank_a}'s {kind_a} at {site_a}: no happens-before edge "
            "orders them (vector clocks are concurrent)",
        )

    # ----------------------------------------------------------- utilities

    def arrays(self, payload: Any) -> Iterator[np.ndarray]:  # pragma: no cover
        """Expose the payload walker (diagnostic convenience)."""
        return iter_arrays(payload)

    def digest(self, arr: np.ndarray) -> int:  # pragma: no cover
        """Expose the fingerprint function (diagnostic convenience)."""
        return fingerprint(arr)
