"""Shadow state for payload buffers: fingerprints, in-flight records,
and per-object access histories.

Fingerprinting samples up to :data:`SAMPLE_ELEMS` strided elements of an
array (plus its shape/dtype) into a CRC — cheap enough to run at every
send edge of a 16-rank program, yet it catches any mutation that touches
one of the sampled positions and every size/dtype change.  The digest is
a *detector*, not a proof: a write landing strictly between sample points
can escape it, which is the classic sanitizer trade (ThreadSanitizer's
shadow cells sample too).  Densify by raising ``SAMPLE_ELEMS``.
"""

from __future__ import annotations

import weakref
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

import numpy as np

__all__ = [
    "SAMPLE_ELEMS",
    "fingerprint",
    "payload_fingerprints",
    "InflightRecord",
    "AccessHistory",
]

#: number of strided element samples folded into a buffer digest
SAMPLE_ELEMS = 64


def fingerprint(arr: np.ndarray) -> int:
    """Content digest of strided samples plus shape and dtype."""
    meta = f"{arr.shape}|{arr.dtype.str}".encode()
    crc = zlib.crc32(meta)
    if arr.size:
        flat = arr.reshape(-1) if arr.flags.c_contiguous else arr.flatten()
        step = max(1, flat.size // SAMPLE_ELEMS)
        sample = np.ascontiguousarray(flat[::step][:SAMPLE_ELEMS])
        crc = zlib.crc32(sample.tobytes(), crc)
        # The stride above never reaches the final element unless it
        # divides evenly; the tail is where appends/partial writes land.
        crc = zlib.crc32(np.ascontiguousarray(flat[-1:]).tobytes(), crc)
    return crc


def _try_ref(arr: np.ndarray) -> "weakref.ref[np.ndarray] | None":
    try:
        return weakref.ref(arr)
    except TypeError:  # exotic ndarray subclass without weakref support
        return None


def payload_fingerprints(
    payload: Any, arrays: Callable[[Any], Iterator[np.ndarray]]
) -> list[tuple["weakref.ref[np.ndarray] | None", int]]:
    """``(weakref, digest)`` per array in the payload.

    Weak references keep the sanitizer from extending buffer lifetimes
    (that would change garbage-collection behaviour, and a dead buffer
    cannot be mutated anyway).
    """
    return [(_try_ref(a), fingerprint(a)) for a in arrays(payload)]


@dataclass
class InflightRecord:
    """Buffers handed to one ``isend``, checked again at ``wait()``."""

    world_rank: int
    dest: int
    tag: int
    opnum: int
    vc: tuple[int, ...]
    site: str
    entries: list[tuple["weakref.ref[np.ndarray] | None", int]]

    def mutated(self) -> list[np.ndarray]:
        """Arrays whose digest changed since the ``isend``."""
        out = []
        for ref, digest in self.entries:
            arr = ref() if ref is not None else None
            if arr is not None and fingerprint(arr) != digest:
                out.append(arr)
        return out


@dataclass
class AccessHistory:
    """FastTrack-style access history of one shared object.

    ``write`` is the last write epoch ``(rank, vc-snapshot, site)``;
    ``reads`` maps each rank to its latest read epoch.  On a race-free
    write every recorded read is ordered before it, so the read set
    resets; racy accesses are reported, then recorded anyway so one bug
    yields one finding rather than a cascade.
    """

    obj: Any  # strong ref: keeps id() stable for the table key
    write: tuple[int, tuple[int, ...], str] | None = None
    reads: dict[int, tuple[tuple[int, ...], str]] = field(default_factory=dict)
