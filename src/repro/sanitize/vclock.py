"""Vector clocks for the happens-before sanitizer.

One vector clock per rank, one component per rank.  The sanitizer advances
them at exactly the edges where the runtime already synchronizes:

* ``send``/``isend`` — the sender ticks its own component and the message
  carries a snapshot of the sender's clock;
* ``recv``/``wait`` — the receiver joins the piggybacked snapshot into its
  own clock, then ticks;
* collectives — every member deposits a snapshot on entry and leaves with
  the join of *all* members' snapshots (a collective is a full
  synchronization point), then ticks.

Two accesses to a shared object are *ordered* (happen-before) iff the
earlier access's snapshot is component-wise ``<=`` the later accessor's
current clock; otherwise they are concurrent and — if at least one is a
write — a race.

These are plain Python ints kept entirely outside the runtime's virtual
clocks (``runtime.clocks``): advancing a vector clock never perturbs
modelled time, which is what makes sanitized runs bit-identical to
unsanitized ones.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["VClockTable", "join", "leq"]

Snapshot = tuple[int, ...]


def join(a: Sequence[int], b: Sequence[int]) -> list[int]:
    """Component-wise maximum of two clocks."""
    return [x if x >= y else y for x, y in zip(a, b)]


def leq(a: Sequence[int], b: Sequence[int]) -> bool:
    """``a`` happened-before-or-equals ``b`` (component-wise <=)."""
    return all(x <= y for x, y in zip(a, b))


class VClockTable:
    """The per-rank vector clocks of one runtime.

    Not internally locked: the owning :class:`~repro.sanitize.Sanitizer`
    serializes all access under its own lock.
    """

    def __init__(self, size: int):
        self.size = size
        # Each rank starts in its own epoch (own component = 1, not 0):
        # with all-zero clocks every pair of initial accesses would compare
        # as *ordered* (0 <= 0 component-wise) and races before the first
        # synchronization edge would be invisible.
        self._vc: list[list[int]] = [
            [1 if i == r else 0 for i in range(size)] for r in range(size)
        ]

    def tick(self, rank: int) -> None:
        """Advance ``rank``'s own component (a new epoch for that rank)."""
        self._vc[rank][rank] += 1

    def merge(self, rank: int, snapshot: Sequence[int]) -> None:
        """Join ``snapshot`` into ``rank``'s clock (a receive edge)."""
        vc = self._vc[rank]
        for i, v in enumerate(snapshot):
            if v > vc[i]:
                vc[i] = v

    def snapshot(self, rank: int) -> Snapshot:
        """An immutable copy of ``rank``'s current clock."""
        return tuple(self._vc[rank])

    def snapshots(self) -> list[Snapshot]:
        """Immutable copies of every rank's clock (diagnostics)."""
        return [tuple(vc) for vc in self._vc]
