"""Sanitizer findings: structured diagnostics and the finalize error.

Every detector produces a :class:`SanitizeFinding` carrying the observing
rank, the operation (and its per-rank operation number), the rank's vector
clock at detection time, and a human-readable message naming the buffer.
Findings are collected during the run and raised together as a
:class:`SanitizerError` at finalize, so a single run reports every hazard
it hit rather than dying on the first.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass

__all__ = [
    "SanitizeFinding",
    "SanitizerError",
    "WRITE_AFTER_ISEND",
    "RECV_ALIAS",
    "HB_RACE",
    "user_site",
]

#: sender mutated a buffer between ``isend`` and the request's ``wait()``
WRITE_AFTER_ISEND = "WRITE-AFTER-ISEND"
#: delivered payload aliases the sender's live array (copy discipline broken)
RECV_ALIAS = "RECV-ALIAS"
#: unordered read/write pair on an object shared across rank closures
HB_RACE = "HB-RACE"

#: path fragments whose frames are skipped when attributing a call site
_INTERNAL_PARTS = (
    "repro/mpi/", "repro\\mpi\\",
    "repro/sanitize/", "repro\\sanitize\\",
    "repro/analyze/", "repro\\analyze\\",
)


def user_site(skip: int = 2) -> str:
    """``file:line (function)`` of the first frame outside the runtime."""
    frame = sys._getframe(skip)
    while frame is not None:
        fn = frame.f_code.co_filename
        if not any(part in fn for part in _INTERNAL_PARTS):
            return f"{fn}:{frame.f_lineno} ({frame.f_code.co_name})"
        frame = frame.f_back
    return "<unknown>"


@dataclass(frozen=True)
class SanitizeFinding:
    """One detected memory hazard."""

    kind: str              #: WRITE-AFTER-ISEND | RECV-ALIAS | HB-RACE
    world_rank: int        #: rank that observed the hazard
    op: str                #: operation at the detection point (isend, recv, ...)
    opnum: int             #: that rank's sanitizer operation counter
    vc: tuple[int, ...]    #: observing rank's vector clock at detection
    message: str

    def format(self) -> str:
        return (
            f"[{self.kind}] rank {self.world_rank} op#{self.opnum} "
            f"({self.op}): {self.message} [vc={list(self.vc)}]"
        )

    #: stable identity for deduplication across repeated detections
    @property
    def key(self) -> tuple:
        return (self.kind, self.world_rank, self.op, self.message)


class SanitizerError(RuntimeError):
    """Raised at finalize when a sanitized run detected memory hazards."""

    def __init__(self, findings: list[SanitizeFinding]):
        self.findings = list(findings)
        n = len(self.findings)
        lines = [f"sanitizer detected {n} memory hazard{'s' if n != 1 else ''}:"]
        lines += ["  " + f.format() for f in self.findings]
        super().__init__("\n".join(lines))
