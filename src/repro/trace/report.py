"""Text summary of a recorded run: ``python -m repro.trace.report trace.json``.

Renders, for any trace written by :func:`repro.trace.export.write_chrome_trace`
(or a live :class:`~repro.trace.TraceRecorder`): per-rank busy/idle times,
the aggregate idle fraction and load-imbalance ratio, the phase breakdown,
a phase x collective traffic table, and the critical path through the run.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

from .analysis import (
    critical_path,
    critical_path_composition,
    idle_fraction,
    imbalance_ratio,
    makespan_of,
    phase_breakdown,
    rank_activity,
    traffic_matrix,
)
from .events import Span

if TYPE_CHECKING:  # pragma: no cover
    from .events import TraceRecorder

__all__ = ["render_report", "report_recorder", "main"]


def _fmt_time(seconds: float) -> str:
    if seconds == 0:
        return "0"
    if abs(seconds) < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if abs(seconds) < 1.0:
        return f"{seconds * 1e3:.3f}ms"
    return f"{seconds:.4f}s"


def _fmt_bytes(n: float) -> str:
    n = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(n) < 1024 or unit == "GiB":
            return f"{n:.0f}{unit}" if unit == "B" else f"{n:.2f}{unit}"
        n /= 1024
    return f"{n:.2f}GiB"  # pragma: no cover - unreachable


def _table(columns: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    widths = [
        max(len(col), *(len(r[i]) for r in rows)) if rows else len(col)
        for i, col in enumerate(columns)
    ]
    lines = [
        "  ".join(c.ljust(w) for c, w in zip(columns, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for r in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def render_report(spans: list[Span], *, top: int = 12, metadata: dict | None = None) -> str:
    """The full text report for a flat span list.

    ``metadata`` is run-level attribution from the trace's ``otherData``
    (e.g. the ``plan_id`` of the tuning plan that chose the configuration).
    """
    total = makespan_of(spans)
    acts = rank_activity(spans)
    out: list[str] = []
    out.append("== trace report ==")
    out.append(
        f"ranks: {len(acts)}   spans: {len(spans)}   makespan: {_fmt_time(total)}"
    )
    if metadata:
        out.append(
            "attribution: " + "  ".join(f"{k}={v}" for k, v in sorted(metadata.items()))
        )

    out.append("")
    out.append("-- per-rank activity --")
    rows = [
        [
            str(a.rank),
            _fmt_time(a.end),
            _fmt_time(a.busy),
            _fmt_time(a.idle),
            f"{a.idle_fraction * 100:.1f}%",
        ]
        for a in acts
    ]
    out.append(_table(["rank", "end", "busy", "idle", "idle%"], rows))
    out.append(
        f"idle fraction (mean): {idle_fraction(spans) * 100:.1f}%   "
        f"imbalance ratio (max busy / mean busy): {imbalance_ratio(spans):.3f}"
    )

    phases = phase_breakdown(spans, how="max")
    if phases:
        out.append("")
        out.append("-- phase breakdown (max over ranks) --")
        rows = [
            [name, _fmt_time(dur), f"{dur / total * 100:.1f}%" if total else "-"]
            for name, dur in phases.items()
        ]
        out.append(_table(["phase", "time", "of makespan"], rows))

    traffic = traffic_matrix(spans)
    if traffic:
        out.append("")
        out.append("-- traffic: phase x operation (payload bytes, all ranks) --")
        ops = sorted({op for _, op in traffic})
        phase_names = list(dict.fromkeys(ph for ph, _ in traffic))
        rows = []
        for ph in phase_names:
            rows.append(
                [ph] + [_fmt_bytes(traffic.get((ph, op), 0)) for op in ops]
            )
        totals = ["total"] + [
            _fmt_bytes(sum(v for (_, op2), v in traffic.items() if op2 == op))
            for op in ops
        ]
        rows.append(totals)
        out.append(_table(["phase"] + ops, rows))

    path = critical_path(spans)
    if path:
        out.append("")
        out.append("-- critical path --")
        length = sum(seg.duration for seg in path)
        hops = sum(1 for a, b in zip(path, path[1:]) if a.rank != b.rank)
        out.append(
            f"length: {_fmt_time(length)} ({length / total * 100:.1f}% of makespan"
            f" is on-path work)   segments: {len(path)}   rank hops: {hops}"
        )
        comp = critical_path_composition(path)
        rows = [
            [name, _fmt_time(dur), f"{dur / length * 100:.1f}%"]
            for name, dur in list(comp.items())[:top]
        ]
        out.append(_table(["operation", "time", "of path"], rows))
    return "\n".join(out)


def report_recorder(recorder: "TraceRecorder", *, top: int = 12) -> str:
    """Render the report straight from a live recorder."""
    return render_report(
        recorder.spans(), top=top, metadata=getattr(recorder, "metadata", None)
    )


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace.report",
        description="Summarize a trace written by repro.trace.export "
        "(idle fractions, imbalance, traffic matrix, critical path).",
    )
    parser.add_argument("trace", help="path to a Chrome-trace JSON file")
    parser.add_argument(
        "--top", type=int, default=12, help="operations to list for the critical path"
    )
    args = parser.parse_args(argv)

    from .export import metadata_from_chrome, spans_from_chrome

    try:
        data = json.loads(Path(args.trace).read_text())
    except FileNotFoundError:
        print(f"{args.trace}: no such file", file=sys.stderr)
        return 1
    except json.JSONDecodeError as exc:
        print(f"{args.trace}: not valid JSON ({exc})", file=sys.stderr)
        return 1
    spans = spans_from_chrome(data)
    if not spans:
        print(f"{args.trace}: no spans found", file=sys.stderr)
        return 1
    try:
        print(render_report(spans, top=args.top, metadata=metadata_from_chrome(data)))
    except BrokenPipeError:  # e.g. piped into `head`
        sys.stderr.close()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via main() in tests
    sys.exit(main())
