"""Event tracing over the virtual clocks: spans, the recorder, rank tracers.

A :class:`TraceRecorder` hangs off a :class:`~repro.mpi.runtime.Runtime`
(``runtime.trace``) and collects begin/end :class:`Span` records in
*virtual time* for every communication operation, every
:meth:`~repro.mpi.comm.Comm.compute` charge, and any user-defined section.
Each span carries the world rank, a category, and free-form attributes
(peer, payload bytes, locality level, idle time, ...).

Thread-safety
-------------
Ranks are concurrent threads, so the recorder keeps **one span list per
rank** and every rank appends only to its own list — no locking on the hot
path.  The only cross-thread value is the collective entry-maximum written
by the collective leader between two barriers (see
:meth:`repro.mpi.comm._CommState.collective`), whose visibility those
barriers already order.

Zero cost when disabled
-----------------------
``runtime.trace`` is ``None`` unless tracing was requested; every hook in
the runtime guards with a single ``is not None`` check, and
:data:`NULL_TRACER` supplies no-op context managers for instrumented
algorithm code.  Recording never touches the virtual clocks, so a traced
run's modelled makespan is bit-identical to an untraced one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator

if TYPE_CHECKING:  # pragma: no cover
    from ..mpi.runtime import Runtime

__all__ = ["Span", "TraceRecorder", "RankTracer", "NullTracer", "NULL_TRACER"]

#: span categories, used by the exporter and the analysis ("fault" marks
#: injected drops/duplicates/delays, crashes, timeouts, and revocations)
CATEGORIES = ("phase", "collective", "p2p", "compute", "user", "fault")


@dataclass
class Span:
    """One begin/end interval on one rank's virtual timeline.

    ``attrs`` holds operation-specific attributes; the well-known ones are
    ``bytes`` (payload contribution), ``idle`` (portion of the span spent
    blocked on peers rather than transferring), ``level`` (locality level
    of the traffic), ``peer``/``src`` (world rank of the other side),
    ``comm``/``seq`` (collective matching key) and ``last_arrival`` (entry
    clock of the last rank into a collective).
    """

    rank: int
    name: str
    cat: str
    t0: float
    t1: float
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    @property
    def idle(self) -> float:
        """Blocked time within the span (0.0 for non-waiting spans)."""
        return float(self.attrs.get("idle", 0.0))

    @property
    def nbytes(self) -> int:
        return int(self.attrs.get("bytes", 0))


class _NullContext:
    """A reusable do-nothing context manager."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: Any) -> None:
        return None


_NULL_CONTEXT = _NullContext()


class NullTracer:
    """The disabled tracer: every operation is a no-op."""

    __slots__ = ()
    enabled = False

    def span(self, name: str, **attrs: Any) -> _NullContext:
        return _NULL_CONTEXT

    def record(self, name: str, t0: float, *, cat: str = "user", **attrs: Any) -> None:
        return None

    def instant(self, name: str, **attrs: Any) -> None:
        return None


NULL_TRACER = NullTracer()


class _SpanContext:
    """Context manager recording a span from enter-clock to exit-clock."""

    __slots__ = ("_tracer", "_name", "_attrs", "_t0")

    def __init__(self, tracer: "RankTracer", name: str, attrs: dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._t0 = 0.0

    def __enter__(self) -> "_SpanContext":
        self._t0 = self._tracer.clock
        return self

    def __exit__(self, *exc: Any) -> None:
        t = self._tracer
        t._rec.record(t._rank, self._name, "user", self._t0, t.clock, **self._attrs)


class RankTracer:
    """One rank's handle on the recorder (obtained via ``comm.tracer``)."""

    __slots__ = ("_rec", "_rank")
    enabled = True

    def __init__(self, recorder: "TraceRecorder", rank: int):
        self._rec = recorder
        self._rank = rank

    @property
    def clock(self) -> float:
        """The rank's current virtual clock."""
        return float(self._rec._clocks[self._rank])

    def span(self, name: str, **attrs: Any) -> _SpanContext:
        """Record a user span around a ``with`` block (virtual-time bounds)."""
        return _SpanContext(self, name, attrs)

    def record(self, name: str, t0: float, *, cat: str = "user", **attrs: Any) -> Span:
        """Record a span from an explicit start clock to the current clock."""
        return self._rec.record(self._rank, name, cat, t0, self.clock, **attrs)

    def instant(self, name: str, **attrs: Any) -> Span:
        """Record a zero-duration marker at the current clock."""
        now = self.clock
        return self._rec.record(self._rank, name, "user", now, now, **attrs)


class TraceRecorder:
    """Collects spans for every rank of one runtime."""

    def __init__(self, runtime: "Runtime"):
        self.runtime = runtime
        self.size = runtime.size
        self._clocks = runtime.clocks
        self._spans: list[list[Span]] = [[] for _ in range(self.size)]
        self._tracers = [RankTracer(self, r) for r in range(self.size)]
        self.enabled = True
        #: run-level attribution (e.g. the tuning ``plan_id`` that chose the
        #: configuration); exported into the Chrome trace's ``otherData`` so
        #: ``repro.trace.report`` can attribute a run to its plan
        self.metadata: dict[str, Any] = {}

    # ---------------------------------------------------------------- record

    def record(
        self, rank: int, name: str, cat: str, t0: float, t1: float, **attrs: Any
    ) -> Span:
        """Append a span to ``rank``'s timeline (owning thread only).

        Adjacent ``compute`` spans are coalesced to keep traces compact:
        the runtime charges compute in many small increments that would
        otherwise each become an event.
        """
        lst = self._spans[rank]
        if cat == "compute" and lst:
            last = lst[-1]
            if last.cat == "compute" and abs(last.t1 - t0) < 1e-18:
                last.t1 = t1
                return last
        span = Span(rank, name, cat, float(t0), float(t1), attrs)
        lst.append(span)
        return span

    def tracer(self, rank: int) -> RankTracer:
        return self._tracers[rank]

    # ----------------------------------------------------------------- query

    def rank_spans(self, rank: int) -> list[Span]:
        """The spans of one rank, ordered enclosing-first at equal starts."""
        return sorted(self._spans[rank], key=lambda s: (s.t0, -s.t1))

    def spans(self) -> list[Span]:
        """All spans, ordered by (rank, start, -end)."""
        out: list[Span] = []
        for rank in range(self.size):
            out.extend(self.rank_spans(rank))
        return out

    def __iter__(self) -> Iterator[Span]:
        return iter(self.spans())

    def __len__(self) -> int:
        return sum(len(lst) for lst in self._spans)

    @property
    def makespan(self) -> float:
        """Latest span end over all ranks (0.0 when empty)."""
        return max((s.t1 for lst in self._spans for s in lst), default=0.0)
