"""Observability: event tracing, phase timers, traffic snapshots, analysis.

The subpackage has three layers:

- recording — :class:`TraceRecorder` (attached to a runtime via
  ``Runtime(trace=True)`` / ``run_spmd(..., trace=True)``) and the
  per-rank :class:`RankTracer` handles exposed as ``comm.tracer``;
- export — :mod:`repro.trace.export` writes Chrome-trace JSON that loads
  in Perfetto (one track per rank, phase-colored spans);
- analysis — :mod:`repro.trace.analysis` computes idle fractions,
  imbalance ratios, traffic matrices and the critical path, and
  ``python -m repro.trace.report`` renders them as text.
"""

from .analysis import (
    PathSegment,
    RankActivity,
    critical_path,
    critical_path_composition,
    idle_fraction,
    imbalance_ratio,
    phase_breakdown,
    rank_activity,
    traffic_matrix,
)
from .counters import TrafficSnapshot
from .events import NULL_TRACER, NullTracer, RankTracer, Span, TraceRecorder
from .export import (
    chrome_trace_events,
    spans_from_chrome,
    to_chrome_json,
    write_chrome_trace,
)
from .timer import PhaseTimer, combine_phases, phase_fractions

__all__ = [
    "PhaseTimer",
    "TrafficSnapshot",
    "combine_phases",
    "phase_fractions",
    "Span",
    "TraceRecorder",
    "RankTracer",
    "NullTracer",
    "NULL_TRACER",
    "chrome_trace_events",
    "to_chrome_json",
    "write_chrome_trace",
    "spans_from_chrome",
    "RankActivity",
    "rank_activity",
    "idle_fraction",
    "imbalance_ratio",
    "phase_breakdown",
    "traffic_matrix",
    "PathSegment",
    "critical_path",
    "critical_path_composition",
]
