"""Tracing: phase timers over virtual clocks and traffic snapshots."""

from .counters import TrafficSnapshot
from .timer import PhaseTimer, combine_phases, phase_fractions

__all__ = ["PhaseTimer", "TrafficSnapshot", "combine_phases", "phase_fractions"]
