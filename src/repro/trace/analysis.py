"""Trace analysis: idle fractions, load imbalance, traffic, critical path.

All functions take a flat list of :class:`~repro.trace.events.Span` —
either straight from a :class:`~repro.trace.TraceRecorder` (``.spans()``)
or reconstructed from an exported file via
:func:`repro.trace.export.spans_from_chrome` — so recorded and reloaded
runs analyse identically.

The decompositions mirror how the paper argues about its phase breakdowns
(Figs. 2b/3b, Table 1): where time goes per rank (busy vs. blocked), which
rank straggles, which collective moves the bytes of which phase, and the
chain of operations that actually determines the makespan.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import defaultdict
from dataclasses import dataclass

from .events import Span

__all__ = [
    "RankActivity",
    "rank_activity",
    "idle_fraction",
    "imbalance_ratio",
    "phase_breakdown",
    "phase_of",
    "traffic_matrix",
    "phase_traffic",
    "PathSegment",
    "critical_path",
    "critical_path_composition",
]

#: categories whose spans advance the clock (phase/user spans overlay them)
_OP_CATS = ("collective", "p2p", "compute")


def _by_rank(spans: list[Span], cats: tuple[str, ...] = _OP_CATS) -> dict[int, list[Span]]:
    out: dict[int, list[Span]] = defaultdict(list)
    for s in spans:
        if s.cat in cats:
            out[s.rank].append(s)
    for lst in out.values():
        lst.sort(key=lambda s: (s.t0, s.t1))
    return out


def makespan_of(spans: list[Span]) -> float:
    return max((s.t1 for s in spans), default=0.0)


# ---------------------------------------------------------------- activity


@dataclass(frozen=True)
class RankActivity:
    """Where one rank's share of the makespan went."""

    rank: int
    end: float      #: the rank's final clock
    busy: float     #: compute + transfer time
    idle: float     #: blocked on peers (incl. waiting for the run to end)

    @property
    def idle_fraction(self) -> float:
        total = self.busy + self.idle
        return self.idle / total if total > 0 else 0.0


def rank_activity(spans: list[Span]) -> list[RankActivity]:
    """Per-rank busy/idle decomposition against the global makespan.

    ``idle`` sums the blocked portions of waiting operations (collective
    entry skew, p2p waits) plus the tail between the rank's last event and
    the makespan; ``busy`` is the remainder of the makespan.
    """
    total = makespan_of(spans)
    per_rank = _by_rank(spans)
    out = []
    for rank in sorted(per_rank):
        ops = per_rank[rank]
        end = max(s.t1 for s in ops)
        idle = sum(s.idle for s in ops) + (total - end)
        out.append(RankActivity(rank=rank, end=end, busy=total - idle, idle=idle))
    return out


def idle_fraction(spans: list[Span]) -> float:
    """Mean idle fraction over ranks (0 = perfectly busy machine)."""
    acts = rank_activity(spans)
    if not acts:
        return 0.0
    return sum(a.idle_fraction for a in acts) / len(acts)


def imbalance_ratio(spans: list[Span]) -> float:
    """Straggler metric: max over ranks of busy time / mean busy time (>= 1)."""
    acts = rank_activity(spans)
    if not acts:
        return 1.0
    mean = sum(a.busy for a in acts) / len(acts)
    if mean <= 0:
        return 1.0
    return max(a.busy for a in acts) / mean


# ------------------------------------------------------------------ phases


def phase_breakdown(spans: list[Span], how: str = "max") -> dict[str, float]:
    """Per-phase durations combined over ranks (Fig. 2b/3b style)."""
    from .timer import combine_phases

    per_rank: dict[int, dict[str, float]] = defaultdict(dict)
    for s in spans:
        if s.cat == "phase":
            d = per_rank[s.rank]
            d[s.name] = d.get(s.name, 0.0) + s.duration
    return combine_phases([per_rank[r] for r in sorted(per_rank)], how=how)


def phase_of(spans: list[Span]) -> dict[int, "_PhaseIndex"]:
    """Per-rank lookup from a time to the enclosing phase name."""
    per_rank = _by_rank(spans, cats=("phase",))
    return {rank: _PhaseIndex(lst) for rank, lst in per_rank.items()}


class _PhaseIndex:
    """Binary-searchable phase timeline of one rank."""

    def __init__(self, phases: list[Span]):
        self._phases = phases
        self._starts = [p.t0 for p in phases]

    def at(self, t: float) -> str:
        i = bisect_right(self._starts, t) - 1
        if i >= 0 and t < self._phases[i].t1 + 1e-18:
            return self._phases[i].name
        return "-"


def traffic_matrix(spans: list[Span]) -> dict[tuple[str, str], int]:
    """Bytes moved, keyed by ``(phase, operation)``.

    Sums every rank's payload contribution of collectives and p2p sends,
    attributed to the phase enclosing the operation's start on that rank
    (``"-"`` when the operation ran outside any marked phase).
    """
    phases = phase_of(spans)
    out: dict[tuple[str, str], int] = defaultdict(int)
    for s in spans:
        if s.cat == "collective" or (s.cat == "p2p" and s.name == "send"):
            nbytes = s.nbytes
            if nbytes <= 0:
                continue
            index = phases.get(s.rank)
            phase = index.at(s.t0) if index is not None else "-"
            out[(phase, s.name)] += nbytes
    return dict(out)


def phase_traffic(spans: list[Span]) -> dict[str, int]:
    """Bytes moved per phase, all operations combined.

    The marginal of :func:`traffic_matrix` over operations — the measured
    side of the ``repro.analyze cost`` model-conformance check, comparable
    against the per-phase wire-byte predictions of
    :mod:`repro.model.phases` because both follow the runtime's recording
    conventions (every rank's payload counts; broadcasts count the root
    payload once).
    """
    out: dict[str, int] = defaultdict(int)
    for (phase, _op), nbytes in traffic_matrix(spans).items():
        out[phase] += nbytes
    return dict(out)


# ----------------------------------------------------------- critical path


@dataclass(frozen=True)
class PathSegment:
    """One hop of the critical path: rank ``rank`` doing ``name``."""

    rank: int
    name: str
    cat: str
    t0: float
    t1: float

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


def critical_path(spans: list[Span]) -> list[PathSegment]:
    """The dependency chain that determines the makespan.

    Walks backward from the rank that finishes last.  Whenever the walk
    meets an operation that spent time *blocked* — a collective whose last
    arriver came later (matched across ranks via the ``(comm, seq)``
    attributes) or a receive that waited on its sender (``departure``) —
    it hops to the blocking rank and continues there; everything else
    stays on-rank.  By construction the returned segments contain no idle
    time: they are the work (compute + transfer) a faster machine would
    actually have to shorten.
    """
    per_rank = _by_rank(spans)
    if not per_rank:
        return []
    total = makespan_of(spans)
    tol = max(total * 1e-12, 1e-15)

    # Index collectives by invocation for the cross-rank hop.
    coll: dict[tuple, list[Span]] = defaultdict(list)
    for lst in per_rank.values():
        for s in lst:
            if s.cat == "collective" and "comm" in s.attrs and "seq" in s.attrs:
                coll[(s.attrs["comm"], s.attrs["seq"])].append(s)

    ends = {rank: [s.t1 for s in lst] for rank, lst in per_rank.items()}
    rank = max(per_rank, key=lambda r: max(ends[r]))
    t = max(ends[rank])
    segments: list[PathSegment] = []

    for _ in range(len(spans) + len(per_rank) + 8):
        if t <= tol:
            break
        lst = per_rank[rank]
        # Latest op ending at or before t; skip zero-duration spans.
        i = bisect_right(ends[rank], t + tol) - 1
        while i >= 0 and lst[i].duration <= tol:
            i -= 1
        if i < 0:
            break
        span = lst[i]
        if span.t1 < t - tol:
            # Untracked clock advance (e.g. a raw clock write): attribute
            # the gap to the rank itself and continue from the span's end.
            segments.append(PathSegment(rank, "(untracked)", "compute", span.t1, t))
            t = span.t1
            continue

        blocked = span.idle > tol
        if blocked and span.cat == "collective":
            last = float(span.attrs.get("last_arrival", span.t0))
            work_start = min(max(last, span.t0), span.t1)
            if span.t1 > work_start + tol:
                segments.append(PathSegment(rank, span.name, span.cat, work_start, span.t1))
            key = (span.attrs.get("comm"), span.attrs.get("seq"))
            peers = coll.get(key, [])
            if peers:
                blocker = max(peers, key=lambda s: s.t0)
                rank, t = blocker.rank, blocker.t0
                continue
            t = span.t0
            continue
        if blocked and span.cat == "p2p" and "departure" in span.attrs:
            dep = float(span.attrs["departure"])
            work_start = min(max(dep, span.t0), span.t1)
            if span.t1 > work_start + tol:
                segments.append(PathSegment(rank, span.name, span.cat, work_start, span.t1))
            src = span.attrs.get("src")
            if src in per_rank:
                rank, t = int(src), dep
                continue
            t = span.t0
            continue
        segments.append(PathSegment(rank, span.name, span.cat, span.t0, span.t1))
        t = span.t0

    segments.reverse()
    return segments


def critical_path_composition(segments: list[PathSegment]) -> dict[str, float]:
    """Critical-path time by operation name (descending)."""
    acc: dict[str, float] = defaultdict(float)
    for seg in segments:
        acc[seg.name] += seg.duration
    return dict(sorted(acc.items(), key=lambda kv: -kv[1]))
