"""Traffic snapshots: attribute communication volume to program sections."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..mpi import Runtime

__all__ = ["TrafficSnapshot"]


@dataclass(frozen=True)
class TrafficSnapshot:
    """A point-in-time copy of a runtime's aggregate traffic counters."""

    bytes_sent: int
    msgs_sent: int
    collective_bytes: dict[str, float]

    @classmethod
    def capture(cls, runtime: "Runtime") -> "TrafficSnapshot":
        with runtime.stats._lock:
            coll = {k: float(v[1]) for k, v in runtime.stats.collectives.items()}
        return cls(
            bytes_sent=int(runtime.stats.bytes_sent.sum()),
            msgs_sent=int(runtime.stats.msgs_sent.sum()),
            collective_bytes=coll,
        )

    def diff(self, earlier: "TrafficSnapshot") -> "TrafficSnapshot":
        """Traffic between ``earlier`` and this snapshot."""
        keys = set(self.collective_bytes) | set(earlier.collective_bytes)
        return TrafficSnapshot(
            bytes_sent=self.bytes_sent - earlier.bytes_sent,
            msgs_sent=self.msgs_sent - earlier.msgs_sent,
            collective_bytes={
                k: self.collective_bytes.get(k, 0.0)
                - earlier.collective_bytes.get(k, 0.0)
                for k in sorted(keys)
            },
        )
