"""Traffic snapshots: attribute communication volume to program sections."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..mpi import Runtime

__all__ = ["TrafficSnapshot"]


@dataclass(frozen=True)
class TrafficSnapshot:
    """A point-in-time copy of a runtime's aggregate traffic counters.

    Per-collective dictionaries are keyed by operation name:
    ``collective_bytes`` holds total payload bytes, ``collective_calls``
    invocation counts, and ``collective_ranks`` the summed participant
    counts (so ``ranks / calls`` is the mean communicator size).
    """

    bytes_sent: int
    msgs_sent: int
    collective_bytes: dict[str, float]
    collective_calls: dict[str, int] = field(default_factory=dict)
    collective_ranks: dict[str, int] = field(default_factory=dict)

    @classmethod
    def capture(cls, runtime: "Runtime") -> "TrafficSnapshot":
        snap = runtime.stats.snapshot()
        return cls(
            bytes_sent=snap.total_bytes_sent,
            msgs_sent=snap.total_msgs_sent,
            collective_bytes={k: v[1] for k, v in snap.collectives.items()},
            collective_calls={k: v[0] for k, v in snap.collectives.items()},
            collective_ranks={k: v[2] for k, v in snap.collectives.items()},
        )

    def diff(self, earlier: "TrafficSnapshot") -> "TrafficSnapshot":
        """Traffic between ``earlier`` and this snapshot."""
        keys = sorted(set(self.collective_bytes) | set(earlier.collective_bytes))
        return TrafficSnapshot(
            bytes_sent=self.bytes_sent - earlier.bytes_sent,
            msgs_sent=self.msgs_sent - earlier.msgs_sent,
            collective_bytes={
                k: self.collective_bytes.get(k, 0.0)
                - earlier.collective_bytes.get(k, 0.0)
                for k in keys
            },
            collective_calls={
                k: self.collective_calls.get(k, 0) - earlier.collective_calls.get(k, 0)
                for k in keys
            },
            collective_ranks={
                k: self.collective_ranks.get(k, 0) - earlier.collective_ranks.get(k, 0)
                for k in keys
            },
        )
