"""Per-rank phase timers over virtual clocks.

A :class:`PhaseTimer` slices a rank's virtual-clock timeline into named
phases (local sort, splitting, exchange, merge, ...).  The per-rank
dictionaries are combined across ranks with :func:`combine_phases`, which is
what Fig. 2(b)/3(b)-style breakdowns are made of.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from ..mpi import Comm

__all__ = ["PhaseTimer", "combine_phases", "phase_fractions"]


class PhaseTimer:
    """Attributes virtual-clock progress to named phases.

    >>> timer = PhaseTimer(comm)
    >>> ...local sort...
    >>> timer.mark("local_sort")
    >>> ...splitting...
    >>> timer.mark("splitting")
    >>> timer.phases   # {'local_sort': 1.2, 'splitting': 0.4}
    """

    def __init__(self, comm: "Comm"):
        self._comm = comm
        self._last = comm.clock
        self.phases: dict[str, float] = {}

    def mark(self, name: str) -> float:
        """Close the current phase under ``name``; returns its duration.

        When the runtime records a trace, the closed phase also becomes a
        ``phase`` span on this rank's timeline, which is how the exporter
        and the analysis attribute raw events to algorithm phases.
        """
        now = self._comm.clock
        delta = now - self._last
        self.phases[name] = self.phases.get(name, 0.0) + delta
        rec = self._comm.trace_recorder
        if rec is not None and now > self._last:
            rec.record(self._comm.world_rank, name, "phase", self._last, now)
        self._last = now
        return delta

    @property
    def total(self) -> float:
        return float(sum(self.phases.values()))


def combine_phases(
    per_rank: Sequence[Mapping[str, float]], how: str = "max"
) -> dict[str, float]:
    """Combine per-rank phase dictionaries (``max``, ``mean``, or ``sum``).

    Phases missing on a rank count as zero (for ``max`` and ``mean``);
    names keep first-seen order.
    """
    if how not in ("max", "mean", "sum"):
        raise ValueError(f"how must be 'max', 'mean', or 'sum', got {how!r}")
    acc: dict[str, list[float]] = {}
    for d in per_rank:
        for k, v in d.items():
            acc.setdefault(k, []).append(float(v))
    n = len(per_rank)
    out: dict[str, float] = {}
    for name, vals in acc.items():
        if how == "sum":
            out[name] = sum(vals)
        elif how == "mean":
            out[name] = sum(vals) / n
        else:
            out[name] = max(vals) if len(vals) == n else max(max(vals), 0.0)
    return out


def phase_fractions(phases: Mapping[str, float]) -> dict[str, float]:
    """Normalize a phase breakdown to fractions of the total."""
    total = sum(phases.values())
    if total <= 0:
        return {k: 0.0 for k in phases}
    return {k: v / total for k, v in phases.items()}
