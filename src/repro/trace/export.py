"""Chrome-trace-event export: open recorded runs in Perfetto.

:func:`write_chrome_trace` serializes a :class:`~repro.trace.TraceRecorder`
into the Trace Event Format (the ``traceEvents`` JSON consumed by
https://ui.perfetto.dev and ``chrome://tracing``): one process per node,
one track (thread) per rank, and a complete-event (``"ph": "X"``) span for
every recorded interval, with phase spans colored per phase name.

Virtual seconds map to trace microseconds.  :func:`spans_from_chrome`
reverses the mapping, which is what lets ``python -m repro.trace.report``
analyse a previously written trace file.
"""

from __future__ import annotations

import json
import zlib
from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

from .events import Span

if TYPE_CHECKING:  # pragma: no cover
    from .events import TraceRecorder

__all__ = [
    "chrome_trace_events",
    "to_chrome_json",
    "write_chrome_trace",
    "spans_from_chrome",
    "metadata_from_chrome",
]

#: reserved Chrome trace colors, assigned to phases round-robin by name
_PHASE_CNAMES = (
    "thread_state_running",
    "thread_state_iowait",
    "rail_response",
    "rail_animation",
    "rail_idle",
    "rail_load",
    "thread_state_runnable",
    "detailed_memory_dump",
)

_SECONDS_TO_US = 1.0e6


def _json_safe(value: Any) -> Any:
    """Coerce numpy scalars (and nested containers) to plain JSON types."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return value


def _phase_cname(name: str) -> str:
    # crc32, not hash(): stable across processes so re-exports match.
    return _PHASE_CNAMES[zlib.crc32(name.encode()) % len(_PHASE_CNAMES)]


def chrome_trace_events(recorder: "TraceRecorder") -> list[dict[str, Any]]:
    """The ``traceEvents`` list: metadata rows plus one X event per span."""
    runtime = getattr(recorder, "runtime", None)
    placement = getattr(runtime.cost, "placement", None) if runtime else None

    events: list[dict[str, Any]] = []
    nodes_seen: set[int] = set()
    for rank in range(recorder.size):
        node = placement.node_of(rank) if placement is not None else 0
        if node not in nodes_seen:
            nodes_seen.add(node)
            events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": node,
                    "tid": 0,
                    "args": {"name": f"node {node}"},
                }
            )
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": node,
                "tid": rank,
                "args": {"name": f"rank {rank}"},
            }
        )
        events.append(
            {
                "ph": "M",
                "name": "thread_sort_index",
                "pid": node,
                "tid": rank,
                "args": {"sort_index": rank},
            }
        )

    for span in recorder.spans():
        node = placement.node_of(span.rank) if placement is not None else 0
        event: dict[str, Any] = {
            "ph": "X",
            "name": span.name,
            "cat": span.cat,
            "pid": node,
            "tid": span.rank,
            "ts": span.t0 * _SECONDS_TO_US,
            "dur": span.duration * _SECONDS_TO_US,
            "args": _json_safe(span.attrs),
        }
        if span.cat == "phase":
            event["cname"] = _phase_cname(span.name)
        events.append(event)
    return events


def to_chrome_json(recorder: "TraceRecorder") -> dict[str, Any]:
    """The complete JSON-object form of the trace file."""
    other: dict[str, Any] = {
        "ranks": recorder.size,
        "makespan_s": recorder.makespan,
        "source": "repro.trace (virtual time; 1 trace us = 1 modelled us)",
    }
    # Run-level attribution (tuning plan ids etc.) rides along in otherData.
    other.update(_json_safe(getattr(recorder, "metadata", {}) or {}))
    return {
        "traceEvents": chrome_trace_events(recorder),
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def write_chrome_trace(path: str | Path, recorder: "TraceRecorder") -> Path:
    """Write the trace next to wherever the caller keeps its results."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(to_chrome_json(recorder)))
    return path


def metadata_from_chrome(data: dict[str, Any] | list[dict[str, Any]]) -> dict[str, Any]:
    """Run-level attribution from an exported trace (``otherData`` extras).

    Returns only the caller-supplied metadata keys (e.g. ``plan_id``), not
    the exporter's own bookkeeping fields.
    """
    if not isinstance(data, dict):
        return {}
    other = data.get("otherData", {})
    if not isinstance(other, dict):
        return {}
    own = {"ranks", "makespan_s", "source"}
    return {k: v for k, v in other.items() if k not in own}


def spans_from_chrome(data: dict[str, Any] | list[dict[str, Any]]) -> list[Span]:
    """Reconstruct spans from an exported trace (inverse of the exporter).

    Accepts either the JSON-object form or a bare ``traceEvents`` list and
    ignores metadata events; times come back in virtual seconds.
    """
    events = data["traceEvents"] if isinstance(data, dict) else data
    spans: list[Span] = []
    for ev in events:
        if ev.get("ph") != "X":
            continue
        t0 = float(ev["ts"]) / _SECONDS_TO_US
        spans.append(
            Span(
                rank=int(ev["tid"]),
                name=str(ev["name"]),
                cat=str(ev.get("cat", "user")),
                t0=t0,
                t1=t0 + float(ev.get("dur", 0.0)) / _SECONDS_TO_US,
                attrs=dict(ev.get("args", {})),
            )
        )
    spans.sort(key=lambda s: (s.rank, s.t0, -s.t1))
    return spans
