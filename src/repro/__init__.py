"""repro — a reproduction of "Engineering a Distributed Histogram Sort" (CLUSTER 2019).

Public surface:

* :func:`repro.sort` / :func:`repro.nth_element` — the paper's algorithms on
  a distributed array (rank-centric, run under :func:`repro.mpi.run_spmd`).
* :mod:`repro.mpi` — in-process SPMD runtime (the MPI substitute).
* :mod:`repro.machine` — machine/cost model (the SuperMUC substitute).
* :mod:`repro.core` — histogram sort, multiselect, distributed selection.
* :mod:`repro.baselines` — sample sort, HSS, hyperquicksort, HykSort, bitonic.
* :mod:`repro.smp` — shared-memory node simulator (TBB/OpenMP merge sorts).
* :mod:`repro.data` — workload generators.
* :mod:`repro.bench` — experiment harness regenerating every paper figure.
* :mod:`repro.tune` — cost-model-driven auto-tuning and the plan cache
  behind :func:`repro.autosort`.
* :mod:`repro.serve` — sort-as-a-service: concurrent jobs, shared-epoch
  batching, and the persistent query tier.
"""

from __future__ import annotations

__version__ = "1.0.0"

from . import machine, mpi  # noqa: E402  (re-exported subsystems)

__all__ = ["machine", "mpi", "__version__"]


_LAZY_SUBMODULES = {
    "core", "seq", "baselines", "smp", "data", "model", "trace", "bench",
    "tune", "sanitize", "metrics", "perf", "serve",
}
_LAZY_API = {
    "sort",
    "sorted_result",
    "nth_element",
    "percentile",
    "top_k",
    "find_splitters",
    "autosort",
    "AutoSortResult",
    "SortConfig",
    "SplitterConfig",
    "SortResult",
    "histogram_sort",
    "dselect",
}


def __getattr__(name: str):
    # Lazy imports keep `import repro` light and avoid cycles while the
    # public API modules pull in the whole core package.
    if name in _LAZY_SUBMODULES:
        import importlib

        module = importlib.import_module(f".{name}", __name__)
        globals()[name] = module
        return module
    if name in _LAZY_API:
        from . import core

        return getattr(core, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
