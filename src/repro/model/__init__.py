"""Analytic phase models and calibration against executed runs."""

from .calibrate import ModelFit, RoundsLike, fit_round_count, fit_time_scale, validate_model
from .phases import (
    MODEL_VERSION,
    PhasePrediction,
    predict_histsort,
    predict_hss,
    predict_samplesort,
)

__all__ = [
    "MODEL_VERSION",
    "ModelFit",
    "PhasePrediction",
    "RoundsLike",
    "fit_round_count",
    "fit_time_scale",
    "predict_histsort",
    "predict_hss",
    "predict_samplesort",
    "validate_model",
]
