"""Analytic phase models and calibration against executed runs."""

from .calibrate import ModelFit, fit_round_count, validate_model
from .phases import PhasePrediction, predict_histsort, predict_hss

__all__ = [
    "ModelFit",
    "PhasePrediction",
    "fit_round_count",
    "predict_histsort",
    "predict_hss",
    "validate_model",
]
