"""Calibration: fit the closed-form model against executed runs.

The analytic model and the executing runtime share one cost model, so at
any scale both can run they should agree closely.  :func:`validate_model`
quantifies the residual; :func:`fit_round_count` extracts the histogramming
round count (a key-width property) from small executed runs so paper-scale
predictions use measured convergence behaviour rather than an assumption.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.histsort import SortResult
from ..machine.spec import MachineSpec
from .phases import PhasePrediction, predict_histsort

__all__ = ["ModelFit", "fit_round_count", "validate_model"]


@dataclass(frozen=True)
class ModelFit:
    """Agreement between executed and predicted phase totals."""

    executed_total: float
    predicted_total: float

    @property
    def ratio(self) -> float:
        if self.executed_total <= 0:
            return float("inf") if self.predicted_total > 0 else 1.0
        return self.predicted_total / self.executed_total


def fit_round_count(results: Sequence[SortResult]) -> int:
    """Median histogramming round count over executed runs."""
    rounds = [r.rounds for r in results]
    if not rounds:
        raise ValueError("no results to fit")
    return int(np.median(rounds))


def validate_model(
    machine: MachineSpec,
    executed: Sequence[SortResult],
    n_total: int,
    p: int,
    *,
    ranks_per_node: int,
    itemsize: int = 8,
    merge_strategy: str = "sort",
) -> ModelFit:
    """Compare max-over-ranks executed phase totals with the prediction."""
    if not executed:
        raise ValueError("no executed results")
    per_rank_totals = [sum(r.phases.values()) for r in executed]
    executed_total = float(max(per_rank_totals))
    pred: PhasePrediction = predict_histsort(
        machine,
        n_total,
        p,
        ranks_per_node=ranks_per_node,
        rounds=fit_round_count(executed),
        itemsize=itemsize,
        merge_strategy=merge_strategy,
    )
    return ModelFit(executed_total=executed_total, predicted_total=pred.total)
