"""Calibration: fit the closed-form model against executed runs.

The analytic model and the executing runtime share one cost model, so at
any scale both can run they should agree closely.  :func:`validate_model`
quantifies the residual; :func:`fit_round_count` extracts the histogramming
round count (a key-width property) from small executed runs so paper-scale
predictions use measured convergence behaviour rather than an assumption.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol, Sequence

import numpy as np

from ..machine.spec import MachineSpec
from .phases import PhasePrediction, predict_histsort

__all__ = ["ModelFit", "RoundsLike", "fit_round_count", "fit_time_scale", "validate_model"]


class RoundsLike(Protocol):
    """Anything carrying executed-run diagnostics the calibrators consume.

    Both :class:`repro.core.histsort.SortResult` (direct execution) and
    :class:`repro.bench.harness.TrialResult` (harness output) satisfy it,
    so calibration can be fed straight from ``repeat_sort_trials``.
    """

    rounds: int
    phases: dict[str, float]


@dataclass(frozen=True)
class ModelFit:
    """Agreement between executed and predicted phase totals."""

    executed_total: float
    predicted_total: float

    @property
    def ratio(self) -> float:
        if self.executed_total <= 0:
            return float("inf") if self.predicted_total > 0 else 1.0
        return self.predicted_total / self.executed_total


def fit_round_count(results: Sequence[RoundsLike]) -> int:
    """Median histogramming round count over executed runs.

    Accepts :class:`SortResult` or harness :class:`TrialResult` records —
    anything with a ``rounds`` attribute.  For an even number of results the
    median falls on a half-integer; the convention is **round half up** (a
    median of 2.5 rounds fits as 3), so the fitted model never under-prices
    the splitting phase on a tie.
    """
    rounds = [r.rounds for r in results]
    if not rounds:
        raise ValueError("no results to fit")
    return int(math.floor(float(np.median(rounds)) + 0.5))


def fit_time_scale(observed: Sequence[float], predicted: Sequence[float]) -> float:
    """Robust multiplicative correction mapping predictions onto observations.

    The median of per-run ``observed / predicted`` ratios: multiply a
    prediction by it to de-bias the closed-form model against executed
    makespans.  Used by :mod:`repro.tune.feedback` to fold residuals of
    tuned runs back into future plan scoring.
    """
    if len(observed) != len(predicted):
        raise ValueError("observed and predicted must have equal length")
    ratios = [
        o / p for o, p in zip(observed, predicted) if p > 0 and o > 0 and math.isfinite(o / p)
    ]
    if not ratios:
        raise ValueError("no usable (observed, predicted) pairs")
    return float(np.median(ratios))


def validate_model(
    machine: MachineSpec,
    executed: Sequence[RoundsLike],
    n_total: int,
    p: int,
    *,
    ranks_per_node: int,
    itemsize: int = 8,
    merge_strategy: str = "sort",
) -> ModelFit:
    """Compare max-over-ranks executed phase totals with the prediction."""
    if not executed:
        raise ValueError("no executed results")
    per_rank_totals = [sum(r.phases.values()) for r in executed]
    executed_total = float(max(per_rank_totals))
    pred: PhasePrediction = predict_histsort(
        machine,
        n_total,
        p,
        ranks_per_node=ranks_per_node,
        rounds=fit_round_count(executed),
        itemsize=itemsize,
        merge_strategy=merge_strategy,
    )
    return ModelFit(executed_total=executed_total, predicted_total=pred.total)
