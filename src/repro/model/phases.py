"""Closed-form phase models for paper-scale prediction.

The in-process runtime executes the real algorithm and prices it in virtual
time, but holding 2^31 keys × 3584 ranks in one address space is not
possible; these closed forms evaluate the same cost model symbolically so
the benchmark harness can extend executed series to the paper's full scale
(128 nodes / 3584 cores, 256 GB).  The formulas mirror §V's complexity
analysis:

* local sort: ``c_sort · (N/P) · log2(N/P)``
* splitting:  ``rounds × (allreduce(2·(P-1)·8 B) + binary-search histogram)``
  — ``rounds`` tracks the key width, not P (§V-A), and is taken from
  executed runs of the same key type;
* exchange:   one ALL-TO-ALLV of the full volume, priced per locality level
  with the bisection-bandwidth floor;
* merge:      strategy-dependent (re-sort in the paper's configuration);
* other:      the O(p²)-volume bound/permutation exchanges of Algorithm 4.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine.cost import CostModel
from ..machine.spec import Level, MachineSpec
from ..machine.topology import make_placement
from ..core.merge import merge_cost

__all__ = [
    "MODEL_VERSION",
    "PhasePrediction",
    "predict_histsort",
    "predict_hss",
    "predict_samplesort",
    "traffic_histsort",
    "traffic_samplesort",
    "traffic_psrs",
]

#: bumped whenever a closed-form formula changes; cached tuning plans carry
#: the version they were scored under and are invalidated on mismatch
#: (see :mod:`repro.tune.cache`).
MODEL_VERSION = 1


@dataclass(frozen=True)
class PhasePrediction:
    """Per-phase modelled seconds for one (N, P) point."""

    local_sort: float
    splitting: float
    exchange: float
    merge: float
    other: float

    @property
    def total(self) -> float:
        return self.local_sort + self.splitting + self.exchange + self.merge + self.other

    def as_dict(self) -> dict[str, float]:
        return {
            "local_sort": self.local_sort,
            "splitting": self.splitting,
            "exchange": self.exchange,
            "merge": self.merge,
            "other": self.other,
        }


def predict_histsort(
    machine: MachineSpec,
    n_total: int,
    p: int,
    *,
    ranks_per_node: int,
    rounds: int,
    itemsize: int = 8,
    merge_strategy: str = "sort",
    use_shm: bool = True,
) -> PhasePrediction:
    """Modelled phase times of the histogram sort at scale ``(N, P)``."""
    if p < 1 or n_total < 0:
        raise ValueError("need p >= 1 and n_total >= 0")
    placement = make_placement(machine, p, ranks_per_node)
    cost = CostModel(placement, use_shm=use_shm)
    compute = machine.compute
    ranks = list(range(p))
    n_local = n_total / p

    local_sort = compute.sort(int(n_local), itemsize)

    # Splitting: per round one 2(P-1)-entry int64 allreduce plus the local
    # histogram binary searches and validation.
    per_round = (
        cost.allreduce(2 * max(p - 1, 1) * 8, ranks)
        + compute.search(2 * max(p - 1, 1), max(int(n_local), 2))
        + compute.call_overhead
        + 2.0e-9 * max(p - 1, 1)
    )
    splitting = rounds * per_round + cost.allreduce(16, ranks)

    # Exchange: with a random input every rank sends ~(1 - 1/P) of its data,
    # spread uniformly over the other ranks; locality splits the volume into
    # intra-node (memcpy-priced under shm) and network shares.
    # A node cannot hold more of a rank's peers than exist: clamp, or the
    # network share (1 - intra_frac) goes negative when ranks_per_node > p.
    rpn = min(placement.ranks_per_node, p)
    send_bytes = n_local * itemsize * (1.0 - 1.0 / p)
    if p > 1:
        intra_frac = min((rpn - 1) / (p - 1), 1.0)
    else:
        intra_frac = 1.0
    if use_shm:
        intra_link = machine.link(Level.NODE)
    else:
        # priced as MPI loop-back (ablation)
        node = machine.link(Level.NODE)
        intra_link = type(node)(latency=node.latency * 4, bandwidth=node.bandwidth * 0.5)
    net_link = machine.link(Level.NETWORK) if machine.nodes > 1 else intra_link
    # NIC sharing (all ranks of a node drive the network concurrently) and
    # the measured MPI_Alltoallv bulk-payload inefficiency.
    net_beta = net_link.beta * min(rpn, p) * cost.alltoallv_inefficiency
    per_rank = (
        send_bytes * intra_frac * intra_link.beta
        + send_bytes * (1.0 - intra_frac) * net_beta
        + (p - 1) * (intra_frac * intra_link.latency + (1 - intra_frac) * net_link.latency)
    )
    cross_total = n_total * itemsize * (1.0 - intra_frac)
    floor = cross_total / machine.bisection_bandwidth
    exchange = max(per_rank, floor) + cost.software_overhead

    merge = merge_cost(compute, int(n_local), min(p, max(int(n_local), 1)), merge_strategy)

    # Other: exchange preparation — bound histogram, the rank-order-fill
    # EXCLUSIVE_SCAN, and the send-count ALL-TO-ALL (O(p) volume per rank).
    other = (
        cost.scan(max(p - 1, 1) * 8, ranks)
        + cost.alltoall(8, ranks)
        + compute.search(2 * max(p - 1, 1), max(int(n_local), 2))
        + compute.partition(2 * p)
    )

    return PhasePrediction(
        local_sort=local_sort,
        splitting=splitting,
        exchange=exchange,
        merge=merge,
        other=other,
    )


# ------------------------------------------------------- wire-byte models
#
# Per-phase *wire bytes*, not seconds: the modelled column of the
# ``repro.analyze cost`` conformance check.  The formulas follow the
# runtime's recording conventions (``Stats.record_collective`` and the
# per-rank trace spans): symmetric collectives count every rank's payload,
# ALLTOALLV counts the total exchanged volume including self-chunks, and
# BCAST counts the root payload once.


def traffic_histsort(
    n_total: int, p: int, *, rounds: int, itemsize: int = 8
) -> dict[str, float]:
    """Modelled per-phase wire bytes of the histogram sort.

    ``splitting`` carries the fixed-size setup collectives (the size
    allgather, the (min, max) reduction, and the extreme-key bounds) plus
    ``rounds`` histogram ALLREDUCEs of ``2(p-1)`` int64 counts — an upper
    bound, since boundaries retire as they converge.  ``other`` is the
    exchange preparation (rank-order-fill EXCLUSIVE_SCAN + send-count
    ALL-TO-ALL); ``exchange`` the full data volume.
    """
    if p < 1 or n_total < 0:
        raise ValueError("need p >= 1 and n_total >= 0")
    b = max(p - 1, 0)
    return {
        "local_sort": 0.0,
        "splitting": p * (8.0 + 24.0 + 16.0) + rounds * p * 16.0 * b,
        "other": p * 8.0 * b + p * (8.0 * p + 8.0),
        "exchange": float(n_total) * itemsize,
        "merge": 0.0,
    }


def traffic_samplesort(
    n_total: int, p: int, *, oversample: int = 32, itemsize: int = 8
) -> dict[str, float]:
    """Modelled per-phase wire bytes of random sample sort.

    ``sampling`` gathers ``min(oversample, n/p)`` keys per rank to the
    root; ``splitting`` broadcasts the ``p-1`` chosen splitters (root
    payload only, per the recording convention).
    """
    if p < 1 or n_total < 0:
        raise ValueError("need p >= 1 and n_total >= 0")
    s = min(oversample, n_total // max(p, 1))
    return {
        "sampling": p * float(s) * itemsize,
        "splitting": max(p - 1, 0) * float(itemsize),
        "exchange": float(n_total) * itemsize,
        "merge": 0.0,
    }


def traffic_psrs(n_total: int, p: int, *, itemsize: int = 8) -> dict[str, float]:
    """Modelled per-phase wire bytes of PSRS (regular sampling).

    Every rank contributes ``p-1`` regular samples to the root gather and
    receives the ``p-1`` splitters by broadcast — both inside the
    ``splitting`` phase (the gather happens after the local sort's mark).
    """
    if p < 1 or n_total < 0:
        raise ValueError("need p >= 1 and n_total >= 0")
    b = max(p - 1, 0)
    return {
        "local_sort": 0.0,
        "splitting": p * b * float(itemsize) + b * float(itemsize),
        "exchange": float(n_total) * itemsize,
        "merge": 0.0,
    }


def predict_hss(
    machine: MachineSpec,
    n_total: int,
    p: int,
    *,
    ranks_per_node: int,
    rounds: int,
    cand_per_round: float,
    itemsize: int = 8,
    use_shm: bool = True,
) -> PhasePrediction:
    """Modelled phases of Histogram Sort with Sampling at scale ``(N, P)``.

    ``rounds`` and ``cand_per_round`` (the candidate-vector size the sampled
    refinement histograms each round) are measured from executed runs —
    they carry HSS's volatility into the prediction.
    """
    # Both implementations use a single-threaded STL sort for the local
    # phases (§VI-B), so everything but the splitting phase matches DASH.
    base = predict_histsort(
        machine,
        n_total,
        p,
        ranks_per_node=ranks_per_node,
        rounds=0,
        itemsize=itemsize,
        merge_strategy="sort",
        use_shm=use_shm,
    )
    placement = make_placement(machine, p, ranks_per_node)
    cost = CostModel(placement, use_shm=use_shm)
    compute = machine.compute
    ranks = list(range(p))
    n_local = max(int(n_total / p), 2)
    cand = max(cand_per_round, 1.0)
    per_round = (
        cost.allgather(cand * itemsize / p, ranks)      # sampled proposals
        + compute.sort(int(cand))                        # candidate dedup/sort
        + compute.search(int(2 * cand), n_local)         # local histogram
        + cost.allreduce(2 * cand * 8, ranks)            # global histogram
        + compute.call_overhead
    )
    splitting = rounds * per_round + cost.allreduce(16, ranks)
    return PhasePrediction(
        local_sort=base.local_sort,
        splitting=splitting,
        exchange=base.exchange,
        merge=base.merge,
        other=base.other,
    )


def predict_samplesort(
    machine: MachineSpec,
    n_total: int,
    p: int,
    *,
    ranks_per_node: int,
    oversample: int = 16,
    itemsize: int = 8,
    use_shm: bool = True,
) -> PhasePrediction:
    """Modelled phases of one-shot sample sort (the §III baseline).

    Splitting is a single round: every rank contributes ``oversample``
    regular samples, the root sorts the ``oversample·p`` candidates and
    broadcasts ``p-1`` splitters.  No histogramming, so the phase is cheap —
    the price is imbalance, which this closed form (like the paper's §III
    discussion) does not capture; dry runs through the executing runtime do.
    """
    base = predict_histsort(
        machine,
        n_total,
        p,
        ranks_per_node=ranks_per_node,
        rounds=0,
        itemsize=itemsize,
        merge_strategy="sort",
        use_shm=use_shm,
    )
    placement = make_placement(machine, p, ranks_per_node)
    cost = CostModel(placement, use_shm=use_shm)
    compute = machine.compute
    ranks = list(range(p))
    splitting = (
        cost.gather(oversample * itemsize, ranks)
        + compute.sort(oversample * p)
        + cost.bcast(max(p - 1, 1) * itemsize, ranks)
        + compute.call_overhead
    )
    return PhasePrediction(
        local_sort=base.local_sort,
        splitting=splitting,
        exchange=base.exchange,
        merge=base.merge,
        other=base.other,
    )
