"""Adaptive phi-accrual failure detection over virtual-clock heartbeats.

Fixed timeouts are wrong twice: too short and a congested-but-healthy
link is declared dead (spurious recovery epochs), too long and a real
failure stalls every survivor for the whole deadline.  The phi-accrual
detector (Hayashibara et al., SRDS'04 — the design Akka/Cassandra ship)
replaces the binary alive/dead verdict with a *suspicion level*

    phi(t) = -log10( P(no heartbeat by t | observed inter-arrival history) )

computed from a sliding window of observed arrival gaps.  Consumers pick
a threshold: ``phi >= threshold`` means "the probability that this
silence is ordinary jitter has dropped below ``10**-threshold``".

In this runtime there is no wall clock and no background ticker: every
*observation* is a virtual-time event the caller already has in hand —
the causal arrival of an ARQ acknowledgement, a reliable data delivery,
a buddy-checkpoint receipt.  Each such arrival is a heartbeat: evidence
the peer (and the link to it) was alive at that virtual instant.  The
detector turns the history of those gaps into an *adaptive deadline*
(:meth:`deadline`), which the reliable layer uses in place of its fixed
``base_timeout`` ladder, so links that are merely slow (delay spikes,
degradation windows) earn proportionally longer patience while quiet
fast links are given up on quickly.

Determinism
-----------
All inputs are virtual times, which are a pure function of the program
and the fault plan's seed; the window is updated only by the owning
rank's thread (per-link state lives in rank-owned dict slots).  Replays
are therefore bit-identical — the detector adds no randomness and reads
no wall clock.
"""

from __future__ import annotations

import math
from collections import deque

__all__ = ["PhiAccrualDetector"]

#: floor on the probability of "no arrival yet" so phi stays finite
_MIN_P = 1e-12


class PhiAccrualDetector:
    """Suspicion accrual over one link's virtual-time arrival history.

    Parameters
    ----------
    window:
        Sliding-window length (number of inter-arrival samples kept).
    min_std:
        Lower bound on the modelled standard deviation, as a fraction of
        the mean interval; guards against a degenerate zero-variance
        window declaring any deviation an instant failure.
    first_interval:
        Prior inter-arrival estimate used until two observations exist
        (virtual seconds).
    """

    __slots__ = ("window", "min_std", "first_interval", "_gaps", "_last",
                 "observations")

    def __init__(self, window: int = 64, min_std: float = 0.125,
                 first_interval: float = 1e-3):
        if window < 2:
            raise ValueError("window must be >= 2")
        if min_std <= 0.0:
            raise ValueError("min_std must be positive")
        if first_interval <= 0.0:
            raise ValueError("first_interval must be positive")
        self.window = window
        self.min_std = min_std
        self.first_interval = first_interval
        self._gaps: deque[float] = deque(maxlen=window)
        self._last: float | None = None
        #: total arrivals observed (monotone; survives window eviction)
        self.observations = 0

    # ------------------------------------------------------------ recording

    def observe(self, now: float) -> None:
        """Record a heartbeat (any liveness-proving arrival) at virtual
        time ``now``.  Out-of-order arrivals (causal arrival times are not
        monotone under retransmission) contribute a zero-width gap, which
        correctly *tightens* the model — two arrivals at the same instant
        are strong evidence of a live link."""
        self.observations += 1
        if self._last is not None:
            self._gaps.append(max(0.0, now - self._last))
            if now < self._last:
                return
        self._last = now

    # ------------------------------------------------------------- modelling

    def _moments(self) -> tuple[float, float]:
        """(mean, std) of the modelled inter-arrival distribution."""
        if not self._gaps:
            mean = self.first_interval
        else:
            mean = sum(self._gaps) / len(self._gaps)
            if mean <= 0.0:
                mean = self.first_interval
        if len(self._gaps) >= 2:
            var = sum((g - mean) ** 2 for g in self._gaps) / len(self._gaps)
            std = math.sqrt(var)
        else:
            std = 0.0
        return mean, max(std, self.min_std * mean)

    def phi(self, now: float) -> float:
        """Suspicion level at virtual time ``now``.

        Uses the exponential-tail approximation of the original paper's
        normal CDF (P(gap > x) ≈ 10^(-x / (mean + k·std)) shaping): cheap,
        monotone in the silence duration, and scale-free in the history.
        """
        if self._last is None:
            return 0.0
        silence = now - self._last
        if silence <= 0.0:
            return 0.0
        mean, std = self._moments()
        # Probability that an inter-arrival exceeds `silence` under an
        # exponential fit whose rate matches the window mean, widened by
        # the observed jitter: P = exp(-silence / (mean + 2*std)).
        scale = mean + 2.0 * std
        p = math.exp(-silence / scale) if scale > 0.0 else _MIN_P
        return -math.log10(max(p, _MIN_P))

    def suspect(self, now: float, threshold: float = 8.0) -> bool:
        """True when ``phi(now)`` crosses ``threshold``."""
        return self.phi(now) >= threshold

    def deadline(self, threshold: float = 8.0) -> float:
        """Silence duration (virtual seconds from the last heartbeat) at
        which ``phi`` would reach ``threshold`` — the adaptive timeout.

        Inverse of :meth:`phi`: ``threshold = silence / (scale * ln 10)``
        solved for silence.  With no history yet this degrades to the
        prior ``first_interval`` scaled the same way, matching a fixed
        conservative timeout.
        """
        mean, std = self._moments()
        scale = mean + 2.0 * std
        return threshold * math.log(10.0) * scale

    # ---------------------------------------------------------- introspection

    @property
    def last_arrival(self) -> float | None:
        """Virtual time of the newest observation (None before any)."""
        return self._last

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        mean, std = self._moments()
        return (f"PhiAccrualDetector(n={self.observations}, mean={mean:.3g}, "
                f"std={std:.3g})")
