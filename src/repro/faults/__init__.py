"""Deterministic fault injection for the SPMD runtime (the adversary).

A :class:`FaultPlan` is built from a :class:`FaultSpec` plus a seed and is
fully deterministic: every drop / duplication / delay decision is a pure
function of ``(seed, src, dst, link-event-index)`` and every crash fires
at a fixed per-rank operation count or virtual time — never from wall
clock.  Attach a plan to a runtime (``Runtime(size, faults=plan)`` or
``run_spmd(..., faults=plan)``) and the p2p delivery path of
:mod:`repro.mpi` injects the scheduled faults; ``faults=None`` leaves the
runtime bit-identical to an un-instrumented one.

The chaos harness (``python -m repro.faults.chaos``) sweeps seeds x fault
rates x rank counts over the resilient histogram sort and asserts that
every run ends in a correctly sorted output on the surviving ranks or a
typed, diagnosable error — never a hang.
"""

from .detector import PhiAccrualDetector
from .plan import CrashEvent, DegradedWindow, FaultPlan, FaultSpec, FaultStats, LinkFault

__all__ = [
    "CrashEvent",
    "DegradedWindow",
    "FaultPlan",
    "FaultSpec",
    "FaultStats",
    "LinkFault",
    "PhiAccrualDetector",
]
