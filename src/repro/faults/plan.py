"""Seeded, deterministic fault schedules.

All randomness comes from splitmix64 over ``(seed, src, dst, event index)``
— never from ``random``, ``numpy.random`` global state, or wall clock — so
the same :class:`FaultSpec` + seed always yields the same drops, delays,
degradation windows and crash points, regardless of thread scheduling.

Per-link event counters are only ever advanced by the *sending* rank's
thread (each rank sends on its own links), so counting is race-free and the
decision for the k-th message on a link is a pure function of the plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15


def _splitmix64(x: int) -> int:
    """One step of the splitmix64 generator (also used as a mixer)."""
    x = (x + _GOLDEN) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (x ^ (x >> 31)) & _MASK64


def _u01(x: int) -> float:
    """Map a 64-bit word to [0, 1) with 53 bits of precision."""
    return (x >> 11) / float(1 << 53)


@dataclass(frozen=True)
class CrashEvent:
    """Kill ``rank`` at its ``at_op``-th communication operation and/or when
    its virtual clock reaches ``at_time`` (whichever it hits first)."""

    rank: int
    at_op: int | None = None
    at_time: float | None = None

    def __post_init__(self):
        if self.at_op is None and self.at_time is None:
            raise ValueError("CrashEvent needs at_op and/or at_time")
        if self.at_op is not None and self.at_op < 0:
            raise ValueError("at_op must be >= 0")


@dataclass(frozen=True)
class DegradedWindow:
    """Directed link (src -> dst) is slow by ``factor`` for departures in
    [t0, t1) of virtual time."""

    src: int
    dst: int
    t0: float
    t1: float
    factor: float


@dataclass(frozen=True)
class LinkFault:
    """Decision for one message on one link."""

    drop: bool = False
    duplicate: bool = False
    delay_factor: float = 0.0  # extra transfer-cost multiples to pay on delivery


@dataclass(frozen=True)
class FaultSpec:
    """What the adversary is allowed to do; rates are per message.

    ``degrade_links`` transient windows are placed at plan-build time on
    seed-chosen directed links inside ``[0, horizon)`` of virtual time.
    ``crashes`` are explicit; ``crash_ranks`` additionally kills that many
    seed-chosen ranks at a seed-chosen op count in ``crash_op_range``.  At
    least one rank always survives.
    """

    drop_rate: float = 0.0
    dup_rate: float = 0.0
    delay_rate: float = 0.0
    delay_factor: float = 8.0
    degrade_links: int = 0
    degrade_factor: float = 4.0
    degrade_duration: float = 2e-3
    horizon: float = 20e-3
    crashes: tuple[CrashEvent, ...] = ()
    crash_ranks: int = 0
    crash_op_range: tuple[int, int] = (5, 200)

    def __post_init__(self):
        for name in ("drop_rate", "dup_rate", "delay_rate"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {v}")
        if self.delay_factor < 0 or self.degrade_factor < 0:
            raise ValueError("delay/degrade factors must be >= 0")
        if self.degrade_links < 0 or self.crash_ranks < 0:
            raise ValueError("degrade_links / crash_ranks must be >= 0")
        lo, hi = self.crash_op_range
        if not 0 <= lo <= hi:
            raise ValueError(f"bad crash_op_range {self.crash_op_range}")


class FaultPlan:
    """A concrete, deterministic fault schedule for a ``size``-rank run.

    One plan instance belongs to one run: it carries per-link message
    counters that the sending ranks advance.  Build a fresh plan (same
    spec, same seed) to replay the identical schedule.
    """

    def __init__(self, spec: FaultSpec, seed: int, size: int):
        if size < 1:
            raise ValueError("size must be >= 1")
        self.spec = spec
        self.seed = int(seed)
        self.size = size
        self._root = _splitmix64((self.seed & _MASK64) ^ 0xFA017_5EED)
        self._link_seq: dict[tuple[int, int, int], int] = {}
        self._windows: dict[tuple[int, int], list[DegradedWindow]] = {}
        self.windows: tuple[DegradedWindow, ...] = self._place_windows()
        self.crashes: dict[int, CrashEvent] = self._place_crashes()

    # -- construction ----------------------------------------------------

    def _draws(self, stream: int):
        """Infinite deterministic word stream for a given sub-stream id."""
        h = _splitmix64(self._root ^ (stream * 0xC2B2AE3D27D4EB4F) & _MASK64)
        while True:
            h = _splitmix64(h)
            yield h

    def _place_windows(self) -> tuple[DegradedWindow, ...]:
        spec = self.spec
        out: list[DegradedWindow] = []
        if spec.degrade_links and self.size > 1:
            g = self._draws(1)
            span = max(0.0, spec.horizon - spec.degrade_duration)
            for _ in range(spec.degrade_links):
                src = next(g) % self.size
                dst = (src + 1 + next(g) % (self.size - 1)) % self.size
                t0 = _u01(next(g)) * span
                w = DegradedWindow(src, dst, t0, t0 + spec.degrade_duration,
                                   spec.degrade_factor)
                out.append(w)
                self._windows.setdefault((src, dst), []).append(w)
        return tuple(out)

    def _place_crashes(self) -> dict[int, CrashEvent]:
        spec = self.spec
        crashes: dict[int, CrashEvent] = {}
        for ev in spec.crashes:
            if not 0 <= ev.rank < self.size:
                raise ValueError(f"crash rank {ev.rank} out of range for size {self.size}")
            crashes[ev.rank] = ev
        if spec.crash_ranks:
            if spec.crash_ranks + len(crashes) > self.size - 1:
                raise ValueError(
                    f"crash_ranks={spec.crash_ranks} (plus "
                    f"{len(crashes)} explicit) leaves no survivor at "
                    f"size {self.size}"
                )
            g = self._draws(2)
            # deterministic shuffle: order ranks by a per-rank hash
            order = sorted(range(self.size),
                           key=lambda r: _splitmix64(self._root ^ (r * 0xD6E8FEB86659FD93)))
            lo, hi = spec.crash_op_range
            for r in order:
                if len(crashes) >= spec.crash_ranks + len(spec.crashes):
                    break
                if r in crashes:
                    continue
                at_op = lo + next(g) % (hi - lo + 1)
                crashes[r] = CrashEvent(rank=r, at_op=at_op)
        if len(crashes) >= self.size:
            raise ValueError("a fault plan must leave at least one survivor")
        return crashes

    # -- queries (hot path) ----------------------------------------------

    def link_event(
        self, src: int, dst: int, stream: int = 0,
        event: tuple[int, ...] | None = None,
    ) -> LinkFault:
        """Decide the fate of the next message src -> dst on ``stream``.

        Called exactly once per send, by the sending rank's thread only,
        which makes the per-link counter race-free.  ``stream`` separates
        logically independent message sequences sharing a link.

        ``event`` replaces the per-link counter with an explicit event
        identity: the decision becomes a pure function of *what* is being
        sent instead of *how many* messages preceded it on the link.  The
        reliable layer uses it for acknowledgements — acks are reactive
        (one per arrival), so counting them would let a thread-scheduling
        race during epoch teardown (consume-then-ack vs. raise-first)
        skew every later decision on the link.
        """
        if event is None:
            key = (src, dst, stream)
            seq = self._link_seq.get(key, 0)
            self._link_seq[key] = seq + 1
            ev_hash = (seq * _GOLDEN) & _MASK64
        else:
            ev_hash = 0
            for i, e in enumerate(event):
                ev_hash ^= _splitmix64(
                    ((e + 1) * _GOLDEN ^ (i * 0x9FB21C651E98DF25)) & _MASK64
                )
        spec = self.spec
        h = _splitmix64(self._root
                        ^ ((src * 0xBF58476D1CE4E5B9) & _MASK64)
                        ^ ((dst * 0x94D049BB133111EB) & _MASK64)
                        ^ ((stream * 0xC2B2AE3D27D4EB4F) & _MASK64)
                        ^ ev_hash)
        h = _splitmix64(h)
        drop = _u01(h) < spec.drop_rate
        h = _splitmix64(h)
        dup = (not drop) and _u01(h) < spec.dup_rate
        h = _splitmix64(h)
        delay = spec.delay_factor if (not drop and _u01(h) < spec.delay_rate) else 0.0
        return LinkFault(drop=drop, duplicate=dup, delay_factor=delay)

    def degrade_factor(self, src: int, dst: int, departure: float) -> float:
        """Extra transfer-cost multiples from degradation windows covering
        a message departing src -> dst at virtual time ``departure``."""
        ws = self._windows.get((src, dst))
        if not ws:
            return 0.0
        extra = 0.0
        for w in ws:
            if w.t0 <= departure < w.t1:
                extra += w.factor
        return extra

    def crash_now(self, rank: int, op_index: int, clock: float) -> bool:
        """Should ``rank`` die at its ``op_index``-th op / virtual ``clock``?"""
        ev = self.crashes.get(rank)
        if ev is None:
            return False
        if ev.at_op is not None and op_index >= ev.at_op:
            return True
        if ev.at_time is not None and clock >= ev.at_time:
            return True
        return False

    @property
    def has_crashes(self) -> bool:
        return bool(self.crashes)

    def describe(self) -> str:
        spec = self.spec
        parts = [f"seed={self.seed}", f"size={self.size}",
                 f"drop={spec.drop_rate:g}", f"dup={spec.dup_rate:g}",
                 f"delay={spec.delay_rate:g}x{spec.delay_factor:g}"]
        if self.windows:
            parts.append("degraded=" + ",".join(
                f"{w.src}->{w.dst}@[{w.t0:.4g},{w.t1:.4g})" for w in self.windows))
        if self.crashes:
            parts.append("crashes=" + ",".join(
                f"r{ev.rank}@" + (f"op{ev.at_op}" if ev.at_op is not None
                                  else f"t{ev.at_time:g}")
                for ev in sorted(self.crashes.values(), key=lambda e: e.rank)))
        return "FaultPlan(" + " ".join(parts) + ")"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return self.describe()


@dataclass
class FaultStats:
    """Mutable per-run tally of injected events and the recovery machinery's
    responses (for traces and reports).

    Every counter here must stay a *pure function of the plan's seed* for
    runs that complete: the chaos harness replays a seed and compares
    summaries bit-for-bit.  The injection counters are advanced by the
    sending rank at data-plane decision points; the detection/recovery
    counters are advanced at virtual-time-deterministic events only
    (fired quiescence deadlines, exhausted retry ladders, recovery epoch
    transitions) — never at schedule-dependent points like ack
    processing.  The one exception is the teardown window of a *failing*
    run: between one rank's raise and the abort reaching its peers, a
    peer mid-retry-ladder may squeeze in a few more counted events, so
    the chaos harness compares only error classes (not tallies) for
    error outcomes.
    """

    dropped: int = 0
    duplicated: int = 0
    delayed: int = 0
    crashed: list[int] = field(default_factory=list)
    #: virtual deadlines fired by the quiescence arbiter (failure suspicions)
    detections: int = 0
    #: per-link circuit breakers that tripped open (retry budget exhausted
    #: ``breaker_threshold`` times in a row)
    breaker_trips: int = 0
    #: recovery epochs that rebuilt a communicator (spare substitution or
    #: shrink) after a failure
    recoveries: int = 0
    #: warm spare ranks substituted for crashed actives
    spares_used: int = 0
    #: buddy checkpoints taken (one per rank per phase boundary)
    checkpoints: int = 0
    #: partitions restored from a buddy replica after a crash
    restored: int = 0
    #: partitions lost for good (holder and buddy both dead)
    lost: int = 0

    def summary(self) -> str:
        s = (f"dropped={self.dropped} duplicated={self.duplicated} "
             f"delayed={self.delayed} crashed={sorted(self.crashed)}")
        if self.detections or self.breaker_trips:
            s += (f" detections={self.detections} "
                  f"breaker_trips={self.breaker_trips}")
        if self.recoveries or self.checkpoints:
            s += (f" recoveries={self.recoveries} spares={self.spares_used} "
                  f"checkpoints={self.checkpoints} restored={self.restored} "
                  f"lost={self.lost}")
        return s
