"""Chaos harness: sweep seeded fault plans over the resilient sort.

Every case builds a deterministic :class:`FaultPlan` (seed x drop rate x
rank count), runs the fault-tolerant histogram sort under it, and asserts
the ULFM-style contract: the run ends in a **correctly sorted output of
the surviving ranks' data** or a **clean typed error** — never a hang.
A wall-clock backstop (``Runtime.run(timeout=...)``) turns any would-be
hang into a hard failure with the per-rank wait states at expiry.

Optionally every case is executed twice and the virtual-time makespan and
fault tally are compared for exact equality (``--determinism``), pinning
the schedule-independence guarantee of the fault layer.

Usage::

    python -m repro.faults.chaos --seeds 20 --sizes 4,8 --drops 0.05,0.2 \\
        --crash-ranks 1 --check --determinism

Exit status is non-zero if any case hangs, produces an unsorted/unverified
output, escapes with an untyped error, or (with ``--determinism``) replays
differently.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass

import numpy as np

from ..core.config import SortConfig
from ..core.histsort import histogram_sort
from ..mpi import Runtime
from ..mpi.errors import DeadlockError, SPMDError
from .plan import FaultPlan, FaultSpec

__all__ = ["ChaosCase", "ChaosOutcome", "run_case", "sweep", "main"]


@dataclass(frozen=True)
class ChaosCase:
    """One point of the sweep."""

    seed: int
    size: int
    drop_rate: float
    crash_ranks: int
    n_per_rank: int
    check: bool

    def plan(self) -> FaultPlan:
        spec = FaultSpec(
            drop_rate=self.drop_rate,
            dup_rate=self.drop_rate / 2.0,
            delay_rate=0.1,
            degrade_links=1,
            crash_ranks=self.crash_ranks,
            crash_op_range=(10, 120),
        )
        return FaultPlan(spec, seed=self.seed, size=self.size)


@dataclass(frozen=True)
class ChaosOutcome:
    """Result of one case: ``kind`` is ``sorted``, ``typed-error`` or a
    failure (``hang``, ``bad-output``, ``untyped-error``)."""

    case: ChaosCase
    kind: str
    makespan: float
    detail: str

    @property
    def ok(self) -> bool:
        return self.kind in ("sorted", "typed-error")


def _sort_program(comm, n_per_rank: int, data_seed: int):
    rng = np.random.default_rng(data_seed + comm.rank)
    local = rng.integers(0, 1 << 62, size=n_per_rank, dtype=np.int64)
    res = histogram_sort(comm, local, SortConfig(resilient=True))
    out = res.output
    if out.size and np.any(np.diff(out) < 0):
        raise AssertionError("locally unsorted output")
    return (int(out.size), res.attempts, res.survivors, res.failed)


def run_case(case: ChaosCase, wall_timeout: float = 120.0) -> ChaosOutcome:
    """Run one chaos case; never raises for in-contract behaviour."""
    plan = case.plan()
    rt = Runtime(case.size, faults=plan, check=case.check)
    try:
        results = rt.run(_sort_program, args=(case.n_per_rank, 1000 + case.seed),
                         timeout=wall_timeout)
    except TimeoutError as exc:  # the backstop fired: a real hang
        return ChaosOutcome(case, "hang", rt.elapsed(), str(exc))
    except (SPMDError, DeadlockError) as exc:
        detail = f"{type(exc).__name__}: {exc}".splitlines()[0]
        return ChaosOutcome(case, "typed-error", rt.elapsed(),
                            f"{detail} [{rt.fault_stats.summary()}]")
    except BaseException as exc:  # noqa: BLE001 - classified, not swallowed
        return ChaosOutcome(case, "untyped-error", rt.elapsed(),
                            f"{type(exc).__name__}: {exc}")

    live = [r for r in results if r is not None]
    if not live:
        return ChaosOutcome(case, "bad-output", rt.elapsed(), "no survivors")
    survivors = live[0][2]
    total = sum(r[0] for r in live)
    want = case.n_per_rank * len(survivors)
    if any((r[2], r[3]) != (live[0][2], live[0][3]) for r in live):
        return ChaosOutcome(case, "bad-output", rt.elapsed(),
                            "survivor sets disagree across ranks")
    if total != want:
        return ChaosOutcome(
            case, "bad-output", rt.elapsed(),
            f"element count {total} != {want} for {len(survivors)} survivors",
        )
    return ChaosOutcome(
        case, "sorted", rt.elapsed(),
        f"attempts={live[0][1]} survivors={len(survivors)}/{case.size} "
        f"[{rt.fault_stats.summary()}]",
    )


def sweep(
    cases: list[ChaosCase],
    *,
    wall_timeout: float = 120.0,
    determinism: bool = False,
    verbose: bool = True,
) -> list[ChaosOutcome]:
    """Run every case (twice with ``determinism``); returns all outcomes."""
    outcomes: list[ChaosOutcome] = []
    for case in cases:
        out = run_case(case, wall_timeout)
        if determinism and out.kind != "hang":
            replay = run_case(case, wall_timeout)
            if (replay.kind, replay.makespan, replay.detail) != (
                out.kind, out.makespan, out.detail
            ):
                out = ChaosOutcome(
                    case, "nondeterministic", out.makespan,
                    f"first={out.kind}@{out.makespan!r} "
                    f"replay={replay.kind}@{replay.makespan!r}",
                )
        outcomes.append(out)
        if verbose:
            flag = "ok " if out.ok else "FAIL"
            print(
                f"[{flag}] seed={case.seed:<3d} p={case.size:<2d} "
                f"drop={case.drop_rate:<4g} crash={case.crash_ranks} "
                f"check={int(case.check)} -> {out.kind:<11s} "
                f"t={out.makespan:.5f} {out.detail}"
            )
    return outcomes


def _parse_list(text: str, cast):
    return [cast(x) for x in text.split(",") if x]


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.faults.chaos", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    ap.add_argument("--seeds", type=int, default=20,
                    help="number of fault seeds per configuration")
    ap.add_argument("--seed0", type=int, default=1, help="first seed")
    ap.add_argument("--sizes", type=str, default="4,8",
                    help="comma-separated rank counts")
    ap.add_argument("--drops", type=str, default="0.05,0.2",
                    help="comma-separated drop rates (dup rate is half)")
    ap.add_argument("--crash-ranks", type=int, default=1,
                    help="ranks the plan crashes (0 disables crashes)")
    ap.add_argument("--n", type=int, default=96, help="elements per rank")
    ap.add_argument("--check", action="store_true",
                    help="enable the runtime correctness checker")
    ap.add_argument("--determinism", action="store_true",
                    help="run every case twice and require identical replay")
    ap.add_argument("--wall-timeout", type=float, default=120.0,
                    help="wall-clock backstop per run (seconds)")
    args = ap.parse_args(argv)

    cases = [
        ChaosCase(seed=s, size=p, drop_rate=d, crash_ranks=args.crash_ranks,
                  n_per_rank=args.n, check=args.check)
        for p in _parse_list(args.sizes, int)
        for d in _parse_list(args.drops, float)
        for s in range(args.seed0, args.seed0 + args.seeds)
    ]
    outcomes = sweep(cases, wall_timeout=args.wall_timeout,
                     determinism=args.determinism)
    bad = [o for o in outcomes if not o.ok]
    kinds = sorted({o.kind for o in outcomes})
    counts = {k: sum(1 for o in outcomes if o.kind == k) for k in kinds}
    print(f"chaos: {len(outcomes)} runs -> "
          + ", ".join(f"{k}={v}" for k, v in counts.items()))
    if bad:
        print(f"chaos: {len(bad)} FAILING case(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
