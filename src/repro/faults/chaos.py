"""Chaos harness: sweep seeded fault plans over the resilient sort.

Every case builds a deterministic :class:`FaultPlan` (seed x drop rate x
rank count), runs the fault-tolerant histogram sort under it, and asserts
the ULFM-style contract: the run ends in a **correctly sorted output of
the surviving ranks' data** or a **clean typed error** — never a hang.
A wall-clock backstop (``Runtime.run(timeout=...)``) turns any would-be
hang into a hard failure with the per-rank wait states at expiry.

Optionally every case is executed twice and the virtual-time makespan and
fault tally are compared for exact equality (``--determinism``), pinning
the schedule-independence guarantee of the fault layer.

With ``--spares`` and/or ``--checkpoint`` the sweep exercises the
lossless recovery path (:mod:`repro.core.resilient`): the contract
tightens to a **no-data-loss oracle** — the output multiset must equal
the regenerated inputs of every initial rank except those the result
itself reports as ``lost`` (and legacy mode's crashed ranks), and with
enough spares the rank count must come back unchanged.

Usage::

    python -m repro.faults.chaos --seeds 20 --sizes 4,8 --drops 0.05,0.2 \\
        --crash-ranks 1 --check --determinism
    python -m repro.faults.chaos --spares 2 --checkpoint --crash-ranks 2

Exit status is non-zero if any case hangs, produces an unsorted/unverified
output, loses data it should not, escapes with an untyped error, or (with
``--determinism``) replays differently.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass

import numpy as np

from ..core.config import SortConfig
from ..core.histsort import histogram_sort
from ..core.resilient import ResilientSortResult
from ..mpi import Runtime
from ..mpi.errors import DeadlockError, SPMDError
from .plan import FaultPlan, FaultSpec

__all__ = ["ChaosCase", "ChaosOutcome", "run_case", "sweep", "main"]


@dataclass(frozen=True)
class ChaosCase:
    """One point of the sweep."""

    seed: int
    size: int
    drop_rate: float
    crash_ranks: int
    n_per_rank: int
    check: bool
    #: warm spare ranks substituted for crashed actives (lossless path)
    spares: int = 0
    #: buddy-checkpoint phase boundaries and restore lost partitions
    checkpoint: bool = False

    @property
    def pooled(self) -> bool:
        """True when the case runs the lossless (pool) recovery path."""
        return self.spares > 0 or self.checkpoint

    def plan(self) -> FaultPlan:
        spec = FaultSpec(
            drop_rate=self.drop_rate,
            dup_rate=self.drop_rate / 2.0,
            delay_rate=0.1,
            degrade_links=1,
            crash_ranks=self.crash_ranks,
            crash_op_range=(10, 120),
        )
        return FaultPlan(spec, seed=self.seed, size=self.size + self.spares)


@dataclass(frozen=True)
class ChaosOutcome:
    """Result of one case: ``kind`` is ``sorted``, ``typed-error`` or a
    failure (``hang``, ``bad-output``, ``untyped-error``)."""

    case: ChaosCase
    kind: str
    makespan: float
    detail: str
    #: error classes raised, for failing runs (sorted, deduplicated)
    cause: str = ""

    @property
    def ok(self) -> bool:
        return self.kind in ("sorted", "typed-error")

    @property
    def replay_key(self) -> tuple:
        """What an exact replay must reproduce.

        The virtual schedule (makespan), outcome kind, and — for clean
        runs — the full detail including the fault tally.  A *failing*
        run's teardown is wall-clock raced in its bookkeeping (which
        ranks' exceptions get recorded before the abort reaches them,
        trailing fault-counter increments on ranks mid-ladder), so for
        error outcomes only the error classes are compared.
        """
        stable = self.detail if self.kind in ("sorted", "bad-output") else self.cause
        return (self.kind, self.makespan, stable)


def _case_input(data_seed: int, rank: int, n_per_rank: int) -> np.ndarray:
    """Initial rank ``rank``'s input — regenerable for the loss oracle."""
    rng = np.random.default_rng(data_seed + rank)
    return rng.integers(0, 1 << 62, size=n_per_rank, dtype=np.int64)


def _sort_program(comm, n_per_rank: int, data_seed: int, cfg: SortConfig):
    local = _case_input(data_seed, comm.rank, n_per_rank)
    res = histogram_sort(comm, local, cfg)
    out = res.output
    if out.size and np.any(np.diff(out) < 0):
        raise AssertionError("locally unsorted output")
    # Return the ResilientSortResult itself: a substituted spare resumes
    # mid-sort and can only return what the sort returns, so this keeps
    # active and substitute result slots congruent for the oracle.
    return res


def _check_outputs(case: ChaosCase, rt: Runtime, results: list) -> str | None:
    """No-data-loss oracle: verify the live results against regenerated
    inputs; returns a failure description or ``None``."""
    live = [r for r in results if isinstance(r, ResilientSortResult)]
    if not live:
        return "no survivors"
    first = live[0]
    if any((r.survivors, r.failed, r.lost) !=
           (first.survivors, first.failed, first.lost) for r in live):
        return "survivor/lost sets disagree across ranks"
    if len(live) != first.comm.size:
        return f"{len(live)} results for a size-{first.comm.size} communicator"
    # Multiset conservation: everything not reported lost must come out.
    # The legacy path loses every crashed rank's data but reports lost=()
    # for backward compatibility, so fold `failed` in for it.
    missing = set(first.lost)
    if not case.pooled:
        missing |= set(first.failed)
    expect = np.sort(np.concatenate(
        [_case_input(1000 + case.seed, r, case.n_per_rank)
         for r in range(case.size) if r not in missing]
        or [np.empty(0, dtype=np.int64)]
    ))
    got = np.sort(np.concatenate([r.output for r in live]))
    if not np.array_equal(got, expect):
        return (f"data loss: {got.size} elements out, {expect.size} "
                f"recoverable (lost={sorted(missing)})")
    # Partition boundaries: concatenation in rank order is globally sorted.
    by_rank = sorted(live, key=lambda r: r.comm.rank)
    chain = np.concatenate([r.output for r in by_rank])
    if chain.size and np.any(np.diff(chain) < 0):
        return "partition boundaries out of order"
    # Spare substitution must keep the rank count whenever the pool was
    # deep enough to cover every crash of the run — counting crashes of
    # spares themselves (a parked spare's death drains the pool, a
    # substituted spare's death needs covering again).
    if case.pooled and len(rt.fault_stats.crashed) <= case.spares:
        if first.comm.size != case.size:
            return (f"p changed to {first.comm.size} although {case.spares} "
                    f"spare(s) could cover {len(rt.fault_stats.crashed)} "
                    f"crash(es)")
    return None


def run_case(case: ChaosCase, wall_timeout: float = 120.0) -> ChaosOutcome:
    """Run one chaos case; never raises for in-contract behaviour."""
    plan = case.plan()
    cfg = SortConfig(resilient=True, checkpoint=case.checkpoint)
    rt = Runtime(case.size, spares=case.spares, faults=plan, check=case.check)
    try:
        results = rt.run(_sort_program,
                         args=(case.n_per_rank, 1000 + case.seed, cfg),
                         timeout=wall_timeout)
    except TimeoutError as exc:  # the backstop fired: a real hang
        return ChaosOutcome(case, "hang", rt.elapsed(), str(exc))
    except (SPMDError, DeadlockError) as exc:
        detail = f"{type(exc).__name__}: {exc}".splitlines()[0]
        inner = (exc.failures.values() if isinstance(exc, SPMDError) else (exc,))
        cause = ",".join(sorted({type(e).__name__ for e in inner}))
        return ChaosOutcome(case, "typed-error", rt.elapsed(),
                            f"{detail} [{rt.fault_stats.summary()}]", cause)
    except BaseException as exc:  # noqa: BLE001 - classified, not swallowed
        return ChaosOutcome(case, "untyped-error", rt.elapsed(),
                            f"{type(exc).__name__}: {exc}",
                            type(exc).__name__)

    bad = _check_outputs(case, rt, results)
    if bad is not None:
        return ChaosOutcome(case, "bad-output", rt.elapsed(), bad)
    live = [r for r in results if isinstance(r, ResilientSortResult)]
    first = live[0]
    return ChaosOutcome(
        case, "sorted", rt.elapsed(),
        f"attempts={first.attempts} p={first.comm.size}/{case.size} "
        f"spares={first.spares_used} lost={len(first.lost)} "
        f"[{rt.fault_stats.summary()}]",
    )


def sweep(
    cases: list[ChaosCase],
    *,
    wall_timeout: float = 120.0,
    determinism: bool = False,
    verbose: bool = True,
) -> list[ChaosOutcome]:
    """Run every case (twice with ``determinism``); returns all outcomes."""
    outcomes: list[ChaosOutcome] = []
    for case in cases:
        out = run_case(case, wall_timeout)
        if determinism and out.kind != "hang":
            replay = run_case(case, wall_timeout)
            if replay.replay_key != out.replay_key:
                out = ChaosOutcome(
                    case, "nondeterministic", out.makespan,
                    f"first={out.kind}@{out.makespan!r} "
                    f"replay={replay.kind}@{replay.makespan!r}",
                )
        outcomes.append(out)
        if verbose:
            flag = "ok " if out.ok else "FAIL"
            print(
                f"[{flag}] seed={case.seed:<3d} p={case.size:<2d} "
                f"drop={case.drop_rate:<4g} crash={case.crash_ranks} "
                f"spares={case.spares} ckpt={int(case.checkpoint)} "
                f"check={int(case.check)} -> {out.kind:<11s} "
                f"t={out.makespan:.5f} {out.detail}"
            )
    return outcomes


def _parse_list(text: str, cast):
    return [cast(x) for x in text.split(",") if x]


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.faults.chaos", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    ap.add_argument("--seeds", type=int, default=20,
                    help="number of fault seeds per configuration")
    ap.add_argument("--seed0", type=int, default=1, help="first seed")
    ap.add_argument("--sizes", type=str, default="4,8",
                    help="comma-separated rank counts")
    ap.add_argument("--drops", type=str, default="0.05,0.2",
                    help="comma-separated drop rates (dup rate is half)")
    ap.add_argument("--crash-ranks", type=int, default=1,
                    help="ranks the plan crashes (0 disables crashes)")
    ap.add_argument("--n", type=int, default=96, help="elements per rank")
    ap.add_argument("--spares", type=int, default=0,
                    help="warm spare ranks for lossless substitution")
    ap.add_argument("--checkpoint", action="store_true",
                    help="buddy-checkpoint phase boundaries (lossless path)")
    ap.add_argument("--check", action="store_true",
                    help="enable the runtime correctness checker")
    ap.add_argument("--determinism", action="store_true",
                    help="run every case twice and require identical replay")
    ap.add_argument("--wall-timeout", type=float, default=120.0,
                    help="wall-clock backstop per run (seconds)")
    args = ap.parse_args(argv)

    cases = [
        ChaosCase(seed=s, size=p, drop_rate=d, crash_ranks=args.crash_ranks,
                  n_per_rank=args.n, check=args.check, spares=args.spares,
                  checkpoint=args.checkpoint)
        for p in _parse_list(args.sizes, int)
        for d in _parse_list(args.drops, float)
        for s in range(args.seed0, args.seed0 + args.seeds)
    ]
    outcomes = sweep(cases, wall_timeout=args.wall_timeout,
                     determinism=args.determinism)
    bad = [o for o in outcomes if not o.ok]
    kinds = sorted({o.kind for o in outcomes})
    counts = {k: sum(1 for o in outcomes if o.kind == k) for k in kinds}
    print(f"chaos: {len(outcomes)} runs -> "
          + ", ".join(f"{k}={v}" for k, v in counts.items()))
    if bad:
        print(f"chaos: {len(bad)} FAILING case(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
