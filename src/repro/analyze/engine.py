"""The whole-program analysis pipeline: per-file records + global phase.

:func:`analyze_program` is the one entry point behind both the CLI and
:func:`repro.analyze.astlint.analyze_paths`.  It runs in two phases:

**Per-file (cacheable).**  Each ``.py`` file is hashed; on a store hit the
cached :class:`~repro.analyze.store.FileRecord` is reused and the file is
*never parsed*.  On a miss the file is parsed once and every parse-derived
artifact is extracted: the legacy intraprocedural findings, the
module-local tag audit, the suppression table, and the interprocedural
:class:`~repro.analyze.interproc.ModuleSummary`.

**Global (every run).**  The cross-module literal-tag join and the
interprocedural fixpoint (:func:`repro.analyze.interproc.check_program`)
run over the union of cached and fresh records — they are cheap because
they only touch serialized summaries.  Suppression is applied from the
cached tables, then findings are deduplicated and sorted.  The output is
therefore byte-identical between cold and warm runs, and identical to the
legacy per-module pipeline for the eight intraprocedural rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from .astlint import (
    Finding,
    ModuleInfo,
    RULE_PARSE_ERROR,
    RULE_STALE_SUPPRESSION,
    _derive_modname,
    _suppresses,
    collect_files,
    ignore_comment_lines,
    module_from_source,
    suppression_table,
)
from .costlint import check_cost_program
from .interproc import check_program, summarize_module
from .store import AnalysisStore, FileRecord, content_hash

__all__ = ["AnalysisStats", "AnalysisReport", "analyze_program", "build_record"]


@dataclass
class AnalysisStats:
    """How much work one :func:`analyze_program` call actually did."""

    files: int = 0  #: files handed to the analyzer
    parsed: int = 0  #: files parsed + summarized this run (store misses)
    reused: int = 0  #: files served from the store without parsing


@dataclass
class AnalysisReport:
    findings: list[Finding] = field(default_factory=list)
    stats: AnalysisStats = field(default_factory=AnalysisStats)


def build_record(source: str, path: str) -> FileRecord:
    """Extract every cacheable artifact from one file's source (cold path)."""
    from .rules import check_module, module_tag_sites

    modname = _derive_modname(Path(path))
    out = module_from_source(source, path)
    if isinstance(out, Finding):
        return FileRecord(path=path, modname=modname, parse_error=out)
    mod: ModuleInfo = out
    tag_findings, literal_tags = module_tag_sites(mod)
    return FileRecord(
        path=path,
        modname=mod.modname,
        findings=check_module(mod),
        tag_findings=tag_findings,
        literal_tags=literal_tags,
        suppression=suppression_table(mod.lines),
        ignore_lines=ignore_comment_lines(source),
        summary=summarize_module(mod),
    )


def analyze_program(
    paths: Iterable[str | Path], store: AnalysisStore | None = None
) -> AnalysisReport:
    """Analyze every ``.py`` file under ``paths`` with the full rule set.

    With a ``store``, unchanged files are served from cache (their record
    was extracted by an earlier run) and the store is saved afterwards;
    without one, every file is parsed fresh.  Output is identical either
    way — only the work differs.
    """
    from .rules import join_literal_tags

    report = AnalysisReport()
    records: list[FileRecord] = []
    unreadable: list[Finding] = []

    for file in collect_files(paths):
        report.stats.files += 1
        try:
            source = file.read_text(encoding="utf-8")
        except OSError as exc:
            unreadable.append(Finding(str(file), 1, RULE_PARSE_ERROR, str(exc)))
            continue
        path = str(file)
        digest = content_hash(source)
        record = store.get(path, digest) if store is not None else None
        if record is None:
            record = build_record(source, path)
            report.stats.parsed += 1
            if store is not None:
                store.put(path, digest, record)
        else:
            report.stats.reused += 1
        records.append(record)

    if store is not None:
        store.save()

    findings: list[Finding] = []
    tag_sites: list[tuple[str, str, int, int]] = []
    summaries = []
    suppression: dict[str, dict[int, list[str] | None]] = {}
    for rec in records:
        findings.extend(rec.findings)
        findings.extend(rec.tag_findings)
        tag_sites.extend((rec.modname, rec.path, v, l) for v, l in rec.literal_tags)
        if rec.summary is not None:
            summaries.append(rec.summary)
        suppression[rec.path] = rec.suppression
    findings.extend(join_literal_tags(tag_sites))
    findings.extend(check_program(summaries))
    findings.extend(check_cost_program(summaries))

    kept: list[Finding] = []
    used: set[tuple[str, int]] = set()
    for f in findings:
        if _suppresses(suppression.get(f.path, {}).get(f.line, False), f.rule):
            used.add((f.path, f.line))
        else:
            kept.append(f)
    # stale-suppression lint: an ignore comment (verified to be a real
    # comment, not docstring text) that silenced nothing this run.  Like
    # parse errors these are never themselves suppressible — a stale
    # marker must not be able to hide behind itself.
    for rec in records:
        for line in rec.ignore_lines:
            spec = rec.suppression.get(line, False)
            if spec is False or (rec.path, line) in used:
                continue
            listed = "" if spec is None else f"[{', '.join(spec)}]"
            kept.append(
                Finding(
                    rec.path,
                    line,
                    RULE_STALE_SUPPRESSION,
                    f"'# spmd: ignore{listed}' suppresses nothing — no rule "
                    "fires on this line; remove the comment or fix its rule "
                    "list",
                )
            )
    # parse errors are never suppressible — there is no trustworthy source
    # line to carry the ignore comment
    kept.extend(rec.parse_error for rec in records if rec.parse_error is not None)
    kept.extend(unreadable)
    report.findings = sorted(set(kept), key=lambda f: (f.path, f.line, f.rule))
    return report
