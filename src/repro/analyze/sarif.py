"""SARIF 2.1.0 export for lint findings.

SARIF (Static Analysis Results Interchange Format) is the schema GitHub
code scanning ingests: ``python -m repro.analyze --format sarif`` writes a
log that ``github/codeql-action/upload-sarif`` turns into inline PR
annotations.  One run, one driver (``repro.analyze``), one rule entry per
catalogue rule, one result per finding.
"""

from __future__ import annotations

import json
from typing import Iterable

from .astlint import Finding

__all__ = ["to_sarif", "dump_sarif"]

_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
_VERSION = "2.1.0"

#: findings that abort analysis map to SARIF "error"; lint rules to "warning"
_ERROR_RULES = frozenset({"SPMD-PARSE-ERROR"})


#: DESIGN.md carries one heading per rule; GitHub renders `#spmd-...`
#: anchors for them, so the helpUri of every rule resolves to its entry.
_HELP_DOC = "DESIGN.md"


def _help_uri(rule_id: str) -> str:
    return f"{_HELP_DOC}#{rule_id.lower()}"


def _rule_catalogue() -> list[dict]:
    from .rules import RULES

    rules = [
        {
            "id": rule.id,
            "shortDescription": {"text": rule.summary},
            **(
                {"fullDescription": {"text": rule.doc, "markdown": rule.doc}}
                if rule.doc
                else {}
            ),
            "helpUri": _help_uri(rule.id),
            "defaultConfiguration": {"level": "warning"},
            "properties": {"layer": rule.layer},
        }
        for rule in RULES
    ]
    parse_doc = (
        "The analyzer could not parse an input file, so none of its rules "
        "ran there. A syntax error anywhere in the linted tree fails the "
        "run with exit code 2 — a parse error must not read as a clean pass."
    )
    stale_doc = (
        "A `# spmd: ignore[RULE]` suppression comment no longer matches any "
        "finding on its line. Stale suppressions hide future regressions of "
        "the suppressed rule; delete the comment (it is never baselined — "
        "`--baseline write` excludes this rule)."
    )
    rules.append(
        {
            "id": "SPMD-PARSE-ERROR",
            "shortDescription": {"text": "input could not be parsed"},
            "fullDescription": {"text": parse_doc, "markdown": parse_doc},
            "helpUri": _help_uri("SPMD-PARSE-ERROR"),
            "defaultConfiguration": {"level": "error"},
        }
    )
    rules.append(
        {
            "id": "SPMD-STALE-SUPPRESSION",
            "shortDescription": {
                "text": "spmd: ignore comment no longer suppresses anything"
            },
            "fullDescription": {"text": stale_doc, "markdown": stale_doc},
            "helpUri": _help_uri("SPMD-STALE-SUPPRESSION"),
            "defaultConfiguration": {"level": "warning"},
            "properties": {"layer": "meta"},
        }
    )
    return rules


def _location(path: str, line: int) -> dict:
    return {
        "physicalLocation": {
            "artifactLocation": {
                "uri": path.replace("\\", "/"),
                "uriBaseId": "SRCROOT",
            },
            "region": {"startLine": max(line, 1)},
        }
    }


def _result(finding: Finding, rule_index: dict[str, int]) -> dict:
    out = {
        "ruleId": finding.rule,
        **(
            {"ruleIndex": rule_index[finding.rule]}
            if finding.rule in rule_index
            else {}
        ),
        "level": "error" if finding.rule in _ERROR_RULES else "warning",
        "message": {"text": finding.message},
        "locations": [_location(finding.path, finding.line)],
    }
    if finding.related:
        # secondary locations of interprocedural findings — e.g. the
        # collective inside the callee when the primary location is the
        # divergent call site in another file
        out["relatedLocations"] = [
            _location(path, line) for path, line in finding.related
        ]
    return out


def to_sarif(findings: Iterable[Finding]) -> dict:
    """Findings as a SARIF 2.1.0 log object (JSON-serializable dict)."""
    rules = _rule_catalogue()
    rule_index = {r["id"]: i for i, r in enumerate(rules)}
    return {
        "$schema": _SCHEMA,
        "version": _VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.analyze",
                        "informationUri": "https://github.com/",
                        "rules": rules,
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": [_result(f, rule_index) for f in findings],
            }
        ],
    }


def dump_sarif(findings: Iterable[Finding], stream) -> None:
    """Serialize findings as SARIF JSON to a text stream."""
    json.dump(to_sarif(findings), stream, indent=2, sort_keys=False)
    stream.write("\n")
