"""The incremental analysis store: per-file records keyed by content hash.

Parsing and per-file fact extraction dominate the analyzer's runtime; the
whole-program phase (literal-tag join + interprocedural fixpoint) is cheap
because it runs over small serialized summaries.  The store exploits that
split: every analyzed file gets a :class:`FileRecord` holding *all* of its
parse-derived artifacts —

* the raw intraprocedural findings (unsuppressed, exactly as the legacy
  per-module rules emit them),
* the module-local half of the tag audit plus its free-literal sites,
* the ``# spmd: ignore`` suppression table,
* the call-graph :class:`~repro.analyze.callgraph.ModuleIndex` and the
  interprocedural :class:`~repro.analyze.interproc.ModuleSummary`.

A record is valid while the file's SHA-256 matches; the whole store is
valid while :data:`ANALYZER_VERSION` and the tag-namespace signature
match (rule changes and ``repro.mpi.tags`` edits invalidate everything —
cached per-module findings embed both).  Warm runs therefore re-parse
only changed files and still reproduce byte-identical output, because the
global phase always re-runs over the union of cached + fresh records.

Persistence mirrors :mod:`repro.tune.cache`: a small JSON document,
written atomically (temp file + rename), that degrades to empty on
corruption — the store is an accelerator, never a correctness dependency.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from .astlint import Finding
from .callgraph import ModuleIndex  # noqa: F401  (re-exported record part)
from .interproc import ModuleSummary

__all__ = [
    "ANALYZER_VERSION",
    "STORE_ENV",
    "FileRecord",
    "AnalysisStore",
    "default_store_path",
    "content_hash",
]

#: bump on any change to rule logic, summary extraction, or record layout —
#: cached records embed findings and summaries produced by this code
ANALYZER_VERSION = 2

#: on-disk layout version of the store document itself
STORE_SCHEMA = 1

#: environment override for the default store location
STORE_ENV = "REPRO_ANALYZE_CACHE"


def default_store_path() -> Path:
    """``$REPRO_ANALYZE_CACHE``, else ``~/.cache/repro/analyze.json``."""
    env = os.environ.get(STORE_ENV, "").strip()
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME", "").strip()
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "analyze.json"


def content_hash(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def tags_signature() -> str:
    """Fingerprint of the tag-namespace table.

    The per-module tag findings cached in a record depend on
    ``repro.mpi.tags`` (namespace bases, owners, width); editing that
    module must invalidate records of *other* files too, so the signature
    is part of the store's global validity key rather than any per-file
    hash.
    """
    from repro.mpi import tags

    payload = json.dumps(
        {"namespaces": sorted(tags.NAMESPACES.items()), "width": tags.NAMESPACE_WIDTH},
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass
class FileRecord:
    """Every parse-derived artifact of one analyzed file."""

    path: str
    modname: str
    #: raw intraprocedural findings (check_module), unsuppressed
    findings: list[Finding] = field(default_factory=list)
    #: module-local tag-audit findings (namespace ownership), unsuppressed
    tag_findings: list[Finding] = field(default_factory=list)
    #: free-literal tag sites feeding the cross-module join: [(value, line)]
    literal_tags: list[tuple[int, int]] = field(default_factory=list)
    #: suppression (``spmd: ignore``) table: line -> None (all) | [rule ids]
    suppression: dict[int, list[str] | None] = field(default_factory=dict)
    #: suppression-table lines verified (by tokenizing) to be real comments
    #: rather than marker text inside string literals — the only lines the
    #: stale-suppression lint may flag
    ignore_lines: list[int] = field(default_factory=list)
    #: interprocedural summary (None for files that failed to parse)
    summary: ModuleSummary | None = None
    #: parse failure, if any (the record is still cached by content hash)
    parse_error: Finding | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "modname": self.modname,
            "findings": [f.to_dict() for f in self.findings],
            "tag_findings": [f.to_dict() for f in self.tag_findings],
            "literal_tags": [list(t) for t in self.literal_tags],
            "suppression": {str(k): v for k, v in self.suppression.items()},
            "ignore_lines": list(self.ignore_lines),
            "summary": self.summary.to_dict() if self.summary is not None else None,
            "parse_error": (
                self.parse_error.to_dict() if self.parse_error is not None else None
            ),
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "FileRecord":
        return cls(
            path=d["path"],
            modname=d["modname"],
            findings=[Finding.from_dict(f) for f in d.get("findings", [])],
            tag_findings=[Finding.from_dict(f) for f in d.get("tag_findings", [])],
            literal_tags=[(int(t[0]), int(t[1])) for t in d.get("literal_tags", [])],
            suppression={
                int(k): (None if v is None else [str(r) for r in v])
                for k, v in d.get("suppression", {}).items()
            },
            ignore_lines=[int(i) for i in d.get("ignore_lines", [])],
            summary=(
                ModuleSummary.from_dict(d["summary"])
                if d.get("summary") is not None
                else None
            ),
            parse_error=(
                Finding.from_dict(d["parse_error"])
                if d.get("parse_error") is not None
                else None
            ),
        )


class AnalysisStore:
    """Disk-backed map ``path -> (content hash, FileRecord)``.

    ``get``/``put`` count hits and misses so callers (and tests) can
    assert warm-run behavior; nothing is written until :meth:`save`.
    """

    def __init__(self, path: str | Path | None = None):
        self.path = Path(path) if path is not None else default_store_path()
        self._entries: dict[str, tuple[str, FileRecord]] = {}
        self.hits = 0
        self.misses = 0
        self._load()

    # ------------------------------------------------------------ persistence

    def _load(self) -> None:
        try:
            data = json.loads(self.path.read_text())
        except (OSError, json.JSONDecodeError):
            return
        if (
            not isinstance(data, dict)
            or data.get("schema") != STORE_SCHEMA
            or data.get("analyzer") != ANALYZER_VERSION
            or data.get("tags_sig") != tags_signature()
        ):
            return  # stale rules or tag table: every cached record is suspect
        for key, raw in data.get("files", {}).items():
            try:
                self._entries[key] = (raw["hash"], FileRecord.from_dict(raw["record"]))
            except (KeyError, TypeError, ValueError):
                continue  # one bad entry never poisons the rest

    def save(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": STORE_SCHEMA,
            "analyzer": ANALYZER_VERSION,
            "tags_sig": tags_signature(),
            "files": {
                k: {"hash": h, "record": r.to_dict()}
                for k, (h, r) in sorted(self._entries.items())
            },
        }
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_text(json.dumps(payload))
        tmp.replace(self.path)

    # ----------------------------------------------------------------- access

    def get(self, path: str, digest: str) -> FileRecord | None:
        entry = self._entries.get(path)
        if entry is None or entry[0] != digest:
            self.misses += 1
            return None
        self.hits += 1
        return entry[1]

    def put(self, path: str, digest: str, record: FileRecord) -> None:
        self._entries[path] = (digest, record)

    def prune(self, keep: set[str]) -> int:
        """Drop records for files outside ``keep``; returns how many."""
        stale = [p for p in self._entries if p not in keep]
        for p in stale:
            del self._entries[p]
        return len(stale)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, path: str) -> bool:
        return path in self._entries
