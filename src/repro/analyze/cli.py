"""``python -m repro.analyze`` — static SPMD lint CLI.

Exit codes: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import sys

from .astlint import RULE_PARSE_ERROR, analyze_paths
from .rules import RULES

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analyze",
        description="Static SPMD correctness lint for repro.mpi programs.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "examples"],
        help="files or directories to lint (default: src examples)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--format",
        choices=("text", "sarif"),
        default="text",
        help="output format: human-readable text or SARIF 2.1.0 JSON",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        default=None,
        help="write the report to FILE instead of stdout",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES:
            print(f"{rule.id}: {rule.summary}")
        return 0

    try:
        findings = analyze_paths(args.paths)
    except Exception as exc:  # internal error, not a lint finding
        print(f"repro.analyze: internal error: {exc}", file=sys.stderr)
        return 2

    if args.format == "sarif":
        from .sarif import dump_sarif

        if args.output:
            with open(args.output, "w", encoding="utf-8") as fh:
                dump_sarif(findings, fh)
        else:
            dump_sarif(findings, sys.stdout)
    else:
        out = open(args.output, "w", encoding="utf-8") if args.output else sys.stdout
        try:
            for f in findings:
                print(f.format(), file=out)
        finally:
            if out is not sys.stdout:
                out.close()
    if any(f.rule == RULE_PARSE_ERROR for f in findings):
        print("repro.analyze: could not parse some inputs", file=sys.stderr)
        return 2
    if findings:
        n = len(findings)
        print(f"repro.analyze: {n} finding{'s' if n != 1 else ''}", file=sys.stderr)
        return 1
    return 0
