"""``python -m repro.analyze`` — static SPMD lint CLI.

Exit codes: 0 clean, 1 findings, 2 usage/internal error (including
unparsable inputs and a missing baseline in ``--baseline check`` mode).

The analyzer is incremental by default: per-file records are cached in
``~/.cache/repro/analyze.json`` (override with ``$REPRO_ANALYZE_CACHE``
or ``--store``) keyed by content hash, so warm runs re-parse only files
that changed since the last run.  ``--no-store`` disables the cache;
findings are identical either way.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path

from .astlint import RULE_PARSE_ERROR, Finding, analyze_paths
from .baseline import (
    DEFAULT_BASELINE,
    load_baseline,
    subtract_baseline,
    write_baseline,
)
from .rules import RULES
from .store import AnalysisStore

__all__ = ["main"]


def _changed_files(ref: str) -> set[Path] | None:
    """Absolute paths changed vs ``ref``, plus untracked files.

    Returns ``None`` (with a message on stderr) when git is unavailable
    or the ref does not resolve — the caller exits 2.
    """
    try:
        root = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        diff = subprocess.run(
            ["git", "diff", "--name-only", ref, "--"],
            capture_output=True,
            text=True,
            check=True,
        ).stdout
        untracked = subprocess.run(
            ["git", "ls-files", "--others", "--exclude-standard"],
            capture_output=True,
            text=True,
            check=True,
        ).stdout
    except (OSError, subprocess.CalledProcessError) as exc:
        detail = getattr(exc, "stderr", "") or str(exc)
        print(
            f"repro.analyze: --changed-only failed: {detail.strip()}",
            file=sys.stderr,
        )
        return None
    out: set[Path] = set()
    for line in (diff + untracked).splitlines():
        line = line.strip()
        if line:
            out.add((Path(root) / line).resolve())
    return out


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "cost":
        # model-conformance subcommand: static vs modelled vs measured
        # per-phase traffic (see repro.analyze.conformance)
        from .conformance import main_cost

        return main_cost(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.analyze",
        description="Static SPMD correctness lint for repro.mpi programs. "
        "Use the 'cost' subcommand (python -m repro.analyze cost --help) "
        "to cross-check static, modelled, and measured phase traffic.",
        epilog="Exit codes: 0 clean, 1 findings, 2 usage/internal error "
        "(including unparsable inputs and a missing baseline in "
        "--baseline check mode).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "examples"],
        help="files or directories to lint (default: src examples)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--format",
        choices=("text", "sarif"),
        default="text",
        help="output format: human-readable text or SARIF 2.1.0 JSON",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        default=None,
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--store",
        metavar="FILE",
        default=None,
        help="incremental store location (default: $REPRO_ANALYZE_CACHE "
        "or ~/.cache/repro/analyze.json)",
    )
    parser.add_argument(
        "--no-store",
        action="store_true",
        help="disable the incremental store; parse every file fresh",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="report files parsed vs reused from the store on stderr",
    )
    parser.add_argument(
        "--changed-only",
        nargs="?",
        const="HEAD",
        default=None,
        metavar="REF",
        help="report findings only in files changed vs REF (default HEAD) "
        "plus untracked files; the whole program is still analyzed so "
        "cross-file rules keep full context",
    )
    parser.add_argument(
        "--baseline",
        choices=("write", "update", "check"),
        default=None,
        help="'write' (alias 'update'): snapshot current findings into the "
        "baseline file and exit 0; 'check': report and fail only on "
        "findings not in the baseline",
    )
    parser.add_argument(
        "--baseline-file",
        metavar="FILE",
        default=DEFAULT_BASELINE,
        help=f"baseline location (default: {DEFAULT_BASELINE})",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES:
            print(f"{rule.id} [{rule.layer}]: {rule.summary}")
        return 0

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        # a typo'd directory silently linting zero files would read as a
        # clean pass in CI
        print(
            f"repro.analyze: no such file or directory: {', '.join(missing)}",
            file=sys.stderr,
        )
        return 2

    store: AnalysisStore | None = None
    if not args.no_store:
        store = AnalysisStore(args.store)

    try:
        findings = analyze_paths(args.paths, store=store)
    except Exception as exc:  # internal error, not a lint finding
        print(f"repro.analyze: internal error: {exc}", file=sys.stderr)
        return 2

    if args.stats and store is not None:
        print(
            f"repro.analyze: {store.hits + store.misses} files "
            f"({store.misses} parsed, {store.hits} reused)",
            file=sys.stderr,
        )

    if args.changed_only is not None:
        changed = _changed_files(args.changed_only)
        if changed is None:
            return 2
        findings = [f for f in findings if Path(f.path).resolve() in changed]

    if args.baseline in ("write", "update"):
        # stale-suppression findings are never baselined: the fix is to
        # delete the dead comment, not to accept it
        from .astlint import RULE_STALE_SUPPRESSION

        snapshot = [f for f in findings if f.rule != RULE_STALE_SUPPRESSION]
        n = write_baseline(snapshot, args.baseline_file)
        print(
            f"repro.analyze: baseline written to {args.baseline_file} "
            f"({n} finding{'s' if n != 1 else ''})",
            file=sys.stderr,
        )
        return 0
    if args.baseline == "check":
        try:
            accepted = load_baseline(args.baseline_file)
        except (OSError, ValueError) as exc:
            print(f"repro.analyze: cannot read baseline: {exc}", file=sys.stderr)
            return 2
        findings, suppressed = subtract_baseline(findings, accepted)
        if suppressed:
            print(
                f"repro.analyze: {suppressed} baselined finding"
                f"{'s' if suppressed != 1 else ''} suppressed",
                file=sys.stderr,
            )

    return _report(findings, args)


def _report(findings: list[Finding], args: argparse.Namespace) -> int:
    if args.format == "sarif":
        from .sarif import dump_sarif

        if args.output:
            with open(args.output, "w", encoding="utf-8") as fh:
                dump_sarif(findings, fh)
        else:
            dump_sarif(findings, sys.stdout)
    else:
        out = open(args.output, "w", encoding="utf-8") if args.output else sys.stdout
        try:
            for f in findings:
                print(f.format(), file=out)
        finally:
            if out is not sys.stdout:
                out.close()
    if any(f.rule == RULE_PARSE_ERROR for f in findings):
        print("repro.analyze: could not parse some inputs", file=sys.stderr)
        return 2
    if findings:
        n = len(findings)
        print(f"repro.analyze: {n} finding{'s' if n != 1 else ''}", file=sys.stderr)
        return 1
    return 0
