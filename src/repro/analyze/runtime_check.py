"""Runtime verification of SPMD programs (the ``check=True`` layer).

A :class:`RuntimeChecker` hangs off a :class:`~repro.mpi.runtime.Runtime`
(``runtime.checker``) and verifies, while the program runs:

* **Collective congruence** — every rank's Nth collective on a
  communicator must agree on operation name and root.  A mismatch raises
  :class:`~repro.mpi.errors.CollectiveMismatchError` carrying both ranks'
  call sites instead of silently folding incompatible deposits.
* **Deadlock detection** — a wait-for graph over blocked receives and
  collective barrier slots.  When every non-finished rank is blocked and
  no pending message or collective completion can wake any of them, the
  run aborts with a :class:`~repro.mpi.errors.DeadlockError` describing
  the cycle, instead of hanging until ``timeout``.
* **Finalize accounting** — at the end of a clean run the runtime reports
  undelivered mailbox messages and never-completed ``irecv`` requests
  (:class:`~repro.mpi.errors.MessageLeakError`).

Invariants
----------
The checker must never perturb the virtual clocks: it only *observes*
state transitions, so a checked run's clocks are bit-identical to an
unchecked run's (the same guarantee event tracing gives).  Lock ordering:
checker methods may be called while a mailbox condition is held, so the
checker never acquires mailbox locks itself — it keeps its own shadow
table of in-flight messages, updated *before* the mailbox (sends) and
*after* it (receives), which makes the table conservative in exactly the
safe direction (it may claim a wakeup is coming that has not landed yet,
never the opposite).

Deadlock analysis runs only when the acting rank observes that no rank is
``running`` — every transition that could complete the all-blocked
condition (a rank blocking or finishing) triggers one analysis pass under
the checker lock, so there is no polling thread and no wall-clock timer.
"""

from __future__ import annotations

import sys
import threading
from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from ..mpi.errors import CollectiveMismatchError, DeadlockError

if TYPE_CHECKING:  # pragma: no cover
    from ..mpi.comm import _CommState
    from ..mpi.runtime import Runtime

__all__ = ["RuntimeChecker", "RequestRecord", "call_site"]

_RUNNING = "running"
_BLOCKED = "blocked"
_FINISHED = "finished"

#: filenames whose frames are skipped when attributing a call site
_INTERNAL_PARTS = ("repro/mpi/", "repro\\mpi\\", "repro/analyze/", "repro\\analyze\\")


def call_site(skip: int = 2) -> str:
    """``file:line (function)`` of the first frame outside the runtime."""
    frame = sys._getframe(skip)
    while frame is not None:
        fn = frame.f_code.co_filename
        if not any(part in fn for part in _INTERNAL_PARTS):
            return f"{fn}:{frame.f_lineno} ({frame.f_code.co_name})"
        frame = frame.f_back
    return "<unknown>"


@dataclass
class RequestRecord:
    """One outstanding non-blocking receive, for finalize accounting."""

    world_rank: int
    source: int
    tag: int
    site: str
    done: bool = False


@dataclass
class _Wait:
    """What one blocked rank is waiting on."""

    kind: str                      # "recv" | "collective"
    state: Any                     # the _CommState
    idx: int                       # group rank within the communicator
    source: int = -1               # recv: group-rank source spec (-1 = ANY)
    tag: int = -1                  # recv: tag spec (-1 = ANY)
    op: str = ""                   # collective: operation name
    site: str = ""
    extra: dict = field(default_factory=dict)

    def describe(self, world_rank: int) -> str:
        if self.kind == "recv":
            src = "ANY" if self.source < 0 else str(self.state.world_ranks[self.source])
            tag = "ANY" if self.tag < 0 else str(self.tag)
            return (
                f"rank {world_rank}: blocked in recv(source={src}, tag={tag}) "
                f"at {self.site}"
            )
        return (
            f"rank {world_rank}: blocked in collective '{self.op}' on "
            f"comm#{self.state.trace_id} (members {self.state.world_ranks}) "
            f"at {self.site}"
        )


class RuntimeChecker:
    """Online verifier for one :class:`~repro.mpi.runtime.Runtime`."""

    def __init__(self, runtime: "Runtime"):
        self.runtime = runtime
        self.size = runtime.size
        self._lock = threading.Lock()
        self._rank_state = [_RUNNING] * self.size
        self._waits: list[_Wait | None] = [None] * self.size
        #: (comm trace_id, dest group rank) -> Counter[(src group rank, tag)]
        self._inflight: dict[tuple[int, int], Counter] = {}
        #: (comm trace_id, group rank) -> next collective sequence number
        self._coll_seq: dict[tuple[int, int], int] = {}
        #: comm trace_id -> total barrier-phase arrivals (generation counter)
        self._coll_arrivals: dict[int, int] = {}
        #: (comm trace_id, seq) -> [op, root, site, world_rank, arrivals]
        self._coll_ops: dict[tuple[int, int], list] = {}
        self._deadlock: str | None = None
        self.requests: list[RequestRecord] = []

    # ------------------------------------------------------------ run lifecycle

    def begin_run(self) -> None:
        with self._lock:
            self._rank_state = [_RUNNING] * self.size
            self._waits = [None] * self.size
            self._deadlock = None

    def reset(self) -> None:
        """Discard all shadow state (paired with :meth:`Runtime.reset`).

        Without this, inflight counters and collective sequence numbers
        from a previous run would poison congruence checking of the next
        one on the same runtime."""
        with self._lock:
            self._rank_state = [_RUNNING] * self.size
            self._waits = [None] * self.size
            self._inflight.clear()
            self._coll_seq.clear()
            self._coll_arrivals.clear()
            self._coll_ops.clear()
            self._deadlock = None
            self.requests = []

    def finish(self, world_rank: int) -> None:
        """A rank's function returned (or raised); it will act no more."""
        with self._lock:
            self._rank_state[world_rank] = _FINISHED
            self._waits[world_rank] = None
            diagnosis = self._analyze()
        if diagnosis is not None:
            # The deadlocked peers are woken by the abort and re-raise the
            # stored diagnosis from their own blocked call sites.
            self.runtime.abort()

    def pending_requests(self) -> list[RequestRecord]:
        with self._lock:
            return [r for r in self.requests if not r.done]

    # ------------------------------------------------------------- p2p shadow

    def note_send(self, state: "_CommState", dest_idx: int, src_idx: int, tag: int) -> None:
        """Called by ``Comm.send`` *before* the mailbox append."""
        with self._lock:
            key = (state.trace_id, dest_idx)
            box = self._inflight.get(key)
            if box is None:
                box = self._inflight[key] = Counter()
            box[(src_idx, tag)] += 1

    def note_consume(self, state: "_CommState", dest_idx: int, src_idx: int, tag: int) -> None:
        """Called by ``Comm.recv`` after removing a message from the mailbox."""
        with self._lock:
            box = self._inflight.get((state.trace_id, dest_idx))
            if box is not None:
                box[(src_idx, tag)] -= 1
                if box[(src_idx, tag)] <= 0:
                    del box[(src_idx, tag)]

    def note_irecv(self, world_rank: int, source: int, tag: int) -> RequestRecord:
        rec = RequestRecord(world_rank, source, tag, call_site())
        with self._lock:
            self.requests.append(rec)
        return rec

    # ---------------------------------------------------------------- blocking

    def block_recv(self, state: "_CommState", idx: int, source: int, tag: int) -> None:
        """Register a rank about to wait on its mailbox; may raise DeadlockError."""
        wr = state.world_ranks[idx]
        wait = _Wait("recv", state, idx, source=source, tag=tag, site=call_site())
        self._block(wr, wait)

    def block_collective(self, state: "_CommState", idx: int, op: str) -> None:
        """Register a rank about to wait on a collective barrier phase.

        Arrivals at a communicator's barrier are counted globally: phase
        generations proceed in lockstep (the barrier itself enforces it),
        so arrival ``n`` belongs to generation ``n // size``.  A waiter of
        a fully-arrived generation has been *released* even if its thread
        has not been scheduled to unregister yet — the analyzer must not
        mistake it for stuck.
        """
        wr = state.world_ranks[idx]
        wait = _Wait("collective", state, idx, op=op, site=call_site())
        with self._lock:
            n = self._coll_arrivals.get(state.trace_id, 0)
            self._coll_arrivals[state.trace_id] = n + 1
            wait.extra["gen"] = n // state.size
        self._block(wr, wait)

    def unblock(self, world_rank: int) -> None:
        with self._lock:
            self._rank_state[world_rank] = _RUNNING
            self._waits[world_rank] = None

    def maybe_raise_deadlock(self) -> None:
        """Re-raise a stored deadlock diagnosis (for abort-woken peers)."""
        with self._lock:
            diagnosis = self._deadlock
        if diagnosis is not None:
            raise DeadlockError(diagnosis)

    def _block(self, world_rank: int, wait: _Wait) -> None:
        with self._lock:
            if self._deadlock is not None:
                raise DeadlockError(self._deadlock)
            self._rank_state[world_rank] = _BLOCKED
            self._waits[world_rank] = wait
            diagnosis = self._analyze()
        if diagnosis is not None:
            self.runtime.abort()
            raise DeadlockError(diagnosis)

    # ------------------------------------------------------ deadlock analysis

    def _recv_can_progress(self, wait: _Wait) -> bool:
        box = self._inflight.get((wait.state.trace_id, wait.idx))
        if not box:
            return False
        for (src, tag), n in box.items():
            if n <= 0:
                continue
            if (wait.source < 0 or src == wait.source) and (
                wait.tag < 0 or tag == wait.tag
            ):
                return True
        return False

    def _collective_can_progress(self, wait: _Wait) -> bool:
        # The waiter's barrier generation is released once every member has
        # arrived at it — whether or not the woken threads ran yet.
        arrivals = self._coll_arrivals.get(wait.state.trace_id, 0)
        return arrivals >= (wait.extra["gen"] + 1) * wait.state.size

    def _analyze(self) -> str | None:
        """Deadlock test; caller holds the lock.  Returns the diagnosis."""
        if self.runtime._aborted or self._deadlock is not None:
            return None
        if self.runtime._faults is not None:
            # Under a fault plan, stuck configurations are injected, not
            # programming errors; the never-hang guarantee is the wait
            # registry's quiescence arbiter, which knows about retry
            # deadlines and crashed ranks.  Stay out of its way.
            return None
        if self.runtime._registry.has_pending_deadline():
            # A virtual-time timeout will resolve this wait; the verdict
            # belongs to the timeout arbiter.
            return None
        if any(s == _RUNNING for s in self._rank_state):
            return None
        blocked = [r for r, s in enumerate(self._rank_state) if s == _BLOCKED]
        if not blocked:
            return None
        for r in blocked:
            wait = self._waits[r]
            if wait is None:  # racing unblock; treat as runnable
                return None
            can = (
                self._recv_can_progress(wait)
                if wait.kind == "recv"
                else self._collective_can_progress(wait)
            )
            if can:
                return None
        self._deadlock = self._diagnose(blocked)
        return self._deadlock

    def _wait_edges(self, r: int) -> list[int]:
        """World ranks that could (but will not) wake blocked rank ``r``."""
        wait = self._waits[r]
        assert wait is not None
        members = wait.state.world_ranks
        if wait.kind == "recv":
            if wait.source >= 0:
                return [members[wait.source]]
            return [wr for wr in members if wr != r]
        absent = []
        for wr in members:
            w = self._waits[wr]
            if w is None or w.kind != "collective" or w.state is not wait.state:
                absent.append(wr)
        return absent

    def _find_cycle(self, blocked: list[int]) -> list[int] | None:
        edges = {r: [e for e in self._wait_edges(r) if e in blocked] for r in blocked}
        color: dict[int, int] = {}
        stack: list[int] = []

        def dfs(r: int) -> list[int] | None:
            color[r] = 1
            stack.append(r)
            for nxt in edges[r]:
                if color.get(nxt, 0) == 1:
                    return stack[stack.index(nxt) :] + [nxt]
                if color.get(nxt, 0) == 0:
                    found = dfs(nxt)
                    if found is not None:
                        return found
            stack.pop()
            color[r] = 2
            return None

        for r in blocked:
            if color.get(r, 0) == 0:
                found = dfs(r)
                if found is not None:
                    return found
        return None

    def _diagnose(self, blocked: list[int]) -> str:
        lines = ["SPMD deadlock: every live rank is blocked and none can progress"]
        for r in blocked:
            wait = self._waits[r]
            assert wait is not None
            lines.append("  " + wait.describe(r))
        finished = [r for r, s in enumerate(self._rank_state) if s == _FINISHED]
        if finished:
            lines.append(f"  finished rank(s): {finished}")
        cycle = self._find_cycle(blocked)
        if cycle is not None:
            lines.append(
                "  wait-for cycle: " + " -> ".join(f"rank {r}" for r in cycle)
            )
        return "\n".join(lines)

    # ------------------------------------------------------------- congruence

    def collective_op(
        self, state: "_CommState", idx: int, op: str, root: int | None
    ) -> None:
        """Verify the Nth collective of this rank matches its peers'."""
        wr = state.world_ranks[idx]
        site = call_site()
        mismatch: str | None = None
        with self._lock:
            key = (state.trace_id, idx)
            seq = self._coll_seq.get(key, 0)
            self._coll_seq[key] = seq + 1
            op_key = (state.trace_id, seq)
            rec = self._coll_ops.get(op_key)
            if rec is None:
                self._coll_ops[op_key] = [op, root, site, wr, 1]
            else:
                rec[4] += 1
                if rec[4] >= state.size:
                    del self._coll_ops[op_key]
                if rec[0] != op or rec[1] != root:
                    mismatch = (
                        f"mismatched collectives on comm#{state.trace_id} "
                        f"(members {state.world_ranks}), sequence {seq}: "
                        f"rank {rec[3]} called {_fmt_op(rec[0], rec[1])} at {rec[2]}; "
                        f"rank {wr} called {_fmt_op(op, root)} at {site}"
                    )
        if mismatch is not None:
            self.runtime.abort()
            raise CollectiveMismatchError(mismatch)


def _fmt_op(op: str, root: int | None) -> str:
    return f"{op}(root={root})" if root is not None else f"{op}()"
