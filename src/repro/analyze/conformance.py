"""Model conformance: static symbolic traffic vs model vs measurement.

``python -m repro.analyze cost`` closes the loop between the three ways
this repo talks about communication volume:

* **static** — the :mod:`repro.analyze.costlint` abstract interpretation
  re-derives each algorithm's per-phase wire bytes from the *source code*:
  every collective call site's symbolic payload term (elements over
  ``{1, log p, p, p², s, n/p, n}``), times its loop factor, times the
  verb's recording multiplier, evaluated at a concrete ``(p, n, s)``;
* **modelled** — the closed-form wire-byte formulas of
  :mod:`repro.model.phases` (``traffic_histsort`` & co.);
* **measured** — a :class:`TrafficSnapshot` from a small virtual-clock
  trial, attributing traced span bytes to algorithm phases via
  :func:`repro.trace.analysis.phase_traffic`.

All three follow the runtime's byte-recording conventions (symmetric
collectives count every rank's payload; BCAST counts the root payload
once; ALLTOALLV counts the total exchanged volume), so per phase they
must agree within a constant factor.  A disagreement beyond ``tolerance``
means the code's communication pattern drifted from what the model
prices — exactly the regression the hierarchical-collective and AMS-sort
work must not introduce silently — and the check fails **with
attribution**: the symbolic term and call site of every static
contribution to the disagreeing phase.

The comparison is deliberately coarse (defaults: 6x tolerance, phases
under a 1 KiB floor skipped): the static side is a may-analysis upper
bound (all splitter boundaries assumed active every round), and the
measured side includes early-retirement effects.  What it pins down is
the *asymptotic shape* — an O(p²) exchange or an O(n) gather lands
orders of magnitude outside the band, not percent.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from . import symbolic as sym
from .costlint import CostProgram

__all__ = [
    "TrafficSnapshot",
    "PhaseComparison",
    "ConformanceReport",
    "ALGORITHMS",
    "static_traffic",
    "measure_traffic",
    "model_traffic",
    "check_conformance",
    "main_cost",
]

#: per-verb wire multiplier under the runtime's recording conventions:
#: broadcasts/scatters record the root payload once, every other verb
#: records each rank's contribution (p of them execute the call)
_ROOT_ONLY_VERBS = frozenset({"bcast", "scatter"})

_ITEMSIZE = 8


@dataclass(frozen=True)
class TrafficSnapshot:
    """Measured per-phase wire bytes of one traced trial."""

    algo: str
    p: int
    n: int
    rounds: int
    phase_bytes: dict[str, float]


@dataclass(frozen=True)
class PhaseComparison:
    """One phase's three-way volume comparison."""

    phase: str
    static: float
    modelled: float
    measured: float
    ratio: float          #: max/min after flooring (1.0 = perfect agreement)
    ok: bool
    skipped: bool         #: all three under the byte floor — not judged
    attribution: tuple[str, ...] = ()  #: static terms feeding this phase


@dataclass
class ConformanceReport:
    """Full conformance verdict for one algorithm at one (p, n)."""

    algo: str
    p: int
    n: int
    rounds: int
    comparisons: list[PhaseComparison] = field(default_factory=list)
    unpriced: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.comparisons)


# ----------------------------------------------------------- entry configs


@dataclass(frozen=True)
class _Entry:
    """How to derive, model, and measure one algorithm's traffic."""

    #: module paths analyzed for the static side (callees included)
    modules: tuple[str, ...]
    #: function (``"<file stem>:<dotted>"``) -> phase its sites bill to
    phase_of: dict[str, str]
    #: non-ground atom values at (p, n): ``$param``/``$param.attr`` sizes
    bindings: Callable[[int, int], dict[str, float]]
    #: closed-form wire-byte model from :mod:`repro.model.phases`
    model: Callable[[int, int, int], dict[str, float]]
    #: traced trial body: (comm, n_local, seed) -> rounds taken
    trial: Callable[[Any, int, int], int]


def _histsort_trial(comm: Any, n_local: int, seed: int) -> int:
    import numpy as np

    from ..core import histogram_sort

    rng = np.random.Generator(np.random.MT19937([seed, comm.rank]))
    local = rng.integers(0, 2**62, size=n_local, dtype=np.uint64)
    return int(histogram_sort(comm, local).rounds)


def _samplesort_trial(comm: Any, n_local: int, seed: int) -> int:
    import numpy as np

    from ..baselines import sample_sort

    rng = np.random.Generator(np.random.MT19937([seed, comm.rank]))
    sample_sort(comm, rng.integers(0, 2**62, size=n_local, dtype=np.uint64))
    return 1


def _psrs_trial(comm: Any, n_local: int, seed: int) -> int:
    import numpy as np

    from ..baselines import psrs_sort

    rng = np.random.Generator(np.random.MT19937([seed, comm.rank]))
    psrs_sort(comm, rng.integers(0, 2**62, size=n_local, dtype=np.uint64))
    return 1


def _model_histsort(n: int, p: int, rounds: int) -> dict[str, float]:
    from ..model.phases import traffic_histsort

    return traffic_histsort(n, p, rounds=rounds)


def _model_samplesort(n: int, p: int, rounds: int) -> dict[str, float]:
    from ..model.phases import traffic_samplesort

    return traffic_samplesort(n, p)


def _model_psrs(n: int, p: int, rounds: int) -> dict[str, float]:
    from ..model.phases import traffic_psrs

    return traffic_psrs(n, p)


def _core_bindings(p: int, n: int) -> dict[str, float]:
    # parameter-shaped atoms the static pass cannot ground by itself:
    # partitions are n/p elements, SplitterResult vectors are p-1 long
    b = float(max(p - 1, 1))
    return {
        "$local_sorted": n / p,
        "$local": n / p,
        "$splitters.values": b,
        "$splitters.realized_ranks": b,
        "$splitters.lower": b,
        "$splitters.upper": b,
        "$splitter_values": b,
        "$probes": b,
    }


ALGORITHMS: dict[str, _Entry] = {
    "histsort": _Entry(
        modules=(
            "repro.core.histsort",
            "repro.core.multiselect",
            "repro.core.exchange",
            "repro.seq.search",
        ),
        phase_of={
            "histsort:histogram_sort": "local_sort",
            "multiselect:find_splitters": "splitting",
            "exchange:build_exchange_plan": "other",
            "exchange:exchange": "exchange",
        },
        bindings=_core_bindings,
        model=_model_histsort,
        trial=_histsort_trial,
    ),
    "samplesort": _Entry(
        modules=("repro.baselines.samplesort", "repro.baselines.common"),
        phase_of={
            "samplesort:sample_sort": "sampling",  # gather/bcast re-binned by verb
            "common:exchange_by_splitters": "exchange",
        },
        bindings=_core_bindings,
        model=_model_samplesort,
        trial=_samplesort_trial,
    ),
    "psrs": _Entry(
        modules=("repro.baselines.samplesort", "repro.baselines.common"),
        phase_of={
            "samplesort:psrs_sort": "splitting",
            "common:exchange_by_splitters": "exchange",
        },
        bindings=_core_bindings,
        model=_model_psrs,
        trial=_psrs_trial,
    ),
}

#: the two samplesort collectives live in one function but two phases —
#: attribute by verb (the gather samples, the bcast ships splitters)
_SAMPLESORT_VERB_PHASE = {"gather": "sampling", "bcast": "splitting"}


# ------------------------------------------------------------- static side


def _module_summaries(modules: tuple[str, ...]) -> list[Any]:
    import importlib

    from .engine import build_record

    out = []
    for modname in modules:
        path = Path(importlib.import_module(modname).__file__)
        rec = build_record(path.read_text(encoding="utf-8"), str(path))
        if rec.summary is not None:
            out.append(rec.summary)
    return out


def _function_phase(entry: _Entry, algo: str, key: str, verb: str) -> str | None:
    """Phase a cost site bills to, or ``None`` when out of scope."""
    path, _, dotted = key.partition("::")
    stem = Path(path).stem
    tag = f"{stem}:{dotted}"
    if algo == "samplesort" and tag == "samplesort:sample_sort":
        return _SAMPLESORT_VERB_PHASE.get(verb)
    return entry.phase_of.get(tag)


def static_traffic(
    algo: str, p: int, n: int, rounds: int
) -> tuple[dict[str, float], dict[str, list[str]], list[str]]:
    """Statically derived per-phase wire bytes at concrete ``(p, n, s)``.

    Returns ``(phase_bytes, attribution, unpriced)``: the evaluated bytes,
    the per-phase symbolic terms with their call sites, and the sites
    whose payload stayed non-ground even under the entry bindings (their
    contribution is dropped, which the caller surfaces).
    """
    entry = ALGORITHMS[algo]
    prog = CostProgram(_module_summaries(entry.modules))
    env: dict[str, float] = {
        "p": float(p),
        "logp": math.log2(max(p, 2)),
        "n": float(n),
        "s": float(max(rounds, 1)),
    }
    env.update(entry.bindings(p, n))

    bytes_per_phase: dict[str, float] = {}
    attribution: dict[str, list[str]] = {}
    unpriced: list[str] = []
    for key in sorted(prog.cost):
        for site in prog.cost[key].get("sites", []):
            verb = site["verb"]
            phase = _function_phase(entry, algo, key, verb)
            if phase is None:
                continue
            payload, _via = prog.resolve_size(key, sym.from_json(site["payload"]))
            loop, _ = prog.resolve_size(key, sym.from_json(site["loop"]))
            term = sym.mul(payload, loop)
            where = f"{Path(key.partition('::')[0]).name}:{site['line']}"
            if term is sym.UNKNOWN:
                unpriced.append(f"{where} {verb}(payload unknown) -> {phase}")
                continue
            value, dropped = sym.evaluate_ground(term, env)
            if dropped:
                unpriced.append(
                    f"{where} {verb}({sym.fmt(term)}) drops "
                    f"{{{', '.join(sorted(dropped))}}} -> {phase}"
                )
            mult = 1.0 if verb in _ROOT_ONLY_VERBS else float(p)
            contributed = value * _ITEMSIZE * mult
            bytes_per_phase[phase] = bytes_per_phase.get(phase, 0.0) + contributed
            attribution.setdefault(phase, []).append(
                f"{verb}@{where}: {sym.fmt(term)} elems x {_ITEMSIZE} B x "
                f"{'1 (root)' if mult == 1.0 else 'p'} = {contributed:.0f} B"
            )
    return bytes_per_phase, attribution, unpriced


# ----------------------------------------------------------- measured side


def measure_traffic(algo: str, p: int, n: int, seed: int = 7) -> TrafficSnapshot:
    """Run a small traced virtual-clock trial and bin span bytes by phase."""
    from ..mpi import run_spmd
    from ..trace.analysis import phase_traffic

    entry = ALGORITHMS[algo]
    n_local = max(n // p, 1)

    def prog(comm):
        return entry.trial(comm, n_local, seed)

    results, rt = run_spmd(p, prog, trace=True, return_runtime=True)
    spans = rt.trace.spans()
    return TrafficSnapshot(
        algo=algo,
        p=p,
        n=n_local * p,
        rounds=int(max(results)),
        phase_bytes={k: float(v) for k, v in phase_traffic(spans).items()},
    )


def model_traffic(algo: str, p: int, n: int, rounds: int) -> dict[str, float]:
    """Closed-form wire-byte prediction from :mod:`repro.model.phases`."""
    return ALGORITHMS[algo].model(n, p, rounds)


# ------------------------------------------------------------- comparison


def check_conformance(
    algo: str,
    p: int = 8,
    n: int = 1 << 13,
    *,
    tolerance: float = 6.0,
    floor: float = 1024.0,
    seed: int = 7,
) -> ConformanceReport:
    """Three-way per-phase traffic comparison for one algorithm.

    Phases where all three volumes sit under ``floor`` bytes are skipped
    (setup-sized collectives drown in constant overheads the static side
    does not price); otherwise each value is clamped up to ``floor`` and
    the max/min ratio must stay within ``tolerance``.
    """
    if algo not in ALGORITHMS:
        raise ValueError(
            f"unknown algorithm {algo!r}; have {sorted(ALGORITHMS)}"
        )
    snap = measure_traffic(algo, p, n, seed=seed)
    static, attribution, unpriced = static_traffic(algo, p, snap.n, snap.rounds)
    modelled = model_traffic(algo, p, snap.n, snap.rounds)

    report = ConformanceReport(
        algo=algo, p=p, n=snap.n, rounds=snap.rounds, unpriced=unpriced
    )
    phases = list(modelled)  # the model defines the canonical phase set
    extra = (set(static) | set(snap.phase_bytes)) - set(phases)
    phases.extend(sorted(ph for ph in extra if ph != "-"))
    for ph in phases:
        vals = (
            static.get(ph, 0.0),
            modelled.get(ph, 0.0),
            snap.phase_bytes.get(ph, 0.0),
        )
        if max(vals) < floor:
            report.comparisons.append(
                PhaseComparison(
                    phase=ph,
                    static=vals[0],
                    modelled=vals[1],
                    measured=vals[2],
                    ratio=1.0,
                    ok=True,
                    skipped=True,
                )
            )
            continue
        clamped = [max(v, floor) for v in vals]
        ratio = max(clamped) / min(clamped)
        report.comparisons.append(
            PhaseComparison(
                phase=ph,
                static=vals[0],
                modelled=vals[1],
                measured=vals[2],
                ratio=ratio,
                ok=ratio <= tolerance,
                skipped=False,
                attribution=tuple(attribution.get(ph, ())),
            )
        )
    return report


# -------------------------------------------------------------------- CLI


def _fmt_bytes(v: float) -> str:
    return f"{v:,.0f}"


def main_cost(argv: list[str] | None = None) -> int:
    """``python -m repro.analyze cost`` entry point."""
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        prog="python -m repro.analyze cost",
        description=(
            "Model-conformance check: statically derived per-phase wire "
            "bytes vs the repro.model.phases closed forms vs a measured "
            "virtual-clock trial."
        ),
        epilog="Exit codes: 0 all phases agree, 1 disagreement, 2 error.",
    )
    parser.add_argument(
        "--algo",
        action="append",
        choices=sorted(ALGORITHMS),
        default=None,
        help="algorithm(s) to check (repeatable; default: all)",
    )
    parser.add_argument("--p", type=int, default=8, help="trial ranks (default 8)")
    parser.add_argument(
        "--n", type=int, default=1 << 13, help="total keys (default 8192)"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=6.0,
        help="max allowed max/min volume ratio per phase (default 6)",
    )
    parser.add_argument(
        "--floor",
        type=float,
        default=1024.0,
        help="bytes under which a phase is not judged (default 1024)",
    )
    args = parser.parse_args(argv)
    algos = args.algo or sorted(ALGORITHMS)

    failed = False
    for algo in algos:
        try:
            report = check_conformance(
                algo, args.p, args.n, tolerance=args.tolerance, floor=args.floor
            )
        except Exception as exc:  # internal error, not a conformance verdict
            print(f"repro.analyze cost: internal error on {algo}: {exc}", file=sys.stderr)
            return 2
        verdict = "OK" if report.ok else "FAIL"
        try:
            print(
                f"{algo}: p={report.p} n={report.n} rounds={report.rounds} "
                f"-> {verdict}"
            )
            for c in report.comparisons:
                status = "skip" if c.skipped else ("ok" if c.ok else "FAIL")
                print(
                    f"  {c.phase:<10s} static={_fmt_bytes(c.static):>12s}  "
                    f"model={_fmt_bytes(c.modelled):>12s}  "
                    f"measured={_fmt_bytes(c.measured):>12s}  "
                    f"ratio={c.ratio:5.2f}  [{status}]"
                )
                if not c.ok:
                    for line in c.attribution:
                        print(f"      static term: {line}")
            for note in report.unpriced:
                print(f"  note: unpriced site {note}")
        except BrokenPipeError:  # e.g. piped into `head`
            sys.stderr.close()
            return 1 if failed or not report.ok else 0
        if not report.ok:
            failed = True
    return 1 if failed else 0
