"""Entry point for ``python -m repro.analyze``."""

from .cli import main

raise SystemExit(main())
