"""Communication-cost lint: symbolic payload sizes and scalability rules.

Two halves, mirroring the summaries/fixpoint split of
:mod:`repro.analyze.interproc`:

**Extraction (per file, cacheable).**  :func:`extract_function_cost` runs a
flow-insensitive abstract interpretation over one function, mapping names
to :mod:`repro.analyze.symbolic` sizes: array lengths for buffers, value
magnitudes for integers.  Seeds are the SPMD vocabulary — ``comm.size`` is
``p``, rank-tainted values are bounded by ``p``, ``len(data)`` and
``np.empty(k)``/slicing/``argsort``/``searchsorted`` shapes propagate
through assignments, non-comm parameters become ``$param`` atoms, and
unresolved user calls become ``@line_col`` atoms.  The result — every
collective/p2p *cost site* with its payload term and enclosing-loop
multiplier, every ``for``-loop issuing point-to-point traffic, and the
function's symbolic return size — is a JSON dict stored on the function's
:class:`~repro.analyze.interproc.FunctionSummary`.

**Whole-program resolution (every run, cheap).**  :class:`CostProgram`
resolves ``@`` placeholders bottom-up over the call graph's SCCs
(substituting callee return sizes with ``$param`` atoms bound to the
caller's argument sizes) and judges four rules on the resolved payloads:

``SPMD-ROOT-BOTTLENECK``
    ``gather``/``reduce`` of an Ω(n/p) payload — the root materializes
    Θ(n), serializing the sort at one rank.
``SPMD-P2-TRAFFIC``
    ``allgather`` deposits growing with p (every rank materializes Θ(p²))
    or ``alltoall``/``alltoallv`` rows growing beyond the O(p)-counts /
    O(n/p)-data budget — Ω(p²) wire bytes.
``SPMD-HANDROLLED-COLLECTIVE``
    a ``for peer in range(p)`` loop issuing point-to-point sends — a
    collective re-implemented with O(p) rounds.
``SPMD-OVERSIZED-REDUCE``
    ``allreduce``/``scan``/``exscan`` payloads growing with n instead of
    the O(p) histogram/count vectors they should be.

Judgements only fire on *ground* terms (atoms in {p, log p, n, s}); sizes
still mentioning ``$param``/``@call`` placeholders stay silent — a may
analysis that prefers missed findings over false alarms.
"""

from __future__ import annotations

import ast
from typing import Any, Callable, Iterable

from . import symbolic as sym
from .astlint import COLLECTIVE_METHODS, Finding, FunctionContext
from .callgraph import CallGraph, FunctionNode

__all__ = [
    "RULE_ROOT_BOTTLENECK",
    "RULE_P2_TRAFFIC",
    "RULE_HANDROLLED",
    "RULE_OVERSIZED_REDUCE",
    "COST_RULES",
    "extract_function_cost",
    "CostProgram",
    "check_cost_program",
]

RULE_ROOT_BOTTLENECK = "SPMD-ROOT-BOTTLENECK"
RULE_P2_TRAFFIC = "SPMD-P2-TRAFFIC"
RULE_HANDROLLED = "SPMD-HANDROLLED-COLLECTIVE"
RULE_OVERSIZED_REDUCE = "SPMD-OVERSIZED-REDUCE"

COST_RULES = (
    RULE_ROOT_BOTTLENECK,
    RULE_P2_TRAFFIC,
    RULE_HANDROLLED,
    RULE_OVERSIZED_REDUCE,
)

#: verbs whose first argument is a payload this analysis prices
_PAYLOAD_VERBS = frozenset(
    {
        "bcast",
        "reduce",
        "allreduce",
        "gather",
        "allgather",
        "scatter",
        "alltoall",
        "alltoallv",
        "scan",
        "exscan",
        "send",
        "isend",
        "sendrecv",
    }
)

_P2P_SEND = frozenset({"send", "isend", "sendrecv"})
_P2P_BLOCKING = frozenset({"send", "recv", "sendrecv"})
_P2P_ALL = frozenset({"send", "recv", "sendrecv", "isend", "irecv"})

#: numpy callables whose result size is their first argument's size
_NP_PASSTHROUGH = frozenset(
    {
        "sort",
        "unique",
        "asarray",
        "asanyarray",
        "ascontiguousarray",
        "copy",
        "ravel",
        "clip",
        "abs",
        "floor",
        "ceil",
        "round",
        "argsort",
        "cumsum",
        "diff",
        "flatnonzero",
        "zeros_like",
        "ones_like",
        "empty_like",
        "full_like",
        "array",
    }
)

_NP_CONSTRUCTORS = frozenset({"zeros", "ones", "empty"})

_METHOD_PASSTHROUGH = frozenset(
    {"astype", "copy", "ravel", "clip", "round", "tolist", "view"}
)
_METHOD_SCALAR = frozenset(
    {"sum", "max", "min", "mean", "any", "all", "item", "prod", "argmax", "argmin"}
)


# --------------------------------------------------------------- inference

_NUM, _ARR, _SEQ, _UNK = "num", "arr", "seq", "unk"


def _own_statements(fn: ast.FunctionDef):
    """Statements of ``fn`` in source order, excluding nested scopes."""
    stack: list[ast.stmt] = list(reversed(fn.body))
    while stack:
        st = stack.pop()
        if isinstance(st, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        yield st
        children: list[ast.stmt] = []
        for child in ast.iter_child_nodes(st):
            if isinstance(child, ast.stmt):
                children.append(child)
            else:
                children.extend(
                    c for c in ast.walk(child) if isinstance(c, ast.stmt)
                )
        stack.extend(reversed(children))


class _Inference:
    """Flow-insensitive size environment for one function body."""

    def __init__(
        self,
        fn: ast.FunctionDef,
        ctx: FunctionContext,
        params: list[str],
        spec_for: Callable[[ast.Call], tuple[tuple[str, ...], str] | None],
        entry: bool = False,
    ) -> None:
        self.fn = fn
        self.ctx = ctx
        self.params = params
        self.spec_for = spec_for
        self.entry = entry
        self.env: dict[str, tuple[str, Any]] = {}
        self.calls: dict[str, dict[str, Any]] = {}
        self.defaults: dict[str, Any] = {}
        self._seed()

    # -- seeding

    def _seed(self) -> None:
        args = self.fn.args
        ordered = list(args.posonlyargs) + list(args.args)
        defaults: dict[str, ast.expr] = {}
        for a, d in zip(ordered[len(ordered) - len(args.defaults):], args.defaults):
            defaults[a.arg] = d
        for a, d in zip(args.kwonlyargs, args.kw_defaults):
            if d is not None:
                defaults[a.arg] = d
        for name in [a.arg for a in ordered + list(args.kwonlyargs)]:
            if name in self.ctx.comm_names or name in ("self", "cls"):
                continue
            dflt = defaults.get(name)
            if isinstance(dflt, ast.Constant) and isinstance(dflt.value, (int, float)) \
                    and not isinstance(dflt.value, bool):
                size = sym.const(dflt.value)
                self.env[name] = (_NUM, size)
                self.defaults[name] = size
            elif self.entry:
                # data parameter of an entry-marked rank function (the prog
                # handed to run_spmd): by SPMD convention it carries the
                # rank's share of the global input, n/p — the anchor that
                # grounds the n vocabulary for the cost rules
                self.env[name] = (_UNK, self._div(sym.atom("n"), sym.atom("p")))
            else:
                self.env[name] = (_UNK, sym.atom("$" + name))

    # -- fixpoint over assignments

    def run(self) -> None:
        seeds = dict(self.env)
        prev = dict(self.env)
        for _ in range(4):
            self._block(self.fn.body)
            snap = dict(self.env)
            if snap == prev:
                return
            prev = snap
        # unconverged names (loop-carried growth) widen to unknown
        self._block(self.fn.body)
        for name, val in list(self.env.items()):
            if prev.get(name) != val and name not in seeds:
                self.env[name] = (_UNK, sym.UNKNOWN)

    def _block(self, stmts: list[ast.stmt]) -> None:
        """Interpret a statement list, joining ``if``/``else`` branch envs.

        Branches are evaluated on copies of the incoming environment and
        joined with :func:`symbolic.smax` — without the join, source-order
        processing would leave the *else* branch's (often degenerate,
        e.g. ``x = arr[:0]``) binding as the final word.
        """
        for st in stmts:
            if isinstance(st, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            if isinstance(st, ast.If):
                saved = dict(self.env)
                self._block(st.body)
                after_body = self.env
                self.env = dict(saved)
                self._block(st.orelse)
                self.env = self._join(after_body, self.env)
                continue
            self._stmt(st)
            for attr in ("body", "orelse", "finalbody"):
                sub = getattr(st, attr, None)
                if sub:
                    self._block(sub)
            for handler in getattr(st, "handlers", []) or []:
                self._block(handler.body)

    @staticmethod
    def _join(
        a: dict[str, tuple[str, Any]], b: dict[str, tuple[str, Any]]
    ) -> dict[str, tuple[str, Any]]:
        out: dict[str, tuple[str, Any]] = {}
        for name in set(a) | set(b):
            va, vb = a.get(name), b.get(name)
            if va is None or va == vb:
                out[name] = vb  # type: ignore[assignment]
            elif vb is None:
                out[name] = va
            else:
                kind = va[0] if va[0] == vb[0] else _UNK
                out[name] = (kind, sym.smax(va[1], vb[1]))
        return out

    # -- transfer

    def _stmt(self, st: ast.stmt) -> None:
        if isinstance(st, ast.Assign):
            val = st.value
            for tgt in st.targets:
                self._bind(tgt, val)
        elif isinstance(st, ast.AnnAssign) and st.value is not None:
            self._bind(st.target, st.value)
        elif isinstance(st, ast.AugAssign) and isinstance(st.target, ast.Name):
            cur = self.env.get(st.target.id, (_UNK, sym.UNKNOWN))
            kind, size = self.eval(st.value)
            if isinstance(st.op, ast.Add):
                self.env[st.target.id] = (cur[0], sym.add(cur[1], size))
            elif isinstance(st.op, ast.Mult):
                self.env[st.target.id] = (cur[0], sym.mul(cur[1], size))
            else:
                self.env[st.target.id] = cur
        elif isinstance(st, ast.For):
            self._bind_loop_var(st.target, st.iter)
        elif isinstance(st, ast.With):
            for item in st.items:
                if isinstance(item.optional_vars, ast.Name):
                    self.env[item.optional_vars.id] = self.eval(item.context_expr)
        elif isinstance(st, ast.Expr):
            self.eval(st.value)  # register call placeholders
        elif isinstance(st, ast.Return) and st.value is not None:
            self.eval(st.value)

    def _bind(self, tgt: ast.expr, val: ast.expr) -> None:
        if isinstance(tgt, ast.Name):
            self.env[tgt.id] = self.eval(val)
            return
        if isinstance(tgt, (ast.Tuple, ast.List)):
            names = [e for e in tgt.elts if isinstance(e, ast.Name)]
            if isinstance(val, (ast.Tuple, ast.List)) and len(val.elts) == len(tgt.elts):
                for t, v in zip(tgt.elts, val.elts):
                    if isinstance(t, ast.Name):
                        self.env[t.id] = self.eval(v)
                return
            kind, size = self.eval(val)
            if len(names) and size is not sym.UNKNOWN:
                # homogeneous-tuple heuristic: each component carries an
                # equal share of the unpacked value's total size
                share = sym.scale(size, 1.0 / max(len(tgt.elts), 1))
                for t in names:
                    self.env[t.id] = (_UNK, share)
            else:
                for t in names:
                    self.env[t.id] = (_UNK, sym.UNKNOWN)

    def _bind_loop_var(self, tgt: ast.expr, it: ast.expr) -> None:
        if isinstance(tgt, ast.Name):
            kind, size = self.eval(it)
            if self._is_range(it):
                self.env[tgt.id] = (_NUM, size)  # bounded by the range stop
            else:
                self.env[tgt.id] = (_UNK, sym.UNKNOWN)
        elif isinstance(tgt, (ast.Tuple, ast.List)):
            for e in tgt.elts:
                if isinstance(e, ast.Name):
                    self.env[e.id] = (_UNK, sym.UNKNOWN)

    @staticmethod
    def _is_range(it: ast.expr) -> bool:
        return (
            isinstance(it, ast.Call)
            and isinstance(it.func, ast.Name)
            and it.func.id in ("range", "reversed")
        )

    # -- expression sizing

    def elems(self, e: ast.expr) -> Any:
        """Payload element count of an expression (scalars count 1)."""
        kind, size = self.eval(e)
        if kind == _NUM:
            return sym.ONE
        return size

    def eval(self, e: ast.expr) -> tuple[str, Any]:  # noqa: C901
        if isinstance(e, ast.Constant):
            v = e.value
            if isinstance(v, bool) or v is None:
                return (_NUM, sym.ONE)
            if isinstance(v, (int, float)):
                return (_NUM, sym.const(abs(v)))
            if isinstance(v, (str, bytes)):
                return (_NUM, sym.const(max(len(v), 1)))
            return (_NUM, sym.ONE)
        if isinstance(e, ast.Name):
            if e.id in self.env:
                return self.env[e.id]
            if self.ctx.is_rank_expr(e):
                return (_NUM, sym.atom("p"))
            return (_UNK, sym.UNKNOWN)
        if isinstance(e, ast.Attribute):
            return self._attribute(e)
        if isinstance(e, ast.BinOp):
            return self._binop(e)
        if isinstance(e, ast.UnaryOp):
            return self.eval(e.operand)
        if isinstance(e, ast.BoolOp):
            return (_NUM, sym.ONE)
        if isinstance(e, ast.Compare):
            kind, size = self.eval(e.left)
            if kind in (_ARR, _SEQ):
                return (_ARR, size)
            return (_NUM, sym.ONE)
        if isinstance(e, ast.IfExp):
            kb, sb = self.eval(e.body)
            ko, so = self.eval(e.orelse)
            return (kb if kb == ko else _UNK, sym.add(sb, so))
        if isinstance(e, (ast.Tuple, ast.List, ast.Set)):
            total: Any = sym.ZERO
            for el in e.elts:
                if isinstance(el, ast.Starred):
                    total = sym.add(total, self.elems(el.value))
                else:
                    total = sym.add(total, self.elems(el))
            return (_SEQ, total)
        if isinstance(e, ast.Dict):
            total = sym.ZERO
            for k, v in zip(e.keys, e.values):
                total = sym.add(total, self.elems(v) if v is not None else sym.ZERO)
            return (_SEQ, total)
        if isinstance(e, (ast.ListComp, ast.GeneratorExp, ast.SetComp)):
            return self._comprehension(e)
        if isinstance(e, ast.Call):
            return self._call(e)
        if isinstance(e, ast.Subscript):
            return self._subscript(e)
        if isinstance(e, ast.Starred):
            return self.eval(e.value)
        return (_UNK, sym.UNKNOWN)

    def _attribute(self, e: ast.Attribute) -> tuple[str, Any]:
        if isinstance(e.value, ast.Name) and e.value.id in self.ctx.comm_names:
            if e.attr in ("size", "rank", "world_rank"):
                return (_NUM, sym.atom("p"))
            return (_UNK, sym.UNKNOWN)
        base_kind, base_size = self.eval(e.value)
        if e.attr == "size":
            return (_NUM, base_size)
        if e.attr == "itemsize":
            return (_NUM, sym.const(8))
        if e.attr in ("T", "flat", "real", "imag"):
            return (base_kind, base_size)
        # field of a parameter-shaped object: a bindable `$param.attr` atom
        if base_size is not sym.UNKNOWN and len(base_size) == 1:
            (coeff, powers), = base_size
            if (
                abs(coeff - 1.0) < 1e-9
                and len(powers) == 1
                and powers[0][1] == 1
                and powers[0][0].startswith("$")
            ):
                return (_UNK, sym.atom(powers[0][0] + "." + e.attr))
        return (_UNK, sym.UNKNOWN)

    def _binop(self, e: ast.BinOp) -> tuple[str, Any]:
        ka, sa = self.eval(e.left)
        kb, sb = self.eval(e.right)
        arr_kinds = (_ARR, _SEQ)
        if ka in arr_kinds or kb in arr_kinds:
            if isinstance(e.op, ast.Mult) and ka == _SEQ and kb == _NUM:
                return (_SEQ, sym.mul(sa, sb))  # [x] * k
            if isinstance(e.op, ast.Mult) and kb == _SEQ and ka == _NUM:
                return (_SEQ, sym.mul(sb, sa))
            if isinstance(e.op, ast.Add) and ka in arr_kinds and kb in arr_kinds \
                    and (ka == _SEQ or kb == _SEQ):
                return (_SEQ, sym.add(sa, sb))  # list concatenation
            # elementwise: the shape survives from whichever side is known
            if ka in arr_kinds and sa is not sym.UNKNOWN:
                return (_ARR, sa)
            if kb in arr_kinds and sb is not sym.UNKNOWN:
                return (_ARR, sb)
            return (_ARR, sym.UNKNOWN)
        if isinstance(e.op, ast.Add):
            return (_NUM, sym.add(sa, sb))
        if isinstance(e.op, ast.Sub):
            if ka == _UNK and kb == _UNK:
                # unknown-kind operands may be arrays (elementwise subtract
                # keeps the shape) — `a - b` cancelling to zero would erase
                # a real payload, so bound by the larger side instead
                return (_UNK, sym.smax(sa, sb))
            return (_NUM, sym.sub(sa, sb))
        if isinstance(e.op, ast.Mult):
            return (_NUM, sym.mul(sa, sb))
        if isinstance(e.op, (ast.Div, ast.FloorDiv)):
            return (_NUM, self._div(sa, sb))
        if isinstance(e.op, ast.Mod):
            return (_NUM, sym.smin(sa, sb))
        if isinstance(e.op, ast.LShift):
            # 1 << j with j of log p magnitude is bounded by p
            if sb is not sym.UNKNOWN and sym.degree(sb, "logp") >= 1:
                return (_NUM, sym.atom("p"))
            return (_NUM, sym.UNKNOWN)
        if isinstance(e.op, ast.Pow):
            if sb is not sym.UNKNOWN and sym.is_const(sb):
                k = sym.evaluate(sb, {})
                if k is not None and 0 <= k <= 4 and abs(k - round(k)) < 1e-9:
                    out = sym.ONE
                    for _ in range(int(round(k))):
                        out = sym.mul(out, sa)
                    return (_NUM, out)
            return (_NUM, sym.UNKNOWN)
        return (_NUM, sym.UNKNOWN)

    @staticmethod
    def _div(a: Any, b: Any) -> Any:
        if a is sym.UNKNOWN:
            return sym.UNKNOWN
        if b is not sym.UNKNOWN and len(b) == 1:
            (c, pw), = b
            if abs(c) > 1e-12:
                inv = sym.from_json([[1.0 / c, [[at, -ex] for at, ex in pw]]])
                return sym.mul(a, inv)
        return a  # division cannot grow a non-negative size

    def _comprehension(self, e) -> tuple[str, Any]:
        if len(e.generators) != 1:
            return (_SEQ, sym.UNKNOWN)
        gen = e.generators[0]
        count = self.elems(gen.iter)
        elt = e.elt if not isinstance(e, ast.DictComp) else e.value
        # partition-slice pattern: slices of one array indexed by the
        # comprehension variable cover the array once, not count× it
        base = self._partition_slice_base(elt, gen.target)
        if base is not None:
            bk, bs = self.eval(base)
            if bk in (_ARR, _SEQ, _UNK) and bs is not sym.UNKNOWN:
                return (_SEQ, bs)
        saved = dict(self.env)
        self._bind_loop_var(gen.target, gen.iter)
        ek, es = self.eval(elt)
        self.env = saved
        if ek in (_ARR, _SEQ) and es is not sym.UNKNOWN:
            return (_SEQ, sym.mul(count, es))
        # unknown elements are assumed scalar (may-analysis: prefer an
        # under-estimate over poisoning every comprehension payload)
        return (_SEQ, count)

    @staticmethod
    def _partition_slice_base(elt: ast.expr, target: ast.expr) -> ast.expr | None:
        if not (isinstance(elt, ast.Subscript) and isinstance(elt.slice, ast.Slice)):
            return None
        var = {target.id} if isinstance(target, ast.Name) else {
            t.id for t in getattr(target, "elts", []) if isinstance(t, ast.Name)
        }
        names = {
            n.id
            for bound in (elt.slice.lower, elt.slice.upper)
            if bound is not None
            for n in ast.walk(bound)
            if isinstance(n, ast.Name)
        }
        return elt.value if var & names else None

    def _call(self, e: ast.Call) -> tuple[str, Any]:  # noqa: C901
        func = e.func
        kwargs = {kw.arg: kw.value for kw in e.keywords if kw.arg}

        if isinstance(func, ast.Attribute):
            # communicator collectives / p2p results
            if self.ctx.is_comm_call(e, COLLECTIVE_METHODS | _P2P_ALL | {"iprobe"}):
                return self._comm_result(func.attr, e)
            base = func.value
            attr = func.attr
            if isinstance(base, ast.Name) and base.id in ("np", "numpy"):
                return self._numpy(attr, e, kwargs)
            if attr in _METHOD_PASSTHROUGH:
                return self.eval(base)
            if attr in _METHOD_SCALAR:
                return (_NUM, sym.UNKNOWN)
            if attr == "bit_length":
                _, bs = self.eval(base)
                return (_NUM, sym.logify(bs))
            if attr in ("reshape", "repeat"):
                return (_ARR, sym.UNKNOWN)
            if attr in ("integers", "random", "normal", "uniform", "choice", "permutation"):
                if "size" in kwargs:
                    _, s = self.eval(kwargs["size"])
                    return (_ARR, s)
                return (_UNK, sym.UNKNOWN)
        if isinstance(func, ast.Name):
            name = func.id
            if name == "len" and e.args:
                return (_NUM, self.elems(e.args[0]))
            if name in ("int", "float", "abs", "round", "bool") and e.args:
                _, s = self.eval(e.args[0])
                return (_NUM, s)
            if name in ("range", "reversed"):
                return (_SEQ, self._range_count(e))
            if name in ("list", "tuple", "sorted", "set", "frozenset") and e.args:
                _, s = self.eval(e.args[0])
                return (_SEQ, s)
            if name == "enumerate" and e.args:
                _, s = self.eval(e.args[0])
                return (_SEQ, s)
            if name == "zip" and e.args:
                sizes = [self.eval(a)[1] for a in e.args]
                out = sizes[0]
                for s in sizes[1:]:
                    out = sym.smin(out, s)
                return (_SEQ, out)
            if name == "min" and len(e.args) >= 2:
                out = self.eval(e.args[0])[1]
                for a in e.args[1:]:
                    out = sym.smin(out, self.eval(a)[1])
                return (_NUM, out)
            if name == "max" and len(e.args) >= 2:
                out = self.eval(e.args[0])[1]
                for a in e.args[1:]:
                    out = sym.smax(out, self.eval(a)[1])
                return (_NUM, out)
            if name == "sum":
                return (_NUM, sym.UNKNOWN)
        # user-defined call: register a placeholder for the global phase
        # (re-recorded each pass so argument sizes see the refined env)
        spec = self.spec_for(e)
        if spec is not None:
            key = f"@{e.lineno}_{e.col_offset}"
            self.calls[key] = {
                "line": e.lineno,
                "spec": list(spec[0]),
                "display": spec[1],
                "args": [sym.to_json(self.elems(a)) for a in e.args],
                "kwargs": {
                    kw.arg: sym.to_json(self.elems(kw.value))
                    for kw in e.keywords
                    if kw.arg
                },
            }
            return (_UNK, sym.atom(key))
        if "size" in kwargs:  # rng-style constructor on an unknown object
            _, s = self.eval(kwargs["size"])
            return (_ARR, s)
        return (_UNK, sym.UNKNOWN)

    def _numpy(self, attr: str, e: ast.Call, kwargs: dict[str, ast.expr]) -> tuple[str, Any]:
        args = e.args
        if attr in _NP_CONSTRUCTORS or attr == "full":
            if not args:
                return (_ARR, sym.UNKNOWN)
            shape = args[0]
            if isinstance(shape, (ast.Tuple, ast.List)):  # 2-D+: product
                total = sym.ONE
                for el in shape.elts:
                    total = sym.mul(total, self.eval(el)[1])
                return (_ARR, total)
            return (_ARR, self.eval(shape)[1])
        if attr == "arange":
            return (_ARR, self._range_count(e))
        if attr == "linspace":
            num = kwargs.get("num") or (args[2] if len(args) > 2 else None)
            return (_ARR, self.eval(num)[1] if num is not None else sym.UNKNOWN)
        if attr in ("concatenate", "hstack", "vstack"):
            if args and isinstance(args[0], (ast.Tuple, ast.List)):
                padded = self._pad_concat(args[0].elts)
                if padded is not None:
                    return (_ARR, padded)
                return (_ARR, self.eval(args[0])[1])  # sum of parts
            return (_ARR, self.elems(args[0]) if args else sym.UNKNOWN)
        if attr == "append" and len(args) >= 2:
            return (_ARR, sym.add(self.elems(args[0]), self.elems(args[1])))
        if attr == "searchsorted" and len(args) >= 2:
            vk, vs = self.eval(args[1])
            if vk == _NUM:
                # scalar probe: an index bounded by the array's length
                return (_NUM, self.elems(args[0]))
            return (_ARR, vs)
        if attr in _NP_PASSTHROUGH:
            return (_ARR, self.elems(args[0]) if args else sym.UNKNOWN)
        if attr in ("minimum", "maximum", "where"):
            for a in args:
                k, s = self.eval(a)
                if k in (_ARR, _SEQ) and s is not sym.UNKNOWN:
                    return (_ARR, s)
            return (_NUM, sym.UNKNOWN)
        if attr in ("sum", "max", "min", "prod", "mean", "median", "dot", "count_nonzero", "argmax", "argmin"):
            return (_NUM, sym.UNKNOWN)
        if attr == "split" and args:
            return (_SEQ, self.elems(args[0]))
        return (_UNK, sym.UNKNOWN)

    def _pad_concat(self, elts: list[ast.expr]) -> Any | None:
        """Pad-to-length idiom: ``concatenate([x, np.full(K - x.size, ...)])``.

        The filler's count is written as a *difference* against a sibling's
        length, so the concatenation totals exactly ``K`` — but symbolic
        subtraction cannot cancel non-constant sizes, and summing the parts
        would report ``|x| + K`` instead.  Recognise the shape syntactically
        and return ``K`` (plus any parts outside the pair).
        """
        names = {el.id: i for i, el in enumerate(elts) if isinstance(el, ast.Name)}
        for i, el in enumerate(elts):
            if not (
                isinstance(el, ast.Call)
                and isinstance(el.func, ast.Attribute)
                and el.func.attr in ("full", "zeros", "ones", "empty")
                and isinstance(el.func.value, ast.Name)
                and el.func.value.id in ("np", "numpy")
                and el.args
            ):
                continue
            count = el.args[0]
            if not (isinstance(count, ast.BinOp) and isinstance(count.op, ast.Sub)):
                continue
            rhs = count.right
            base: str | None = None
            if (
                isinstance(rhs, ast.Attribute)
                and rhs.attr == "size"
                and isinstance(rhs.value, ast.Name)
            ):
                base = rhs.value.id
            elif (
                isinstance(rhs, ast.Call)
                and isinstance(rhs.func, ast.Name)
                and rhs.func.id == "len"
                and rhs.args
                and isinstance(rhs.args[0], ast.Name)
            ):
                base = rhs.args[0].id
            if base is None or base not in names:
                continue
            target = self.eval(count.left)[1]
            if target is sym.UNKNOWN:
                return None
            rest = sym.ZERO
            for j, other in enumerate(elts):
                if j not in (i, names[base]):
                    rest = sym.add(rest, self.elems(other))
            return sym.add(target, rest)
        return None

    def _range_count(self, e: ast.Call) -> Any:
        args = [self.eval(a)[1] for a in e.args]
        if not args:
            return sym.UNKNOWN
        if len(args) == 1:
            return args[0]
        return sym.sub(args[1], args[0])

    def _comm_result(self, verb: str, e: ast.Call) -> tuple[str, Any]:
        payload = self.elems(e.args[0]) if e.args else sym.ZERO
        if verb in ("allgather", "gather"):
            return (_SEQ, sym.mul(sym.atom("p"), payload))
        if verb in ("alltoall", "alltoallv"):
            # symmetric-exchange assumption: received totals match sent
            return (_SEQ, payload)
        if verb in ("allreduce", "reduce", "bcast", "scan", "exscan"):
            kind = self.eval(e.args[0])[0] if e.args else _UNK
            return (kind, self.eval(e.args[0])[1] if e.args else sym.ZERO)
        if verb == "scatter":
            return (_UNK, self._div(payload, sym.atom("p")))
        if verb == "sendrecv":
            kind = self.eval(e.args[0])[0] if e.args else _UNK
            return (kind, self.eval(e.args[0])[1] if e.args else sym.UNKNOWN)
        return (_UNK, sym.UNKNOWN)

    def _subscript(self, e: ast.Subscript) -> tuple[str, Any]:
        # a.shape[k] is the array's length (1-D codebase convention)
        if isinstance(e.value, ast.Attribute) and e.value.attr == "shape":
            _, bs = self.eval(e.value.value)
            return (_NUM, bs)
        bk, bs = self.eval(e.value)
        if isinstance(e.slice, ast.Slice):
            lo, hi = e.slice.lower, e.slice.upper
            if hi is not None and e.slice.step is None:
                hk, hs = self.eval(hi)
                if hk == _NUM and hs is not sym.UNKNOWN:
                    if lo is None:
                        return (_ARR, sym.smin(bs, hs) if bs is not sym.UNKNOWN else hs)
                    lk, ls = self.eval(lo)
                    if lk == _NUM and ls is not sym.UNKNOWN:
                        return (_ARR, sym.sub(hs, ls))
            return (_ARR, bs)
        ik, isz = self.eval(e.slice)
        if ik in (_ARR, _SEQ):
            return (_ARR, isz)  # fancy / boolean-mask indexing
        if bk == _ARR:
            return (_NUM, sym.UNKNOWN)
        return (_UNK, sym.UNKNOWN)


# ------------------------------------------------------------ cost extraction


class _SiteCollector:
    """Walks a function collecting comm cost sites under loop context."""

    def __init__(self, inf: _Inference) -> None:
        self.inf = inf
        self.ctx = inf.ctx
        self.sites: list[dict[str, Any]] = []
        self.loops: dict[int, dict[str, Any]] = {}

    def run(self, fn: ast.FunctionDef) -> None:
        for st in fn.body:
            self._walk(st, sym.ONE, [])

    def _walk(self, node: ast.AST, factor: Any, for_stack: list[tuple[int, Any]]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return
        if isinstance(node, ast.For):
            count = self.inf.elems(node.iter)
            stack = for_stack + [(node.lineno, count)]
            sub = sym.mul(factor, count) if count is not sym.UNKNOWN else sym.UNKNOWN
            for st in node.body:
                self._walk(st, sub, stack)
            for st in node.orelse:
                self._walk(st, factor, for_stack)
            return
        if isinstance(node, ast.While):
            sub = sym.mul(factor, sym.atom("s"))
            for st in node.body:
                self._walk(st, sub, for_stack)
            for st in node.orelse:
                self._walk(st, factor, for_stack)
            return
        if isinstance(node, ast.Call) and self.ctx.is_comm_call(
            node, _PAYLOAD_VERBS | {"recv", "irecv"}
        ):
            verb = node.func.attr  # type: ignore[union-attr]
            if verb in _PAYLOAD_VERBS:
                payload = self.inf.elems(node.args[0]) if node.args else sym.ZERO
                self.sites.append(
                    {
                        "verb": verb,
                        "line": node.lineno,
                        "payload": sym.to_json(payload),
                        "loop": sym.to_json(factor),
                    }
                )
            if verb in _P2P_ALL and for_stack:
                self._record_loop(node, verb, for_stack)
        for child in ast.iter_child_nodes(node):
            self._walk(child, factor, for_stack)

    def _record_loop(self, call: ast.Call, verb: str, for_stack: list[tuple[int, Any]]) -> None:
        head_line = for_stack[0][0]
        count = sym.ONE
        for _, c in for_stack:
            count = sym.mul(count, c) if c is not sym.UNKNOWN else sym.UNKNOWN
        payload = (
            self.inf.elems(call.args[0])
            if call.args and verb in _P2P_SEND
            else sym.ZERO
        )
        rec = self.loops.setdefault(
            head_line,
            {"line": head_line, "count": sym.to_json(count), "verbs": [],
             "blocking": False, "payload": sym.to_json(sym.ZERO)},
        )
        if verb not in rec["verbs"]:
            rec["verbs"] = sorted(rec["verbs"] + [verb])
        if verb in _P2P_BLOCKING:
            rec["blocking"] = True
        rec["payload"] = sym.to_json(
            sym.add(sym.from_json(rec["payload"]), payload)
        )
        prev = sym.from_json(rec["count"])
        if prev is sym.UNKNOWN:
            rec["count"] = sym.to_json(count)
        elif count is not sym.UNKNOWN and sym.smin(prev, count) == prev:
            rec["count"] = sym.to_json(count)  # deeper nesting: keep the max


def extract_function_cost(
    fn: ast.FunctionDef,
    ctx: FunctionContext,
    params: list[str],
    spec_for: Callable[[ast.Call], tuple[tuple[str, ...], str] | None],
    entry: bool = False,
) -> dict[str, Any] | None:
    """Symbolic cost facts of one function (cacheable JSON dict)."""
    inf = _Inference(fn, ctx, params, spec_for, entry=entry)
    inf.run()
    collector = _SiteCollector(inf)
    collector.run(fn)

    returns: Any = sym.ZERO
    seen = False
    for st in _own_statements(fn):
        if isinstance(st, ast.Return) and st.value is not None:
            returns = sym.add(returns, inf.elems(st.value))
            seen = True
    out = {
        "returns": sym.to_json(returns if seen else sym.ZERO),
        "defaults": {k: sym.to_json(v) for k, v in inf.defaults.items()},
        "sites": collector.sites,
        "loops": sorted(collector.loops.values(), key=lambda r: r["line"]),
        "calls": inf.calls,
    }
    if not (collector.sites or collector.loops or inf.calls or seen):
        return None  # keep the store compact: nothing cost-relevant here
    return out


# ------------------------------------------------------- whole-program phase


class CostProgram:
    """Resolves ``@`` placeholders bottom-up and judges the cost rules."""

    def __init__(self, summaries: Iterable[Any]) -> None:
        self.modules = list(summaries)
        self.graph = CallGraph([m.index for m in self.modules])
        self.cost: dict[str, dict[str, Any]] = {}
        self.fsum: dict[str, Any] = {}
        self.path_of: dict[str, str] = {}
        self.node_of: dict[str, FunctionNode] = {}
        for m in self.modules:
            for dotted, fs in m.functions.items():
                key = self.graph.key(m.path, dotted)
                self.fsum[key] = fs
                self.path_of[key] = m.path
                if dotted in m.index.functions:
                    self.node_of[key] = m.index.functions[dotted]
                if fs.cost:
                    self.cost[key] = fs.cost
        # placeholder -> callee key (or None), per function
        self.resolved: dict[str, dict[str, str | None]] = {}
        for key, cost in self.cost.items():
            path = self.path_of[key]
            fs = self.fsum[key]
            out: dict[str, str | None] = {}
            for ph, meta in cost.get("calls", {}).items():
                callee = self.graph.resolve(path, fs.dotted, tuple(meta["spec"]))
                if callee in self.cost or callee in self.fsum:
                    out[ph] = callee
                    self.graph.add_edge(key, callee)
                else:
                    out[ph] = None
            self.resolved[key] = out
        self.returns: dict[str, Any] = {}
        self._propagate()

    # -- bottom-up return-size fixpoint

    def _propagate(self) -> None:
        for scc in self.graph.sccs_bottom_up():
            for _ in range(2 if len(scc) > 1 else 1):
                for key in scc:
                    if key in self.cost:
                        self.returns[key] = self._returns_of(key)

    def _returns_of(self, key: str) -> Any:
        cost = self.cost[key]
        ret = sym.from_json(cost.get("returns"))
        subst, _ = self._subst_env(key)
        return sym.substitute(ret, subst) if subst else ret

    def _subst_env(self, key: str) -> tuple[dict[str, Any], dict[str, tuple[str, str, int]]]:
        """Placeholder substitutions for ``key``, plus via-witness metadata."""
        cost = self.cost.get(key, {})
        env: dict[str, Any] = {}
        via: dict[str, tuple[str, str, int]] = {}
        for ph, meta in cost.get("calls", {}).items():
            callee = self.resolved.get(key, {}).get(ph)
            if callee is None:
                continue
            bound = self._bind_call(callee, meta)
            if bound is None:
                continue
            env[ph] = bound
            node = self.node_of.get(callee)
            via[ph] = (
                meta.get("display", "?"),
                self.path_of.get(callee, "?"),
                node.line if node is not None else 0,
            )
        return env, via

    def _bind_call(self, callee: str, meta: dict[str, Any]) -> Any:
        ret = self.returns.get(callee)
        if ret is None:
            cost = self.cost.get(callee)
            ret = sym.from_json(cost.get("returns")) if cost else sym.UNKNOWN
        if ret is sym.UNKNOWN:
            return sym.UNKNOWN
        fs = self.fsum.get(callee)
        params = list(getattr(fs, "params", []) or [])
        offset = 1 if meta.get("spec", ["name"])[0] == "self" else 0
        binding: dict[str, Any] = {}
        for i, arg in enumerate(meta.get("args", [])):
            idx = i + offset
            if idx < len(params) and arg is not None:
                binding["$" + params[idx]] = sym.from_json(arg)
        for kw, arg in meta.get("kwargs", {}).items():
            if arg is not None:
                binding["$" + kw] = sym.from_json(arg)
        for name, dflt in (self.cost.get(callee, {}).get("defaults") or {}).items():
            binding.setdefault("$" + name, sym.from_json(dflt))
        bound = sym.substitute(ret, binding)
        # a surviving @-atom belongs to the *callee's* line numbers — it
        # must never leak into the caller where it could collide with the
        # caller's own placeholders
        if bound is not sym.UNKNOWN and any(
            a.startswith("@") for a in sym.free_atoms(bound)
        ):
            return sym.UNKNOWN
        return bound

    # -- resolution for sites

    def resolve_size(self, key: str, size: Any) -> tuple[Any, list[tuple[str, str, int]]]:
        """Substitute resolvable ``@`` atoms; returns (size, via chain)."""
        if size is sym.UNKNOWN:
            return size, []
        atoms = sym.free_atoms(size)
        if not any(a.startswith("@") for a in atoms):
            return size, []
        env, via = self._subst_env(key)
        chain = [via[a] for a in sorted(atoms) if a in via and a in env]
        return sym.substitute(size, {a: v for a, v in env.items() if a in atoms}), chain

    # -- rules

    def findings(self) -> list[Finding]:
        out: list[Finding] = []
        for key in sorted(self.cost):
            path = self.path_of[key]
            cost = self.cost[key]
            for site in cost.get("sites", []):
                out.extend(self._judge_site(key, path, site))
            for loop in cost.get("loops", []):
                out.extend(self._judge_loop(key, path, loop))
        return out

    def _judge_site(self, key: str, path: str, site: dict[str, Any]) -> list[Finding]:
        verb = site["verb"]
        payload, via = self.resolve_size(key, sym.from_json(site["payload"]))
        if not sym.is_ground(payload):
            return []
        related = tuple((p, ln) for _, p, ln in via)
        via_note = "".join(
            f" (payload size via {disp}(), defined at {p}:{ln})" for disp, p, ln in via
        )
        dn = sym.degree(payload, "n")
        dp = sym.degree(payload, "p")
        term = sym.fmt(payload)
        if verb in ("gather", "gatherv", "reduce") and dn >= 1:
            root_vol = sym.fmt(sym.dominant(sym.mul(sym.atom("p"), payload)))
            return [
                Finding(
                    path,
                    site["line"],
                    RULE_ROOT_BOTTLENECK,
                    f"{verb} of an Ω(n/p) payload — inferred {term} elements "
                    f"per rank, so the root materializes Θ({root_vol}); "
                    f"replace with an allreduce of O(p) counts or a "
                    f"distributed merge{via_note}",
                    related=related,
                )
            ]
        if verb == "allgather" and (dp >= 1 or dn >= 1):
            per_rank = sym.fmt(sym.dominant(sym.mul(sym.atom("p"), payload)))
            return [
                Finding(
                    path,
                    site["line"],
                    RULE_P2_TRAFFIC,
                    f"allgather deposit of {term} elements grows with "
                    f"{'p' if dp >= 1 else 'n'} — every rank materializes "
                    f"Θ({per_rank}), Ω(p²) wire bytes across the "
                    f"communicator{via_note}",
                    related=related,
                )
            ]
        if verb in ("alltoall", "alltoallv") and (dp >= 2 or (dn >= 1 and dp >= 0)):
            return [
                Finding(
                    path,
                    site["line"],
                    RULE_P2_TRAFFIC,
                    f"{verb} row payload of {term} elements per rank exceeds "
                    f"the O(p) counts / O(n/p) data budget — "
                    f"Θ({sym.fmt(sym.dominant(sym.mul(sym.atom('p'), payload)))}) "
                    f"total wire volume{via_note}",
                    related=related,
                )
            ]
        if verb in ("allreduce", "scan", "exscan") and dn >= 1:
            return [
                Finding(
                    path,
                    site["line"],
                    RULE_OVERSIZED_REDUCE,
                    f"{verb} payload of {term} elements grows with n — "
                    f"reductions should carry O(p) histogram/count vectors, "
                    f"not data; every rank pays Θ({term}) per call{via_note}",
                    related=related,
                )
            ]
        return []

    def _judge_loop(self, key: str, path: str, loop: dict[str, Any]) -> list[Finding]:
        count, _ = self.resolve_size(key, sym.from_json(loop["count"]))
        if not sym.is_ground(count) or sym.degree(count, "p") < 1:
            return []
        payload, via = self.resolve_size(key, sym.from_json(loop.get("payload")))
        big_payload = sym.is_ground(payload) and (
            sym.degree(payload, "n") >= 1 or sym.degree(payload, "p") >= 1
        )
        if not loop["blocking"] and not big_payload:
            # nonblocking O(1) payloads over a peer loop (e.g. isend +
            # waitall of per-peer counts) are latency-bound, not a
            # re-implemented data collective
            return []
        verbs = "/".join(loop["verbs"])
        kind = "blocking rounds" if loop["blocking"] else "in-flight volume"
        related = tuple((p, ln) for _, p, ln in via)
        detail = (
            f" moving {sym.fmt(payload)} elements per round"
            if big_payload
            else ""
        )
        return [
            Finding(
                path,
                loop["line"],
                RULE_HANDROLLED,
                f"loop over {sym.fmt(sym.dominant(count))} peers issuing "
                f"{verbs}{detail} re-implements a collective with O(p) "
                f"{kind} — use alltoallv/gather/bcast so the runtime can "
                f"price and schedule it as one operation",
                related=related,
            )
        ]


def check_cost_program(summaries: Iterable[Any]) -> list[Finding]:
    """All cost-rule findings over serialized module summaries."""
    return CostProgram(summaries).findings()
