"""Finding baselines: accept today's findings, fail only on new ones.

A baseline file is a committed JSON document holding the fingerprint of
every accepted finding — exact ``(path, line, rule, message)`` tuples.
``--baseline write`` snapshots the current findings; ``--baseline check``
subtracts the snapshot and exits non-zero only for findings that are not
in it.  This is the standard ratchet for introducing new rules into an
existing codebase: commit the baseline, block regressions, burn the
accepted findings down over time.

Fingerprints are deliberately exact: a finding that moves (file renamed,
line shifted, message reworded by a rule change) counts as *new* and
must be re-accepted consciously rather than silently tracked.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from .astlint import Finding

__all__ = [
    "BASELINE_SCHEMA",
    "DEFAULT_BASELINE",
    "write_baseline",
    "load_baseline",
    "subtract_baseline",
]

BASELINE_SCHEMA = 1

#: conventional location, committed at the repository root
DEFAULT_BASELINE = "analyze-baseline.json"

_Fingerprint = tuple[str, int, str, str]


def _fingerprint(f: Finding) -> _Fingerprint:
    return (f.path, f.line, f.rule, f.message)


def write_baseline(findings: Iterable[Finding], path: str | Path) -> int:
    """Snapshot findings into a baseline file; returns how many."""
    entries = sorted({_fingerprint(f) for f in findings})
    payload = {
        "schema": BASELINE_SCHEMA,
        "findings": [
            {"path": p, "line": line, "rule": rule, "message": msg}
            for p, line, rule, msg in entries
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return len(entries)


def load_baseline(path: str | Path) -> set[_Fingerprint]:
    """Read a baseline file; raises ``OSError``/``ValueError`` on problems."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(data, dict) or data.get("schema") != BASELINE_SCHEMA:
        raise ValueError(f"{path}: not a baseline file (schema mismatch)")
    out: set[_Fingerprint] = set()
    for raw in data.get("findings", []):
        out.add((raw["path"], int(raw["line"]), raw["rule"], raw["message"]))
    return out


def subtract_baseline(
    findings: Iterable[Finding], baseline: set[_Fingerprint]
) -> tuple[list[Finding], int]:
    """Split findings into (new, number suppressed by the baseline)."""
    new: list[Finding] = []
    suppressed = 0
    for f in findings:
        if _fingerprint(f) in baseline:
            suppressed += 1
        else:
            new.append(f)
    return new, suppressed
