"""Symbolic size algebra for the communication-cost analyzer.

Sizes are sums of monomials over a small atom vocabulary:

``p``
    the communicator size (``comm.size``),
``logp``
    its binary logarithm (``p.bit_length()``-style loop depths),
``n``
    the *global* element count — a rank's partition is ``n/p``, i.e. the
    monomial ``n·p⁻¹``,
``s``
    the trip count of a data-dependent loop (histogramming rounds),
``$<param>`` / ``$<param>.<attr>``
    the size (array) or magnitude (scalar) of a function parameter — bound
    to the caller's argument size during interprocedural substitution,
``@<line>_<col>``
    the size of an unresolved call result at that source position —
    substituted with the callee's symbolic return size once the call graph
    resolves it.

A size is either ``None`` (``UNKNOWN`` — the lattice top) or a normalized
tuple of ``(coeff, powers)`` monomials, where ``powers`` is a sorted tuple
of ``(atom, exponent)`` pairs with non-zero integer exponents.  ``n/p`` is
``(1.0, (("n", 1), ("p", -1)))``.  Everything is a *may* upper bound:
``add`` joins branches, ``smax`` is bounded by ``add``, and any operation
touching ``UNKNOWN`` stays ``UNKNOWN``.

The representation is deliberately plain tuples + module functions (no
classes): sizes round-trip through the analysis store as JSON and are
hashable for fixpoint change detection.
"""

from __future__ import annotations

import math
from typing import Any, Iterable

__all__ = [
    "UNKNOWN",
    "GROUND_ATOMS",
    "const",
    "atom",
    "add",
    "sub",
    "mul",
    "scale",
    "smin",
    "smax",
    "logify",
    "degree",
    "free_atoms",
    "is_ground",
    "is_const",
    "grows",
    "dominant",
    "substitute",
    "evaluate",
    "evaluate_ground",
    "fmt",
    "to_json",
    "from_json",
]

#: the lattice top: nothing is known about the size
UNKNOWN = None

#: atoms with a concrete evaluation (everything else is a placeholder)
GROUND_ATOMS = frozenset({"p", "logp", "n", "s"})

#: Size = tuple[tuple[float, tuple[tuple[str, int], ...]], ...] | None
Size = Any


def _norm(terms: Iterable[tuple[float, tuple[tuple[str, int], ...]]]) -> Size:
    acc: dict[tuple[tuple[str, int], ...], float] = {}
    for coeff, powers in terms:
        powers = tuple(sorted((a, int(e)) for a, e in powers if int(e) != 0))
        acc[powers] = acc.get(powers, 0.0) + float(coeff)
    out = tuple(
        (c, pw) for pw, c in sorted(acc.items()) if abs(c) > 1e-12
    )
    return out


def const(c: float) -> Size:
    """The constant size ``c``."""
    return _norm([(float(c), ())])


def atom(name: str, exp: int = 1) -> Size:
    """A single-atom size, e.g. ``atom("p")`` or ``atom("n") * atom("p", -1)``."""
    return _norm([(1.0, ((name, exp),))])


ZERO = const(0)
ONE = const(1)


def add(*sizes: Size) -> Size:
    """Sum of sizes (also the branch join: an upper bound of either)."""
    if any(s is UNKNOWN for s in sizes):
        return UNKNOWN
    return _norm(t for s in sizes for t in s)


def scale(size: Size, c: float) -> Size:
    if size is UNKNOWN:
        return UNKNOWN
    return _norm((coeff * c, pw) for coeff, pw in size)


def sub(a: Size, b: Size) -> Size:
    """``a - b`` — exact for constants, otherwise the upper bound ``a``."""
    if a is UNKNOWN:
        return UNKNOWN
    if b is not UNKNOWN and is_const(a) and is_const(b):
        return _norm(list(a) + list(scale(b, -1.0)))
    return a


def mul(a: Size, b: Size) -> Size:
    if a is UNKNOWN or b is UNKNOWN:
        return UNKNOWN
    out = []
    for ca, pa in a:
        for cb, pb in b:
            powers: dict[str, int] = dict(pa)
            for at, e in pb:
                powers[at] = powers.get(at, 0) + e
            out.append((ca * cb, tuple(powers.items())))
    return _norm(out)


def _dominance_key(powers: tuple[tuple[str, int], ...]) -> tuple:
    d = dict(powers)
    ground = (d.get("n", 0), d.get("p", 0), d.get("s", 0), d.get("logp", 0))
    other = tuple(sorted((a, e) for a, e in d.items() if a not in GROUND_ATOMS))
    return (ground, other)


def smin(a: Size, b: Size) -> Size:
    """``min(a, b)`` — keeps the asymptotically smaller known operand."""
    if a is UNKNOWN:
        return b
    if b is UNKNOWN:
        return a
    ka = max((_dominance_key(pw) for _, pw in a), default=((0, 0, 0, 0), ()))
    kb = max((_dominance_key(pw) for _, pw in b), default=((0, 0, 0, 0), ()))
    return a if ka <= kb else b


def smax(a: Size, b: Size) -> Size:
    """``max(a, b)`` — monomial-wise coefficient max.

    A sound upper bound of either operand (coefficients absent from one
    side count as 0), and much tighter than the sum when both sides share
    their dominant monomial — the common case for branch joins, where the
    two arms compute differently-shaped views of the same data.
    """
    if a is UNKNOWN or b is UNKNOWN:
        return UNKNOWN
    ca = {tuple(sorted(pw)): c for c, pw in a}
    cb = {tuple(sorted(pw)): c for c, pw in b}
    return _norm(
        (max(ca.get(k, 0.0), cb.get(k, 0.0)), k) for k in set(ca) | set(cb)
    )


def logify(size: Size) -> Size:
    """``log2`` of a size (``p.bit_length()`` and friends).

    Only ``p``-degree sizes have a representable logarithm (``logp``);
    constants map to constants and everything else to ``UNKNOWN``.
    """
    if size is UNKNOWN:
        return UNKNOWN
    if is_const(size):
        v = evaluate(size, {})
        return const(max(math.log2(v), 1.0)) if v and v > 1 else ONE
    if degree(size, "p") >= 1 and all(
        all(a == "p" for a, _ in pw) for _, pw in size
    ):
        return atom("logp")
    return UNKNOWN


def degree(size: Size, sym: str) -> int:
    """Largest exponent of ``sym`` across the monomials (0 if absent)."""
    if size is UNKNOWN:
        return 0
    return max((dict(pw).get(sym, 0) for _, pw in size), default=0)


def free_atoms(size: Size) -> frozenset[str]:
    if size is UNKNOWN:
        return frozenset()
    return frozenset(a for _, pw in size for a, _ in pw)


def is_ground(size: Size) -> bool:
    """True when every atom evaluates concretely (no ``$``/``@`` leftovers)."""
    return size is not UNKNOWN and free_atoms(size) <= GROUND_ATOMS


def is_const(size: Size) -> bool:
    return size is not UNKNOWN and all(not pw for _, pw in size)


def grows(size: Size) -> bool:
    """True when any monomial has a positive-exponent ground atom."""
    if size is UNKNOWN:
        return False
    return any(
        any(a in GROUND_ATOMS and e > 0 for a, e in pw) for _, pw in size
    )


def dominant(size: Size) -> Size:
    """The asymptotically maximal monomials (per-atom exponent order)."""
    if size is UNKNOWN or not size:
        return size
    keep = []
    for i, (ci, pi) in enumerate(size):
        di = dict(pi)
        dominated = False
        for j, (cj, pj) in enumerate(size):
            if i == j:
                continue
            dj = dict(pj)
            atoms = set(di) | set(dj)
            if all(dj.get(a, 0) >= di.get(a, 0) for a in atoms) and di != dj:
                dominated = True
                break
        if not dominated:
            keep.append((ci, pi))
    return _norm(keep)


def substitute(size: Size, env: dict[str, Size]) -> Size:
    """Replace atoms by sizes; atoms absent from ``env`` are kept.

    A negative exponent on a substituted atom only survives when the
    replacement is a single monomial (invertible); otherwise the whole
    size collapses to ``UNKNOWN``.
    """
    if size is UNKNOWN:
        return UNKNOWN
    total: Size = ZERO
    for coeff, powers in size:
        term: Size = const(coeff)
        for at, exp in powers:
            rep = env.get(at)
            if rep is None:
                term = mul(term, atom(at, exp))
                continue
            if rep is UNKNOWN:
                return UNKNOWN
            if exp >= 0:
                for _ in range(exp):
                    term = mul(term, rep)
            else:
                if len(rep) != 1:
                    return UNKNOWN
                (rc, rpw), = rep
                if abs(rc) <= 1e-12:
                    return UNKNOWN
                inv = _norm([(1.0 / rc, tuple((a, -e) for a, e in rpw))])
                for _ in range(-exp):
                    term = mul(term, inv)
        total = add(total, term)
    return total


def evaluate(size: Size, env: dict[str, float]) -> float | None:
    """Concrete value of a size, or ``None`` on unknown / unbound atoms."""
    if size is UNKNOWN:
        return None
    total = 0.0
    for coeff, powers in size:
        v = coeff
        for at, exp in powers:
            if at not in env:
                return None
            v *= float(env[at]) ** exp
        total += v
    return max(total, 0.0)


def evaluate_ground(size: Size, env: dict[str, float]) -> tuple[float, frozenset[str]]:
    """Value of the ground monomials; also reports the dropped atoms.

    Non-ground monomials (unresolved ``$``/``@`` placeholders — e.g. a
    config-gated code path the trial never runs) are skipped rather than
    poisoning the whole term; callers surface the dropped atoms.
    """
    if size is UNKNOWN:
        return 0.0, frozenset({"?"})
    total = 0.0
    dropped: set[str] = set()
    for coeff, powers in size:
        extra = {a for a, _ in powers} - GROUND_ATOMS - set(env)
        if extra:
            dropped |= extra
            continue
        v = coeff
        for at, exp in powers:
            v *= float(env[at]) ** exp
        total += v
    return max(total, 0.0), frozenset(dropped)


# -------------------------------------------------------------- formatting


def _fmt_coeff(c: float) -> str:
    if abs(c - round(c)) < 1e-9:
        return str(int(round(c)))
    return f"{c:g}"


def _fmt_atom(a: str, e: int) -> str:
    name = {"logp": "log p"}.get(a, a)
    if a.startswith("$"):
        name = f"|{a[1:]}|"
    if a.startswith("@"):
        name = f"?{a[1:]}"
    e = abs(e)
    return name if e == 1 else f"{name}^{e}"


def fmt(size: Size) -> str:
    """Human form, e.g. ``2·p·s + n/p`` or ``?`` for ``UNKNOWN``."""
    if size is UNKNOWN:
        return "?"
    if not size:
        return "0"
    parts = []
    for coeff, powers in sorted(size, key=lambda t: _dominance_key(t[1]), reverse=True):
        num = [_fmt_atom(a, e) for a, e in powers if e > 0]
        den = [_fmt_atom(a, e) for a, e in powers if e < 0]
        if not num or abs(coeff - 1.0) > 1e-9 or (not num and not den):
            num.insert(0, _fmt_coeff(coeff))
        s = "·".join(num) if num else "1"
        if den:
            s += "/" + "/".join(den)
        parts.append(s)
    return " + ".join(parts)


# ------------------------------------------------------------ serialization


def to_json(size: Size) -> Any:
    if size is UNKNOWN:
        return None
    return [[c, [[a, e] for a, e in pw]] for c, pw in size]


def from_json(data: Any) -> Size:
    if data is None:
        return UNKNOWN
    return _norm(
        (float(c), tuple((str(a), int(e)) for a, e in pw)) for c, pw in data
    )
