"""Interprocedural dataflow: per-function summaries and whole-program rules.

The per-function rules in :mod:`repro.analyze.rules` and
:mod:`repro.analyze.dataflow` stop at the function boundary, so exactly
the helper shapes that multi-level sorting introduces — a helper that
creates an ``isend`` and returns the request, a wrapper that threads a
tag parameter into a ``send``, a rank-dependent partition size computed
in one function and fed to a collective in another — are invisible to
them.  This module closes that gap in two phases:

**Summaries (per file, cacheable).**  :func:`summarize_module` extracts a
JSON-serializable :class:`FunctionSummary` per function: which requests
escape through the return value, whether the return value is rank-tainted
or a rank-sized container, which parameters flow into p2p ``tag``
arguments, every collective issued on a communicator handle, and every
call site with its rank-divergence context plus enough caller-local facts
(is the result waited? returned? fed to a uniform collective as a size?)
that the whole-program phase never needs an AST.  Warm incremental runs
load summaries from :mod:`repro.analyze.store` and skip parsing entirely.

**Whole-program fixpoint (every run, cheap).**  :func:`check_program`
resolves call sites through :class:`repro.analyze.callgraph.CallGraph`,
propagates summaries bottom-up over SCCs (a fixpoint within each SCC
handles recursion, e.g. AMS-style group-recursive phases calling shared
collective helpers), and emits four rules:

``SPMD-ESCAPED-REQUEST``
    A request created in a callee escapes through its return value and
    the caller discards it (or binds it to a name that is never used) —
    nobody anywhere waits on the operation.
``SPMD-INTERPROC-TAG-COLLISION``
    Call sites in *different modules* funnel the same tag constant into
    the same helper parameter that reaches a p2p ``tag=``; unrelated
    protocols would cross-match messages.
``SPMD-INTERPROC-DIV-COLLECTIVE``
    A call reached only under rank-dependent control flow leads
    (transitively) to a collective inside a callee; not every rank of the
    communicator would issue it.
``SPMD-RANK-TAINT-SHAPE``
    A helper returns a rank-dependent value (or rank-sized container) and
    the caller feeds it — possibly through a size constructor — into a
    uniform-shape collective's payload.

Everything is a *may* analysis over edges the call graph can prove;
unresolvable calls (dynamic dispatch, third-party code) stay silent.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Iterable

from .astlint import (
    COLLECTIVE_METHODS,
    P2P_METHODS,
    Finding,
    FunctionContext,
    ModuleInfo,
    build_context,
)
from .callgraph import LOCALS_SEP, CallGraph, FunctionNode, ModuleIndex, index_module
from .dataflow import rank_sized_names, uniform_collective_hits

__all__ = [
    "RULE_ESCAPED_REQUEST",
    "RULE_INTERPROC_TAG",
    "RULE_INTERPROC_DIV",
    "RULE_RANK_TAINT_SHAPE",
    "INTERPROC_RULES",
    "CallSite",
    "FunctionSummary",
    "ModuleSummary",
    "summarize_module",
    "check_program",
]

RULE_ESCAPED_REQUEST = "SPMD-ESCAPED-REQUEST"
RULE_INTERPROC_TAG = "SPMD-INTERPROC-TAG-COLLISION"
RULE_INTERPROC_DIV = "SPMD-INTERPROC-DIV-COLLECTIVE"
RULE_RANK_TAINT_SHAPE = "SPMD-RANK-TAINT-SHAPE"

INTERPROC_RULES = (
    RULE_ESCAPED_REQUEST,
    RULE_INTERPROC_TAG,
    RULE_INTERPROC_DIV,
    RULE_RANK_TAINT_SHAPE,
)

#: tag values excluded from collision checks (default / wildcard), mirroring
#: the intraprocedural SPMD-TAG-COLLISION rule
_TAG_EXEMPT = frozenset({0, -1})

#: call-spec prefixes that can never resolve inside the fileset; their call
#: sites are dropped at summary time to keep the store compact
_REQUEST_METHODS = frozenset({"isend", "irecv"})


# ----------------------------------------------------------- serializable IR


@dataclass
class CallSite:
    """One call to a (potentially) user-defined function, caller's view."""

    spec: tuple[str, ...]  #: ("name", f) | ("attr", prefix, f) | ("self", m)
    display: str  #: source spelling for messages, e.g. ``helpers.send_rows``
    line: int
    div_line: int | None = None  #: rank-divergence start in the caller, if any
    pos_const: dict[int, int] = field(default_factory=dict)
    kw_const: dict[str, int] = field(default_factory=dict)
    pos_taint: list[int] = field(default_factory=list)
    kw_taint: list[str] = field(default_factory=list)
    pos_names: dict[int, str] = field(default_factory=dict)
    kw_names: dict[str, str] = field(default_factory=dict)
    result: str = "other"  #: discarded | named | returned | other
    result_name: str | None = None
    result_consumed: bool = False  #: the bound name is loaded somewhere
    result_waited: bool = False  #: wait()/test()/waitall()/drain loop
    result_returned: bool = False  #: result flows into the caller's return
    #: uniform collectives that become rank-sized if the result is treated
    #: as a rank-tainted scalar / a rank-sized container: [(verb, line)]
    shape_hits_taint: list[tuple[str, int]] = field(default_factory=list)
    shape_hits_sized: list[tuple[str, int]] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "spec": list(self.spec),
            "display": self.display,
            "line": self.line,
            "div_line": self.div_line,
            "pos_const": {str(k): v for k, v in self.pos_const.items()},
            "kw_const": dict(self.kw_const),
            "pos_taint": list(self.pos_taint),
            "kw_taint": list(self.kw_taint),
            "pos_names": {str(k): v for k, v in self.pos_names.items()},
            "kw_names": dict(self.kw_names),
            "result": self.result,
            "result_name": self.result_name,
            "result_consumed": self.result_consumed,
            "result_waited": self.result_waited,
            "result_returned": self.result_returned,
            "shape_hits_taint": [list(h) for h in self.shape_hits_taint],
            "shape_hits_sized": [list(h) for h in self.shape_hits_sized],
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "CallSite":
        return cls(
            spec=tuple(d["spec"]),
            display=d["display"],
            line=int(d["line"]),
            div_line=d.get("div_line"),
            pos_const={int(k): int(v) for k, v in d.get("pos_const", {}).items()},
            kw_const={k: int(v) for k, v in d.get("kw_const", {}).items()},
            pos_taint=[int(i) for i in d.get("pos_taint", [])],
            kw_taint=list(d.get("kw_taint", [])),
            pos_names={int(k): v for k, v in d.get("pos_names", {}).items()},
            kw_names=dict(d.get("kw_names", {})),
            result=d.get("result", "other"),
            result_name=d.get("result_name"),
            result_consumed=bool(d.get("result_consumed", False)),
            result_waited=bool(d.get("result_waited", False)),
            result_returned=bool(d.get("result_returned", False)),
            shape_hits_taint=[(h[0], int(h[1])) for h in d.get("shape_hits_taint", [])],
            shape_hits_sized=[(h[0], int(h[1])) for h in d.get("shape_hits_sized", [])],
        )


@dataclass
class FunctionSummary:
    """Communication-relevant facts about one function, caller-agnostic."""

    dotted: str
    name: str
    line: int
    params: list[str] = field(default_factory=list)
    comm_params: list[str] = field(default_factory=list)
    #: collectives issued on a communicator handle: [(display, line)]
    collectives: list[tuple[str, int]] = field(default_factory=list)
    #: requests that escape through the return value: [(verb, line)]
    escaping: list[tuple[str, int]] = field(default_factory=list)
    returns_taint: bool = False
    returns_taint_line: int | None = None
    #: params whose taint would reach the return value
    taint_params_to_return: list[str] = field(default_factory=list)
    returns_sized: bool = False
    returns_sized_line: int | None = None
    #: param name -> line of the p2p call whose tag it feeds
    tag_params: dict[str, int] = field(default_factory=dict)
    calls: list[CallSite] = field(default_factory=list)
    #: symbolic communication-cost facts (:mod:`repro.analyze.costlint`):
    #: payload sites, p2p loops, call placeholders, and the return size —
    #: ``None`` when the function has nothing cost-relevant
    cost: dict[str, Any] | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "dotted": self.dotted,
            "name": self.name,
            "line": self.line,
            "params": list(self.params),
            "comm_params": list(self.comm_params),
            "collectives": [list(c) for c in self.collectives],
            "escaping": [list(e) for e in self.escaping],
            "returns_taint": self.returns_taint,
            "returns_taint_line": self.returns_taint_line,
            "taint_params_to_return": list(self.taint_params_to_return),
            "returns_sized": self.returns_sized,
            "returns_sized_line": self.returns_sized_line,
            "tag_params": dict(self.tag_params),
            "calls": [c.to_dict() for c in self.calls],
            "cost": self.cost,
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "FunctionSummary":
        return cls(
            dotted=d["dotted"],
            name=d["name"],
            line=int(d["line"]),
            params=list(d.get("params", [])),
            comm_params=list(d.get("comm_params", [])),
            collectives=[(c[0], int(c[1])) for c in d.get("collectives", [])],
            escaping=[(e[0], int(e[1])) for e in d.get("escaping", [])],
            returns_taint=bool(d.get("returns_taint", False)),
            returns_taint_line=d.get("returns_taint_line"),
            taint_params_to_return=list(d.get("taint_params_to_return", [])),
            returns_sized=bool(d.get("returns_sized", False)),
            returns_sized_line=d.get("returns_sized_line"),
            tag_params={k: int(v) for k, v in d.get("tag_params", {}).items()},
            calls=[CallSite.from_dict(c) for c in d.get("calls", [])],
            cost=d.get("cost"),
        )


@dataclass
class ModuleSummary:
    """Everything the whole-program phase needs from one file."""

    index: ModuleIndex
    functions: dict[str, FunctionSummary] = field(default_factory=dict)

    @property
    def path(self) -> str:
        return self.index.path

    @property
    def modname(self) -> str:
        return self.index.modname

    def to_dict(self) -> dict[str, Any]:
        return {
            "index": self.index.to_dict(),
            "functions": {d: f.to_dict() for d, f in sorted(self.functions.items())},
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "ModuleSummary":
        return cls(
            index=ModuleIndex.from_dict(d["index"]),
            functions={
                k: FunctionSummary.from_dict(v) for k, v in d["functions"].items()
            },
        )


# ------------------------------------------------------- per-file summaries


def _own_statements(fn: ast.FunctionDef):
    """Statements of ``fn`` excluding nested function/class bodies."""
    stack: list[ast.stmt] = list(reversed(fn.body))
    while stack:
        st = stack.pop()
        if isinstance(st, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        yield st
        children: list[ast.stmt] = []
        for child in ast.iter_child_nodes(st):
            if isinstance(child, ast.stmt):
                children.append(child)
            else:
                children.extend(
                    c for c in ast.walk(child) if isinstance(c, ast.stmt)
                )
        stack.extend(reversed(children))


def _own_nodes(fn: ast.FunctionDef):
    for st in _own_statements(fn):
        yield from ast.walk(st)


def _return_exprs(fn: ast.FunctionDef) -> list[ast.expr]:
    return [
        st.value
        for st in _own_statements(fn)
        if isinstance(st, ast.Return) and st.value is not None
    ]


def _waited_names(fn: ast.FunctionDef) -> set[str]:
    """Names whose requests are completed somewhere in the function."""
    waited: set[str] = set()
    for st in _own_statements(fn):
        for n in ast.walk(st):
            if not isinstance(n, ast.Call):
                continue
            func = n.func
            if isinstance(func, ast.Attribute):
                if func.attr in ("wait", "test") and isinstance(func.value, ast.Name):
                    waited.add(func.value.id)
                elif func.attr == "waitall":
                    waited.update(
                        a.id for a in n.args if isinstance(a, ast.Name)
                    )
            elif isinstance(func, ast.Name) and func.id == "waitall":
                waited.update(a.id for a in n.args if isinstance(a, ast.Name))
        # `for r in reqs: r.wait()` drains the collection *and* the element
        if isinstance(st, ast.For) and isinstance(st.target, ast.Name) and isinstance(
            st.iter, ast.Name
        ):
            target = st.target.id
            for n in ast.walk(
                ast.Module(body=list(st.body), type_ignores=[])
            ):
                if (
                    isinstance(n, ast.Call)
                    and isinstance(n.func, ast.Attribute)
                    and n.func.attr in ("wait", "test")
                    and isinstance(n.func.value, ast.Name)
                    and n.func.value.id == target
                ):
                    waited.add(st.iter.id)
                    break
    return waited


def _names_in(expr: ast.AST) -> set[str]:
    return {
        n.id
        for n in ast.walk(expr)
        if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)
    }


def _dotted_name(node: ast.expr) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


#: positional index of the ``tag`` argument per p2p method (mirrors rules.py)
_TAG_ARG_INDEX = {"send": 2, "isend": 2, "recv": 1, "irecv": 1, "iprobe": 1, "sendrecv": 3}


def _tag_expr(call: ast.Call) -> ast.expr | None:
    method = call.func.attr  # type: ignore[union-attr]
    for kw in call.keywords:
        if kw.arg == "tag":
            return kw.value
    idx = _TAG_ARG_INDEX.get(method)
    if idx is not None and len(call.args) > idx:
        return call.args[idx]
    return None


class _Summarizer:
    """Builds one :class:`FunctionSummary` from an AST + context."""

    def __init__(
        self,
        mod: ModuleInfo,
        node_info: FunctionNode,
        ctx: FunctionContext,
        resolvable_names: set[str],
        import_prefixes: set[str],
    ) -> None:
        self.mod = mod
        self.info = node_info
        self.fn = node_info.node
        assert self.fn is not None
        self.ctx = ctx
        self.resolvable_names = resolvable_names
        self.import_prefixes = import_prefixes

    def run(self) -> FunctionSummary:
        fn, ctx = self.fn, self.ctx
        summary = FunctionSummary(
            dotted=self.info.dotted,
            name=self.info.name,
            line=self.info.line,
            params=list(self.info.params),
            comm_params=sorted(p for p in self.info.params if p in ctx.comm_names),
        )
        returns = _return_exprs(fn)
        waited = _waited_names(fn)
        returned_names = set().union(*(_names_in(r) for r in returns)) if returns else set()

        self._collectives(summary)
        self._escaping(summary, returns, waited, returned_names)
        self._returns(summary, returns, returned_names)
        self._tag_params(summary)
        self._call_sites(summary, waited, returned_names)
        self._cost(summary)
        return summary

    def _cost(self, summary: FunctionSummary) -> None:
        from .costlint import extract_function_cost

        try:
            summary.cost = extract_function_cost(
                self.fn,
                self.ctx,
                list(self.info.params),
                self._spec_for,
                entry=self.info.is_entry,
            )
        except Exception:  # noqa: BLE001
            # the size inference runs over arbitrary third-party-looking
            # code (tests, benchmarks); a crash must degrade to "no cost
            # facts", never abort the whole analysis
            summary.cost = None

    # -- local facts

    def _collectives(self, summary: FunctionSummary) -> None:
        for n in _own_nodes(self.fn):
            if isinstance(n, ast.Call) and self.ctx.is_comm_call(n, COLLECTIVE_METHODS):
                func = n.func
                assert isinstance(func, ast.Attribute)
                display = f"{func.value.id}.{func.attr}"  # type: ignore[attr-defined]
                summary.collectives.append((display, n.lineno))
        summary.collectives.sort(key=lambda c: (c[1], c[0]))

    def _escaping(
        self,
        summary: FunctionSummary,
        returns: list[ast.expr],
        waited: set[str],
        returned_names: set[str],
    ) -> None:
        # requests returned directly: `return comm.isend(...)` (or in a tuple)
        for r in returns:
            parts = r.elts if isinstance(r, (ast.Tuple, ast.List)) else [r]
            for part in parts:
                if isinstance(part, ast.Call) and self.ctx.is_comm_call(
                    part, _REQUEST_METHODS
                ):
                    verb = part.func.attr  # type: ignore[union-attr]
                    summary.escaping.append((verb, part.lineno))
        # requests bound to a name that is returned and never waited
        for st in _own_statements(self.fn):
            if not (isinstance(st, ast.Assign) and len(st.targets) == 1):
                continue
            tgt, val = st.targets[0], st.value
            pairs: list[tuple[ast.expr, ast.expr]] = []
            if isinstance(tgt, ast.Name):
                pairs.append((tgt, val))
            elif (
                isinstance(tgt, ast.Tuple)
                and isinstance(val, ast.Tuple)
                and len(tgt.elts) == len(val.elts)
            ):
                pairs.extend(zip(tgt.elts, val.elts))
            for t, v in pairs:
                if (
                    isinstance(t, ast.Name)
                    and isinstance(v, ast.Call)
                    and self.ctx.is_comm_call(v, _REQUEST_METHODS)
                    and t.id in returned_names
                    and t.id not in waited
                ):
                    verb = v.func.attr  # type: ignore[union-attr]
                    summary.escaping.append((verb, v.lineno))
        summary.escaping.sort(key=lambda e: (e[1], e[0]))

    def _returns(
        self,
        summary: FunctionSummary,
        returns: list[ast.expr],
        returned_names: set[str],
    ) -> None:
        ctx = self.ctx
        for r in returns:
            if not summary.returns_taint and ctx.is_rank_expr(r):
                summary.returns_taint = True
                summary.returns_taint_line = r.lineno
        sized = rank_sized_names(ctx)
        from .dataflow import _rank_sized_expr

        for r in returns:
            if not summary.returns_sized and _rank_sized_expr(r, ctx, sized):
                summary.returns_sized = True
                summary.returns_sized_line = r.lineno
        summary.taint_params_to_return = sorted(
            p
            for p in self.info.params
            if p in returned_names and p not in ctx.comm_names
        )

    def _tag_params(self, summary: FunctionSummary) -> None:
        params = set(self.info.params)
        for n in _own_nodes(self.fn):
            if not (isinstance(n, ast.Call) and self.ctx.is_comm_call(n, P2P_METHODS)):
                continue
            expr = _tag_expr(n)
            if expr is None:
                continue
            for name in _names_in(expr) & params:
                summary.tag_params.setdefault(name, n.lineno)

    # -- call sites

    def _spec_for(self, call: ast.Call) -> tuple[tuple[str, ...], str] | None:
        func = call.func
        if isinstance(func, ast.Name):
            if func.id in self.resolvable_names:
                return ("name", func.id), func.id
            return None
        if isinstance(func, ast.Attribute):
            if isinstance(func.value, ast.Name):
                base = func.value.id
                if base in self.ctx.comm_names:
                    return None  # comm method, not a user call
                if base == "self":
                    return ("self", func.attr), f"self.{func.attr}"
            dotted = _dotted_name(func.value)
            if dotted is not None and dotted in self.import_prefixes:
                return ("attr", dotted, func.attr), f"{dotted}.{func.attr}"
        return None

    def _call_sites(
        self,
        summary: FunctionSummary,
        waited: set[str],
        returned_names: set[str],
    ) -> None:
        from .rules import walk_calls_with_divergence

        # statement-level result classification for top-level call patterns
        kind_of: dict[int, tuple[str, str | None]] = {}
        for st in _own_statements(self.fn):
            if isinstance(st, ast.Expr) and isinstance(st.value, ast.Call):
                kind_of[id(st.value)] = ("discarded", None)
            elif isinstance(st, ast.Return) and isinstance(st.value, ast.Call):
                kind_of[id(st.value)] = ("returned", None)
            elif isinstance(st, ast.Assign) and len(st.targets) == 1:
                tgt, val = st.targets[0], st.value
                if isinstance(tgt, ast.Name) and isinstance(val, ast.Call):
                    kind_of[id(val)] = ("named", tgt.id)
                elif (
                    isinstance(tgt, ast.Tuple)
                    and isinstance(val, ast.Tuple)
                    and len(tgt.elts) == len(val.elts)
                ):
                    for t, v in zip(tgt.elts, val.elts):
                        if isinstance(t, ast.Name) and isinstance(v, ast.Call):
                            kind_of[id(v)] = ("named", t.id)

        loads = self._load_counts()
        sites: list[CallSite] = []

        def on_call(call: ast.Call, div: int | None) -> None:
            spec_display = self._spec_for(call)
            if spec_display is None:
                return
            spec, display = spec_display
            kind, name = kind_of.get(id(call), ("other", None))
            site = CallSite(
                spec=spec,
                display=display,
                line=call.lineno,
                div_line=div,
                result=kind,
                result_name=name,
            )
            self._record_args(site, call)
            if kind == "returned":
                site.result_returned = True
            elif kind == "named" and name is not None:
                site.result_consumed = loads.get(name, 0) > 0
                site.result_waited = name in waited
                site.result_returned = name in returned_names
                site.shape_hits_taint = self._shape_delta(name, as_sized=False)
                site.shape_hits_sized = self._shape_delta(name, as_sized=True)
            sites.append(site)

        walk_calls_with_divergence(self.ctx, on_call)
        sites.sort(key=lambda s: (s.line, s.display))
        summary.calls = sites

    def _load_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for n in _own_nodes(self.fn):
            if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load):
                counts[n.id] = counts.get(n.id, 0) + 1
        return counts

    def _record_args(self, site: CallSite, call: ast.Call) -> None:
        ctx = self.ctx
        for i, a in enumerate(call.args):
            if isinstance(a, ast.Starred):
                break  # positions past a star are unknowable
            if isinstance(a, ast.Constant) and isinstance(a.value, int):
                site.pos_const[i] = a.value
            elif isinstance(a, ast.Name):
                site.pos_names[i] = a.id
            if ctx.is_rank_expr(a):
                site.pos_taint.append(i)
        for kw in call.keywords:
            if kw.arg is None:
                continue  # **kwargs
            if isinstance(kw.value, ast.Constant) and isinstance(kw.value.value, int):
                site.kw_const[kw.arg] = kw.value.value
            elif isinstance(kw.value, ast.Name):
                site.kw_names[kw.arg] = kw.value.id
            if ctx.is_rank_expr(kw.value):
                site.kw_taint.append(kw.arg)

    def _shape_delta(self, name: str, as_sized: bool) -> list[tuple[str, int]]:
        """Uniform-collective payload sites that light up when ``name`` is
        treated as rank-tainted (scalar) or rank-sized (container)."""
        ctx = self.ctx
        base_sized = rank_sized_names(ctx)
        base = {
            (verb, line)
            for verb, line, _ in uniform_collective_hits(ctx, base_sized)
        }
        if as_sized:
            hyp_sized = rank_sized_names(ctx, extra_sized=frozenset({name}))
            hyp_ctx = ctx
        else:
            hyp_ctx = FunctionContext(ctx.node, ctx.comm_names, ctx.tainted | {name})
            hyp_sized = rank_sized_names(hyp_ctx)
        hits = [
            (verb, line)
            for verb, line, _ in uniform_collective_hits(hyp_ctx, hyp_sized)
            if (verb, line) not in base
        ]
        hits.sort(key=lambda h: (h[1], h[0]))
        return hits


def _propagate_comm_params(index: ModuleIndex) -> dict[str, set[str]]:
    """Module-local fixpoint: which params are communicators by evidence.

    Seeds: the first parameter of every entry-marked function.  Transfer:
    a comm handle passed positionally (or by keyword) to a module-local
    callee makes the matching callee parameter a comm.  The result feeds
    ``build_context(extra_comms=...)`` so helpers whose comm parameter has
    a non-standard name (``def helper(c): c.barrier()``) still summarize
    their collectives.  Module-local on purpose — cross-file propagation
    would make per-file summaries depend on other files' content, which
    the incremental store cannot cache.
    """
    from .callgraph import _lookup_name, _scope_table

    extra: dict[str, set[str]] = {}
    for dotted, info in index.functions.items():
        if info.is_entry and info.params:
            extra.setdefault(dotted, set()).add(info.params[0])
    scopes = _scope_table(index)
    for _ in range(len(index.functions) + 1):
        changed = False
        for dotted, info in index.functions.items():
            if info.node is None:
                continue
            ctx = build_context(info.node, extra_comms=extra.get(dotted, ()))
            if not ctx.comm_names:
                continue
            for n in _own_nodes(info.node):
                if not (isinstance(n, ast.Call) and isinstance(n.func, ast.Name)):
                    continue
                hit = _lookup_name(scopes, f"{dotted}.{LOCALS_SEP}", n.func.id)
                if hit is None or not hit.params:
                    continue
                bound: list[str] = []
                for i, a in enumerate(n.args):
                    if (
                        isinstance(a, ast.Name)
                        and a.id in ctx.comm_names
                        and i < len(hit.params)
                    ):
                        bound.append(hit.params[i])
                for kw in n.keywords:
                    if (
                        kw.arg is not None
                        and isinstance(kw.value, ast.Name)
                        and kw.value.id in ctx.comm_names
                        and kw.arg in hit.params
                    ):
                        bound.append(kw.arg)
                if bound:
                    s = extra.setdefault(hit.dotted, set())
                    fresh = set(bound) - s
                    if fresh:
                        s |= fresh
                        changed = True
        if not changed:
            break
    return extra


def summarize_module(mod: ModuleInfo, index: ModuleIndex | None = None) -> ModuleSummary:
    """Summarize every function of a parsed module (cold path)."""
    if index is None:
        index = index_module(mod)
    resolvable = set(index.import_symbols)
    resolvable.update(fn.name for fn in index.functions.values())
    prefixes = set(index.import_modules) | set(index.import_symbols)
    extra_comms = _propagate_comm_params(index)
    out = ModuleSummary(index=index)
    for dotted, info in index.functions.items():
        if info.node is None:
            continue
        ctx = build_context(
            info.node, extra_comms=frozenset(extra_comms.get(dotted, ()))
        )
        out.functions[dotted] = _Summarizer(
            mod, info, ctx, resolvable, prefixes
        ).run()
    return out


# ------------------------------------------------------ whole-program phase


@dataclass
class _Facts:
    """Propagated (transitive) facts for one function."""

    #: (display, path, line, chain-of-function-names) of a witness collective
    collective: tuple[str, str, int, tuple[str, ...]] | None = None
    #: {(verb, path, line)} of requests escaping through the return value
    escapes: frozenset[tuple[str, str, int]] = frozenset()
    returns_taint: tuple[str, int] | None = None  #: (path, line) witness
    returns_sized: tuple[str, int] | None = None
    #: param name -> (path, line) of the p2p tag use it (transitively) feeds
    tag_params: dict[str, tuple[str, int]] = field(default_factory=dict)
    taint_params_to_return: frozenset[str] = frozenset()


def _param_at(callee: FunctionNode, site: CallSite, pos: int | None, kw: str | None) -> str | None:
    """Callee parameter bound by a positional index or keyword name."""
    if kw is not None:
        return kw if kw in callee.params else None
    assert pos is not None
    offset = 1 if site.spec[0] == "self" else 0
    idx = pos + offset
    if 0 <= idx < len(callee.params):
        return callee.params[idx]
    return None


class _Program:
    def __init__(self, summaries: Iterable[ModuleSummary]) -> None:
        self.modules = list(summaries)
        self.graph = CallGraph([m.index for m in self.modules])
        self.summary: dict[str, FunctionSummary] = {}
        self.path_of: dict[str, str] = {}
        self.modname_of: dict[str, str] = {}
        for m in self.modules:
            for dotted, fs in m.functions.items():
                key = self.graph.key(m.path, dotted)
                self.summary[key] = fs
                self.path_of[key] = m.path
                self.modname_of[key] = m.modname
        # resolve call sites once; key -> [(site, callee_key)]
        self.resolved: dict[str, list[tuple[CallSite, str]]] = {}
        for key, fs in self.summary.items():
            path = self.path_of[key]
            out: list[tuple[CallSite, str]] = []
            for site in fs.calls:
                callee = self.graph.resolve(path, fs.dotted, site.spec)
                if callee is None or callee not in self.summary:
                    continue
                out.append((site, callee))
                self.graph.add_edge(key, callee)
            self.resolved[key] = out
        self.facts: dict[str, _Facts] = {k: _Facts() for k in self.summary}

    # -- propagation

    def propagate(self) -> None:
        for scc in self.graph.sccs_bottom_up():
            in_scope = [k for k in scc if k in self.summary]
            changed = True
            while changed:
                changed = False
                for key in in_scope:
                    if self._update(key):
                        changed = True

    def _update(self, key: str) -> bool:
        fs = self.summary[key]
        path = self.path_of[key]
        f = self.facts[key]
        changed = False

        # collectives: own first, else inherit the smallest witness
        if f.collective is None:
            witness: tuple[str, str, int, tuple[str, ...]] | None = None
            if fs.collectives:
                disp, line = min(fs.collectives, key=lambda c: (c[1], c[0]))
                witness = (disp, path, line, ())
            else:
                candidates = []
                for site, callee in self.resolved[key]:
                    cw = self.facts[callee].collective
                    if cw is not None:
                        cname = self.summary[callee].name
                        candidates.append((cw[0], cw[1], cw[2], (cname, *cw[3])))
                if candidates:
                    witness = min(candidates, key=lambda w: (w[1], w[2], w[0]))
            if witness is not None:
                f.collective = witness
                changed = True

        # escaping requests: own plus those inherited through returned calls
        esc = {(verb, path, line) for verb, line in fs.escaping}
        for site, callee in self.resolved[key]:
            if site.result_returned and not site.result_waited:
                esc |= self.facts[callee].escapes
        esc_frozen = frozenset(esc)
        if esc_frozen != f.escapes:
            f.escapes = esc_frozen
            changed = True

        # rank-tainted / rank-sized returns
        if f.returns_taint is None:
            w = None
            if fs.returns_taint and fs.returns_taint_line is not None:
                w = (path, fs.returns_taint_line)
            else:
                for site, callee in self.resolved[key]:
                    if not site.result_returned:
                        continue
                    cf = self.facts[callee]
                    if cf.returns_taint is not None:
                        w = cf.returns_taint
                        break
                    if self._tainted_args_reach_return(site, callee):
                        cs = self.summary[callee]
                        w = (self.path_of[callee], cs.line)
                        break
            if w is not None:
                f.returns_taint = w
                changed = True
        if f.returns_sized is None:
            w = None
            if fs.returns_sized and fs.returns_sized_line is not None:
                w = (path, fs.returns_sized_line)
            else:
                for site, callee in self.resolved[key]:
                    if site.result_returned and self.facts[callee].returns_sized:
                        w = self.facts[callee].returns_sized
                        break
            if w is not None:
                f.returns_sized = w
                changed = True

        # taint-through params: local, plus params forwarded to a callee
        # whose own taint-params reach its return on a returned call
        t2r = set(fs.taint_params_to_return)
        for site, callee in self.resolved[key]:
            if not site.result_returned:
                continue
            cf = self.facts[callee]
            callee_node = self.graph.node(callee)
            if callee_node is None:
                continue
            for pos, name in site.pos_names.items():
                if name in fs.params:
                    p = _param_at(callee_node, site, pos, None)
                    if p is not None and p in cf.taint_params_to_return:
                        t2r.add(name)
            for kw, name in site.kw_names.items():
                if name in fs.params:
                    p = _param_at(callee_node, site, None, kw)
                    if p is not None and p in cf.taint_params_to_return:
                        t2r.add(name)
        t2r_frozen = frozenset(t2r)
        if t2r_frozen != f.taint_params_to_return:
            f.taint_params_to_return = t2r_frozen
            changed = True

        # tag params: local, plus params forwarded into a callee's tag param
        tags = {p: (path, line) for p, line in fs.tag_params.items()}
        tags.update(f.tag_params)
        for site, callee in self.resolved[key]:
            cf = self.facts[callee]
            callee_node = self.graph.node(callee)
            if callee_node is None or not cf.tag_params:
                continue
            for pos, name in site.pos_names.items():
                if name in fs.params:
                    p = _param_at(callee_node, site, pos, None)
                    if p is not None and p in cf.tag_params and name not in tags:
                        tags[name] = cf.tag_params[p]
            for kw, name in site.kw_names.items():
                if name in fs.params:
                    p = _param_at(callee_node, site, None, kw)
                    if p is not None and p in cf.tag_params and name not in tags:
                        tags[name] = cf.tag_params[p]
        if tags != f.tag_params:
            f.tag_params = tags
            changed = True

        return changed

    def _tainted_args_reach_return(self, site: CallSite, callee: str) -> bool:
        cf = self.facts[callee]
        callee_node = self.graph.node(callee)
        if callee_node is None:
            return False
        for pos in site.pos_taint:
            p = _param_at(callee_node, site, pos, None)
            if p is not None and p in cf.taint_params_to_return:
                return True
        for kw in site.kw_taint:
            p = _param_at(callee_node, site, None, kw)
            if p is not None and p in cf.taint_params_to_return:
                return True
        return False

    # -- rules

    def findings(self) -> list[Finding]:
        out: list[Finding] = []
        out.extend(self._escaped_requests())
        out.extend(self._div_collectives())
        out.extend(self._tag_collisions())
        out.extend(self._rank_taint_shapes())
        return out

    def _escaped_requests(self) -> list[Finding]:
        out: list[Finding] = []
        for key in sorted(self.summary):
            path = self.path_of[key]
            for site, callee in self.resolved[key]:
                esc = self.facts[callee].escapes
                if not esc:
                    continue
                if site.result == "discarded":
                    how = "the call result is discarded"
                elif site.result == "named" and not site.result_consumed:
                    how = f"'{site.result_name}' is never used afterwards"
                else:
                    continue
                for verb, epath, eline in sorted(esc, key=lambda e: (e[1], e[2])):
                    out.append(
                        Finding(
                            path,
                            site.line,
                            RULE_ESCAPED_REQUEST,
                            f"Request created by '{verb}()' at {epath}:{eline} "
                            f"escapes through '{site.display}()' and is never "
                            f"waited anywhere ({how}); wait on the returned "
                            "request or drain it before the epoch ends",
                            related=((epath, eline),),
                        )
                    )
        return out

    def _div_collectives(self) -> list[Finding]:
        out: list[Finding] = []
        for key in sorted(self.summary):
            path = self.path_of[key]
            for site, callee in self.resolved[key]:
                if site.div_line is None:
                    continue
                w = self.facts[callee].collective
                if w is None:
                    continue
                disp, wpath, wline, chain = w
                # chain lists the functions between the callee and the one
                # holding the collective, outermost first
                via = " via " + " -> ".join(chain) if chain else ""
                out.append(
                    Finding(
                        path,
                        site.line,
                        RULE_INTERPROC_DIV,
                        f"call to '{site.display}()' is only reached under "
                        f"rank-dependent control flow (divergence starts at "
                        f"line {site.div_line}), but it issues collective "
                        f"'{disp}()' at {wpath}:{wline}{via}; every rank of "
                        "the communicator must issue it",
                        related=((wpath, wline),),
                    )
                )
        return out

    def _tag_collisions(self) -> list[Finding]:
        # (callee key, param, value) -> [(caller path, modname, line, display)]
        groups: dict[
            tuple[str, str, int], list[tuple[str, str, int, str]]
        ] = {}
        for key in sorted(self.summary):
            path = self.path_of[key]
            modname = self.modname_of[key]
            for site, callee in self.resolved[key]:
                cf = self.facts[callee]
                callee_node = self.graph.node(callee)
                if callee_node is None or not cf.tag_params:
                    continue
                bindings: list[tuple[str | None, int]] = [
                    (_param_at(callee_node, site, pos, None), v)
                    for pos, v in site.pos_const.items()
                ] + [
                    (_param_at(callee_node, site, None, kw), v)
                    for kw, v in site.kw_const.items()
                ]
                for param, value in bindings:
                    if param is None or param not in cf.tag_params:
                        continue
                    if value in _TAG_EXEMPT:
                        continue
                    groups.setdefault((callee, param, value), []).append(
                        (path, modname, site.line, site.display)
                    )
        out: list[Finding] = []
        for (callee, param, value), sites in sorted(groups.items()):
            modnames = {m for _, m, _, _ in sites}
            if len(modnames) < 2:
                continue
            tpath, tline = self.facts[callee].tag_params[param]
            cname = self.summary[callee].name
            for path, modname, line, display in sites:
                others = sorted(m for m in modnames if m != modname)
                out.append(
                    Finding(
                        path,
                        line,
                        RULE_INTERPROC_TAG,
                        f"tag constant {value} funnels into parameter "
                        f"'{param}' of '{cname}()' (p2p tag at {tpath}:{tline}) "
                        f"from multiple modules ({', '.join(others)} also "
                        "calls it with the same value); unrelated protocols "
                        "cross-match messages — disambiguate the tag per "
                        "call site or allocate namespaces in repro.mpi.tags",
                        related=((tpath, tline),),
                    )
                )
        return out

    def _rank_taint_shapes(self) -> list[Finding]:
        out: list[Finding] = []
        seen: set[tuple[str, int, str]] = set()
        for key in sorted(self.summary):
            path = self.path_of[key]
            for site, callee in self.resolved[key]:
                cf = self.facts[callee]
                cname = self.summary[callee].name
                taint_origin = cf.returns_taint
                if taint_origin is None and self._tainted_args_reach_return(
                    site, callee
                ):
                    taint_origin = (self.path_of[callee], self.summary[callee].line)
                if taint_origin is not None:
                    for verb, hline in site.shape_hits_taint:
                        dkey = (path, hline, verb)
                        if dkey in seen:
                            continue
                        seen.add(dkey)
                        out.append(
                            Finding(
                                path,
                                hline,
                                RULE_RANK_TAINT_SHAPE,
                                f"payload of '{verb}()' has a length derived "
                                f"from '{cname}()' which returns a "
                                f"rank-dependent value ({taint_origin[0]}:"
                                f"{taint_origin[1]}); '{verb}' requires the "
                                "same shape on every rank — pad to a common "
                                "size or use alltoallv/gather",
                                related=(taint_origin,),
                            )
                        )
                if cf.returns_sized is not None:
                    for verb, hline in site.shape_hits_sized:
                        dkey = (path, hline, verb)
                        if dkey in seen:
                            continue
                        seen.add(dkey)
                        out.append(
                            Finding(
                                path,
                                hline,
                                RULE_RANK_TAINT_SHAPE,
                                f"payload of '{verb}()' is a container from "
                                f"'{cname}()' which returns a rank-dependent "
                                f"length ({cf.returns_sized[0]}:"
                                f"{cf.returns_sized[1]}); '{verb}' requires "
                                "the same shape on every rank — pad to a "
                                "common size or use alltoallv/gather",
                                related=(cf.returns_sized,),
                            )
                        )
        return out


def check_program(summaries: Iterable[ModuleSummary]) -> list[Finding]:
    """Run the four interprocedural rules over module summaries."""
    prog = _Program(summaries)
    prog.propagate()
    return prog.findings()
