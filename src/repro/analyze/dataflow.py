"""Intra-procedural CFG/dataflow rules for the SPMD lint pass.

The per-statement rules in :mod:`repro.analyze.rules` cannot see *order*:
whether a write to a buffer happens between an ``isend`` and the matching
``wait()`` depends on which paths through the function exist.  This module
builds a small control-flow graph per rank function and runs a forward
*may* analysis over it, powering three rules:

``SPMD-BUFFER-REUSE``
    A name passed to ``isend()`` is written in place (``buf[i] = ...``,
    ``buf += ...``, ``buf.fill(...)``, ``np.copyto(buf, ...)``) on some
    path between the ``isend`` and the ``wait()``/``test()`` of its
    request.  The in-process runtime copies eagerly so this is silent
    today, but real MPI owns the buffer until completion.
``SPMD-VIEW-SEND``
    The payload of a ``send``/``isend``/``sendrecv``/``bcast`` is a numpy
    slice or other view expression (``a[1:]``, ``a.T``, ``a.reshape(...)``)
    without ``.copy()``.  Views pin the base array and are not contiguous;
    real MPI either fails or silently packs.
``SPMD-SHAPE-MISMATCH``
    A uniform-shape collective (``allreduce``/``reduce``/``scan``/
    ``exscan``/``alltoall``) receives a payload whose *length* is derived
    from ``comm.rank``; congruence requires the same shape on every rank.

The CFG is deliberately simple — basic blocks of simple statements, with
``if``/``while``/``for``/``try`` lowered to edges — and the analysis is a
standard worklist fixpoint over sets of live (request, buffer-names)
facts.  Everything here is a *may* analysis: a finding means some path
exhibits the hazard, not all paths.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .astlint import Finding, FunctionContext, ModuleInfo

__all__ = [
    "RULE_BUFFER_REUSE",
    "RULE_VIEW_SEND",
    "RULE_SHAPE_MISMATCH",
    "build_cfg",
    "check_function",
    "rank_sized_names",
    "uniform_collective_hits",
]

RULE_BUFFER_REUSE = "SPMD-BUFFER-REUSE"
RULE_VIEW_SEND = "SPMD-VIEW-SEND"
RULE_SHAPE_MISMATCH = "SPMD-SHAPE-MISMATCH"

#: comm methods whose first positional argument is an outgoing payload
_SEND_PAYLOAD_METHODS = frozenset({"send", "isend", "sendrecv", "bcast", "scatter"})

#: collectives whose payload must have the same shape on every rank
_UNIFORM_COLLECTIVES = frozenset({"allreduce", "reduce", "scan", "exscan", "alltoall"})

#: ndarray methods that mutate the receiver in place
_MUTATOR_METHODS = frozenset(
    {"fill", "sort", "partition", "put", "resize", "setflags", "itemset", "byteswap"}
)

#: numpy module functions whose first argument is written in place
_NP_INPLACE_FUNCS = frozenset({"copyto", "put", "place", "putmask"})

#: numpy constructors whose first argument is a size/shape
_SIZE_CONSTRUCTORS = frozenset({"zeros", "ones", "empty", "full", "arange"})

#: ndarray attributes / methods that return views of the receiver
_VIEW_ATTRS = frozenset({"T"})
_VIEW_METHODS = frozenset({"reshape", "ravel", "transpose", "swapaxes", "view", "squeeze"})


# ------------------------------------------------------------------- CFG

#: pseudo-statement emitted into a block: kill every request tracked under
#: the given collection name (a ``for r in reqs: r.wait()`` loop header).
_KillCollection = tuple  # ("kill-coll", name)


@dataclass
class Block:
    """One basic block: simple statements plus successor block indices."""

    stmts: list = field(default_factory=list)
    succ: list[int] = field(default_factory=list)


class CFG:
    """A function's control-flow graph; block 0 is the entry."""

    def __init__(self) -> None:
        self.blocks: list[Block] = [Block()]

    def new(self) -> int:
        self.blocks.append(Block())
        return len(self.blocks) - 1

    def edge(self, a: int, b: int) -> None:
        if b not in self.blocks[a].succ:
            self.blocks[a].succ.append(b)

    def preds(self) -> list[list[int]]:
        out: list[list[int]] = [[] for _ in self.blocks]
        for i, b in enumerate(self.blocks):
            for s in b.succ:
                out[s].append(i)
        return out


class _CFGBuilder:
    """Lowers a function body to a :class:`CFG`.

    Compound statements become edges; their header expressions (``if``
    tests, ``for`` iterables) are kept as synthetic ``ast.Expr`` entries so
    transfer functions still see calls made inside them.  ``return`` /
    ``raise`` / ``break`` / ``continue`` divert control to the right
    target and leave the fall-through block unreachable (its in-state is
    empty, so it contributes nothing at joins).
    """

    def __init__(self) -> None:
        self.cfg = CFG()
        self.cur = 0

    def build(self, fn: ast.FunctionDef) -> CFG:
        self._body(fn.body, ())
        return self.cfg

    def _emit(self, item) -> None:
        self.cfg.blocks[self.cur].stmts.append(item)

    def _emit_expr(self, expr: ast.expr) -> None:
        wrapper = ast.Expr(value=expr)
        ast.copy_location(wrapper, expr)
        self._emit(wrapper)

    def _body(self, stmts: list[ast.stmt], loops) -> None:
        for st in stmts:
            self._stmt(st, loops)

    def _stmt(self, st: ast.stmt, loops) -> None:  # noqa: C901
        cfg = self.cfg
        if isinstance(st, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scopes are analyzed as their own functions
        if isinstance(st, ast.If):
            self._emit_expr(st.test)
            start = self.cur
            then = cfg.new()
            cfg.edge(start, then)
            self.cur = then
            self._body(st.body, loops)
            then_end = self.cur
            other = cfg.new()
            cfg.edge(start, other)
            self.cur = other
            self._body(st.orelse, loops)
            else_end = self.cur
            join = cfg.new()
            cfg.edge(then_end, join)
            cfg.edge(else_end, join)
            self.cur = join
        elif isinstance(st, (ast.While, ast.For, ast.AsyncFor)):
            header = cfg.new()
            cfg.edge(self.cur, header)
            self.cur = header
            if isinstance(st, ast.While):
                self._emit_expr(st.test)
            else:
                self._emit_expr(st.iter)
                if _loop_waits_all(st):
                    self._emit(("kill-coll", st.iter.id))  # type: ignore[union-attr]
            body = cfg.new()
            after = cfg.new()
            cfg.edge(header, body)
            cfg.edge(header, after)
            self.cur = body
            self._body(st.body, loops + ((after, header),))
            cfg.edge(self.cur, header)
            self.cur = after
            if st.orelse:
                self._body(st.orelse, loops)
        elif isinstance(st, ast.Try):
            entry = self.cur
            body = cfg.new()
            cfg.edge(entry, body)
            self.cur = body
            self._body(st.body, loops)
            if st.orelse:
                self._body(st.orelse, loops)
            body_end = self.cur
            ends = [body_end]
            for handler in st.handlers:
                hb = cfg.new()
                # An exception may fire before the first statement of the
                # body or after its last — edge from both ends (may analysis).
                cfg.edge(entry, hb)
                cfg.edge(body_end, hb)
                self.cur = hb
                self._body(handler.body, loops)
                ends.append(self.cur)
            join = cfg.new()
            for e in ends:
                cfg.edge(e, join)
            self.cur = join
            if st.finalbody:
                self._body(st.finalbody, loops)
        elif isinstance(st, (ast.With, ast.AsyncWith)):
            for item in st.items:
                self._emit_expr(item.context_expr)
            self._body(st.body, loops)
        elif isinstance(st, (ast.Return, ast.Raise)):
            self._emit(st)
            self.cur = cfg.new()  # unreachable continuation
        elif isinstance(st, (ast.Break, ast.Continue)):
            if loops:
                after, header = loops[-1]
                cfg.edge(self.cur, after if isinstance(st, ast.Break) else header)
            self.cur = cfg.new()  # unreachable continuation
        else:
            self._emit(st)


def _loop_waits_all(st: ast.For | ast.AsyncFor) -> bool:
    """``for r in reqs: ... r.wait()/r.test() ...`` drains the whole list."""
    if not (isinstance(st.target, ast.Name) and isinstance(st.iter, ast.Name)):
        return False
    target = st.target.id
    for n in ast.walk(ast.Module(body=list(st.body), type_ignores=[])):
        if (
            isinstance(n, ast.Call)
            and isinstance(n.func, ast.Attribute)
            and n.func.attr in ("wait", "test")
            and isinstance(n.func.value, ast.Name)
            and n.func.value.id == target
        ):
            return True
    return False


def build_cfg(fn: ast.FunctionDef) -> CFG:
    """Public entry: the CFG of one function body."""
    return _CFGBuilder().build(fn)


# -------------------------------------------------- SPMD-BUFFER-REUSE

# A live request fact: (key, buffer names, isend line).
#   key = ("var", name)   — request bound to a variable
#   key = ("coll", name)  — request appended to a list variable
_LiveReq = tuple


def _payload_names(expr: ast.expr) -> frozenset[str]:
    """Base names whose storage the payload expression directly references.

    Only *direct* references count (``buf``, ``buf[i:]``, ``obj.buf``,
    tuples/lists of those) — arithmetic like ``buf + 1`` materializes a
    temporary, so later writes to ``buf`` are harmless.
    """
    names: set[str] = set()

    def base(e: ast.expr) -> None:
        while isinstance(e, (ast.Subscript, ast.Attribute, ast.Starred)):
            e = e.value
        if isinstance(e, ast.Name):
            names.add(e.id)

    if isinstance(expr, (ast.Tuple, ast.List)):
        for elt in expr.elts:
            base(elt)
    else:
        base(expr)
    return frozenset(names)


def _isend_call(ctx: FunctionContext, expr: ast.expr) -> ast.Call | None:
    if isinstance(expr, ast.Call) and ctx.is_comm_call(expr, frozenset({"isend"})):
        return expr
    return None


def _wait_kills(stmt: ast.stmt) -> tuple[set, set]:
    """Names whose requests complete in this statement: (vars, collections)."""
    var_kills: set[str] = set()
    coll_kills: set[str] = set()
    for n in ast.walk(stmt):
        if not isinstance(n, ast.Call):
            continue
        func = n.func
        if isinstance(func, ast.Attribute):
            if func.attr in ("wait", "test") and isinstance(func.value, ast.Name):
                var_kills.add(func.value.id)
            elif func.attr == "waitall":
                for arg in n.args:
                    if isinstance(arg, ast.Name):
                        coll_kills.add(arg.id)
                        var_kills.add(arg.id)
        elif isinstance(func, ast.Name) and func.id == "waitall":
            for arg in n.args:
                if isinstance(arg, ast.Name):
                    coll_kills.add(arg.id)
                    var_kills.add(arg.id)
    return var_kills, coll_kills


def _mutated_names(stmt: ast.stmt) -> list[tuple[str, str]]:
    """(name, how) pairs for every in-place write in the statement."""
    out: list[tuple[str, str]] = []

    def sub_base(target: ast.expr) -> str | None:
        while isinstance(target, (ast.Subscript, ast.Attribute)):
            target = target.value
        return target.id if isinstance(target, ast.Name) else None

    if isinstance(stmt, ast.Assign):
        for tgt in stmt.targets:
            elts = tgt.elts if isinstance(tgt, (ast.Tuple, ast.List)) else [tgt]
            for t in elts:
                if isinstance(t, ast.Subscript):
                    name = sub_base(t)
                    if name:
                        out.append((name, f"{name}[...] = ..."))
    elif isinstance(stmt, ast.AugAssign):
        name = sub_base(stmt.target)
        if name:
            op = type(stmt.op).__name__
            out.append((name, f"augmented assignment ({op}) writes in place"))
    for n in ast.walk(stmt):
        if not isinstance(n, ast.Call):
            continue
        func = n.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATOR_METHODS
            and isinstance(func.value, ast.Name)
        ):
            out.append((func.value.id, f".{func.attr}() mutates in place"))
        elif (
            isinstance(func, ast.Attribute)
            and func.attr in _NP_INPLACE_FUNCS
            and isinstance(func.value, ast.Name)
            and func.value.id in ("np", "numpy")
            and n.args
        ):
            name = sub_base(n.args[0])
            if name:
                out.append((name, f"np.{func.attr}() writes the first argument"))
    return out


def _rebound_names(stmt: ast.stmt) -> set[str]:
    """Plain-name rebindings: the name no longer refers to the sent buffer."""
    out: set[str] = set()
    if isinstance(stmt, ast.Assign):
        for tgt in stmt.targets:
            elts = tgt.elts if isinstance(tgt, (ast.Tuple, ast.List)) else [tgt]
            out.update(t.id for t in elts if isinstance(t, ast.Name))
    elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
        if stmt.value is not None:
            out.add(stmt.target.id)
    return out


def _gen_requests(ctx: FunctionContext, stmt: ast.stmt) -> list[_LiveReq]:
    """Request facts born in this statement."""
    gens: list[_LiveReq] = []
    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
        tgt = stmt.targets[0]
        call = _isend_call(ctx, stmt.value)
        if isinstance(tgt, ast.Name) and call is not None and call.args:
            gens.append((("var", tgt.id), _payload_names(call.args[0]), call.lineno))
    elif isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
        call = stmt.value
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr == "append"
            and isinstance(call.func.value, ast.Name)
            and call.args
        ):
            inner = _isend_call(ctx, call.args[0])
            if inner is not None and inner.args:
                gens.append(
                    (
                        ("coll", call.func.value.id),
                        _payload_names(inner.args[0]),
                        inner.lineno,
                    )
                )
    return gens


def _transfer(
    ctx: FunctionContext,
    items: list,
    state: frozenset,
    report=None,
) -> frozenset:
    """Run one block's statements over a live-request set."""
    live = set(state)
    for item in items:
        if isinstance(item, tuple) and item and item[0] == "kill-coll":
            name = item[1]
            live = {r for r in live if r[0] != ("coll", name)}
            continue
        stmt = item
        var_kills, coll_kills = _wait_kills(stmt)
        if var_kills or coll_kills:
            live = {
                r
                for r in live
                if not (
                    (r[0][0] == "var" and r[0][1] in var_kills)
                    or (r[0][0] == "coll" and r[0][1] in coll_kills)
                )
            }
        if report is not None:
            for name, how in _mutated_names(stmt):
                for req in sorted(live, key=lambda r: (r[0], r[2])):
                    if name in req[1]:
                        report(stmt, name, how, req)
        rebound = _rebound_names(stmt)
        if rebound:
            live = {
                (key, names - rebound, line) if names & rebound else (key, names, line)
                for key, names, line in live
            }
        for gen in _gen_requests(ctx, stmt):
            key = gen[0]
            if key[0] == "var":
                # rebinding the request variable forgets the old request
                live = {r for r in live if r[0] != key}
            live.add(gen)
    return frozenset(live)


def _buffer_reuse(mod: ModuleInfo, ctx: FunctionContext) -> list[Finding]:
    cfg = build_cfg(ctx.node)
    preds = cfg.preds()
    n = len(cfg.blocks)
    out_states: list[frozenset] = [frozenset()] * n

    changed = True
    while changed:
        changed = False
        for i, block in enumerate(cfg.blocks):
            ins: frozenset = frozenset().union(*(out_states[p] for p in preds[i])) if preds[i] else frozenset()
            out = _transfer(ctx, block.stmts, ins)
            if out != out_states[i]:
                out_states[i] = out
                changed = True

    findings: list[Finding] = []
    seen: set[tuple] = set()

    def report(stmt, name: str, how: str, req: _LiveReq) -> None:
        key = (stmt.lineno, name, req[2])
        if key in seen:
            return
        seen.add(key)
        findings.append(
            Finding(
                mod.path,
                stmt.lineno,
                RULE_BUFFER_REUSE,
                f"'{name}' is written ({how}) while an isend() of it from "
                f"line {req[2]} is still in flight; real MPI owns the buffer "
                "until the request's wait() — wait first or send a copy",
            )
        )

    for i, block in enumerate(cfg.blocks):
        ins = frozenset().union(*(out_states[p] for p in preds[i])) if preds[i] else frozenset()
        _transfer(ctx, block.stmts, ins, report=report)
    return findings


# ----------------------------------------------------- SPMD-VIEW-SEND


def _has_slice(sl: ast.expr) -> bool:
    if isinstance(sl, ast.Slice):
        return True
    if isinstance(sl, ast.Tuple):
        return any(isinstance(e, ast.Slice) for e in sl.elts)
    return False


def _view_reason(expr: ast.expr) -> str | None:
    """Why the expression is (likely) a numpy view, or None."""
    if isinstance(expr, ast.Subscript) and _has_slice(expr.slice):
        return "a slice is a view of the base array"
    if isinstance(expr, ast.Attribute) and expr.attr in _VIEW_ATTRS:
        return f".{expr.attr} is a transposed view"
    if (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Attribute)
        and expr.func.attr in _VIEW_METHODS
    ):
        return f".{expr.func.attr}() returns a view when it can"
    return None


def _view_send(mod: ModuleInfo, ctx: FunctionContext) -> list[Finding]:
    findings: list[Finding] = []
    for n in ast.walk(ctx.node):
        if not (isinstance(n, ast.Call) and ctx.is_comm_call(n, _SEND_PAYLOAD_METHODS)):
            continue
        if not n.args:
            continue
        reason = _view_reason(n.args[0])
        if reason is None:
            continue
        verb = n.func.attr  # type: ignore[union-attr]
        findings.append(
            Finding(
                mod.path,
                n.lineno,
                RULE_VIEW_SEND,
                f"payload of '{verb}()' is a view expression ({reason}); "
                "it pins the base array and may not be contiguous — send "
                "an explicit .copy()",
            )
        )
    return findings


# ------------------------------------------------- SPMD-SHAPE-MISMATCH


def _size_args(call: ast.Call) -> list[ast.expr]:
    """The size/shape argument(s) of a numpy constructor call."""
    args = list(call.args[:1])
    for kw in call.keywords:
        if kw.arg in ("shape", "N", "num"):
            args.append(kw.value)
    return args


def _rank_sized_expr(
    expr: ast.expr, ctx: FunctionContext, rank_sized: set[str]
) -> bool:
    """Does the expression build a container whose *length* is rank-dependent?"""

    def tainted_size(e: ast.expr) -> bool:
        return ctx.is_rank_expr(e) or any(
            isinstance(n, ast.Name) and n.id in rank_sized for n in ast.walk(e)
        )

    if isinstance(expr, ast.Name):
        return expr.id in rank_sized
    if isinstance(expr, ast.Call):
        func = expr.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _SIZE_CONSTRUCTORS
            and isinstance(func.value, ast.Name)
            and func.value.id in ("np", "numpy")
        ):
            return any(tainted_size(a) for a in _size_args(expr))
        if isinstance(func, ast.Name) and func.id in ("list", "range") and expr.args:
            return any(tainted_size(a) for a in expr.args)
    if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Mult):
        for seq, count in ((expr.left, expr.right), (expr.right, expr.left)):
            if isinstance(seq, (ast.List, ast.Tuple)) and tainted_size(count):
                return True
    if isinstance(expr, ast.Subscript) and isinstance(expr.slice, ast.Slice):
        bounds = [b for b in (expr.slice.lower, expr.slice.upper) if b is not None]
        return any(tainted_size(b) for b in bounds)
    if isinstance(expr, (ast.ListComp, ast.GeneratorExp)):
        return any(
            tainted_size(gen.iter) for gen in expr.generators
        )
    return False


def rank_sized_names(
    ctx: FunctionContext, extra_sized: frozenset[str] = frozenset()
) -> set[str]:
    """Names bound to rank-sized containers (assignment fixpoint).

    ``extra_sized`` seeds names known to be rank-sized from evidence the
    local analysis cannot see — e.g. the result of a helper call whose
    summary says it returns a rank-dependent-length container.
    """
    rank_sized: set[str] = set(extra_sized)
    assigns: list[tuple[str, ast.expr]] = []
    for n in ast.walk(ctx.node):
        if isinstance(n, ast.Assign) and len(n.targets) == 1 and isinstance(
            n.targets[0], ast.Name
        ):
            assigns.append((n.targets[0].id, n.value))
    for _ in range(4):
        changed = False
        for name, value in assigns:
            if name not in rank_sized and _rank_sized_expr(value, ctx, rank_sized):
                rank_sized.add(name)
                changed = True
        if not changed:
            break
    return rank_sized


def uniform_collective_hits(
    ctx: FunctionContext, rank_sized: set[str]
) -> list[tuple[str, int, ast.expr]]:
    """``(verb, line, payload)`` for every uniform-shape collective whose
    payload length is rank-dependent under the given rank-sized name set."""
    hits: list[tuple[str, int, ast.expr]] = []
    for n in ast.walk(ctx.node):
        if not (isinstance(n, ast.Call) and ctx.is_comm_call(n, _UNIFORM_COLLECTIVES)):
            continue
        if not n.args:
            continue
        payload = n.args[0]
        if not _rank_sized_expr(payload, ctx, rank_sized):
            continue
        verb = n.func.attr  # type: ignore[union-attr]
        hits.append((verb, n.lineno, payload))
    return hits


def _shape_mismatch(mod: ModuleInfo, ctx: FunctionContext) -> list[Finding]:
    # Fixpoint over assignments: names bound to rank-sized containers.
    rank_sized = rank_sized_names(ctx)

    findings: list[Finding] = []
    for verb, line, payload in uniform_collective_hits(ctx, rank_sized):
        desc = (
            f"'{payload.id}'" if isinstance(payload, ast.Name) else "the payload"
        )
        findings.append(
            Finding(
                mod.path,
                line,
                RULE_SHAPE_MISMATCH,
                f"{desc} passed to '{verb}()' has a rank-dependent length; "
                f"'{verb}' requires the same shape on every rank — pad to a "
                "common size or use alltoallv/gather",
            )
        )
    return findings


# ----------------------------------------------------------- entry point


def check_function(mod: ModuleInfo, ctx: FunctionContext) -> list[Finding]:
    """All dataflow rules over one rank function."""
    findings = _buffer_reuse(mod, ctx)
    findings.extend(_view_send(mod, ctx))
    findings.extend(_shape_mismatch(mod, ctx))
    return findings
