"""SPMD correctness analysis: static lint + runtime verification.

Two layers over :mod:`repro.mpi`:

* **Static** — ``python -m repro.analyze src/ examples/`` runs AST-based,
  rank-centric lint rules (divergent collectives, unwaited requests,
  blocking cycles, tag collisions, wall-clock use in rank functions) and
  prints ``file:line: RULE-ID message`` findings with a CI-friendly exit
  code.  See :mod:`repro.analyze.rules` for the rule catalogue.
* **Runtime** — ``run_spmd(..., check=True)`` (or ``REPRO_CHECK=1``)
  attaches a :class:`~repro.analyze.runtime_check.RuntimeChecker` that
  verifies collective congruence, detects deadlocks via a wait-for graph,
  and reports leaked messages / never-completed requests at finalize —
  without perturbing the virtual clocks.

The static layer is *whole-program*: per-file facts feed a cross-module
call graph (:mod:`repro.analyze.callgraph`) and an interprocedural
fixpoint (:mod:`repro.analyze.interproc`), and an incremental store
(:mod:`repro.analyze.store`) caches per-file records by content hash so
warm runs re-parse only changed files.

Attribute access is lazy so that :mod:`repro.mpi` can import the runtime
checker without dragging the lint engine (and its import of
:mod:`repro.mpi.tags`) into a cycle.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "Finding",
    "analyze_paths",
    "analyze_source",
    "analyze_program",
    "AnalysisStore",
    "CallGraph",
    "check_program",
    "summarize_module",
    "RULES",
    "RuntimeChecker",
    "main",
    "check_conformance",
    "ConformanceReport",
    "extract_function_cost",
]

_EXPORTS = {
    "Finding": ("repro.analyze.astlint", "Finding"),
    "analyze_paths": ("repro.analyze.astlint", "analyze_paths"),
    "analyze_source": ("repro.analyze.astlint", "analyze_source"),
    "analyze_program": ("repro.analyze.engine", "analyze_program"),
    "AnalysisStore": ("repro.analyze.store", "AnalysisStore"),
    "CallGraph": ("repro.analyze.callgraph", "CallGraph"),
    "check_program": ("repro.analyze.interproc", "check_program"),
    "summarize_module": ("repro.analyze.interproc", "summarize_module"),
    "RULES": ("repro.analyze.rules", "RULES"),
    "RuntimeChecker": ("repro.analyze.runtime_check", "RuntimeChecker"),
    "main": ("repro.analyze.cli", "main"),
    "check_conformance": ("repro.analyze.conformance", "check_conformance"),
    "ConformanceReport": ("repro.analyze.conformance", "ConformanceReport"),
    "extract_function_cost": ("repro.analyze.costlint", "extract_function_cost"),
}


def __getattr__(name: str) -> Any:
    try:
        module, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module), attr)
