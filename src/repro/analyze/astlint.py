"""AST lint engine for rank-centric SPMD code.

The engine walks Python sources, identifies *rank functions* (functions
holding a communicator — a parameter named ``comm`` or annotated ``Comm``,
plus aliases created by ``split``/``dup``), tracks *rank-tainted* names
(values derived from ``comm.rank``), and hands each module to the rules in
:mod:`repro.analyze.rules`.  Findings print as ``file:line: RULE-ID
message`` and the CLI exits non-zero when any survive.

Suppression: a line containing ``# spmd: ignore`` silences every rule on
that line; ``# spmd: ignore[RULE-ID]`` silences one rule.  The ``SPMD-``
prefix may be dropped inside the brackets (``# spmd: ignore[BUFFER-REUSE]``).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

__all__ = [
    "Finding",
    "ModuleInfo",
    "FunctionContext",
    "analyze_paths",
    "analyze_modules",
    "analyze_source",
    "module_from_source",
    "COLLECTIVE_METHODS",
    "P2P_METHODS",
    "RULE_PARSE_ERROR",
    "RULE_STALE_SUPPRESSION",
    "suppression_table",
    "ignore_comment_lines",
]

RULE_PARSE_ERROR = "SPMD-PARSE-ERROR"

#: meta-finding: a suppression comment (``spmd: ignore``) silencing nothing
RULE_STALE_SUPPRESSION = "SPMD-STALE-SUPPRESSION"

#: collective methods of :class:`repro.mpi.Comm` (must be congruent)
COLLECTIVE_METHODS = frozenset(
    {
        "barrier",
        "bcast",
        "reduce",
        "allreduce",
        "gather",
        "allgather",
        "scatter",
        "alltoall",
        "alltoallv",
        "scan",
        "exscan",
        "split",
        "dup",
    }
)

#: point-to-point methods (rank-divergent by design)
P2P_METHODS = frozenset({"send", "recv", "sendrecv", "isend", "irecv", "iprobe"})

#: parameter names / annotations treated as communicator handles
_COMM_PARAM_NAMES = frozenset({"comm", "sub", "subcomm", "intercomm"})

_SUPPRESS_RE = re.compile(r"#\s*spmd:\s*ignore(?:\[(?P<rules>[A-Z0-9, \-]+)\])?")


@dataclass(frozen=True)
class Finding:
    """One lint finding, printable as ``file:line: RULE-ID message``.

    ``related`` carries secondary ``(path, line)`` locations — e.g. the
    collective inside a callee for an interprocedural finding whose primary
    location is the divergent call site.  Text output keeps the references
    inline in the message; SARIF export emits them as ``relatedLocations``.
    """

    path: str
    line: int
    rule: str
    message: str
    related: tuple[tuple[str, int], ...] = ()

    def format(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"

    def to_dict(self) -> dict:
        out: dict = {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
        }
        if self.related:
            out["related"] = [list(r) for r in self.related]
        return out

    @classmethod
    def from_dict(cls, d: dict) -> "Finding":
        return cls(
            path=d["path"],
            line=int(d["line"]),
            rule=d["rule"],
            message=d["message"],
            related=tuple((r[0], int(r[1])) for r in d.get("related", [])),
        )


@dataclass
class ModuleInfo:
    """A parsed module plus the metadata the rules need."""

    path: str
    modname: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)

    def suppressed(self, line: int, rule: str) -> bool:
        if not 1 <= line <= len(self.lines):
            return False
        table = suppression_table(self.lines[line - 1 : line], start=line)
        return _suppresses(table.get(line, False), rule)


@dataclass
class FunctionContext:
    """Communicator and taint information for one function."""

    node: ast.FunctionDef
    comm_names: set[str]
    tainted: set[str]

    def is_comm_call(self, call: ast.Call, methods: frozenset[str]) -> bool:
        return (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in methods
            and isinstance(call.func.value, ast.Name)
            and call.func.value.id in self.comm_names
        )

    def is_rank_expr(self, expr: ast.AST) -> bool:
        """Does the expression read ``comm.rank`` or a rank-tainted name?"""
        for n in ast.walk(expr):
            if (
                isinstance(n, ast.Attribute)
                and n.attr in ("rank", "world_rank")
                and isinstance(n.value, ast.Name)
                and n.value.id in self.comm_names
            ):
                return True
            if isinstance(n, ast.Name) and n.id in self.tainted:
                return True
        return False


def suppression_table(
    lines: list[str], start: int = 1
) -> dict[int, list[str] | None]:
    """Map line number -> suppression spec for every ``# spmd: ignore`` line.

    ``None`` means the bare form (every rule suppressed); a list holds the
    rule IDs named in the brackets, verbatim.  The table is trivially
    JSON-serializable so the incremental store can reapply suppression on
    warm runs without re-reading the source.
    """
    table: dict[int, list[str] | None] = {}
    for offset, text in enumerate(lines):
        m = _SUPPRESS_RE.search(text)
        if m is None:
            continue
        rules = m.group("rules")
        table[start + offset] = (
            None if rules is None else [r.strip() for r in rules.split(",")]
        )
    return table


def ignore_comment_lines(source: str) -> list[int]:
    """Lines whose ``# spmd: ignore`` marker sits in a *real* comment.

    :func:`suppression_table` is deliberately textual (it must work from
    the cached line table on warm runs), so it also matches the marker
    inside string literals — e.g. this module's own docstring.  The
    stale-suppression lint only wants genuine comments, so it tokenizes
    once at record-build time and stores the verified line numbers.
    """
    import io
    import tokenize

    out: list[int] = []
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT and _SUPPRESS_RE.search(tok.string):
                out.append(tok.start[0])
    except (tokenize.TokenError, IndentationError, SyntaxError, ValueError):
        return []
    return out


def _suppresses(spec: list[str] | None | bool, rule: str) -> bool:
    """Does one suppression-table entry silence ``rule``?

    ``False`` (no entry) never suppresses; ``None`` (bare ignore) always
    does.  Rule IDs may be written without the ``SPMD-`` prefix — the
    ``spmd:`` marker already names the namespace.
    """
    if spec is False:
        return False
    if spec is None:
        return True
    assert isinstance(spec, list)
    return rule in spec or rule.removeprefix("SPMD-") in spec


def _annotation_is_comm(ann: ast.expr | None) -> bool:
    if ann is None:
        return False
    text = ast.unparse(ann) if hasattr(ast, "unparse") else ""
    return "Comm" in text


def _own_statements(fn: ast.FunctionDef) -> Iterator[ast.stmt]:
    """Statements of ``fn`` excluding nested function/class bodies."""
    stack: list[ast.stmt] = list(fn.body)
    while stack:
        st = stack.pop()
        if isinstance(st, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        yield st
        for child in ast.iter_child_nodes(st):
            if isinstance(child, ast.stmt):
                stack.append(child)
            else:
                stack.extend(
                    c for c in ast.walk(child) if isinstance(c, ast.stmt)
                )


def build_context(
    fn: ast.FunctionDef, extra_comms: Iterable[str] = ()
) -> FunctionContext:
    """Collect communicator aliases and rank-tainted names (fixpoint).

    ``extra_comms`` seeds additional parameter names known to be
    communicators from whole-program evidence (e.g. the first parameter of
    a function passed to ``run_spmd``); the intraprocedural rules never
    pass it, so their findings are unaffected.
    """
    comm: set[str] = set(extra_comms)
    args = fn.args
    for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        if a.arg in _COMM_PARAM_NAMES or _annotation_is_comm(a.annotation):
            comm.add(a.arg)
    if not comm:
        return FunctionContext(fn, set(), set())

    tainted: set[str] = set()
    assigns: list[tuple[str, ast.expr]] = []
    for st in _own_statements(fn):
        if isinstance(st, ast.Assign) and len(st.targets) == 1 and isinstance(
            st.targets[0], ast.Name
        ):
            assigns.append((st.targets[0].id, st.value))
        elif isinstance(st, ast.AnnAssign) and isinstance(st.target, ast.Name):
            if st.value is not None:
                assigns.append((st.target.id, st.value))

    def reads_comm_attr(expr: ast.expr, attrs: tuple[str, ...]) -> bool:
        return any(
            isinstance(n, ast.Attribute)
            and n.attr in attrs
            and isinstance(n.value, ast.Name)
            and n.value.id in comm
            for n in ast.walk(expr)
        )

    for _ in range(4):  # fixpoint over alias / taint chains
        changed = False
        for name, value in assigns:
            if name not in comm:
                if isinstance(value, ast.Name) and value.id in comm:
                    comm.add(name)
                    tainted.discard(name)
                    changed = True
                elif (
                    isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Attribute)
                    and value.func.attr in ("split", "dup")
                    and isinstance(value.func.value, ast.Name)
                    and value.func.value.id in comm
                ):
                    comm.add(name)
                    tainted.discard(name)
                    changed = True
            # Communicator handles are never treated as tainted values:
            # collectives over a split/dup'd comm are congruent *within*
            # that comm even though the handle differs across ranks.
            if name not in tainted and name not in comm:
                if reads_comm_attr(value, ("rank", "world_rank")) or any(
                    isinstance(n, ast.Name) and n.id in tainted
                    for n in ast.walk(value)
                ):
                    tainted.add(name)
                    changed = True
        if not changed:
            break
    return FunctionContext(fn, comm, tainted)


def iter_functions(tree: ast.Module) -> Iterator[ast.FunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef):
            yield node


# --------------------------------------------------------------- module I/O


def _derive_modname(path: Path) -> str:
    parts = list(path.with_suffix("").parts)
    if "repro" in parts:
        return ".".join(parts[parts.index("repro") :])
    return path.stem


def module_from_source(
    source: str, path: str = "<memory>", modname: str | None = None
) -> ModuleInfo | Finding:
    """Parse source into a :class:`ModuleInfo`, or a parse-error finding."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return Finding(path, exc.lineno or 1, RULE_PARSE_ERROR, exc.msg or "syntax error")
    name = modname if modname is not None else _derive_modname(Path(path))
    return ModuleInfo(path, name, tree, source.splitlines())


def collect_files(paths: Iterable[str | Path]) -> list[Path]:
    files: list[Path] = []
    for p in paths:
        p = Path(p)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        elif p.suffix == ".py":
            files.append(p)
    return files


# ------------------------------------------------------------- entry points


def analyze_modules(mods: list[ModuleInfo]) -> list[Finding]:
    """Run every rule over already-parsed modules; suppression applied."""
    from .rules import check_module, check_tags

    findings: list[Finding] = []
    for mod in mods:
        findings.extend(check_module(mod))
    findings.extend(check_tags(mods))
    findings = [
        f
        for f in findings
        if not next(
            (m for m in mods if m.path == f.path), ModuleInfo("", "", ast.Module([], []))
        ).suppressed(f.line, f.rule)
    ]
    return sorted(set(findings), key=lambda f: (f.path, f.line, f.rule))


def analyze_paths(
    paths: Iterable[str | Path], store=None
) -> list[Finding]:
    """Lint every ``.py`` file under the given paths (full rule set).

    Runs the whole-program pipeline — intraprocedural rules, the
    cross-module tag audit, and the interprocedural rules of
    :mod:`repro.analyze.interproc`.  Pass an
    :class:`~repro.analyze.store.AnalysisStore` to reuse cached per-file
    records across runs; the findings are identical either way.
    """
    from .engine import analyze_program

    return analyze_program(paths, store=store).findings


def analyze_source(
    source: str, path: str = "<memory>", modname: str | None = None
) -> list[Finding]:
    """Lint a single in-memory module (test/fixture helper)."""
    out = module_from_source(source, path, modname)
    if isinstance(out, Finding):
        return [out]
    return analyze_modules([out])
