"""AST lint engine for rank-centric SPMD code.

The engine walks Python sources, identifies *rank functions* (functions
holding a communicator — a parameter named ``comm`` or annotated ``Comm``,
plus aliases created by ``split``/``dup``), tracks *rank-tainted* names
(values derived from ``comm.rank``), and hands each module to the rules in
:mod:`repro.analyze.rules`.  Findings print as ``file:line: RULE-ID
message`` and the CLI exits non-zero when any survive.

Suppression: a line containing ``# spmd: ignore`` silences every rule on
that line; ``# spmd: ignore[RULE-ID]`` silences one rule.  The ``SPMD-``
prefix may be dropped inside the brackets (``# spmd: ignore[BUFFER-REUSE]``).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

__all__ = [
    "Finding",
    "ModuleInfo",
    "FunctionContext",
    "analyze_paths",
    "analyze_modules",
    "analyze_source",
    "module_from_source",
    "COLLECTIVE_METHODS",
    "P2P_METHODS",
    "RULE_PARSE_ERROR",
]

RULE_PARSE_ERROR = "SPMD-PARSE-ERROR"

#: collective methods of :class:`repro.mpi.Comm` (must be congruent)
COLLECTIVE_METHODS = frozenset(
    {
        "barrier",
        "bcast",
        "reduce",
        "allreduce",
        "gather",
        "allgather",
        "scatter",
        "alltoall",
        "alltoallv",
        "scan",
        "exscan",
        "split",
        "dup",
    }
)

#: point-to-point methods (rank-divergent by design)
P2P_METHODS = frozenset({"send", "recv", "sendrecv", "isend", "irecv", "iprobe"})

#: parameter names / annotations treated as communicator handles
_COMM_PARAM_NAMES = frozenset({"comm", "sub", "subcomm", "intercomm"})

_SUPPRESS_RE = re.compile(r"#\s*spmd:\s*ignore(?:\[(?P<rules>[A-Z0-9, \-]+)\])?")


@dataclass(frozen=True)
class Finding:
    """One lint finding, printable as ``file:line: RULE-ID message``."""

    path: str
    line: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


@dataclass
class ModuleInfo:
    """A parsed module plus the metadata the rules need."""

    path: str
    modname: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)

    def suppressed(self, line: int, rule: str) -> bool:
        if not 1 <= line <= len(self.lines):
            return False
        m = _SUPPRESS_RE.search(self.lines[line - 1])
        if m is None:
            return False
        rules = m.group("rules")
        if rules is None:
            return True
        # Rule IDs may be written without the "SPMD-" prefix:
        # `# spmd: ignore[BUFFER-REUSE]` == `# spmd: ignore[SPMD-BUFFER-REUSE]`
        # (the `spmd:` marker already names the namespace).
        listed = {r.strip() for r in rules.split(",")}
        return rule in listed or rule.removeprefix("SPMD-") in listed


@dataclass
class FunctionContext:
    """Communicator and taint information for one function."""

    node: ast.FunctionDef
    comm_names: set[str]
    tainted: set[str]

    def is_comm_call(self, call: ast.Call, methods: frozenset[str]) -> bool:
        return (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in methods
            and isinstance(call.func.value, ast.Name)
            and call.func.value.id in self.comm_names
        )

    def is_rank_expr(self, expr: ast.AST) -> bool:
        """Does the expression read ``comm.rank`` or a rank-tainted name?"""
        for n in ast.walk(expr):
            if (
                isinstance(n, ast.Attribute)
                and n.attr in ("rank", "world_rank")
                and isinstance(n.value, ast.Name)
                and n.value.id in self.comm_names
            ):
                return True
            if isinstance(n, ast.Name) and n.id in self.tainted:
                return True
        return False


def _annotation_is_comm(ann: ast.expr | None) -> bool:
    if ann is None:
        return False
    text = ast.unparse(ann) if hasattr(ast, "unparse") else ""
    return "Comm" in text


def _own_statements(fn: ast.FunctionDef) -> Iterator[ast.stmt]:
    """Statements of ``fn`` excluding nested function/class bodies."""
    stack: list[ast.stmt] = list(fn.body)
    while stack:
        st = stack.pop()
        if isinstance(st, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        yield st
        for child in ast.iter_child_nodes(st):
            if isinstance(child, ast.stmt):
                stack.append(child)
            else:
                stack.extend(
                    c for c in ast.walk(child) if isinstance(c, ast.stmt)
                )


def build_context(fn: ast.FunctionDef) -> FunctionContext:
    """Collect communicator aliases and rank-tainted names (fixpoint)."""
    comm: set[str] = set()
    args = fn.args
    for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        if a.arg in _COMM_PARAM_NAMES or _annotation_is_comm(a.annotation):
            comm.add(a.arg)
    if not comm:
        return FunctionContext(fn, set(), set())

    tainted: set[str] = set()
    assigns: list[tuple[str, ast.expr]] = []
    for st in _own_statements(fn):
        if isinstance(st, ast.Assign) and len(st.targets) == 1 and isinstance(
            st.targets[0], ast.Name
        ):
            assigns.append((st.targets[0].id, st.value))
        elif isinstance(st, ast.AnnAssign) and isinstance(st.target, ast.Name):
            if st.value is not None:
                assigns.append((st.target.id, st.value))

    def reads_comm_attr(expr: ast.expr, attrs: tuple[str, ...]) -> bool:
        return any(
            isinstance(n, ast.Attribute)
            and n.attr in attrs
            and isinstance(n.value, ast.Name)
            and n.value.id in comm
            for n in ast.walk(expr)
        )

    for _ in range(4):  # fixpoint over alias / taint chains
        changed = False
        for name, value in assigns:
            if name not in comm:
                if isinstance(value, ast.Name) and value.id in comm:
                    comm.add(name)
                    tainted.discard(name)
                    changed = True
                elif (
                    isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Attribute)
                    and value.func.attr in ("split", "dup")
                    and isinstance(value.func.value, ast.Name)
                    and value.func.value.id in comm
                ):
                    comm.add(name)
                    tainted.discard(name)
                    changed = True
            # Communicator handles are never treated as tainted values:
            # collectives over a split/dup'd comm are congruent *within*
            # that comm even though the handle differs across ranks.
            if name not in tainted and name not in comm:
                if reads_comm_attr(value, ("rank", "world_rank")) or any(
                    isinstance(n, ast.Name) and n.id in tainted
                    for n in ast.walk(value)
                ):
                    tainted.add(name)
                    changed = True
        if not changed:
            break
    return FunctionContext(fn, comm, tainted)


def iter_functions(tree: ast.Module) -> Iterator[ast.FunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef):
            yield node


# --------------------------------------------------------------- module I/O


def _derive_modname(path: Path) -> str:
    parts = list(path.with_suffix("").parts)
    if "repro" in parts:
        return ".".join(parts[parts.index("repro") :])
    return path.stem


def module_from_source(
    source: str, path: str = "<memory>", modname: str | None = None
) -> ModuleInfo | Finding:
    """Parse source into a :class:`ModuleInfo`, or a parse-error finding."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return Finding(path, exc.lineno or 1, RULE_PARSE_ERROR, exc.msg or "syntax error")
    name = modname if modname is not None else _derive_modname(Path(path))
    return ModuleInfo(path, name, tree, source.splitlines())


def collect_files(paths: Iterable[str | Path]) -> list[Path]:
    files: list[Path] = []
    for p in paths:
        p = Path(p)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        elif p.suffix == ".py":
            files.append(p)
    return files


# ------------------------------------------------------------- entry points


def analyze_modules(mods: list[ModuleInfo]) -> list[Finding]:
    """Run every rule over already-parsed modules; suppression applied."""
    from .rules import check_module, check_tags

    findings: list[Finding] = []
    for mod in mods:
        findings.extend(check_module(mod))
    findings.extend(check_tags(mods))
    findings = [
        f
        for f in findings
        if not next(
            (m for m in mods if m.path == f.path), ModuleInfo("", "", ast.Module([], []))
        ).suppressed(f.line, f.rule)
    ]
    return sorted(set(findings), key=lambda f: (f.path, f.line, f.rule))


def analyze_paths(paths: Iterable[str | Path]) -> list[Finding]:
    """Lint every ``.py`` file under the given paths."""
    mods: list[ModuleInfo] = []
    findings: list[Finding] = []
    for file in collect_files(paths):
        try:
            source = file.read_text(encoding="utf-8")
        except OSError as exc:
            findings.append(Finding(str(file), 1, RULE_PARSE_ERROR, str(exc)))
            continue
        out = module_from_source(source, str(file))
        if isinstance(out, Finding):
            findings.append(out)
        else:
            mods.append(out)
    return sorted(set(findings) | set(analyze_modules(mods)), key=lambda f: (f.path, f.line, f.rule))


def analyze_source(
    source: str, path: str = "<memory>", modname: str | None = None
) -> list[Finding]:
    """Lint a single in-memory module (test/fixture helper)."""
    out = module_from_source(source, path, modname)
    if isinstance(out, Finding):
        return [out]
    return analyze_modules([out])
