"""Rank-centric lint rules for the SPMD runtime.

Every rule has a stable ID (documented in DESIGN.md) and reports findings
as ``file:line: RULE-ID message``:

``SPMD-DIV-COLLECTIVE``
    A collective (`barrier`, `allreduce`, ...) is reachable only under
    rank-dependent control flow, so not every rank of the communicator
    would issue it — the runtime would hang or raise a congruence error.
``SPMD-UNWAITED-REQUEST``
    An ``isend``/``irecv`` Request is discarded or never completed.
``SPMD-BLOCKING-CYCLE``
    Both branches of a rank-conditional open with the same blocking verb
    (recv/recv deadlocks immediately; send/send deadlocks under
    rendezvous MPI semantics).
``SPMD-TAG-COLLISION``
    A literal message tag collides with another module's literal tag or
    falls inside a tag namespace owned by a different module
    (:mod:`repro.mpi.tags`).
``SPMD-WALLCLOCK``
    A rank function reads wall-clock time or an unseeded random source,
    breaking virtual-clock determinism.

Three further rules live in :mod:`repro.analyze.dataflow` (they need a
control-flow graph rather than per-statement inspection):
``SPMD-BUFFER-REUSE``, ``SPMD-VIEW-SEND`` and ``SPMD-SHAPE-MISMATCH``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from .astlint import (
    COLLECTIVE_METHODS,
    P2P_METHODS,
    Finding,
    FunctionContext,
    ModuleInfo,
    build_context,
    iter_functions,
)
from .dataflow import (
    RULE_BUFFER_REUSE,
    RULE_SHAPE_MISMATCH,
    RULE_VIEW_SEND,
    check_function as _dataflow_rules,
)

from .costlint import (
    RULE_HANDROLLED,
    RULE_OVERSIZED_REDUCE,
    RULE_P2_TRAFFIC,
    RULE_ROOT_BOTTLENECK,
)
from .interproc import (
    RULE_ESCAPED_REQUEST,
    RULE_INTERPROC_DIV,
    RULE_INTERPROC_TAG,
    RULE_RANK_TAINT_SHAPE,
)

__all__ = [
    "RULES",
    "check_module",
    "check_tags",
    "module_tag_sites",
    "join_literal_tags",
    "walk_calls_with_divergence",
]

RULE_DIV_COLLECTIVE = "SPMD-DIV-COLLECTIVE"
RULE_UNWAITED = "SPMD-UNWAITED-REQUEST"
RULE_BLOCKING_CYCLE = "SPMD-BLOCKING-CYCLE"
RULE_TAG_COLLISION = "SPMD-TAG-COLLISION"
RULE_WALLCLOCK = "SPMD-WALLCLOCK"


@dataclass(frozen=True)
class Rule:
    id: str
    summary: str
    #: "intra" = one function, "cross" = whole fileset but syntactic,
    #: "inter" = interprocedural dataflow over the call graph,
    #: "cost" = symbolic payload-size scalability rules (costlint)
    layer: str = "intra"
    #: markdown long description (SARIF ``fullDescription``); the per-rule
    #: heading in DESIGN.md doubles as the ``helpUri`` anchor
    doc: str = ""


RULES: tuple[Rule, ...] = (
    Rule(
        RULE_DIV_COLLECTIVE,
        "collective reachable only under rank-dependent control flow",
        doc="A collective (`barrier`, `allreduce`, ...) is reached only on "
        "paths guarded by `comm.rank`, so not every rank of the communicator "
        "issues it. Real MPI hangs; the in-process runtime raises a "
        "congruence error. Hoist the collective out of the rank branch, or "
        "make every rank participate (e.g. contribute a neutral element).",
    ),
    Rule(
        RULE_UNWAITED,
        "isend/irecv Request discarded or never waited",
        doc="The `Request` returned by `isend()`/`irecv()` is dropped or "
        "never completed in this function, so the operation may never "
        "finish and its buffer lifetime is undefined. Call `.wait()` (or "
        "collect requests and wait on all of them) before returning.",
    ),
    Rule(
        RULE_BLOCKING_CYCLE,
        "symmetric blocking send/send or recv/recv across a rank branch",
        doc="Both arms of a rank-conditional open with the same blocking "
        "verb. `recv`/`recv` deadlocks immediately; `send`/`send` deadlocks "
        "under rendezvous MPI semantics even though the eager in-process "
        "runtime happens to survive it. Use `sendrecv()` or order the pair "
        "by rank parity.",
    ),
    Rule(
        RULE_TAG_COLLISION,
        "literal tag collides across modules or invades a foreign namespace",
        "cross",
        doc="A literal message tag is also used by another module, or falls "
        "inside a tag namespace registered to a different subsystem in "
        "`repro.mpi.tags`. Colliding tags cross-match messages between "
        "unrelated protocols. Allocate a namespace in `repro.mpi.tags` "
        "instead of picking numbers.",
    ),
    Rule(
        RULE_WALLCLOCK,
        "wall-clock / nondeterministic source inside a rank function",
        doc="A rank function reads wall-clock time (`time.time()`, "
        "`datetime.now()`, ...) or draws from an unseeded random source. "
        "Virtual-clock runs must be bit-reproducible: derive time from "
        "`comm.clock` and randomness from a `Generator` seeded per rank.",
    ),
    Rule(
        RULE_BUFFER_REUSE,
        "buffer written between isend() and its request's wait()",
        doc="The payload buffer of an in-flight `isend()` is mutated before "
        "the matching `wait()`. MPI owns the buffer until completion; the "
        "receiver may observe either version. Complete the request first, "
        "or send a copy.",
    ),
    Rule(
        RULE_VIEW_SEND,
        "payload of a send is a numpy view expression without .copy()",
        doc="The sent payload is a slice or other numpy view. If the base "
        "array is written while the message is in flight the receiver sees "
        "the mutation (in-process) or torn data (real MPI with a "
        "non-contiguous view). Append `.copy()` to the payload expression.",
    ),
    Rule(
        RULE_SHAPE_MISMATCH,
        "uniform-shape collective fed a rank-dependent-length payload",
        doc="A collective that assumes congruent payload shapes on every "
        "rank (`allreduce`, `alltoall`, `scatter`, ...) receives a buffer "
        "whose length depends on `comm.rank`. Pad to a common shape, or "
        "switch to the variable-length variant (`alltoallv`).",
    ),
    Rule(
        RULE_ESCAPED_REQUEST,
        "request escapes a callee's return value and is never waited",
        "inter",
        doc="A helper returns the `Request` of an `isend()`/`irecv()` and "
        "the caller drops it, so no frame ever completes the operation. "
        "Interprocedural variant of SPMD-UNWAITED-REQUEST: wait on the "
        "returned request at the call site.",
    ),
    Rule(
        RULE_INTERPROC_TAG,
        "tag constant funnels into the same helper tag parameter from multiple modules",
        "inter",
        doc="Two modules pass their own tag constants into the same helper "
        "parameter, so the helper's sends and receives can cross-match "
        "between the two protocols. Give each caller a distinct namespace "
        "in `repro.mpi.tags`, or thread the namespace through the helper.",
    ),
    Rule(
        RULE_INTERPROC_DIV,
        "rank-divergent call leads transitively to a collective inside a callee",
        "inter",
        doc="A call issued under rank-dependent control flow reaches a "
        "collective inside the callee (possibly through further calls), so "
        "only some ranks enter it. Interprocedural variant of "
        "SPMD-DIV-COLLECTIVE; the finding's related location points at the "
        "collective inside the callee.",
    ),
    Rule(
        RULE_RANK_TAINT_SHAPE,
        "helper's rank-dependent return feeds a uniform-shape collective payload",
        "inter",
        doc="A helper whose return value's shape depends on `comm.rank` "
        "(e.g. `rank`-sized slices) flows into a uniform-shape collective in "
        "the caller. Interprocedural variant of SPMD-SHAPE-MISMATCH.",
    ),
    Rule(
        RULE_ROOT_BOTTLENECK,
        "gather/reduce of an Ω(n/p) payload materializes Θ(n) at the root",
        "cost",
        doc="A `gather`/`reduce` payload grows like the per-rank data size "
        "(`n/p` or worse), so the root materializes Θ(n) bytes — the exact "
        "centralization the histogram sort exists to avoid. Reduce to O(p) "
        "summaries first (counts, splitters), or keep data distributed. The "
        "finding carries the inferred symbolic payload and, for "
        "interprocedural sizes, a `via` witness chain.",
    ),
    Rule(
        RULE_P2_TRAFFIC,
        "allgather/alltoall payload grows with p or n — Ω(p²) wire bytes",
        "cost",
        doc="An `allgather`/`alltoall` whose per-rank payload itself grows "
        "with `p` (or `n`) puts Ω(p²) total bytes on the wire: every rank "
        "contributes a p-sized row and every rank receives all of them. "
        "Gather O(1) summaries, or restructure around `alltoallv` with "
        "O(n) total volume.",
    ),
    Rule(
        RULE_HANDROLLED,
        "for-peer-in-range(p) send loop re-implements a collective with O(p) rounds",
        "cost",
        doc="A `for peer in range(p)`-style loop of point-to-point sends "
        "re-implements a collective in O(p) latency rounds where the "
        "library primitive needs O(log p). Replace the loop with "
        "`bcast`/`gather`/`alltoallv`; suppress with "
        "`# spmd: ignore[HANDROLLED-COLLECTIVE]` only for deliberate "
        "ring/pipeline schedules.",
    ),
    Rule(
        RULE_OVERSIZED_REDUCE,
        "allreduce/scan payload grows with n instead of O(p) counts",
        "cost",
        doc="An `allreduce`/`scan` payload scales with the data size `n` "
        "rather than the O(p) (or O(p log n)) summaries the algorithms "
        "need. Every rank pays the full vector in bandwidth, per round. "
        "Reduce histograms or counts, not data.",
    ),
)


# ------------------------------------------------------ SPMD-DIV-COLLECTIVE


def _terminates(stmts: list[ast.stmt]) -> bool:
    """Does the branch end the surrounding iteration/function for sure?"""
    return any(
        isinstance(s, (ast.Return, ast.Break, ast.Continue, ast.Raise))
        for s in stmts
    )


def walk_calls_with_divergence(ctx: FunctionContext, on_call) -> None:
    """Walk a function body tracking rank-divergent control-flow context.

    ``on_call(call, div)`` fires for every :class:`ast.Call` in the body
    (nested scopes excluded) with ``div`` the line where rank-dependent
    control flow began, or ``None`` on uniformly-reached paths.  Shared by
    the intraprocedural ``SPMD-DIV-COLLECTIVE`` rule and the
    interprocedural ``SPMD-INTERPROC-DIV-COLLECTIVE`` rule so both agree
    on what "divergent" means.
    """

    def visit_expr(expr: ast.expr, div: int | None) -> None:
        if isinstance(expr, ast.IfExp):
            visit_expr(expr.test, div)
            branch = div
            if branch is None and ctx.is_rank_expr(expr.test):
                branch = expr.lineno
            visit_expr(expr.body, branch)
            visit_expr(expr.orelse, branch)
            return
        if isinstance(expr, ast.Call):
            on_call(expr, div)
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                visit_expr(child, div)

    def visit_stmt_exprs(st: ast.stmt, div: int | None) -> None:
        for child in ast.iter_child_nodes(st):
            if isinstance(child, ast.expr):
                visit_expr(child, div)

    def walk(stmts: list[ast.stmt], div: int | None) -> None:
        local_div = div
        for st in stmts:
            if isinstance(st, ast.If):
                visit_expr(st.test, local_div)
                branch = local_div
                rank_test = ctx.is_rank_expr(st.test)
                if branch is None and rank_test:
                    branch = st.lineno
                walk(st.body, branch)
                walk(st.orelse, branch)
                # Early-exit divergence: `if rank cond: return/continue`
                # taints every following sibling statement.
                if local_div is None and rank_test and (
                    _terminates(st.body) != _terminates(st.orelse)
                ):
                    local_div = st.lineno
            elif isinstance(st, ast.While):
                visit_expr(st.test, local_div)
                branch = local_div
                if branch is None and ctx.is_rank_expr(st.test):
                    branch = st.lineno
                walk(st.body, branch)
                walk(st.orelse, local_div)
            elif isinstance(st, ast.For):
                visit_expr(st.iter, local_div)
                branch = local_div
                if branch is None and ctx.is_rank_expr(st.iter):
                    branch = st.lineno
                walk(st.body, branch)
                walk(st.orelse, local_div)
            elif isinstance(st, ast.Try):
                walk(st.body, local_div)
                for h in st.handlers:
                    walk(h.body, local_div)
                walk(st.orelse, local_div)
                walk(st.finalbody, local_div)
            elif isinstance(st, (ast.With, ast.AsyncWith)):
                for item in st.items:
                    visit_expr(item.context_expr, local_div)
                walk(st.body, local_div)
            elif isinstance(st, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue  # nested scopes get their own context
            else:
                visit_stmt_exprs(st, local_div)

    walk(ctx.node.body, None)


def _div_collective(mod: ModuleInfo, ctx: FunctionContext) -> list[Finding]:
    findings: list[Finding] = []

    def on_call(call: ast.Call, div: int | None) -> None:
        if div is None or not ctx.is_comm_call(call, COLLECTIVE_METHODS):
            return
        assert isinstance(call.func, ast.Attribute)
        name = f"{call.func.value.id}.{call.func.attr}"  # type: ignore[attr-defined]
        findings.append(
            Finding(
                mod.path,
                call.lineno,
                RULE_DIV_COLLECTIVE,
                f"collective '{name}()' is only reached under rank-dependent "
                f"control flow (divergence starts at line {div}); every "
                "rank of the communicator must issue it",
            )
        )

    walk_calls_with_divergence(ctx, on_call)
    return findings


# --------------------------------------------------- SPMD-UNWAITED-REQUEST


def _request_calls(ctx: FunctionContext) -> frozenset[str]:
    return frozenset({"isend", "irecv"})


def _unwaited_requests(mod: ModuleInfo, ctx: FunctionContext) -> list[Finding]:
    findings: list[Finding] = []
    req_methods = _request_calls(ctx)
    assigned: dict[str, int] = {}  # name -> line of request assignment

    body_nodes = [
        n
        for st in _iter_own(ctx.node)
        for n in ast.walk(st)
    ]

    for st in _iter_own(ctx.node):
        if isinstance(st, ast.Expr) and isinstance(st.value, ast.Call):
            if ctx.is_comm_call(st.value, req_methods):
                verb = st.value.func.attr  # type: ignore[union-attr]
                findings.append(
                    Finding(
                        mod.path,
                        st.lineno,
                        RULE_UNWAITED,
                        f"Request returned by '{verb}()' is discarded; call "
                        ".wait() (or keep it and wait later) or the operation "
                        "may never complete",
                    )
                )
        elif isinstance(st, ast.Assign) and len(st.targets) == 1:
            tgt, val = st.targets[0], st.value
            if isinstance(tgt, ast.Name) and isinstance(val, ast.Call) and ctx.is_comm_call(
                val, req_methods
            ):
                assigned[tgt.id] = st.lineno
            elif (
                isinstance(tgt, ast.Tuple)
                and isinstance(val, ast.Tuple)
                and len(tgt.elts) == len(val.elts)
            ):
                for t, v in zip(tgt.elts, val.elts):
                    if isinstance(t, ast.Name) and isinstance(v, ast.Call) and ctx.is_comm_call(
                        v, req_methods
                    ):
                        assigned[t.id] = st.lineno

    if not assigned:
        return findings

    used: set[str] = set()
    for n in body_nodes:
        if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load) and n.id in assigned:
            used.add(n.id)
    for name, line in sorted(assigned.items(), key=lambda kv: kv[1]):
        if name not in used:
            findings.append(
                Finding(
                    mod.path,
                    line,
                    RULE_UNWAITED,
                    f"Request assigned to '{name}' is never waited "
                    "(no wait()/test() or later use in this function)",
                )
            )
    return findings


def _iter_own(fn: ast.FunctionDef):
    """Statements of fn excluding nested function/class bodies."""
    stack: list[ast.stmt] = list(reversed(fn.body))
    while stack:
        st = stack.pop()
        if isinstance(st, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        yield st
        children = [
            c
            for child in ast.iter_child_nodes(st)
            for c in ([child] if isinstance(child, ast.stmt) else list(ast.iter_child_nodes(child)))
            if isinstance(c, ast.stmt)
        ]
        stack.extend(reversed(children))


# ---------------------------------------------------- SPMD-BLOCKING-CYCLE

_BLOCKING_VERBS = frozenset({"send", "recv"})


def _first_blocking_call(stmts: list[ast.stmt], ctx: FunctionContext) -> ast.Call | None:
    for st in stmts:
        calls = [
            n
            for n in ast.walk(st)
            if isinstance(n, ast.Call) and ctx.is_comm_call(n, P2P_METHODS | COLLECTIVE_METHODS)
        ]
        if calls:
            return min(calls, key=lambda c: (c.lineno, c.col_offset))
    return None


def _blocking_cycle(mod: ModuleInfo, ctx: FunctionContext) -> list[Finding]:
    findings: list[Finding] = []
    for node in ast.walk(ctx.node):
        if not isinstance(node, ast.If) or not node.orelse:
            continue
        if not ctx.is_rank_expr(node.test):
            continue
        a = _first_blocking_call(node.body, ctx)
        b = _first_blocking_call(node.orelse, ctx)
        if a is None or b is None:
            continue
        va = a.func.attr  # type: ignore[union-attr]
        vb = b.func.attr  # type: ignore[union-attr]
        if va == vb and va in _BLOCKING_VERBS:
            why = (
                "both sides block in recv() with no message in flight"
                if va == "recv"
                else "send/send cycles deadlock under rendezvous MPI semantics "
                "(the in-process runtime buffers eagerly, real MPI may not)"
            )
            findings.append(
                Finding(
                    mod.path,
                    node.lineno,
                    RULE_BLOCKING_CYCLE,
                    f"both branches of this rank-conditional start with a "
                    f"blocking '{va}()' (lines {a.lineno} and {b.lineno}); "
                    f"{why}; use sendrecv() or order the pair",
                )
            )
    return findings


# -------------------------------------------------------- SPMD-WALLCLOCK

_TIME_FUNCS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
    }
)
_DATETIME_FUNCS = frozenset({"now", "utcnow", "today"})
_NP_GLOBAL_RANDOM = frozenset(
    {
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "choice",
        "shuffle",
        "permutation",
        "uniform",
        "normal",
        "seed",
    }
)


def _dotted(node: ast.expr) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _wallclock_reason(call: ast.Call) -> str | None:
    name = _dotted(call.func)
    if name is None:
        return None
    parts = name.split(".")
    head, tail = parts[0], parts[-1]
    if head == "time" and tail in _TIME_FUNCS:
        return f"'{name}()' reads the wall clock"
    if head in ("datetime",) and tail in _DATETIME_FUNCS:
        return f"'{name}()' reads the wall clock"
    if head == "random":
        return f"'{name}()' draws from the unseeded global random state"
    if head in ("np", "numpy") and len(parts) >= 2 and parts[1] == "random":
        if tail in _NP_GLOBAL_RANDOM:
            return f"'{name}()' uses numpy's unseeded global random state"
        if tail == "default_rng" and not call.args and not call.keywords:
            return f"'{name}()' without a seed is nondeterministic"
    if head == "uuid" and tail in ("uuid1", "uuid4"):
        return f"'{name}()' is nondeterministic"
    if head in ("os", "secrets") and tail in ("urandom", "token_bytes", "token_hex", "randbits"):
        return f"'{name}()' reads the OS entropy pool"
    return None


def _wallclock(mod: ModuleInfo, ctx: FunctionContext) -> list[Finding]:
    findings = []
    for st in _iter_own(ctx.node):
        for n in ast.walk(st):
            if not isinstance(n, ast.Call):
                continue
            reason = _wallclock_reason(n)
            if reason:
                findings.append(
                    Finding(
                        mod.path,
                        n.lineno,
                        RULE_WALLCLOCK,
                        f"{reason} inside rank function "
                        f"'{ctx.node.name}'; virtual-clock runs must derive "
                        "time from comm.clock and randomness from a seeded "
                        "Generator",
                    )
                )
    return findings


# ----------------------------------------------------- SPMD-TAG-COLLISION

#: positional index of the ``tag`` argument per p2p method
_TAG_ARG_INDEX = {"send": 2, "isend": 2, "recv": 1, "irecv": 1, "iprobe": 1, "sendrecv": 3}

#: tags excluded from collision checks (default / wildcard)
_TAG_EXEMPT = frozenset({0, -1})


def _tag_expr(call: ast.Call) -> ast.expr | None:
    method = call.func.attr  # type: ignore[union-attr]
    for kw in call.keywords:
        if kw.arg == "tag":
            return kw.value
    idx = _TAG_ARG_INDEX.get(method)
    if idx is not None and len(call.args) > idx:
        return call.args[idx]
    return None


def _tags_imports(mod: ModuleInfo) -> dict[str, str]:
    """Map local name -> attribute name for imports from repro.mpi.tags."""
    out: dict[str, str] = {}
    for node in ast.walk(mod.tree):
        if isinstance(node, ast.ImportFrom) and node.module and (
            node.module == "tags" or node.module.endswith(".tags")
        ):
            for alias in node.names:
                out[alias.asname or alias.name] = alias.name
    return out


def _namespace_table() -> dict[str, tuple[int, str]]:
    from repro.mpi import tags

    return dict(tags.NAMESPACES)


def _namespace_bases() -> dict[int, tuple[str, str]]:
    """base value -> (namespace key, owning module)."""
    return {base: (key, owner) for key, (base, owner) in _namespace_table().items()}


def _owner_of_literal(value: int) -> tuple[str, str] | None:
    from repro.mpi import tags

    for key, (base, owner) in _namespace_table().items():
        if base <= value < base + tags.NAMESPACE_WIDTH:
            return key, owner
    return None


def module_tag_sites(mod: ModuleInfo) -> tuple[list[Finding], list[tuple[int, int]]]:
    """Per-module half of the tag audit.

    Returns the module-local findings (namespace borrowing, literals inside
    a foreign namespace) plus the free-literal ``(value, line)`` sites that
    feed the cross-module collision join.  Both halves are derived from one
    file only, so the incremental store can cache them per file; the cheap
    join (:func:`join_literal_tags`) re-runs on every analysis.
    """
    findings: list[Finding] = []
    sites: list[tuple[int, int]] = []
    imports = _tags_imports(mod)
    bases = _namespace_bases()
    for node in ast.walk(mod.tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _TAG_ARG_INDEX
        ):
            continue
        expr = _tag_expr(node)
        if expr is None:
            continue
        base_name: str | None = None
        literal: int | None = None
        if isinstance(expr, ast.Constant) and isinstance(expr.value, int):
            literal = expr.value
        elif isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Add):
            if isinstance(expr.left, ast.Name):
                base_name = expr.left.id
            elif isinstance(expr.left, ast.Constant) and isinstance(expr.left.value, int):
                literal = expr.left.value
        elif isinstance(expr, ast.Name):
            base_name = expr.id

        if base_name is not None:
            attr = imports.get(base_name)
            if attr is None:
                continue  # not a tags.* constant; out of scope
            from repro.mpi import tags as tags_mod

            base_val = getattr(tags_mod, attr, None)
            if isinstance(base_val, int) and base_val in bases:
                key, owner = bases[base_val]
                if mod.modname and owner and not _same_module(mod.modname, owner):
                    findings.append(
                        Finding(
                            mod.path,
                            node.lineno,
                            RULE_TAG_COLLISION,
                            f"tag namespace '{key}' (base {base_val}) is "
                            f"owned by {owner}; allocate a namespace in "
                            "repro.mpi.tags instead of borrowing one",
                        )
                    )
            continue

        if literal is None or literal in _TAG_EXEMPT:
            continue
        hit = _owner_of_literal(literal)
        if hit is not None:
            key, owner = hit
            if not _same_module(mod.modname, owner):
                findings.append(
                    Finding(
                        mod.path,
                        node.lineno,
                        RULE_TAG_COLLISION,
                        f"literal tag {literal} falls inside namespace "
                        f"'{key}' owned by {owner}; pick a tag from "
                        "repro.mpi.tags (USER_BASE) instead",
                    )
                )
            continue
        sites.append((literal, node.lineno))
    return findings, sites


def join_literal_tags(
    sites: list[tuple[str, str, int, int]]
) -> list[Finding]:
    """Cross-module collision join over ``(modname, path, value, line)``
    free-literal sites collected by :func:`module_tag_sites`."""
    literals: dict[int, list[tuple[str, str, int]]] = {}
    for modname, path, value, line in sites:
        literals.setdefault(value, []).append((modname, path, line))
    findings: list[Finding] = []
    for value, hits in literals.items():
        owners = {m for m, _, _ in hits}
        if len(owners) > 1:
            for modname, path, line in hits:
                others = sorted(o for o in owners if o != modname)
                findings.append(
                    Finding(
                        path,
                        line,
                        RULE_TAG_COLLISION,
                        f"literal tag {value} is also used by "
                        f"{', '.join(others)}; colliding tags cross-match "
                        "messages between unrelated protocols — allocate "
                        "namespaces in repro.mpi.tags",
                    )
                )
    return findings


def check_tags(mods: list[ModuleInfo]) -> list[Finding]:
    """Cross-module tag audit (SPMD-TAG-COLLISION)."""
    findings: list[Finding] = []
    all_sites: list[tuple[str, str, int, int]] = []
    for mod in mods:
        mod_findings, mod_sites = module_tag_sites(mod)
        findings.extend(mod_findings)
        all_sites.extend((mod.modname, mod.path, v, l) for v, l in mod_sites)
    findings.extend(join_literal_tags(all_sites))
    return findings


def _same_module(modname: str, owner: str) -> bool:
    return modname == owner or modname.startswith(owner + ".") or owner.startswith(modname + ".")


# ----------------------------------------------------------- entry points


def check_module(mod: ModuleInfo) -> list[Finding]:
    """Run all per-module rules over every rank function."""
    findings: list[Finding] = []
    for fn in iter_functions(mod.tree):
        ctx = build_context(fn)
        if not ctx.comm_names:
            continue
        findings.extend(_div_collective(mod, ctx))
        findings.extend(_unwaited_requests(mod, ctx))
        findings.extend(_blocking_cycle(mod, ctx))
        findings.extend(_wallclock(mod, ctx))
        findings.extend(_dataflow_rules(mod, ctx))
    return findings
