"""Whole-program call graph over the analyzed fileset.

The interprocedural rules in :mod:`repro.analyze.interproc` need to know
*who calls whom* across every module handed to the analyzer.  This module
provides the two halves of that question:

* **Per-file indexing** (AST in hand, cold runs only) —
  :func:`index_module` walks one parsed module and produces a
  :class:`ModuleIndex`: every function definition (module-level functions,
  class methods, and nested closures, each with a dotted scope name like
  ``outer.<locals>.inner`` or ``Cls.method``), the module's import
  aliases, and *entry marks* for closures passed to ``run_spmd(p, fn)`` /
  ``rt.run(fn)`` / ``SortConfig(...)`` — their first parameter is a
  communicator even when it is not named ``comm``.  Everything in a
  :class:`ModuleIndex` is JSON-serializable so the incremental store can
  persist it and warm runs never touch an AST.

* **Whole-program resolution** (serializable data only) —
  :class:`CallGraph` stitches the per-module indexes together: a raw call
  *spec* recorded at a call site (``("name", "f")``, ``("attr",
  "helpers", "f")``, ``("self", "m")``) resolves through the caller's
  lexical scope chain, then module-level definitions, then the import
  maps.  Unresolvable calls (builtins, third-party code, dynamic
  dispatch) resolve to ``None`` and the analysis stays silent about them
  — every interprocedural rule only fires on edges it can prove.

Strongly connected components (Tarjan) give the bottom-up summary order:
:meth:`CallGraph.sccs_bottom_up` yields SCCs with callees before callers,
so recursion (direct or mutual) becomes a fixpoint within one SCC.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Iterator

from .astlint import ModuleInfo

__all__ = [
    "FunctionNode",
    "ModuleIndex",
    "CallGraph",
    "index_module",
    "LOCALS_SEP",
]

#: separator marking a nested (closure) scope inside a dotted function name
LOCALS_SEP = "<locals>"

#: callables whose Name arguments are SPMD entry points: name -> positional
#: index of the rank function in the call's arguments
_ENTRY_SINKS = {"run_spmd": 1, "run": 0}

#: constructors whose bare-Name arguments are treated as rank functions
_ENTRY_CTORS = frozenset({"SortConfig"})


@dataclass
class FunctionNode:
    """One function definition, addressable as ``modpath::dotted``.

    ``node`` is only populated on cold runs (it is never serialized);
    every field the whole-program phase needs survives a JSON round trip.
    """

    dotted: str  #: scope-qualified name inside the module (``f``, ``C.m``, ``f.<locals>.g``)
    name: str
    line: int
    params: list[str]
    cls: str | None = None  #: owning class name for methods
    is_entry: bool = False  #: passed to run_spmd/rt.run/SortConfig somewhere in this module
    node: ast.FunctionDef | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "dotted": self.dotted,
            "name": self.name,
            "line": self.line,
            "params": self.params,
            "cls": self.cls,
            "is_entry": self.is_entry,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FunctionNode":
        return cls(
            dotted=data["dotted"],
            name=data["name"],
            line=int(data["line"]),
            params=list(data["params"]),
            cls=data.get("cls"),
            is_entry=bool(data.get("is_entry", False)),
        )


@dataclass
class ModuleIndex:
    """Functions and import aliases of one module (JSON-serializable)."""

    path: str
    modname: str
    functions: dict[str, FunctionNode] = field(default_factory=dict)
    #: local alias -> fully dotted module it names (``import a.b as x``)
    import_modules: dict[str, str] = field(default_factory=dict)
    #: local name -> (module, symbol) (``from a.b import f as g``)
    import_symbols: dict[str, tuple[str, str]] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "modname": self.modname,
            "functions": {d: f.to_dict() for d, f in sorted(self.functions.items())},
            "import_modules": dict(sorted(self.import_modules.items())),
            "import_symbols": {
                k: list(v) for k, v in sorted(self.import_symbols.items())
            },
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ModuleIndex":
        return cls(
            path=data["path"],
            modname=data["modname"],
            functions={
                d: FunctionNode.from_dict(f) for d, f in data["functions"].items()
            },
            import_modules=dict(data["import_modules"]),
            import_symbols={
                k: (v[0], v[1]) for k, v in data["import_symbols"].items()
            },
        )


# ------------------------------------------------------------ per-file index


def _resolve_relative(modname: str, module: str | None, level: int) -> str | None:
    """Absolute module named by a ``from``-import inside ``modname``."""
    if level == 0:
        return module
    parts = modname.split(".")
    if level > len(parts):
        return None
    base = parts[: len(parts) - level]
    if module:
        base.append(module)
    return ".".join(base) if base else None


class _Indexer(ast.NodeVisitor):
    def __init__(self, mod: ModuleInfo) -> None:
        self.index = ModuleIndex(mod.path, mod.modname)
        self.modname = mod.modname
        self.scope: list[str] = []  #: dotted scope segments
        self.cls: list[str] = []  #: enclosing class names

    # -- definitions

    def _add_function(self, node: ast.FunctionDef) -> FunctionNode:
        dotted = ".".join([*self.scope, node.name])
        args = node.args
        params = [a.arg for a in [*args.posonlyargs, *args.args]]
        fn = FunctionNode(
            dotted=dotted,
            name=node.name,
            line=node.lineno,
            params=params,
            cls=self.cls[-1] if self.cls else None,
            node=node,
        )
        self.index.functions[dotted] = fn
        return fn

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._add_function(node)
        self.scope.extend([node.name, LOCALS_SEP])
        saved_cls = self.cls
        self.cls = []  # methods of classes nested in functions are closures
        self.generic_visit(node)
        self.cls = saved_cls
        del self.scope[-2:]

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        return  # the SPMD runtime is synchronous; async defs are out of scope

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.scope.append(node.name)
        self.cls.append(node.name)
        self.generic_visit(node)
        self.cls.pop()
        self.scope.pop()

    # -- imports

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name
            self.index.import_modules[local] = alias.name

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        target = _resolve_relative(self.modname, node.module, node.level)
        if target is None:
            return
        for alias in node.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            self.index.import_symbols[local] = (target, alias.name)


def _mark_entries(mod: ModuleInfo, index: ModuleIndex) -> None:
    """Flag functions passed (by name) to run_spmd / rt.run / SortConfig.

    The mark means "the first parameter of this function is a communicator
    handle" — :mod:`repro.analyze.interproc` uses it to build summary
    contexts for rank functions whose comm parameter has a non-standard
    name (``def body(c, xs)`` passed to ``run_spmd(4, body)``).
    """
    # Candidate names per lexical scope: map scope-dotted prefix handled by
    # resolution below; the mark is module-local, so a simple name match
    # against the nearest definition in any enclosing scope suffices.
    scopes = _scope_table(index)

    class Marker(ast.NodeVisitor):
        def __init__(self) -> None:
            self.scope: list[str] = []

        def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
            self.scope.extend([node.name, LOCALS_SEP])
            self.generic_visit(node)
            del self.scope[-2:]

        def visit_ClassDef(self, node: ast.ClassDef) -> None:
            self.scope.append(node.name)
            self.generic_visit(node)
            self.scope.pop()

        def visit_Call(self, node: ast.Call) -> None:
            func = node.func
            callee = None
            if isinstance(func, ast.Name):
                callee = func.id
            elif isinstance(func, ast.Attribute):
                callee = func.attr
            candidates: list[ast.expr] = []
            if callee in _ENTRY_SINKS:
                idx = _ENTRY_SINKS[callee]
                if len(node.args) > idx:
                    candidates.append(node.args[idx])
            elif callee in _ENTRY_CTORS:
                candidates.extend(node.args)
                candidates.extend(kw.value for kw in node.keywords)
            for cand in candidates:
                if isinstance(cand, ast.Name):
                    hit = _lookup_name(scopes, ".".join(self.scope), cand.id)
                    if hit is not None and hit.params:
                        hit.is_entry = True
            self.generic_visit(node)

    Marker().visit(mod.tree)


def _scope_table(index: ModuleIndex) -> dict[str, dict[str, FunctionNode]]:
    """scope prefix -> {function name -> node} for lexical lookup."""
    table: dict[str, dict[str, FunctionNode]] = {}
    for fn in index.functions.values():
        parent = fn.dotted.rsplit(".", 1)[0] if "." in fn.dotted else ""
        table.setdefault(parent, {})[fn.name] = fn
    return table


def _lookup_name(
    scopes: dict[str, dict[str, FunctionNode]], scope: str, name: str
) -> FunctionNode | None:
    """Resolve a bare name through the lexical scope chain to module level.

    Class bodies are not lexical scopes for the code inside methods — a
    bare ``helper()`` inside a method never means a sibling method — so
    only function scopes (``...<locals>``) and module level are consulted.
    """
    parts = scope.split(".") if scope else []
    while True:
        if not parts or parts[-1] == LOCALS_SEP:
            hit = scopes.get(".".join(parts), {}).get(name)
            if hit is not None:
                return hit
        if not parts:
            return None
        # step out of one scope level (functions contribute "name.<locals>")
        if len(parts) >= 2 and parts[-1] == LOCALS_SEP:
            del parts[-2:]
        else:
            del parts[-1]


def index_module(mod: ModuleInfo) -> ModuleIndex:
    """Index one parsed module: functions, imports, and entry marks."""
    indexer = _Indexer(mod)
    indexer.visit(mod.tree)
    _mark_entries(mod, indexer.index)
    return indexer.index


# ------------------------------------------------------- program resolution


class CallGraph:
    """Cross-module function table and call-spec resolution.

    Functions are addressed by ``"path::dotted"`` keys — paths are unique
    even when module *names* collide (two ``conftest.py`` files).  Import
    resolution goes through module names; on a name collision the first
    module indexed wins and later ones are unreachable via imports
    (conservative: unresolved calls produce no findings).
    """

    def __init__(self, indexes: list[ModuleIndex]) -> None:
        self.indexes = indexes
        self.by_path: dict[str, ModuleIndex] = {ix.path: ix for ix in indexes}
        self.by_modname: dict[str, ModuleIndex] = {}
        for ix in indexes:
            self.by_modname.setdefault(ix.modname, ix)
        self.functions: dict[str, FunctionNode] = {}
        self._scopes: dict[str, dict[str, dict[str, FunctionNode]]] = {}
        for ix in indexes:
            self._scopes[ix.path] = _scope_table(ix)
            for dotted, fn in ix.functions.items():
                self.functions[f"{ix.path}::{dotted}"] = fn
        self.edges: dict[str, set[str]] = {k: set() for k in self.functions}

    # -- addressing helpers

    def key(self, path: str, dotted: str) -> str:
        return f"{path}::{dotted}"

    def node(self, key: str) -> FunctionNode | None:
        return self.functions.get(key)

    def add_edge(self, caller: str, callee: str) -> None:
        if caller in self.edges and callee in self.functions:
            self.edges[caller].add(callee)

    # -- resolution

    def resolve(
        self, path: str, caller_dotted: str, spec: list[str] | tuple[str, ...]
    ) -> str | None:
        """Resolve one call spec from inside ``path::caller_dotted``.

        Specs come from :mod:`repro.analyze.interproc` call-site records:

        * ``("name", f)`` — bare name: lexical scope chain, then module
          level, then ``from m import f`` symbol imports.
        * ``("attr", prefix, f)`` — dotted call ``prefix.f(...)`` where
          ``prefix`` is a module alias (``import a.b as prefix``) or a
          dotted module path.
        * ``("self", m)`` — method call on ``self`` inside a class body.
        """
        ix = self.by_path.get(path)
        if ix is None:
            return None
        kind = spec[0]
        if kind == "name":
            name = spec[1]
            # lookup starts *inside* the caller so its own closures win
            scope = f"{caller_dotted}.{LOCALS_SEP}"
            hit = _lookup_name(self._scopes[path], scope, name)
            if hit is not None:
                return self.key(path, hit.dotted)
            sym = ix.import_symbols.get(name)
            if sym is not None:
                return self._module_symbol(*sym)
            return None
        if kind == "attr":
            prefix, name = spec[1], spec[2]
            target = ix.import_modules.get(prefix)
            if target is None and prefix in ix.import_symbols:
                # ``from a import b`` where b is itself a module
                mod, sym = ix.import_symbols[prefix]
                target = f"{mod}.{sym}"
            if target is None and prefix in self.by_modname:
                target = prefix
            if target is None:
                return None
            return self._module_symbol(target, name)
        if kind == "self":
            name = spec[1]
            fn = ix.functions.get(caller_dotted)
            if fn is None or fn.cls is None:
                return None
            # the method's class prefix is everything up to "<Cls>.<name>"
            prefix = caller_dotted.rsplit(".", 1)[0]
            hit = ix.functions.get(f"{prefix}.{name}")
            if hit is not None:
                return self.key(path, hit.dotted)
            return None
        return None

    def _module_symbol(self, module: str, symbol: str) -> str | None:
        ix = self.by_modname.get(module)
        if ix is None:
            return None
        hit = ix.functions.get(symbol)
        if hit is not None:
            return self.key(ix.path, hit.dotted)
        return None

    # -- SCC ordering

    def sccs_bottom_up(self) -> Iterator[list[str]]:
        """Tarjan SCCs in reverse topological order (callees first).

        Tarjan emits each SCC only after every SCC it can still reach has
        been emitted, so iterating in emission order processes callees
        before their callers — exactly the bottom-up summary order.
        """
        index_of: dict[str, int] = {}
        low: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        counter = [0]
        out: list[list[str]] = []

        def strongconnect(v: str) -> None:
            # iterative Tarjan: (node, iterator over successors)
            work: list[tuple[str, Iterator[str]]] = [(v, iter(sorted(self.edges[v])))]
            index_of[v] = low[v] = counter[0]
            counter[0] += 1
            stack.append(v)
            on_stack.add(v)
            while work:
                node, it = work[-1]
                advanced = False
                for w in it:
                    if w not in index_of:
                        index_of[w] = low[w] = counter[0]
                        counter[0] += 1
                        stack.append(w)
                        on_stack.add(w)
                        work.append((w, iter(sorted(self.edges[w]))))
                        advanced = True
                        break
                    if w in on_stack:
                        low[node] = min(low[node], index_of[w])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index_of[node]:
                    scc: list[str] = []
                    while True:
                        w = stack.pop()
                        on_stack.discard(w)
                        scc.append(w)
                        if w == node:
                            break
                    out.append(sorted(scc))

        for v in sorted(self.functions):
            if v not in index_of:
                strongconnect(v)
        yield from out
