"""Partition layouts: how many keys each rank contributes.

The paper explicitly supports inputs where "a fraction of all processors do
not contribute local elements" (sparse vectors/matrices, §VII); these
layouts exercise that.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "balanced_sizes",
    "block_sizes",
    "geometric_sizes",
    "sparse_sizes",
    "single_holder_sizes",
]


def balanced_sizes(total: int, p: int) -> np.ndarray:
    """Near-equal split: first ranks get the remainder (MPI block layout)."""
    if p < 1 or total < 0:
        raise ValueError("need p >= 1, total >= 0")
    base, rem = divmod(total, p)
    return np.array([base + (1 if r < rem else 0) for r in range(p)], dtype=np.int64)


def block_sizes(per_rank: int, p: int) -> np.ndarray:
    """Every rank holds exactly ``per_rank`` keys (weak-scaling layout)."""
    return np.full(p, per_rank, dtype=np.int64)


def geometric_sizes(total: int, p: int, ratio: float = 0.7) -> np.ndarray:
    """Strongly imbalanced layout: rank ``r`` holds ~``ratio**r`` of the rest."""
    if not 0 < ratio <= 1:
        raise ValueError("ratio must be in (0, 1]")
    weights = np.power(ratio, np.arange(p))
    raw = np.floor(total * weights / weights.sum()).astype(np.int64)
    raw[0] += total - raw.sum()
    return raw


def sparse_sizes(total: int, p: int, every: int = 2) -> np.ndarray:
    """Only every ``every``-th rank contributes keys; the rest are empty."""
    if every < 1:
        raise ValueError("every must be >= 1")
    holders = [r for r in range(p) if r % every == 0]
    sizes = np.zeros(p, dtype=np.int64)
    sizes[holders] = balanced_sizes(total, len(holders))
    return sizes


def single_holder_sizes(total: int, p: int, holder: int = 0) -> np.ndarray:
    """One rank holds everything (extreme sparsity)."""
    if not 0 <= holder < p:
        raise IndexError("holder out of range")
    sizes = np.zeros(p, dtype=np.int64)
    sizes[holder] = total
    return sizes
