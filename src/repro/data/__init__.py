"""Workload generators and partition layouts."""

from .generators import (
    DISTRIBUTIONS,
    all_equal_i64,
    duplicates_i64,
    exponential_f64,
    make_partition,
    nearly_sorted_i64,
    normal_f32,
    normal_f64,
    uniform_u64,
    zipf_u64,
)
from .partitions import (
    balanced_sizes,
    block_sizes,
    geometric_sizes,
    single_holder_sizes,
    sparse_sizes,
)

__all__ = [
    "DISTRIBUTIONS",
    "all_equal_i64",
    "balanced_sizes",
    "block_sizes",
    "duplicates_i64",
    "exponential_f64",
    "geometric_sizes",
    "make_partition",
    "nearly_sorted_i64",
    "normal_f32",
    "normal_f64",
    "single_holder_sizes",
    "sparse_sizes",
    "uniform_u64",
    "zipf_u64",
]
