"""Workload generators for benchmarks and tests.

The paper's benchmark inputs are reproduced exactly in spirit:

* ``uniform_u64`` — 64-bit unsigned integers uniform in [0, 1e9], drawn from
  a Mersenne Twister engine (§VI-B);
* ``normal_f64`` — 64-bit doubles, normal(0, 1) (§VI-D's shared-memory
  study);
* plus the adversarial families the paper's claims cover: skewed,
  nearly-sorted, duplicate-heavy, and all-equal inputs.

All generators are deterministic in ``(seed, rank)`` and independent across
ranks, so an SPMD program can create its partition locally.
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np

__all__ = [
    "DISTRIBUTIONS",
    "make_partition",
    "uniform_u64",
    "normal_f64",
    "normal_f32",
    "zipf_u64",
    "exponential_f64",
    "nearly_sorted_i64",
    "duplicates_i64",
    "all_equal_i64",
]


def _rng(seed: int, rank: int) -> np.random.Generator:
    # Mersenne Twister, as in the paper; one independent stream per rank.
    return np.random.Generator(np.random.MT19937([seed, rank]))


def uniform_u64(n: int, rank: int = 0, seed: int = 1, high: int = 10**9) -> np.ndarray:
    """Uniform 64-bit unsigned integers in ``[0, high]`` (paper §VI-B)."""
    return _rng(seed, rank).integers(0, high, size=n, endpoint=True, dtype=np.uint64)


def normal_f64(n: int, rank: int = 0, seed: int = 1, mean: float = 0.0, std: float = 1.0) -> np.ndarray:
    """Normally distributed 64-bit doubles (paper §VI-D)."""
    return _rng(seed, rank).normal(mean, std, size=n)


def normal_f32(n: int, rank: int = 0, seed: int = 1) -> np.ndarray:
    """Normally distributed 32-bit floats (for the §V-A iteration claims)."""
    return _rng(seed, rank).normal(size=n).astype(np.float32)


def zipf_u64(n: int, rank: int = 0, seed: int = 1, a: float = 1.8) -> np.ndarray:
    """Zipf-skewed positive integers — a hard case for sampled histograms."""
    draws = _rng(seed, rank).zipf(a, size=n)
    return np.minimum(draws, 2**48).astype(np.uint64)


def exponential_f64(n: int, rank: int = 0, seed: int = 1, scale: float = 1.0) -> np.ndarray:
    """Exponentially distributed doubles (skewed continuous)."""
    return _rng(seed, rank).exponential(scale, size=n)


def nearly_sorted_i64(n: int, rank: int = 0, seed: int = 1, swap_fraction: float = 0.01) -> np.ndarray:
    """Globally nearly sorted input: rank-contiguous ranges + local noise.

    Rank ``r`` holds mostly the range ``[r*n, (r+1)*n)`` with a small
    fraction of elements perturbed — the "nearly sorted data distributions
    ... not uncommon in real world problems" of §II.
    """
    rng = _rng(seed, rank)
    base = np.arange(rank * n, (rank + 1) * n, dtype=np.int64)
    nswap = int(n * swap_fraction)
    if nswap:
        idx = rng.integers(0, n, size=nswap)
        base[idx] = rng.integers(0, max(n * 8, 1), size=nswap)
    return base


def duplicates_i64(n: int, rank: int = 0, seed: int = 1, distinct: int = 10) -> np.ndarray:
    """Only ``distinct`` different key values — massive duplicate runs."""
    return _rng(seed, rank).integers(0, max(distinct, 1), size=n).astype(np.int64)


def all_equal_i64(n: int, rank: int = 0, seed: int = 1, value: int = 42) -> np.ndarray:
    """Every key identical — the degenerate extreme of duplicates."""
    return np.full(n, value, dtype=np.int64)


DISTRIBUTIONS: Mapping[str, Callable[..., np.ndarray]] = {
    "uniform_u64": uniform_u64,
    "normal_f64": normal_f64,
    "normal_f32": normal_f32,
    "zipf_u64": zipf_u64,
    "exponential_f64": exponential_f64,
    "nearly_sorted_i64": nearly_sorted_i64,
    "duplicates_i64": duplicates_i64,
    "all_equal_i64": all_equal_i64,
}


def make_partition(name: str, n: int, rank: int = 0, seed: int = 1, **kwargs) -> np.ndarray:
    """Create rank ``rank``'s partition of distribution ``name``."""
    try:
        gen = DISTRIBUTIONS[name]
    except KeyError:
        raise KeyError(
            f"unknown distribution {name!r}; available: {sorted(DISTRIBUTIONS)}"
        ) from None
    return gen(n, rank=rank, seed=seed, **kwargs)
