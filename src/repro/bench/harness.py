"""Trial runner: repeated SPMD sort runs with median + 95% CI statistics.

The paper reports "the median time out of 10 executions along with the 95%
confidence interval, excluding an initial warmup run" (§VI-B); runs here
vary the data seed (virtual time is deterministic per seed, so seeds are
the only noise source) and report the same statistics, with the CI of the
median from order statistics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence

import numpy as np

from ..baselines import hss_sort, psrs_sort, sample_sort
from ..core import SortConfig, histogram_sort
from ..data import make_partition
from ..machine import MachineSpec
from ..mpi import run_spmd
from ..trace.timer import combine_phases

__all__ = ["TrialResult", "RepeatStats", "median_ci", "run_sort_trial", "repeat_sort_trials"]


@dataclass(frozen=True)
class TrialResult:
    """One sort execution: makespan and per-phase (max over ranks) times."""

    total: float
    phases: dict[str, float]
    rounds: int
    exchanged_bytes: int
    extra: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class RepeatStats:
    """Median + 95% CI of the median over repeated trials."""

    median: float
    ci_low: float
    ci_high: float
    n: int
    values: tuple[float, ...]


def median_ci(values: Sequence[float], confidence: float = 0.95) -> RepeatStats:
    """Distribution-free CI of the median via binomial order statistics."""
    vals = sorted(float(v) for v in values)
    n = len(vals)
    if n == 0:
        raise ValueError("no values")
    med = float(np.median(vals))
    if n < 3:
        return RepeatStats(med, vals[0], vals[-1], n, tuple(vals))
    # Normal approximation to the binomial(n, 0.5) order-statistic interval.
    z = 1.959963984540054 if confidence == 0.95 else abs(np.sqrt(2) * math.erf(confidence))
    half = z * math.sqrt(n) / 2.0
    lo = max(0, int(math.floor(n / 2.0 - half)))
    hi = min(n - 1, int(math.ceil(n / 2.0 + half)) - 1)
    return RepeatStats(med, vals[lo], vals[hi], n, tuple(vals))


_ALGOS: dict[str, Callable] = {}


def _dash(comm, local, config):
    res = histogram_sort(comm, local, config=config)
    # A resilient config returns a ResilientSortResult wrapping the
    # successful epoch's SortResult.
    inner = getattr(res, "result", res)
    out = {
        "phases": inner.phases,
        "rounds": inner.rounds,
        "exchanged": inner.exchanged_bytes,
    }
    if inner is not res:
        out["attempts"] = res.attempts
        out["survivors"] = res.survivors
    return out


def _hss(comm, local, config):
    res = hss_sort(comm, local, eps=config.eps if config else 0.0)
    diag = res.info["diagnostics"]
    return {
        "phases": res.phases,
        "rounds": diag.rounds,
        "exchanged": int(res.output.nbytes),
    }


def _samplesort(comm, local, config):
    res = sample_sort(comm, local)
    return {"phases": res.phases, "rounds": 1, "exchanged": int(res.output.nbytes)}


def _psrs(comm, local, config):
    res = psrs_sort(comm, local)
    return {"phases": res.phases, "rounds": 1, "exchanged": int(res.output.nbytes)}


_ALGOS.update(dash=_dash, hss=_hss, sample_sort=_samplesort, psrs=_psrs)


def _trial_program(comm, algo: str, dist: str, n_per_rank: int, seed: int, config):
    local = make_partition(dist, n_per_rank, rank=comm.rank, seed=seed)
    return _ALGOS[algo](comm, local, config)


def run_sort_trial(
    p: int,
    n_per_rank: int,
    *,
    algo: str = "dash",
    dist: str = "uniform_u64",
    seed: int = 1,
    machine: MachineSpec | None = None,
    ranks_per_node: int | None = None,
    config: SortConfig | None = None,
    use_shm: bool = True,
    trace_path: str | Path | None = None,
    check: bool | None = None,
    faults=None,
) -> TrialResult:
    """Execute one distributed sort and collect virtual-time statistics.

    ``trace_path`` enables event tracing for the run and writes a
    Chrome-trace JSON there (open it in Perfetto, or summarize it with
    ``python -m repro.trace.report``).  ``check`` enables the runtime
    correctness checker (collective congruence, deadlock detection, leak
    report); ``None`` defers to the ``REPRO_CHECK`` environment variable.
    Neither tracing nor checking perturbs the modelled times.

    ``faults`` injects a :class:`~repro.faults.FaultPlan` (pair it with a
    resilient ``config`` so the sort can heal); ranks the plan crashes
    contribute no statistics, and the injected-event tally lands in
    ``extra["faults"]``.
    """
    if algo not in _ALGOS:
        raise KeyError(f"unknown algo {algo!r}; available: {sorted(_ALGOS)}")
    results, rt = run_spmd(
        p,
        _trial_program,
        algo,
        dist,
        n_per_rank,
        seed,
        config,
        machine=machine,
        ranks_per_node=ranks_per_node,
        use_shm=use_shm,
        return_runtime=True,
        trace=trace_path is not None,
        check=check,
        faults=faults,
    )
    if trace_path is not None and rt.trace is not None:
        from ..trace.export import write_chrome_trace

        write_chrome_trace(trace_path, rt.trace)
    results = [r for r in results if r is not None]  # crashed ranks
    phases = combine_phases([r["phases"] for r in results], how="max")
    extra: dict[str, Any] = {"bytes_sent": int(rt.stats.bytes_sent.sum())}
    if faults is not None:
        extra["faults"] = rt.fault_stats.summary()
    return TrialResult(
        total=rt.elapsed(),
        phases=phases,
        rounds=int(max(r["rounds"] for r in results)),
        exchanged_bytes=int(sum(r["exchanged"] for r in results)),
        extra=extra,
    )


def repeat_sort_trials(
    p: int,
    n_per_rank: int,
    *,
    repeats: int = 5,
    warmup: int = 1,
    seed0: int = 100,
    trace_dir: str | Path | None = None,
    **kwargs: Any,
) -> tuple[RepeatStats, list[TrialResult]]:
    """Repeat a trial over seeds; returns (stats over totals, all trials).

    ``trace_dir`` dumps one Chrome-trace JSON per execution (warmup
    included) as ``trial_<i>_seed<seed>.json`` under that directory.
    """
    trials: list[TrialResult] = []
    for i in range(warmup + repeats):
        trace_path = None
        if trace_dir is not None:
            trace_path = Path(trace_dir) / f"trial_{i}_seed{seed0 + i}.json"
        trial = run_sort_trial(
            p, n_per_rank, seed=seed0 + i, trace_path=trace_path, **kwargs
        )
        if i >= warmup:
            trials.append(trial)
    stats = median_ci([t.total for t in trials])
    return stats, trials
