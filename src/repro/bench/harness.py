"""Trial runner: repeated SPMD sort runs with median + 95% CI statistics.

The paper reports "the median time out of 10 executions along with the 95%
confidence interval, excluding an initial warmup run" (§VI-B); runs here
vary the data seed (virtual time is deterministic per seed, so seeds are
the only noise source) and report the same statistics, with the CI of the
median from order statistics.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence

import numpy as np

from ..baselines import hss_sort, psrs_sort, sample_sort
from ..core import SortConfig, autosort, histogram_sort
from ..data import make_partition
from ..machine import MachineSpec
from ..mpi import run_spmd
from ..trace.timer import combine_phases

__all__ = [
    "TrialResult",
    "RepeatStats",
    "median_ci",
    "peak_rss_bytes",
    "run_sort_trial",
    "repeat_sort_trials",
]


def _result_record(inner) -> dict[str, Any]:
    """Per-rank trial record: phases, histogramming rounds, bytes moved.

    ``rounds`` always rides along (1 for single-round algorithms), so
    harness output can feed :func:`repro.model.calibrate.fit_round_count`
    directly.
    """
    return {
        "phases": inner.phases,
        "rounds": int(getattr(inner, "rounds", 1)),
        "exchanged": int(getattr(inner, "exchanged_bytes", inner.output.nbytes)),
    }


@dataclass(frozen=True)
class TrialResult:
    """One sort execution: makespan and per-phase (max over ranks) times."""

    total: float
    phases: dict[str, float]
    rounds: int
    exchanged_bytes: int
    extra: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class RepeatStats:
    """Median + 95% CI of the median over repeated trials."""

    median: float
    ci_low: float
    ci_high: float
    n: int
    values: tuple[float, ...]


def median_ci(values: Sequence[float], confidence: float = 0.95) -> RepeatStats:
    """Distribution-free CI of the median via binomial order statistics."""
    vals = sorted(float(v) for v in values)
    n = len(vals)
    if n == 0:
        raise ValueError("no values")
    med = float(np.median(vals))
    if n < 3:
        return RepeatStats(med, vals[0], vals[-1], n, tuple(vals))
    # Normal approximation to the binomial(n, 0.5) order-statistic interval.
    z = 1.959963984540054 if confidence == 0.95 else abs(np.sqrt(2) * math.erf(confidence))
    half = z * math.sqrt(n) / 2.0
    lo = max(0, int(math.floor(n / 2.0 - half)))
    hi = min(n - 1, int(math.ceil(n / 2.0 + half)) - 1)
    return RepeatStats(med, vals[lo], vals[hi], n, tuple(vals))


def peak_rss_bytes() -> int:
    """Peak resident set size of this process in bytes (0 if unknown).

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; the
    :mod:`resource` module is POSIX-only, so this degrades to 0 elsewhere.
    """
    try:
        import resource
        import sys
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return int(rss) if sys.platform == "darwin" else int(rss) * 1024


_ALGOS: dict[str, Callable] = {}


def _dash(comm, local, config):
    res = histogram_sort(comm, local, config=config)
    # A resilient config returns a ResilientSortResult wrapping the
    # successful epoch's SortResult.
    inner = getattr(res, "result", res)
    out = _result_record(inner)
    if inner is not res:
        out["attempts"] = res.attempts
        out["survivors"] = res.survivors
    return out


def _hss(comm, local, config):
    res = hss_sort(comm, local, eps=config.eps if config else 0.0)
    out = _result_record(res)
    out["rounds"] = int(res.info["diagnostics"].rounds)
    return out


def _samplesort(comm, local, config):
    return _result_record(sample_sort(comm, local))


def _psrs(comm, local, config):
    return _result_record(psrs_sort(comm, local))


_ALGOS.update(dash=_dash, hss=_hss, sample_sort=_samplesort, psrs=_psrs)


def _trial_program(comm, algo: str, dist: str, n_per_rank: int, seed: int, config,
                   plan, plan_cache, plan_seed: int):
    local = make_partition(dist, n_per_rank, rank=comm.rank, seed=seed)
    if plan is None:
        return _ALGOS[algo](comm, local, config)
    # plan="auto" bypasses the algo registry and runs the full autosort
    # lifecycle: fingerprint, cache lookup, planning on miss, feedback.
    eps = config.eps if config is not None else 0.0
    auto = autosort(comm, local, eps=eps, cache=plan_cache, seed=plan_seed)
    inner = getattr(auto.result, "result", auto.result)
    out = _result_record(inner)
    out["plan_id"] = auto.plan.plan_id
    out["plan_algo"] = auto.plan.algo
    out["cache_hit"] = auto.cache_hit
    return out


def run_sort_trial(
    p: int,
    n_per_rank: int,
    *,
    algo: str = "dash",
    dist: str = "uniform_u64",
    seed: int = 1,
    machine: MachineSpec | None = None,
    ranks_per_node: int | None = None,
    config: SortConfig | None = None,
    use_shm: bool = True,
    trace_path: str | Path | None = None,
    check: bool | None = None,
    sanitize: bool | None = None,
    faults=None,
    plan: str | None = None,
    plan_cache=None,
    plan_seed: int = 0,
    metrics=None,
    metrics_labels: dict[str, Any] | None = None,
) -> TrialResult:
    """Execute one distributed sort and collect virtual-time statistics.

    ``trace_path`` enables event tracing for the run and writes a
    Chrome-trace JSON there (open it in Perfetto, or summarize it with
    ``python -m repro.trace.report``).  ``check`` enables the runtime
    correctness checker (collective congruence, deadlock detection, leak
    report); ``None`` defers to the ``REPRO_CHECK`` environment variable.
    ``sanitize`` enables the happens-before/buffer-lifetime sanitizer
    (:mod:`repro.sanitize`); ``None`` defers to ``REPRO_SANITIZE``.
    Neither tracing, checking nor sanitizing perturbs the modelled times.

    ``faults`` injects a :class:`~repro.faults.FaultPlan` (pair it with a
    resilient ``config`` so the sort can heal); ranks the plan crashes
    contribute no statistics, and the injected-event tally lands in
    ``extra["faults"]``.

    ``plan="auto"`` ignores ``algo`` and runs :func:`repro.core.autosort`
    instead — benchmarks can measure tuned against paper-default
    configurations.  Pass a :class:`repro.tune.PlanCache` as ``plan_cache``
    to persist plans across trials (a warm cache skips planning entirely);
    ``plan_seed`` seeds the planner.  The chosen ``plan_id``/``plan_algo``
    and cache-hit flag land in ``extra``.

    ``metrics`` accepts a :class:`repro.metrics.MetricsRegistry`; after the
    run its statistics and phase breakdown are folded in under
    ``metrics_labels`` (collection is post-hoc, so an observed run stays
    bit-identical to an unobserved one).  ``extra`` always carries the
    harness-overhead pair ``wall_s`` (simulator wall-clock seconds for the
    run) and ``peak_rss_bytes`` (process high-water memory), so snapshot
    cells can report what the *simulation* cost alongside virtual time.
    """
    if plan not in (None, "auto"):
        raise ValueError(f"plan must be None or 'auto', got {plan!r}")
    if plan is None and algo not in _ALGOS:
        raise KeyError(f"unknown algo {algo!r}; available: {sorted(_ALGOS)}")
    wall_t0 = time.perf_counter()
    results, rt = run_spmd(
        p,
        _trial_program,
        algo,
        dist,
        n_per_rank,
        seed,
        config,
        plan,
        plan_cache,
        plan_seed,
        machine=machine,
        ranks_per_node=ranks_per_node,
        use_shm=use_shm,
        return_runtime=True,
        trace=trace_path is not None,
        check=check,
        sanitize=sanitize,
        faults=faults,
    )
    wall_s = time.perf_counter() - wall_t0
    if trace_path is not None and rt.trace is not None:
        from ..trace.export import write_chrome_trace

        write_chrome_trace(trace_path, rt.trace)
    results = [r for r in results if r is not None]  # crashed ranks
    phases = combine_phases([r["phases"] for r in results], how="max")
    stats_snap = rt.stats.snapshot()
    extra: dict[str, Any] = {
        "bytes_sent": stats_snap.total_bytes_sent,
        "msgs_sent": stats_snap.total_msgs_sent,
        "wire_bytes": stats_snap.wire_bytes,
        "collective_calls": stats_snap.total_collective_calls,
        "wall_s": wall_s,
        "peak_rss_bytes": peak_rss_bytes(),
    }
    if faults is not None:
        extra["faults"] = rt.fault_stats.summary()
    if plan is not None and results:
        extra["plan_id"] = results[0]["plan_id"]
        extra["plan_algo"] = results[0]["plan_algo"]
        extra["plan_cache_hit"] = bool(results[0]["cache_hit"])
    if metrics is not None:
        from ..metrics import collect_phases, collect_runtime, collect_trace

        labels = dict(metrics_labels or {})
        collect_runtime(metrics, rt, labels=labels)
        collect_phases(metrics, phases, labels=labels)
        if rt.trace is not None:
            collect_trace(metrics, rt.trace, labels=labels)
    return TrialResult(
        total=rt.elapsed(),
        phases=phases,
        rounds=int(max(r["rounds"] for r in results)),
        exchanged_bytes=int(sum(r["exchanged"] for r in results)),
        extra=extra,
    )


def repeat_sort_trials(
    p: int,
    n_per_rank: int,
    *,
    repeats: int = 5,
    warmup: int = 1,
    seed0: int = 100,
    trace_dir: str | Path | None = None,
    **kwargs: Any,
) -> tuple[RepeatStats, list[TrialResult]]:
    """Repeat a trial over seeds; returns (stats over totals, all trials).

    ``trace_dir`` dumps one Chrome-trace JSON per execution (warmup
    included) as ``trial_<i>_seed<seed>.json`` under that directory.
    """
    trials: list[TrialResult] = []
    for i in range(warmup + repeats):
        trace_path = None
        if trace_dir is not None:
            trace_path = Path(trace_dir) / f"trial_{i}_seed{seed0 + i}.json"
        trial = run_sort_trial(
            p, n_per_rank, seed=seed0 + i, trace_path=trace_path, **kwargs
        )
        if i >= warmup:
            trials.append(trial)
    stats = median_ci([t.total for t in trials])
    return stats, trials
