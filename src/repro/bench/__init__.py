"""Benchmark harness: every table/figure of the paper as an experiment.

See DESIGN.md's experiment index; the ``benchmarks/`` directory wires these
into pytest-benchmark targets and EXPERIMENTS.md records the outcomes.
"""

from .ablations import (
    epsilon_sweep,
    guess_policy_ablation,
    merge_strategy_ablation,
    overlap_ablation,
    shm_ablation,
)
from .experiments import (
    DASH_RPN,
    HSS_RPN,
    WEAK_RPN,
    bench_scale,
    fig2a_strong_scaling,
    fig2b_phase_breakdown,
    fig3a_weak_scaling,
    fig3b_phase_breakdown,
    iterations_experiment,
    table1_machine,
)
from .harness import (
    RepeatStats,
    TrialResult,
    median_ci,
    peak_rss_bytes,
    repeat_sort_trials,
    run_sort_trial,
)
from .results import Series, format_table
from .shared_memory import fig4_shared_memory, merge_strategy_study

__all__ = [
    "DASH_RPN",
    "HSS_RPN",
    "WEAK_RPN",
    "RepeatStats",
    "Series",
    "TrialResult",
    "bench_scale",
    "epsilon_sweep",
    "fig2a_strong_scaling",
    "fig2b_phase_breakdown",
    "fig3a_weak_scaling",
    "fig3b_phase_breakdown",
    "fig4_shared_memory",
    "format_table",
    "guess_policy_ablation",
    "iterations_experiment",
    "median_ci",
    "merge_strategy_ablation",
    "merge_strategy_study",
    "overlap_ablation",
    "repeat_sort_trials",
    "peak_rss_bytes",
    "run_sort_trial",
    "shm_ablation",
    "table1_machine",
]
