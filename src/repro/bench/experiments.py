"""Experiment definitions for the paper's distributed-memory figures.

Every figure/table has a function returning a :class:`Series`:

* :func:`fig2a_strong_scaling` / :func:`fig2b_phase_breakdown`
* :func:`fig3a_weak_scaling` / :func:`fig3b_phase_breakdown`
* :func:`iterations_experiment` (§V-A's iteration-count claims)
* :func:`table1_machine` (Table I)

Two modes:

``execute``
    run the real algorithms in-process on a scaled-down problem; timings
    are virtual seconds from the machine model.  Rank counts follow the
    paper's layout (28 ranks/node DASH, 16 ranks/node for the Charm++ HSS
    comparator) on as many nodes as fit in a process.

``model``
    closed-form evaluation at the paper's full scale (1..128 nodes, up to
    3584 cores, 16–256 GB of keys), parameterized by convergence constants
    *measured* from execute-mode runs.  The round count is extrapolated as
    ``measured + log2(N_model / N_exec)`` capped at the key width — the
    min-gap argument behind §V-A's "iterations are bound by the key size".
"""

from __future__ import annotations

import math
import os
from typing import Sequence

import numpy as np

from ..core import SplitterConfig, find_splitters
from ..data import make_partition
from ..machine import supermuc_phase2
from ..model import predict_histsort, predict_hss
from ..mpi import run_spmd
from .harness import repeat_sort_trials
from .results import Series

__all__ = [
    "DASH_RPN",
    "HSS_RPN",
    "fig2a_strong_scaling",
    "fig2b_phase_breakdown",
    "fig3a_weak_scaling",
    "fig3b_phase_breakdown",
    "WEAK_RPN",
    "iterations_experiment",
    "table1_machine",
    "bench_scale",
]

#: ranks per node used by the paper for DASH (all 28 cores) and Charm++ (16)
DASH_RPN = 28
HSS_RPN = 16
#: the weak-scaling study allocates 2 GB/node at 128 MB/rank => 16 ranks/node
WEAK_RPN = 16

#: paper-scale parameters
MODEL_NODES = [1, 2, 4, 8, 16, 32, 64, 128]
MODEL_N_STRONG = 2**32            # 32 GB of uint64 keys, fixed for strong scaling
MODEL_N_PER_RANK_WEAK = 2**24     # 128 MB of uint64 per rank (§VI-C)
KEY_BITS_U64_1E9 = 30             # keys are uniform in [0, 1e9]


def bench_scale() -> float:
    """Execute-mode problem scale multiplier (env ``REPRO_BENCH_SCALE``)."""
    try:
        return max(float(os.environ.get("REPRO_BENCH_SCALE", "1")), 0.01)
    except ValueError:
        return 1.0


def _exec_nodes(default: Sequence[int] = (1, 2, 4)) -> list[int]:
    scale = bench_scale()
    if scale >= 4:
        return [1, 2, 4, 8]
    return list(default)


def _extrapolated_rounds(measured: int, n_exec: int, n_model: int, key_bits: int) -> int:
    grow = max(0.0, math.log2(max(n_model, 2)) - math.log2(max(n_exec, 2)))
    return int(min(key_bits, measured + round(grow)))


def _calibrate(n_per_rank: int, repeats: int, machine) -> dict:
    """Small execute runs measuring convergence constants for model mode."""
    p = 2 * DASH_RPN
    _, dash_trials = repeat_sort_trials(
        p,
        n_per_rank,
        repeats=repeats,
        warmup=0,
        algo="dash",
        dist="uniform_u64",
        machine=machine,
        ranks_per_node=DASH_RPN,
    )
    p_hss = 2 * HSS_RPN
    _, hss_trials = repeat_sort_trials(
        p_hss,
        n_per_rank,
        repeats=repeats,
        warmup=0,
        algo="hss",
        dist="uniform_u64",
        machine=machine,
        ranks_per_node=HSS_RPN,
    )
    hss_rounds = [t.rounds for t in hss_trials]
    return {
        "dash_rounds": int(np.median([t.rounds for t in dash_trials])),
        "dash_n_exec": n_per_rank * p,
        "hss_rounds_med": int(np.median(hss_rounds)),
        "hss_rounds_max": int(np.max(hss_rounds)),
        "hss_n_exec": n_per_rank * p_hss,
    }


def fig2a_strong_scaling(
    mode: str = "model",
    repeats: int = 3,
    n_per_rank_exec: int = 1 << 17,
) -> Series:
    """Fig. 2(a): strong scaling, DASH vs Charm++-style HSS.

    Fixed total problem size; 1..128 nodes.  Reports the median and 95% CI
    (execute mode) or modelled times with HSS volatility bounds (model
    mode), plus speedup and parallel efficiency relative to one node.
    """
    machine = supermuc_phase2()
    series = Series(
        experiment=f"fig2a_{mode}",
        title="Strong scaling: DASH histogram sort vs HSS (Charm++)",
        columns=[
            "nodes", "cores", "dash_s", "dash_lo", "dash_hi",
            "hss_s", "hss_lo", "hss_hi", "dash_speedup", "dash_eff", "rounds",
        ],
        params={"mode": mode},
    )

    if mode == "execute":
        n_per_rank_exec = int(n_per_rank_exec * bench_scale())
        nodes_list = _exec_nodes()
        n_total = n_per_rank_exec * DASH_RPN * nodes_list[0]
        series.params.update(n_total=n_total, repeats=repeats)
        base = None
        for nodes in nodes_list:
            p_dash = nodes * DASH_RPN
            p_hss = nodes * HSS_RPN
            dash_stats, dash_trials = repeat_sort_trials(
                p_dash, max(n_total // p_dash, 1), repeats=repeats, warmup=1,
                algo="dash", dist="uniform_u64", machine=machine, ranks_per_node=DASH_RPN,
            )
            hss_stats, _ = repeat_sort_trials(
                p_hss, max(n_total // p_hss, 1), repeats=repeats, warmup=1,
                algo="hss", dist="uniform_u64", machine=machine, ranks_per_node=HSS_RPN,
            )
            if base is None:
                base = (nodes, dash_stats.median)
            speedup = base[1] / dash_stats.median * base[0]
            series.add(
                nodes=nodes, cores=nodes * DASH_RPN,
                dash_s=dash_stats.median, dash_lo=dash_stats.ci_low, dash_hi=dash_stats.ci_high,
                hss_s=hss_stats.median, hss_lo=hss_stats.ci_low, hss_hi=hss_stats.ci_high,
                dash_speedup=speedup, dash_eff=speedup / nodes,
                rounds=int(np.median([t.rounds for t in dash_trials])),
            )
        return series

    if mode != "model":
        raise ValueError(f"unknown mode {mode!r}")

    cal = _calibrate(1 << 13, max(repeats, 3), machine)
    n_total = MODEL_N_STRONG
    series.params.update(n_total=n_total, calibration=cal)
    base = None
    for nodes in MODEL_NODES:
        p_dash = nodes * DASH_RPN
        p_hss = nodes * HSS_RPN
        rounds = _extrapolated_rounds(
            cal["dash_rounds"], cal["dash_n_exec"], n_total, KEY_BITS_U64_1E9
        )
        pred = predict_histsort(
            machine, n_total, p_dash, ranks_per_node=DASH_RPN, rounds=rounds
        )
        hss_rounds = _extrapolated_rounds(
            cal["hss_rounds_med"], cal["hss_n_exec"], n_total, KEY_BITS_U64_1E9 + 4
        )
        hss_rounds_hi = _extrapolated_rounds(
            cal["hss_rounds_max"] * 3, cal["hss_n_exec"], n_total, 2 * KEY_BITS_U64_1E9
        )
        cand = 8.0 * p_hss  # samples_per_round per rank, aggregated
        hss = predict_hss(
            machine, n_total, p_hss, ranks_per_node=HSS_RPN,
            rounds=hss_rounds, cand_per_round=cand,
        )
        hss_hi = predict_hss(
            machine, n_total, p_hss, ranks_per_node=HSS_RPN,
            rounds=hss_rounds_hi, cand_per_round=cand,
        )
        if base is None:
            base = (nodes, pred.total)
        speedup = base[1] / pred.total * base[0]
        series.add(
            nodes=nodes, cores=p_dash,
            dash_s=pred.total, dash_lo=pred.total, dash_hi=pred.total,
            hss_s=hss.total, hss_lo=hss.total, hss_hi=hss_hi.total,
            dash_speedup=speedup, dash_eff=speedup / nodes,
            rounds=rounds,
        )
    return series


def _phase_rows(series_name: str, title: str, points: list[tuple[int, int, dict]]) -> Series:
    series = Series(
        experiment=series_name,
        title=title,
        columns=[
            "nodes", "cores", "local_sort", "splitting", "exchange", "merge",
            "other", "frac_sort", "frac_split", "frac_exchange", "frac_other",
        ],
    )
    for nodes, cores, phases in points:
        total = sum(phases.values()) or 1.0
        # Figure-compatible grouping: the paper folds the final merge into
        # "local sort" work and plan preparation into "other".
        frac_sort = (phases["local_sort"] + phases["merge"]) / total
        series.add(
            nodes=nodes, cores=cores,
            local_sort=phases["local_sort"], splitting=phases["splitting"],
            exchange=phases["exchange"], merge=phases["merge"], other=phases["other"],
            frac_sort=frac_sort,
            frac_split=phases["splitting"] / total,
            frac_exchange=phases["exchange"] / total,
            frac_other=phases["other"] / total,
        )
    return series


def fig2b_phase_breakdown(mode: str = "model", repeats: int = 3) -> Series:
    """Fig. 2(b): relative phase fractions under strong scaling.

    The paper's headline: histogramming becomes the bottleneck beyond
    ~2000 ranks while the all-to-all fraction stays roughly stable.
    """
    machine = supermuc_phase2()
    points = []
    if mode == "execute":
        n_total = int((1 << 14) * bench_scale()) * DASH_RPN
        for nodes in _exec_nodes():
            p = nodes * DASH_RPN
            _, trials = repeat_sort_trials(
                p, max(n_total // p, 1), repeats=repeats, warmup=0,
                algo="dash", dist="uniform_u64", machine=machine, ranks_per_node=DASH_RPN,
            )
            phases = {k: float(np.median([t.phases[k] for t in trials])) for k in trials[0].phases}
            points.append((nodes, p, phases))
    else:
        cal = _calibrate(1 << 13, repeats, machine)
        for nodes in MODEL_NODES:
            p = nodes * DASH_RPN
            rounds = _extrapolated_rounds(
                cal["dash_rounds"], cal["dash_n_exec"], MODEL_N_STRONG, KEY_BITS_U64_1E9
            )
            pred = predict_histsort(
                machine, MODEL_N_STRONG, p, ranks_per_node=DASH_RPN, rounds=rounds
            )
            points.append((nodes, p, pred.as_dict()))
    return _phase_rows(
        f"fig2b_{mode}", "Strong-scaling phase fractions (DASH)", points
    )


def fig3a_weak_scaling(
    mode: str = "model",
    repeats: int = 3,
    n_per_rank_exec: int = 1 << 14,
) -> Series:
    """Fig. 3(a): weak scaling at 128 MB/rank; paper: 2.3 s → 4.6 s."""
    machine = supermuc_phase2()
    series = Series(
        experiment=f"fig3a_{mode}",
        title="Weak scaling: DASH vs HSS (128 MB/rank)",
        columns=[
            "nodes", "cores", "dash_s", "dash_lo", "dash_hi",
            "hss_s", "hss_lo", "hss_hi", "dash_eff", "rounds",
        ],
        params={"mode": mode},
    )
    if mode == "execute":
        n_per_rank = int(n_per_rank_exec * bench_scale())
        series.params.update(n_per_rank=n_per_rank, repeats=repeats)
        base = None
        for nodes in _exec_nodes():
            p_dash = nodes * WEAK_RPN
            dash_stats, dash_trials = repeat_sort_trials(
                p_dash, n_per_rank, repeats=repeats, warmup=1,
                algo="dash", dist="uniform_u64", machine=machine, ranks_per_node=WEAK_RPN,
            )
            hss_stats, _ = repeat_sort_trials(
                nodes * HSS_RPN, n_per_rank, repeats=repeats, warmup=1,
                algo="hss", dist="uniform_u64", machine=machine, ranks_per_node=HSS_RPN,
            )
            if base is None:
                base = dash_stats.median
            series.add(
                nodes=nodes, cores=p_dash,
                dash_s=dash_stats.median, dash_lo=dash_stats.ci_low, dash_hi=dash_stats.ci_high,
                hss_s=hss_stats.median, hss_lo=hss_stats.ci_low, hss_hi=hss_stats.ci_high,
                dash_eff=base / dash_stats.median,
                rounds=int(np.median([t.rounds for t in dash_trials])),
            )
        return series

    cal = _calibrate(1 << 13, repeats, machine)
    series.params.update(n_per_rank=MODEL_N_PER_RANK_WEAK, calibration=cal)
    base = None
    for nodes in MODEL_NODES:
        p_dash = nodes * WEAK_RPN
        p_hss = nodes * WEAK_RPN
        n_total = MODEL_N_PER_RANK_WEAK * p_dash
        rounds = _extrapolated_rounds(
            cal["dash_rounds"], cal["dash_n_exec"], n_total, KEY_BITS_U64_1E9
        )
        pred = predict_histsort(
            machine, n_total, p_dash, ranks_per_node=WEAK_RPN, rounds=rounds
        )
        n_total_hss = MODEL_N_PER_RANK_WEAK * p_hss
        hss_rounds = _extrapolated_rounds(
            cal["hss_rounds_med"], cal["hss_n_exec"], n_total_hss, KEY_BITS_U64_1E9 + 4
        )
        hss_rounds_hi = _extrapolated_rounds(
            cal["hss_rounds_max"] * 3, cal["hss_n_exec"], n_total_hss, 2 * KEY_BITS_U64_1E9
        )
        hss = predict_hss(
            machine, n_total_hss, p_hss, ranks_per_node=HSS_RPN,
            rounds=hss_rounds, cand_per_round=8.0 * p_hss,
        )
        hss_hi = predict_hss(
            machine, n_total_hss, p_hss, ranks_per_node=HSS_RPN,
            rounds=hss_rounds_hi, cand_per_round=8.0 * p_hss,
        )
        if base is None:
            base = pred.total
        series.add(
            nodes=nodes, cores=p_dash,
            dash_s=pred.total, dash_lo=pred.total, dash_hi=pred.total,
            hss_s=hss.total, hss_lo=hss.total, hss_hi=hss_hi.total,
            dash_eff=base / pred.total, rounds=rounds,
        )
    return series


def fig3b_phase_breakdown(mode: str = "model", repeats: int = 3) -> Series:
    """Fig. 3(b): weak-scaling phase fractions — local sort and the
    all-to-all dominate; histogramming stays amortized."""
    machine = supermuc_phase2()
    points = []
    if mode == "execute":
        n_per_rank = int((1 << 14) * bench_scale())
        for nodes in _exec_nodes():
            p = nodes * WEAK_RPN
            _, trials = repeat_sort_trials(
                p, n_per_rank, repeats=repeats, warmup=0,
                algo="dash", dist="uniform_u64", machine=machine, ranks_per_node=WEAK_RPN,
            )
            phases = {k: float(np.median([t.phases[k] for t in trials])) for k in trials[0].phases}
            points.append((nodes, p, phases))
    else:
        cal = _calibrate(1 << 13, repeats, machine)
        for nodes in MODEL_NODES:
            p = nodes * WEAK_RPN
            n_total = MODEL_N_PER_RANK_WEAK * p
            rounds = _extrapolated_rounds(
                cal["dash_rounds"], cal["dash_n_exec"], n_total, KEY_BITS_U64_1E9
            )
            pred = predict_histsort(
                machine, n_total, p, ranks_per_node=WEAK_RPN, rounds=rounds
            )
            points.append((nodes, p, pred.as_dict()))
    return _phase_rows(
        f"fig3b_{mode}", "Weak-scaling phase fractions (DASH)", points
    )


def _iteration_program(comm, dist: str, n_per_rank: int, seed: int):
    local = np.sort(make_partition(dist, n_per_rank, rank=comm.rank, seed=seed))
    res = find_splitters(comm, local, config=SplitterConfig())
    return res.rounds


def iterations_experiment(repeats: int = 3, n_per_rank: int = 1 << 13) -> Series:
    """§V-A iteration-count claims.

    Expected shape: rounds track the key *width* (more precisely
    ``min(key_bits, ~2 log2 N)`` by the min-gap argument), and are
    independent of the processor count.  The paper reports 60–64 for
    64-bit floats, 25–35 for 32-bit floats, ~30 for uint64 in [0, 1e9].
    """
    n_per_rank = int(n_per_rank * bench_scale())
    series = Series(
        experiment="iterations",
        title="Histogramming iterations by key type and rank count",
        columns=["dist", "p", "n_total", "rounds_med", "rounds_min", "rounds_max"],
        params={"repeats": repeats, "n_per_rank": n_per_rank},
        notes=(
            "paper: f64 60-64, f32 25-35, u64[0,1e9] ~30 iterations; "
            "independent of P (paper N ~ 2^31; rounds grow ~1 per doubling of N)"
        ),
    )
    n_total = 16 * n_per_rank
    for dist in ["normal_f64", "normal_f32", "uniform_u64"]:
        for p in [4, 16, 64]:
            # Fixed total N across rank counts: the SV-A claim is that the
            # round count tracks key width / N, not the processor count.
            rounds = []
            for rep in range(repeats):
                out = run_spmd(p, _iteration_program, dist, max(n_total // p, 1), 500 + rep)
                rounds.append(out[0])
            series.add(
                dist=dist, p=p, n_total=n_total,
                rounds_med=int(np.median(rounds)),
                rounds_min=int(np.min(rounds)), rounds_max=int(np.max(rounds)),
            )
    return series


def table1_machine() -> Series:
    """Table I: the SuperMUC Phase 2 node specification (as a preset)."""
    machine = supermuc_phase2()
    series = Series(
        experiment="table1",
        title="Table I: SuperMUC Phase 2 single-node specification",
        columns=["item", "value"],
    )
    series.add(item="CPU", value=f"2 x {machine.node.cpu_model}")
    series.add(item="Cores/node", value=machine.node.cores)
    series.add(item="NUMA domains", value=machine.node.numa_domains)
    series.add(item="Memory", value=f"{machine.node.mem_bytes / 2**30:.0f}GB usable")
    series.add(item="Network", value=machine.network_name)
    series.add(item="Bisection BW", value=f"{machine.bisection_bandwidth / 1e12:.1f} TB/s")
    series.add(item="Compiler / MPI", value="(simulated runtime: repro.mpi)")
    return series
