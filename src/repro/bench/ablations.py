"""Ablation experiments for the design choices DESIGN.md calls out.

* ε sweep — §VI-B: "we certainly get a better scaling if we soften the
  perfect partitioning requirement as the number of histogramming
  iterations decreases".
* shared-memory windows on/off — §VI-A.1's PGAS intra-node memcpy path.
* initial-guess policy and cross-probe tightening — §III-B/V-A's
  "optimizing the initial splitter guesses".
* merge strategy inside the full sort — §V-C.
"""

from __future__ import annotations

import numpy as np

from ..core import SortConfig, SplitterConfig
from ..machine import supermuc_phase2
from .harness import repeat_sort_trials
from .results import Series

__all__ = [
    "epsilon_sweep",
    "shm_ablation",
    "guess_policy_ablation",
    "merge_strategy_ablation",
]

_P = 64
_RPN = 16
_NPR = 1 << 13


def epsilon_sweep(repeats: int = 3, epsilons=(0.0, 0.001, 0.01, 0.1)) -> Series:
    """Histogramming rounds and time versus the load-balance threshold ε."""
    machine = supermuc_phase2()
    series = Series(
        experiment="ablation_epsilon",
        title="Effect of the load-balance threshold eps on splitting",
        columns=["eps", "rounds", "splitting_s", "total_s"],
        params={"p": _P, "n_per_rank": _NPR},
        notes="paper (§VI-B): relaxing perfect partitioning reduces iterations",
    )
    for eps in epsilons:
        _, trials = repeat_sort_trials(
            _P, _NPR, repeats=repeats, warmup=0,
            algo="dash", dist="uniform_u64",
            machine=machine, ranks_per_node=_RPN,
            config=SortConfig(eps=eps),
        )
        series.add(
            eps=eps,
            rounds=int(np.median([t.rounds for t in trials])),
            splitting_s=float(np.median([t.phases["splitting"] for t in trials])),
            total_s=float(np.median([t.total for t in trials])),
        )
    return series


def shm_ablation(repeats: int = 3) -> Series:
    """Intra-node traffic through shared-memory windows vs MPI loop-back."""
    machine = supermuc_phase2()
    series = Series(
        experiment="ablation_shm",
        title="PGAS shared-memory windows on/off (intra-node memcpy path)",
        columns=["use_shm", "exchange_s", "total_s"],
        params={"p": _P, "n_per_rank": _NPR},
        notes="paper (§VI-A.1): intra-node memcpy gives significant benefits",
    )
    for use_shm in (True, False):
        _, trials = repeat_sort_trials(
            _P, _NPR, repeats=repeats, warmup=0,
            algo="dash", dist="uniform_u64",
            machine=machine, ranks_per_node=_RPN, use_shm=use_shm,
        )
        series.add(
            use_shm=use_shm,
            exchange_s=float(np.median([t.phases["exchange"] for t in trials])),
            total_s=float(np.median([t.total for t in trials])),
        )
    return series


def guess_policy_ablation(repeats: int = 3) -> Series:
    """Initial-guess policy × cross-probe tightening: convergence rounds."""
    machine = supermuc_phase2()
    series = Series(
        experiment="ablation_guess",
        title="Splitter initial guesses and cross-probe tightening",
        columns=["initial_guess", "cross_probe", "rounds", "splitting_s"],
        params={"p": _P, "n_per_rank": _NPR},
        notes="paper (§V-A): better initial guesses reduce histogram rounds",
    )
    for guess in ("minmax", "sample"):
        for cross in (False, True):
            cfg = SortConfig(
                splitter=SplitterConfig(initial_guess=guess, cross_probe=cross)
            )
            _, trials = repeat_sort_trials(
                _P, _NPR, repeats=repeats, warmup=0,
                algo="dash", dist="uniform_u64",
                machine=machine, ranks_per_node=_RPN, config=cfg,
            )
            series.add(
                initial_guess=guess, cross_probe=cross,
                rounds=int(np.median([t.rounds for t in trials])),
                splitting_s=float(np.median([t.phases["splitting"] for t in trials])),
            )
    return series


def merge_strategy_ablation(repeats: int = 3) -> Series:
    """Local-merge strategy inside the full sort (virtual merge times)."""
    machine = supermuc_phase2()
    series = Series(
        experiment="ablation_merge",
        title="Local merge strategy inside the histogram sort",
        columns=["strategy", "merge_s", "total_s"],
        params={"p": _P, "n_per_rank": _NPR},
    )
    for strategy in ("sort", "binary_tree", "tournament", "adaptive"):
        _, trials = repeat_sort_trials(
            _P, _NPR, repeats=repeats, warmup=0,
            algo="dash", dist="uniform_u64",
            machine=machine, ranks_per_node=_RPN,
            config=SortConfig(merge_strategy=strategy),
        )
        series.add(
            strategy=strategy,
            merge_s=float(np.median([t.phases["merge"] for t in trials])),
            total_s=float(np.median([t.total for t in trials])),
        )
    return series


def overlap_ablation(repeats: int = 3, n_per_rank: int = 1 << 14) -> Series:
    """§VI-E.1: 1-factor exchange with merges hidden behind communication."""
    machine = supermuc_phase2()
    series = Series(
        experiment="ablation_overlap",
        title="Overlapped exchange+merge vs plain alltoallv + merge",
        columns=["overlap", "exchange_s", "merge_s", "total_s"],
        params={"p": _P, "n_per_rank": n_per_rank},
        notes="paper (§VI-E.1): merging overlapped with 1-factor rounds "
        "'gives more time to complete a pending data transfer'",
    )
    for overlap in (False, True):
        cfg = SortConfig(merge_strategy="binary_tree", overlap_exchange=overlap)
        _, trials = repeat_sort_trials(
            _P, n_per_rank, repeats=repeats, warmup=0,
            algo="dash", dist="uniform_u64",
            machine=machine, ranks_per_node=_RPN, config=cfg,
        )
        import numpy as _np

        series.add(
            overlap=overlap,
            exchange_s=float(_np.median([t.phases["exchange"] for t in trials])),
            merge_s=float(_np.median([t.phases["merge"] for t in trials])),
            total_s=float(_np.median([t.total for t in trials])),
        )
    return series
