"""Experiment result containers: tables, JSON persistence."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

__all__ = ["Series", "format_table"]


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(columns: Sequence[str], rows: Sequence[dict]) -> str:
    """Plain-text aligned table of ``rows`` projected onto ``columns``."""
    cells = [[_fmt(r.get(c, "")) for c in columns] for r in rows]
    widths = [
        max(len(col), *(len(row[i]) for row in cells)) if cells else len(col)
        for i, col in enumerate(columns)
    ]
    header = "  ".join(c.ljust(w) for c, w in zip(columns, widths))
    sep = "  ".join("-" * w for w in widths)
    body = "\n".join("  ".join(row[i].ljust(widths[i]) for i in range(len(columns))) for row in cells)
    return "\n".join([header, sep, body]) if cells else "\n".join([header, sep])


@dataclass
class Series:
    """One experiment's output: parameterized rows, printable and saveable."""

    experiment: str
    title: str
    columns: list[str]
    rows: list[dict] = field(default_factory=list)
    params: dict = field(default_factory=dict)
    notes: str = ""

    def add(self, **row: Any) -> None:
        self.rows.append(row)

    def table(self) -> str:
        head = f"== {self.experiment}: {self.title} =="
        if self.params:
            head += "\n" + ", ".join(f"{k}={_fmt(v)}" for k, v in self.params.items())
        body = format_table(self.columns, self.rows)
        out = f"{head}\n{body}"
        if self.notes:
            out += f"\n{self.notes}"
        return out

    def save(self, directory: str | Path) -> Path:
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{self.experiment}.json"
        payload = {
            "experiment": self.experiment,
            "title": self.title,
            "params": self.params,
            "columns": self.columns,
            "rows": self.rows,
            "notes": self.notes,
        }
        path.write_text(json.dumps(payload, indent=2, default=str))
        return path

    @classmethod
    def load(cls, path: str | Path) -> "Series":
        data = json.loads(Path(path).read_text())
        return cls(
            experiment=data["experiment"],
            title=data["title"],
            columns=data["columns"],
            rows=data["rows"],
            params=data.get("params", {}),
            notes=data.get("notes", ""),
        )

    def column(self, name: str) -> list:
        return [r.get(name) for r in self.rows]
