"""Shared-memory experiments: Fig. 4 and the §VI-E.2 merge study."""

from __future__ import annotations


from ..machine import single_node
from ..model import predict_histsort
from ..smp import kway_merge_time, parallel_mergesort_time
from .results import Series

__all__ = ["fig4_shared_memory", "merge_strategy_study"]

#: Fig. 4 sweep: cores filling 1..4 NUMA domains of one SuperMUC node
FIG4_POINTS = [(7, 1), (14, 2), (21, 3), (28, 4)]
#: 5 GB of float64 keys, normally distributed (§VI-D)
FIG4_N = 5 * 2**30 // 8
#: measured per-hardware-thread yield of 2 MPI ranks per core (the paper's
#: "surprising benefit from hyperthreading with a heavy MPI stack" — smaller
#: than TBB's thread yield because of the MPI stack)
DASH_SMT_YIELD = 0.58


def _dash_on_node(cores: int, n: int) -> float:
    """Modelled DASH time on one node: 2 MPI ranks per core, binary merge."""
    machine = single_node()
    p = 2 * cores
    pred = predict_histsort(
        machine,
        n,
        p,
        ranks_per_node=p,
        rounds=40,  # float64 keys: ~2 log2(N) rounds, capped well below 64
        merge_strategy="binary_tree",
    )
    # Two ranks share each core, so each compute-bound phase (already sized
    # at n/p per rank) runs at the per-hardware-thread SMT yield; the
    # exchange is memory/interconnect-bound and does not slow down.
    compute_phases = pred.local_sort + pred.merge + pred.splitting + pred.other
    return compute_phases / DASH_SMT_YIELD + pred.exchange


def fig4_shared_memory(n: int = FIG4_N) -> Series:
    """Fig. 4: DASH vs Intel PSTL (TBB) vs OpenMP-task merge sort.

    Expected shape: TBB wins on one NUMA domain; DASH wins as soon as the
    data spans NUMA boundaries, because it moves each element across
    domains exactly once while merge sort re-touches data every pass.
    """
    machine = single_node()
    series = Series(
        experiment="fig4",
        title="Shared-memory strong scaling on one node (5 GB float64, normal)",
        columns=["cores", "numa_domains", "dash_s", "tbb_s", "openmp_s", "winner"],
        params={"n": n, "machine": machine.name},
        notes="paper: TBB ahead on 1 NUMA domain; DASH ahead on 2..4 domains",
    )
    for cores, domains in FIG4_POINTS:
        tbb = parallel_mergesort_time(
            machine, n, cores=cores, active_domains=domains, runtime="tbb", smt=2
        ).seconds
        omp = parallel_mergesort_time(
            machine, n, cores=cores, active_domains=domains, runtime="openmp", smt=2
        ).seconds
        dash = _dash_on_node(cores, n)
        winner = min(("dash", dash), ("tbb", tbb), ("openmp", omp), key=lambda x: x[1])[0]
        series.add(
            cores=cores, numa_domains=domains,
            dash_s=dash, tbb_s=tbb, openmp_s=omp, winner=winner,
        )
    return series


def merge_strategy_study(
    n: int = 4 * 2**30 // 4,
    ks: tuple[int, ...] = (4, 16, 64, 256, 1024),
    threads: tuple[int, ...] = (2, 4, 8, 14, 28),
) -> Series:
    """§VI-E.2: k-way merging vs. re-sorting on one node.

    Expected shape: with few large chunks and few threads, merging clearly
    beats a parallel sort; with many small chunks and many threads, merging
    degrades (cache-miss fan-in, bandwidth wall) and the parallel sort wins.
    """
    machine = single_node()
    series = Series(
        experiment="merge_study",
        title="k-way merge strategies vs parallel re-sort (one node, int32)",
        columns=["k", "threads", "binary_tree_s", "tournament_s", "sort_s", "winner"],
        params={"n": n},
        notes="paper: merging wins for few large chunks; parallel sort wins "
        "for many small chunks with many threads",
    )
    for k in ks:
        for t in threads:
            tree = kway_merge_time(machine, n, k, threads=t, strategy="binary_tree", smt=2).seconds
            tourney = kway_merge_time(machine, n, k, threads=t, strategy="tournament", smt=2).seconds
            sort = kway_merge_time(machine, n, k, threads=t, strategy="sort", smt=2).seconds
            winner = min(
                ("binary_tree", tree), ("tournament", tourney), ("sort", sort),
                key=lambda x: x[1],
            )[0]
            series.add(
                k=k, threads=t, binary_tree_s=tree, tournament_s=tourney,
                sort_s=sort, winner=winner,
            )
    return series
