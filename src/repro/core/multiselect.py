"""Splitter determination by iterative histogramming (Algorithms 2 + 3).

This is the paper's primary contribution: a *k-way multiselect* that finds
all ``P-1`` splitters at once by bisecting the key space, with one
``ALLREDUCE`` of the global histogram per round, **no sampling**, and no
assumptions on key distribution, rank count, or partition density.

Algorithm sketch (per round, every rank):

1. probe each still-active splitter at the midpoint of its bracket
   ``(lo_i, hi_i]``;
2. local histogram of the probe vector by binary search on the locally
   sorted partition (two ``np.searchsorted`` calls);
3. ``ALLREDUCE`` the local ``(l, u)`` vectors into the global ``(L, U)``;
4. VALIDATE_SPLITTER: accept splitter ``i`` when a left-count in
   ``[L_i, U_i]`` can meet the target rank ``t_i`` within tolerance,
   otherwise move ``lo_i`` or ``hi_i`` to the probe.

Ties (duplicate keys) need no key uniquification here: acceptance uses the
achievable-interval test and the exchange (Algorithm 4) later splits the
duplicate run by rank order.  The classic ``(key, rank, index)`` transform
is still available in :mod:`repro.core.keys`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..mpi.ops import ReduceOp
from ..seq.search import local_histogram
from .config import SplitterConfig

if TYPE_CHECKING:  # pragma: no cover
    from ..mpi import Comm

__all__ = ["SplitterResult", "SplitterConvergenceError", "find_splitters"]

#: elementwise (min, max) fold over (lo, hi) tuples
_MINMAX = ReduceOp("minmax", lambda a, b: (min(a[0], b[0]), max(a[1], b[1])))


class SplitterConvergenceError(RuntimeError):
    """Raised when histogramming exceeds its round budget."""


@dataclass(frozen=True)
class SplitterResult:
    """Outcome of the splitter determination.

    ``values[i]`` is the key value of boundary ``i`` (between output ranks
    ``i`` and ``i+1``); ``realized_ranks[i]`` the exact number of keys the
    exchange will place left of that boundary (within tolerance of
    ``targets[i]``); ``lower``/``upper`` the boundary's global histogram
    ``(L, U)``.
    """

    values: np.ndarray
    realized_ranks: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    targets: np.ndarray
    capacities: np.ndarray
    total: int
    tolerance: int
    rounds: int
    probes_total: int

    @property
    def nboundaries(self) -> int:
        return int(self.values.size)


class _ProbeArithmetic:
    """Dtype-aware midpoint/step logic of the bisection."""

    def __init__(self, dtype: np.dtype):
        self.dtype = np.dtype(dtype)
        if self.dtype.kind not in "iuf":
            raise TypeError(
                f"histogram splitting requires numeric keys, got dtype {self.dtype}"
            )
        self.is_int = self.dtype.kind in "iu"

    def midpoint(self, lo, hi):
        """A probe in the half-open interval ``(lo, hi]`` (== hi at collapse)."""
        if self.is_int:
            lo_i, hi_i = int(lo), int(hi)
            if hi_i <= lo_i:
                return self.dtype.type(hi_i)
            d = hi_i - lo_i
            return self.dtype.type(lo_i + d // 2 + (d & 1))
        if not (lo < hi):
            return self.dtype.type(hi)
        raw = self.dtype.type(float(lo) + (float(hi) - float(lo)) / 2.0)
        step = np.nextafter(self.dtype.type(lo), self.dtype.type(hi))
        if raw <= lo:
            raw = step
        if raw > hi:
            raw = self.dtype.type(hi)
        return raw


def _regular_sample(local_sorted: np.ndarray, count: int) -> np.ndarray:
    """``count`` regularly spaced keys from a sorted partition."""
    n = local_sorted.size
    if n == 0 or count <= 0:
        return local_sorted[:0]
    idx = np.linspace(0, n - 1, num=min(count, n)).astype(np.int64)
    return local_sorted[idx]


def find_splitters(
    comm: "Comm",
    local_sorted: np.ndarray,
    capacities: Sequence[int] | None = None,
    eps: float = 0.0,
    config: SplitterConfig | None = None,
) -> SplitterResult:
    """Determine the ``P-1`` output-boundary splitters (Algorithm 3).

    Parameters
    ----------
    comm:
        The communicator; every rank must call collectively.
    local_sorted:
        This rank's locally sorted keys (1-D, any numeric dtype).  Empty
        partitions are fine (sparse inputs, §V-A).
    capacities:
        Target output sizes per rank.  Defaults to the current input sizes
        (perfect partitioning of the existing layout).  Must sum to the
        global element count.
    eps:
        Load-balance threshold of Definition 1; the per-boundary tolerance
        is ``floor(eps * N / (2 P))`` elements.
    """
    if config is None:
        config = SplitterConfig()
    local_sorted = np.asarray(local_sorted)
    if local_sorted.ndim != 1:
        raise ValueError("local partition must be 1-D")
    p = comm.size
    n_local = int(local_sorted.size)
    compute = comm.cost.compute

    sizes = np.asarray(comm.allgather(n_local), dtype=np.int64)
    if capacities is None:
        caps = sizes.copy()
    else:
        caps = np.asarray(list(capacities), dtype=np.int64)
        if caps.size != p or np.any(caps < 0):
            raise ValueError("capacities must be P non-negative sizes")
        if caps.sum() != sizes.sum():
            raise ValueError(
                f"capacities sum to {caps.sum()} but the input holds {sizes.sum()} keys"
            )
    total = int(sizes.sum())
    boundaries = p - 1
    targets = np.cumsum(caps)[:-1].astype(np.int64) if p > 1 else np.zeros(0, np.int64)
    tol = int(np.floor(eps * total / (2 * p))) if total else 0

    dtype = local_sorted.dtype
    arith = _ProbeArithmetic(dtype)

    if total == 0 or boundaries == 0:
        zeros = np.zeros(boundaries, dtype=np.int64)
        return SplitterResult(
            values=np.zeros(boundaries, dtype=dtype),
            realized_ranks=targets.copy(),
            lower=zeros,
            upper=zeros.copy(),
            targets=targets,
            capacities=caps,
            total=total,
            tolerance=tol,
            rounds=0,
            probes_total=0,
        )

    # Global (min, max) — one reduction (Algorithm 3 line 3).  Empty ranks
    # contribute identity sentinels.
    if n_local:
        local_min, local_max = local_sorted[0], local_sorted[-1]
    else:
        info = np.iinfo(dtype) if arith.is_int else np.finfo(dtype)
        local_min, local_max = dtype.type(info.max), dtype.type(info.min)
    gmin, gmax = comm.allreduce((local_min, local_max), op=_MINMAX)
    # Global bounds of the extreme keys.  Targets inside the global-minimum
    # duplicate run can only be met by the splitter value gmin itself, which
    # the half-open probe interval (lo, hi] would never test — resolve them
    # up front; targets at N resolve to gmax, whose true lower bound the
    # exchange needs for its rank-order fill.
    u_gmin, l_gmax = (
        int(v)
        for v in comm.allreduce(
            np.array(
                [
                    np.searchsorted(local_sorted, gmin, side="right"),
                    np.searchsorted(local_sorted, gmax, side="left"),
                ],
                dtype=np.int64,
            )
        )
    )
    comm.compute(compute.call_overhead)

    lo = [dtype.type(gmin)] * boundaries
    hi = [dtype.type(gmax)] * boundaries
    values = np.empty(boundaries, dtype=dtype)
    lower = np.zeros(boundaries, dtype=np.int64)
    upper = np.zeros(boundaries, dtype=np.int64)
    realized = np.zeros(boundaries, dtype=np.int64)
    active = np.ones(boundaries, dtype=bool)

    for i in range(boundaries):
        if targets[i] - tol <= u_gmin:
            # Covered by the minimum key's run (includes empty-output ranks).
            values[i], realized[i] = dtype.type(gmin), int(min(targets[i], u_gmin))
            lower[i], upper[i] = 0, u_gmin
            active[i] = False
        elif targets[i] + tol >= total:
            values[i] = dtype.type(gmax)
            realized[i] = int(np.clip(targets[i], l_gmax, total))
            lower[i], upper[i] = l_gmax, total
            active[i] = False

    # Optional sampled initial probes (§III-B "optimizing initial guesses").
    first_probes: np.ndarray | None = None
    if config.initial_guess == "sample" and active.any():
        sample = _regular_sample(local_sorted, config.sample_factor)
        gathered = comm.allgather(sample)
        flat = np.sort(np.concatenate(gathered)) if gathered else local_sorted[:0]
        comm.compute(compute.sort(flat.size))
        if flat.size:
            frac = targets[active].astype(np.float64) / total
            idx = np.clip((frac * (flat.size - 1)).round().astype(np.int64), 0, flat.size - 1)
            first_probes = flat[idx]

    rounds = 0
    probes_total = 0
    tracer = comm.tracer
    while active.any():
        t_round = comm.clock
        rounds += 1
        if rounds > config.max_rounds:
            raise SplitterConvergenceError(
                f"splitters did not converge within {config.max_rounds} rounds "
                f"({int(active.sum())} of {boundaries} boundaries still open)"
            )
        act_idx = np.flatnonzero(active)
        m = act_idx.size
        if rounds == 1 and first_probes is not None:
            probes = np.clip(first_probes, gmin, gmax).astype(dtype)
        else:
            probes = np.array(
                [arith.midpoint(lo[i], hi[i]) for i in act_idx], dtype=dtype
            )
        probes_total += m

        # Local histogram by binary search (Algorithm 3 line 7) ...
        l_loc, u_loc = local_histogram(local_sorted, probes)
        comm.compute(compute.search(2 * m, max(n_local, 1)))
        # ... and the global histogram via a single ALLREDUCE (line 8).
        glob = comm.allreduce(np.concatenate([l_loc, u_loc]))
        L, U = glob[:m], glob[m:]

        t = targets[act_idx]
        # VALIDATE_SPLITTER (Algorithm 2) with the achievable-interval test:
        # some left-count in [L, U] lies within tol of the target.
        ok = (L <= t + tol) & (U >= t - tol)
        too_high = ~ok & (L > t + tol)   # splitter value too large
        too_low = ~ok & ~too_high        # upper bound below target: too small

        for j in np.flatnonzero(ok):
            i = int(act_idx[j])
            values[i] = probes[j]
            lower[i], upper[i] = int(L[j]), int(U[j])
            realized[i] = int(np.clip(t[j], L[j], U[j]))
            active[i] = False
        for j in np.flatnonzero(too_high):
            hi[int(act_idx[j])] = probes[j]
        for j in np.flatnonzero(too_low):
            lo[int(act_idx[j])] = probes[j]

        if config.cross_probe and active.any():
            _cross_probe_tighten(lo, hi, probes, L, U, targets, tol, active)
        comm.compute(compute.call_overhead + 2.0e-9 * m)
        tracer.record(
            "histogram_round",
            t_round,
            round=rounds,
            probes=int(m),
            open=int(active.sum()),
        )

    return SplitterResult(
        values=values,
        realized_ranks=realized,
        lower=lower,
        upper=upper,
        targets=targets,
        capacities=caps,
        total=total,
        tolerance=tol,
        rounds=rounds,
        probes_total=probes_total,
    )


def _cross_probe_tighten(
    lo: list,
    hi: list,
    probes: np.ndarray,
    L: np.ndarray,
    U: np.ndarray,
    targets: np.ndarray,
    tol: int,
    active: np.ndarray,
) -> None:
    """Tighten every open bracket with *all* probe outcomes of this round.

    Histogram bounds are monotone in the probe value, so after sorting the
    probes, the largest probe with ``U < t - tol`` is a valid new ``lo`` and
    the smallest probe with ``L > t + tol`` a valid new ``hi`` for target
    ``t`` — regardless of which splitter the probe belonged to.
    """
    order = np.argsort(probes, kind="stable")
    pv = probes[order]
    Ls = L[order]
    Us = U[order]
    for i in np.flatnonzero(active):
        t = targets[i]
        k = int(np.searchsorted(Us, t - tol, side="left")) - 1
        if k >= 0 and pv[k] > lo[i]:
            lo[i] = pv[k]
        j = int(np.searchsorted(Ls, t + tol, side="right"))
        if j < pv.size and pv[j] < hi[i]:
            hi[i] = pv[j]
