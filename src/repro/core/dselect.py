"""Distributed selection — Algorithm 1 (DSELECT) of the paper.

Finds the k-th order statistic of a distributed set without moving data:
each round every rank contributes its local median, the *weighted median*
of those medians (weights = partition sizes, Definition 2) becomes the
pivot, and a global 3-way partition count decides which side holds rank
``k``.  The weighted-median pivot discards at least one quarter of the
working set per round, giving ``O(log P)`` rounds (§IV-B).

This is the building block the sort generalizes into the multiselect, and
it is exposed on its own as :func:`repro.nth_element` (the paper's
``dash::nth_element``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..mpi.ops import SUM
from ..seq.select import quickselect
from ..seq.wmedian import weighted_median

if TYPE_CHECKING:  # pragma: no cover
    from ..mpi import Comm

__all__ = ["DSelectResult", "dselect"]

#: below this global size the remainder is gathered and solved sequentially
_SEQUENTIAL_CUTOFF = 4096


@dataclass(frozen=True)
class DSelectResult:
    """Value of the k-th order statistic plus convergence diagnostics."""

    value: object
    rounds: int
    gathered_fallback: bool


def dselect(comm: "Comm", local: np.ndarray, k: int, *, cutoff: int = _SEQUENTIAL_CUTOFF) -> DSelectResult:
    """The k-th smallest key (0-based) of the distributed set.

    Every rank must call collectively with its local partition (unsorted is
    fine; empty partitions are fine).  All ranks receive the same result.
    """
    local = np.asarray(local)
    if local.ndim != 1:
        raise ValueError("local partition must be 1-D")
    compute = comm.cost.compute

    total = int(comm.allreduce(int(local.size)))
    if not 0 <= k < total:
        raise IndexError(f"k={k} out of range [0, {total})")

    work = local
    remaining = total
    rounds = 0
    while True:
        if remaining <= max(cutoff, 1) or remaining <= comm.size:
            # Communication would dominate: gather the residue and finish
            # sequentially on rank 0 (§IV-B).
            gathered = comm.gather(work, root=0)
            if comm.rank == 0:
                rest = np.concatenate([g for g in gathered if g.size])
                comm.compute(compute.select(rest.size))
                value = quickselect(rest, k)
            else:
                value = None
            value = comm.bcast(value, root=0)
            return DSelectResult(value=value, rounds=rounds, gathered_fallback=True)

        rounds += 1
        n_i = int(work.size)
        if n_i:
            median = quickselect(work, n_i // 2)
            comm.compute(compute.select(n_i))
        else:
            median = None
        pairs = comm.allgather((median, n_i))
        meds = np.array([m for m, n in pairs if n > 0])
        weights = np.array([n for m, n in pairs if n > 0], dtype=np.int64)
        pivot = weighted_median(meds, weights)
        comm.compute(compute.select(comm.size))

        l_i = int(np.count_nonzero(work < pivot))
        u_i = int(np.count_nonzero(work <= pivot))
        comm.compute(compute.partition(n_i))
        L, U = comm.allreduce((l_i, u_i), op=SUM)

        if L <= k < U:
            return DSelectResult(value=pivot, rounds=rounds, gathered_fallback=False)
        if k < L:
            work = work[work < pivot]
            remaining = L
        else:
            work = work[work > pivot]
            k -= U
            remaining -= U
