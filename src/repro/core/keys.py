"""Key uniquification — the ``(key, rank, index)`` transform of §V-A.

The paper makes duplicate keys globally unique by extending each key with
its origin rank and local index, which guarantees histogram convergence on
duplicate-heavy inputs at the price of wider keys.  Our splitter engine does
not *need* this (its acceptance test plus Algorithm 4's rank-order fill
handle ties exactly), but the transform is provided for fidelity and as an
option: it packs the triple into a single ``uint64``

    [ key | rank | index ]

when the three bit widths fit, so the packed keys still sort with a single
``np.sort`` and compare correctly (key-major order).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PackError", "PackSpec", "pack_keys", "unpack_keys", "plan_packing"]


class PackError(ValueError):
    """Keys/ranks/indices do not fit into 64 bits."""


@dataclass(frozen=True)
class PackSpec:
    """Bit layout of a packed composite key."""

    key_bits: int
    rank_bits: int
    index_bits: int

    def __post_init__(self) -> None:
        if self.key_bits + self.rank_bits + self.index_bits > 64:
            raise PackError(
                f"packed layout needs {self.key_bits}+{self.rank_bits}+"
                f"{self.index_bits} > 64 bits"
            )

    @property
    def shift_key(self) -> int:
        return self.rank_bits + self.index_bits

    @property
    def shift_rank(self) -> int:
        return self.index_bits


def _bits_for(value: int) -> int:
    return max(1, int(value).bit_length())


def plan_packing(max_key: int, nranks: int, max_local: int) -> PackSpec:
    """Choose a bit layout for the given key range / rank count / sizes."""
    if max_key < 0:
        raise PackError("packing requires non-negative keys")
    return PackSpec(
        key_bits=_bits_for(max_key),
        rank_bits=_bits_for(max(nranks - 1, 0)),
        index_bits=_bits_for(max(max_local - 1, 0)),
    )


def pack_keys(keys: np.ndarray, rank: int, spec: PackSpec) -> np.ndarray:
    """Pack ``keys`` (unsigned ints) into unique ``uint64`` composites."""
    keys = np.asarray(keys)
    if keys.dtype.kind not in "iu":
        raise PackError(f"can only pack integer keys, got dtype {keys.dtype}")
    if keys.size and int(keys.min()) < 0:
        raise PackError("can only pack non-negative keys")
    if keys.size and _bits_for(int(keys.max())) > spec.key_bits:
        raise PackError("key exceeds the planned key_bits")
    if keys.size and _bits_for(keys.size - 1) > spec.index_bits:
        raise PackError("local index exceeds the planned index_bits")
    if _bits_for(rank) > spec.rank_bits and rank > 0:
        raise PackError("rank exceeds the planned rank_bits")
    k = keys.astype(np.uint64)
    idx = np.arange(keys.size, dtype=np.uint64)
    return (
        (k << np.uint64(spec.shift_key))
        | (np.uint64(rank) << np.uint64(spec.shift_rank))
        | idx
    )


def unpack_keys(packed: np.ndarray, spec: PackSpec, dtype=np.uint64) -> np.ndarray:
    """Recover the original keys from packed composites."""
    packed = np.asarray(packed, dtype=np.uint64)
    return (packed >> np.uint64(spec.shift_key)).astype(dtype)
