"""The four-superstep distributed histogram sort (§V).

1. **Local sort** — each rank sorts its partition.
2. **Splitting** — :func:`repro.core.multiselect.find_splitters`.
3. **Data exchange** — :func:`repro.core.exchange.exchange` (one ALLTOALLV).
4. **Local merge** — :func:`repro.core.merge.local_merge`.

Virtual-time phase boundaries are recorded per rank, which is the raw
material of the Fig. 2(b)/3(b) phase breakdowns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..trace.timer import PhaseTimer
from .config import SortConfig
from .exchange import build_exchange_plan, exchange
from .keys import pack_keys, plan_packing, unpack_keys
from .merge import local_merge
from .multiselect import SplitterResult, find_splitters

if TYPE_CHECKING:  # pragma: no cover
    from ..mpi import Comm

__all__ = ["SortResult", "histogram_sort"]

#: canonical phase names, in execution order
PHASES = ("local_sort", "splitting", "exchange", "merge", "other")


@dataclass(frozen=True)
class SortResult:
    """Output partition plus per-rank diagnostics of one sort run."""

    output: np.ndarray
    phases: dict[str, float]
    splitters: SplitterResult
    plan_bytes: int
    exchanged_bytes: int

    @property
    def rounds(self) -> int:
        """Histogramming iterations taken by the splitting phase."""
        return self.splitters.rounds

    @property
    def time(self) -> float:
        return float(sum(self.phases.values()))


def histogram_sort(
    comm: "Comm",
    local: np.ndarray,
    config: SortConfig | None = None,
    capacities: Sequence[int] | None = None,
) -> SortResult:
    """Sort a distributed array; collective over ``comm``.

    Returns this rank's sorted output partition of exactly the requested
    capacity (input size by default) when ``config.eps == 0``, plus phase
    timings in virtual seconds.
    """
    if config is None:
        config = SortConfig()
    if config.resilient:
        from .resilient import resilient_sort

        return resilient_sort(comm, local, config, capacities)
    local = np.asarray(local)
    if local.ndim != 1:
        raise ValueError("local partition must be 1-D")
    if config.trace:
        comm.ensure_tracing()
    tracer = comm.tracer
    t_begin = comm.clock
    compute = comm.cost.compute
    timer = PhaseTimer(comm)

    work = local
    spec = None
    if config.uniquify:
        max_key = int(work.max()) if work.size else 0
        gmax_key, gmax_n = comm.allreduce(
            (max_key, int(work.size)),
            op=_MAXMAX,
        )
        spec = plan_packing(gmax_key, comm.size, max(gmax_n, 1))
        work = pack_keys(work, comm.rank, spec)
        comm.compute(compute.partition(work.size))

    # Superstep 1: local sort.
    work = np.sort(work, kind="stable")
    comm.compute(compute.sort(work.size, work.dtype.itemsize))
    timer.mark("local_sort")

    # Superstep 2: splitter determination.
    splitters = find_splitters(
        comm, work, capacities=capacities, eps=config.eps, config=config.splitter
    )
    timer.mark("splitting")

    # Superstep 3: single ALL-TO-ALLV data exchange.
    plan = build_exchange_plan(comm, work, splitters)
    timer.mark("other")
    if config.overlap_exchange:
        # §VI-E.1: 1-factor point-to-point rounds with merges hidden
        # behind communication; supersteps 3 and 4 fuse.
        from .overlap import exchange_merge_overlap

        merged = exchange_merge_overlap(comm, work, plan).output
        timer.mark("exchange")
    else:
        chunks = exchange(comm, work, plan)
        timer.mark("exchange")

        # Superstep 4: local merge.
        merged = local_merge(comm, chunks, strategy=config.merge_strategy)
    if spec is not None:
        merged = unpack_keys(merged, spec, dtype=local.dtype)
        comm.compute(compute.partition(merged.size))
    timer.mark("merge")

    phases = {name: timer.phases.get(name, 0.0) for name in PHASES}
    tracer.record(
        "histogram_sort",
        t_begin,
        rounds=splitters.rounds,
        n=int(local.size),
        overlap=bool(config.overlap_exchange),
    )
    itemsize = int(work.dtype.itemsize)
    return SortResult(
        output=merged,
        phases=phases,
        splitters=splitters,
        plan_bytes=plan.elements_sent * itemsize,
        exchanged_bytes=plan.elements_received * itemsize,
    )


from ..mpi.ops import ReduceOp  # noqa: E402  (local import to avoid cycle noise)

_MAXMAX = ReduceOp("maxmax", lambda a, b: (max(a[0], b[0]), max(a[1], b[1])))
