"""Tuned ALL-TO-ALLV with communication/merge overlap (§VI-E.1).

The paper's discussion section sketches the optimisation its authors were
studying for a follow-up: replace the monolithic ``MPI_Alltoallv`` + final
merge with explicit point-to-point rounds in a **1-factor schedule** —
every round pairs all ranks into disjoint partners — and merge chunks as
soon as two are available, overlapping the merge with the next round's
transfer.

:func:`exchange_merge_overlap` implements exactly that on the runtime: the
real chunks travel through ``sendrecv``; the pairwise merges execute for
real; and the merge *cost* is charged only to the extent it does not hide
behind communication (a per-round overlap budget equal to that round's
communication time).  The ablation bench compares it against the plain
exchange + merge path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..mpi.tags import OVERLAP_ROUND_BASE
from ..seq.kmerge import merge_two_sorted
from .exchange import ExchangePlan

if TYPE_CHECKING:  # pragma: no cover
    from ..mpi import Comm

__all__ = ["OverlapResult", "one_factor_partner", "exchange_merge_overlap"]


@dataclass(frozen=True)
class OverlapResult:
    """Merged output plus overlap accounting."""

    output: np.ndarray
    rounds: int
    merge_cost_total: float    #: modelled merge work generated
    merge_cost_hidden: float   #: portion hidden behind communication

    @property
    def overlap_ratio(self) -> float:
        if self.merge_cost_total <= 0:
            return 1.0
        return self.merge_cost_hidden / self.merge_cost_total


def one_factor_partner(rank: int, p: int, round_: int) -> int:
    """Partner of ``rank`` in round ``round_`` of a 1-factor schedule.

    For even ``p`` this is the classic 1-factorization of K_p on p-1 rounds
    (every rank busy every round); odd ``p`` runs p rounds with one idle
    rank per round (partner == rank means idle).
    """
    if p <= 1:
        return rank
    if p % 2 == 0:
        # Rank p-1 is the pivot; the others rotate (standard construction).
        if rank == p - 1:
            return round_ % (p - 1)
        if round_ % (p - 1) == rank:
            return p - 1
        return (2 * (round_ % (p - 1)) - rank) % (p - 1)
    idle = round_ % p
    if rank == idle:
        return rank
    return (2 * (round_ % p) - rank) % p


def exchange_merge_overlap(
    comm: "Comm", local_sorted: np.ndarray, plan: ExchangePlan
) -> OverlapResult:
    """Exchange + merge with per-round overlap; collective over ``comm``.

    Produces the same output partition as
    ``local_merge(exchange(...), "binary_tree")`` but pipelines pairwise
    merges behind the 1-factor communication rounds.
    """
    local_sorted = np.asarray(local_sorted)
    p = comm.size
    compute = comm.cost.compute
    chunks = [
        local_sorted[plan.cuts[d] : plan.cuts[d + 1]] for d in range(p)
    ]
    acc = chunks[comm.rank].copy()

    nrounds = (p - 1) if p % 2 == 0 else p
    merge_total = 0.0
    merge_hidden = 0.0
    debt = 0.0  # merge work not yet paid for nor hidden
    tracer = comm.tracer
    # Deliberate O(p)-round pairwise schedule (paper §VI-E.1): the whole
    # point of this module is pipelining merges behind per-round
    # transfers, which a single alltoallv cannot express.
    for r in range(nrounds):  # spmd: ignore[HANDROLLED-COLLECTIVE]
        partner = one_factor_partner(comm.rank, p, r)
        if partner == comm.rank:
            continue  # idle round (odd p)
        t_round = comm.clock
        t0 = comm.clock
        incoming = comm.sendrecv(chunks[partner], partner, tag=OVERLAP_ROUND_BASE + r)
        comm_window = max(comm.clock - t0, 0.0)

        # The merge issued in the *previous* round hides behind this
        # round's transfer; whatever exceeds the window is paid now.
        hidden = min(debt, comm_window)
        merge_hidden += hidden
        leftover = debt - hidden
        if leftover > 0:
            comm.compute(leftover)
        # Issue this round's merge (executed for real, charged as debt).
        acc = merge_two_sorted(acc, incoming)
        cost = compute.merge_pass(acc.size)
        merge_total += cost
        debt = cost
        tracer.record("overlap_round", t_round, round=r, partner=partner)
    if debt > 0:
        comm.compute(debt)  # the last merge has nothing to hide behind

    expected = plan.elements_received
    if acc.size != expected:
        raise AssertionError(
            f"rank {comm.rank}: overlap exchange produced {acc.size} "
            f"elements, planned {expected}"
        )
    return OverlapResult(
        output=acc,
        rounds=nrounds,
        merge_cost_total=merge_total,
        merge_cost_hidden=merge_hidden,
    )
