"""Public API: ``sort``, ``nth_element``, ``find_splitters``.

These mirror the paper's STL-like interface (``std::sort`` compatible entry
point, ``dash::nth_element``).  All are collective: every rank of the
communicator must call with its local partition.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from .config import SortConfig, SplitterConfig
from .dselect import dselect
from .histsort import SortResult, histogram_sort
from .multiselect import SplitterResult
from .multiselect import find_splitters as _find_splitters

if TYPE_CHECKING:  # pragma: no cover
    from ..mpi import Comm

__all__ = ["sort", "sorted_result", "nth_element", "find_splitters"]


def sort(
    comm: "Comm",
    local: np.ndarray,
    *,
    eps: float = 0.0,
    config: SortConfig | None = None,
    capacities: Sequence[int] | None = None,
) -> np.ndarray:
    """Sort a distributed array; returns this rank's output partition.

    The output satisfies the §II contract: each partition sorted, partition
    boundaries globally ordered, the whole a permutation of the input, and
    each rank holding its requested capacity within ``eps`` slack
    (``eps=0``: *perfect partitioning*, exactly the input sizes).

    >>> from repro.mpi import run_spmd
    >>> import numpy as np, repro
    >>> def program(comm):
    ...     rng = np.random.default_rng(comm.rank)
    ...     return repro.sort(comm, rng.integers(0, 10**9, 1000))
    >>> parts = run_spmd(4, program)
    """
    if config is None:
        config = SortConfig(eps=eps)
    elif eps:
        config = config.with_(eps=eps)
    return histogram_sort(comm, local, config=config, capacities=capacities).output


def sorted_result(
    comm: "Comm",
    local: np.ndarray,
    *,
    config: SortConfig | None = None,
    capacities: Sequence[int] | None = None,
) -> SortResult:
    """Like :func:`sort` but returns the full :class:`SortResult` diagnostics."""
    return histogram_sort(comm, local, config=config, capacities=capacities)


def nth_element(comm: "Comm", local: np.ndarray, n: int):
    """Value of the globally n-th smallest key (0-based); ``dash::nth_element``.

    Uses distributed selection (Algorithm 1); no data moves.
    """
    return dselect(comm, local, n).value


def find_splitters(
    comm: "Comm",
    local_sorted: np.ndarray,
    capacities: Sequence[int] | None = None,
    eps: float = 0.0,
    config: SplitterConfig | None = None,
) -> SplitterResult:
    """Splitter determination only (Algorithm 3); see the module docs."""
    return _find_splitters(comm, local_sorted, capacities=capacities, eps=eps, config=config)
