"""Public API: ``sort``, ``nth_element``, ``percentile``, ``top_k``.

These mirror the paper's STL-like interface (``std::sort`` compatible entry
point, ``dash::nth_element``) plus the telemetry-query conveniences built
on distributed selection.  All are collective: every rank of the
communicator must call with its local partition.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Sequence

import numpy as np

from .config import SortConfig, SplitterConfig
from .dselect import dselect
from .histsort import SortResult, histogram_sort
from .multiselect import SplitterResult
from .multiselect import find_splitters as _find_splitters

if TYPE_CHECKING:  # pragma: no cover
    from ..mpi import Comm
    from ..tune.cache import PlanCache
    from ..tune.feedback import FeedbackRecord
    from ..tune.fingerprint import WorkloadFingerprint
    from ..tune.planner import SortPlan

__all__ = [
    "AutoSortResult",
    "autosort",
    "sort",
    "sorted_result",
    "nth_element",
    "percentile",
    "top_k",
    "find_splitters",
]


def sort(
    comm: "Comm",
    local: np.ndarray,
    *,
    eps: float = 0.0,
    config: SortConfig | None = None,
    capacities: Sequence[int] | None = None,
) -> np.ndarray:
    """Sort a distributed array; returns this rank's output partition.

    The output satisfies the §II contract: each partition sorted, partition
    boundaries globally ordered, the whole a permutation of the input, and
    each rank holding its requested capacity within ``eps`` slack
    (``eps=0``: *perfect partitioning*, exactly the input sizes).

    >>> from repro.mpi import run_spmd
    >>> import numpy as np, repro
    >>> def program(comm):
    ...     rng = np.random.default_rng(comm.rank)
    ...     return repro.sort(comm, rng.integers(0, 10**9, 1000))
    >>> parts = run_spmd(4, program)
    """
    if config is None:
        config = SortConfig(eps=eps)
    elif eps:
        config = config.with_(eps=eps)
    return histogram_sort(comm, local, config=config, capacities=capacities).output


def sorted_result(
    comm: "Comm",
    local: np.ndarray,
    *,
    config: SortConfig | None = None,
    capacities: Sequence[int] | None = None,
) -> SortResult:
    """Like :func:`sort` but returns the full :class:`SortResult` diagnostics."""
    return histogram_sort(comm, local, config=config, capacities=capacities)


@dataclass(frozen=True)
class AutoSortResult:
    """One tuned sort: the output plus the tuning decision that shaped it.

    ``result`` is a :class:`SortResult` for the core algorithm or a
    :class:`~repro.baselines.BaselineResult` when the plan picked a
    baseline; both carry ``output`` and per-phase virtual times.
    """

    result: Any
    plan: "SortPlan"
    fingerprint: "WorkloadFingerprint"
    cache_hit: bool
    feedback: "FeedbackRecord | None"

    @property
    def output(self) -> np.ndarray:
        return self.result.output


def autosort(
    comm: "Comm",
    local: np.ndarray,
    *,
    eps: float = 0.0,
    cache: "PlanCache | None" = None,
    seed: int = 0,
    dry_runs: bool = True,
    feedback: bool = True,
) -> AutoSortResult:
    """Sort a distributed array with an auto-tuned plan; collective.

    The full plan lifecycle in one call: **fingerprint** the workload
    (cheap sample statistics + one allreduce), **consult** the plan cache
    (a warm hit performs zero planning dry runs), **plan** on a miss
    (closed-form scoring + virtual-clock dry runs on rank 0, the decision
    broadcast to all ranks), **run** the chosen algorithm, and **record
    feedback** (observed vs predicted makespan) so drifting plans demote
    themselves.  With ``cache=None`` every call replans and nothing
    persists.

    When tracing is active, the chosen ``plan_id`` is stamped into the
    trace metadata so ``python -m repro.trace.report`` attributes the run
    to the plan that shaped it.
    """
    from ..baselines import hss_sort, sample_sort
    from ..tune.feedback import record_feedback
    from ..tune.fingerprint import fingerprint_collective
    from ..tune.planner import SortPlan, plan_sort
    from ..mpi.ops import MAX

    local = np.asarray(local)
    fp = fingerprint_collective(comm, local)
    if comm.rank == 0:
        key = fp.bucket_key()
        plan = cache.get(key) if cache is not None else None
        cache_hit = plan is not None
        if plan is None:
            plan = plan_sort(
                fp, comm.cost.machine, eps=eps, seed=seed, dry_runs=dry_runs
            )
            if cache is not None:
                cache.put(key, plan)
        payload = (plan.to_dict(), cache_hit)
    else:
        payload = None
    plan_dict, cache_hit = comm.bcast(payload)
    plan = SortPlan.from_dict(plan_dict)

    recorder = comm.trace_recorder
    if recorder is not None and comm.rank == 0:
        recorder.metadata.update(
            plan_id=plan.plan_id, plan_algo=plan.algo, plan_label=plan.label,
            plan_cache_hit=bool(cache_hit),
        )

    if plan.algo == "dash":
        result: Any = histogram_sort(comm, local, config=plan.config)
    elif plan.algo == "hss":
        # interval sampling: same variant the planner dry-ran
        result = hss_sort(comm, local, eps=eps, sampling="interval", seed=seed)
    elif plan.algo == "sample_sort":
        result = sample_sort(comm, local)
    else:
        raise ValueError(f"plan names unknown algorithm {plan.algo!r}")

    inner = getattr(result, "result", result)  # unwrap resilient results
    observed = comm.allreduce(float(sum(inner.phases.values())), op=MAX)
    record = None
    if feedback:
        if comm.rank == 0:
            record = record_feedback(cache, plan, observed)
        record = comm.bcast(record)
    return AutoSortResult(
        result=result, plan=plan, fingerprint=fp, cache_hit=bool(cache_hit),
        feedback=record,
    )


def nth_element(comm: "Comm", local: np.ndarray, n: int):
    """Value of the globally n-th smallest key (0-based); ``dash::nth_element``.

    Uses distributed selection (Algorithm 1); no data moves.
    """
    return dselect(comm, local, n).value


def percentile(
    comm: "Comm", local: np.ndarray, pcts: float | Sequence[float]
) -> Any:
    """Nearest-rank percentile(s) of the distributed set; no data moves.

    ``pcts`` may be one percentile or a sequence, each in ``[0, 100]``;
    a sequence returns ``{pct: value}``.  The nearest-rank definition
    maps ``pct`` to global position ``ceil(pct/100 * n) - 1`` clamped
    into ``[0, n-1]``, so ``pct=100`` yields the maximum (never an
    out-of-range position) and ``pct=0`` the minimum.  Each percentile
    costs one :func:`nth_element` — O(log n) ALLREDUCE rounds, zero
    record movement.
    """
    scalar = np.isscalar(pcts)
    wanted = (float(pcts),) if scalar else tuple(float(p) for p in pcts)
    for pct in wanted:
        if not 0.0 <= pct <= 100.0:
            raise ValueError(f"percentile {pct} outside [0, 100]")
    local = np.asarray(local)
    total = int(comm.allreduce(int(local.size)))
    if total < 1:
        raise ValueError("percentile of an empty distributed set")
    out = {}
    for pct in wanted:
        k = min(max(math.ceil(pct / 100.0 * total) - 1, 0), total - 1)
        out[pct] = dselect(comm, local, k).value
    return out[wanted[0]] if scalar else out


def top_k(comm: "Comm", local: np.ndarray, k: int) -> np.ndarray:
    """The ``k`` globally largest keys, descending; every rank gets all.

    Built on distributed selection: one :func:`nth_element` finds the
    cutoff value, after which only the (at most ``k``) qualifying keys
    travel through an ALLGATHER — never the partitions themselves.
    Duplicate cutoff keys are counted exactly, so the result always has
    ``min(k, n)`` entries.
    """
    if k < 1:
        raise ValueError("top_k needs k >= 1")
    local = np.asarray(local)
    total = int(comm.allreduce(int(local.size)))
    take = min(k, total)
    if take == 0:
        return local[:0]
    if take == total:
        chunks = comm.allgather(np.sort(local))
        merged = np.sort(np.concatenate(chunks))
        return merged[::-1].copy()
    cutoff = dselect(comm, local, total - take).value
    above = np.sort(local[local > cutoff])
    n_above = int(comm.allreduce(int(above.size)))
    chunks = comm.allgather(above)
    merged = np.sort(np.concatenate(chunks))[::-1]
    # exact duplicate handling: pad with copies of the cutoff key
    ties = take - n_above
    if ties > 0:
        pad = np.full(ties, cutoff, dtype=local.dtype)
        merged = np.concatenate([merged, pad])
    return merged.copy()


def find_splitters(
    comm: "Comm",
    local_sorted: np.ndarray,
    capacities: Sequence[int] | None = None,
    eps: float = 0.0,
    config: SplitterConfig | None = None,
) -> SplitterResult:
    """Splitter determination only (Algorithm 3); see the module docs."""
    return _find_splitters(comm, local_sorted, capacities=capacities, eps=eps, config=config)
