"""The paper's contribution: distributed histogram sort and its pieces."""

from .api import (
    AutoSortResult,
    autosort,
    find_splitters,
    nth_element,
    percentile,
    sort,
    sorted_result,
    top_k,
)
from .config import SortConfig, SplitterConfig
from .dselect import DSelectResult, dselect
from .exchange import ExchangePlan, build_exchange_plan, exchange
from .histsort import PHASES, SortResult, histogram_sort
from .keys import PackError, PackSpec, pack_keys, plan_packing, unpack_keys
from .merge import local_merge, merge_cost
from .multiselect import SplitterConvergenceError, SplitterResult
from .overlap import OverlapResult, exchange_merge_overlap, one_factor_partner

__all__ = [
    "AutoSortResult",
    "DSelectResult",
    "ExchangePlan",
    "PHASES",
    "PackError",
    "PackSpec",
    "SortConfig",
    "SortResult",
    "SplitterConfig",
    "SplitterConvergenceError",
    "SplitterResult",
    "OverlapResult",
    "autosort",
    "build_exchange_plan",
    "exchange_merge_overlap",
    "one_factor_partner",
    "dselect",
    "exchange",
    "find_splitters",
    "histogram_sort",
    "local_merge",
    "merge_cost",
    "nth_element",
    "pack_keys",
    "percentile",
    "plan_packing",
    "sort",
    "sorted_result",
    "top_k",
    "unpack_keys",
]
