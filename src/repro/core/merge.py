"""Local merge of received chunks — superstep 4 (§V-C, §VI-E.2).

Strategy selection mirrors the paper's discussion:

* ``sort``        — concatenate + re-sort (what the paper's evaluation ran);
* ``binary_tree`` — ceil(log2 k) pairwise merge passes;
* ``tournament``  — loser-tree replacement selection, one pass;
* ``adaptive``    — tree for few large chunks, re-sort for many small ones
  (the §VI-E.2 finding that merging many small chunks with many threads
  degrades into cache misses while a parallel sort keeps winning).

Virtual-time costs are charged per strategy so the merge study bench can
compare them at paper scale.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..seq.kmerge import binary_merge_tree, kway_merge, loser_tree_merge

if TYPE_CHECKING:  # pragma: no cover
    from ..mpi import Comm

__all__ = ["local_merge", "merge_cost"]

#: below this per-chunk size the adaptive strategy falls back to re-sorting
_ADAPTIVE_MIN_CHUNK = 1 << 14


def merge_cost(compute, n_total: int, k: int, strategy: str) -> float:
    """Modelled cost of merging ``k`` runs totalling ``n_total`` keys."""
    if n_total <= 0:
        return compute.call_overhead
    if strategy == "sort":
        return compute.sort(n_total)
    if strategy == "binary_tree":
        return compute.kway_merge(n_total, max(k, 1))
    if strategy == "tournament":
        # One pass, log(k) comparisons per element through the tree.
        passes = max(1.0, math.log2(max(k, 2)))
        return compute.call_overhead + compute.c_merge * n_total * passes
    raise ValueError(f"unknown merge strategy {strategy!r}")


def local_merge(
    comm: "Comm", chunks: Sequence[np.ndarray], strategy: str = "sort"
) -> np.ndarray:
    """Merge the received sorted chunks into this rank's output partition."""
    chunks = [np.asarray(c) for c in chunks]
    nonempty = [c for c in chunks if c.size]
    n_total = int(sum(c.size for c in nonempty))
    k = len(nonempty)
    compute = comm.cost.compute

    if strategy == "adaptive":
        small = n_total == 0 or (n_total / max(k, 1)) < _ADAPTIVE_MIN_CHUNK
        strategy = "sort" if (small and k > 4) else "binary_tree"

    comm.compute(merge_cost(compute, n_total, k, strategy))
    if not nonempty:
        dtype = chunks[0].dtype if chunks else np.float64
        return np.empty(0, dtype=dtype)
    if strategy == "sort":
        return kway_merge(nonempty, "sort")
    if strategy == "binary_tree":
        return binary_merge_tree(nonempty)
    if strategy == "tournament":
        return loser_tree_merge(nonempty)
    raise ValueError(f"unknown merge strategy {strategy!r}")
