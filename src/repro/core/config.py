"""Configuration of the histogram sort and its splitter engine."""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any, Mapping

__all__ = ["SplitterConfig", "SortConfig"]

_MERGE_STRATEGIES = ("sort", "binary_tree", "tournament", "adaptive")
_GUESS_POLICIES = ("minmax", "sample")


def _checked_kwargs(cls, data: Mapping[str, Any]) -> dict[str, Any]:
    """``data`` as constructor kwargs, rejecting unknown field names."""
    known = {f.name for f in fields(cls)}
    unknown = set(data) - known
    if unknown:
        raise ValueError(
            f"unknown {cls.__name__} field(s): {sorted(unknown)}; known: {sorted(known)}"
        )
    return dict(data)


@dataclass(frozen=True)
class SplitterConfig:
    """Knobs of the multiselect splitter determination (Algorithms 2+3).

    Attributes
    ----------
    initial_guess:
        ``"minmax"`` starts every splitter at the midpoint of the global key
        range (the paper's Algorithm 3).  ``"sample"`` seeds the first probe
        vector from local regular samples (the "optimized initial guesses"
        the paper mentions in §III-B/V-A).
    sample_factor:
        Regular samples drawn per rank for the ``"sample"`` policy.
    cross_probe:
        If True, every round tightens *all* splitter brackets against *all*
        probe outcomes of that round, not just each splitter's own probe —
        the multiselect refinement studied in ``bench_ablations.py``.
    max_rounds:
        Safety cap on histogramming iterations.
    """

    initial_guess: str = "minmax"
    sample_factor: int = 8
    cross_probe: bool = False
    max_rounds: int = 512

    def __post_init__(self) -> None:
        if self.initial_guess not in _GUESS_POLICIES:
            raise ValueError(
                f"initial_guess must be one of {_GUESS_POLICIES}, got {self.initial_guess!r}"
            )
        if self.sample_factor < 1:
            raise ValueError("sample_factor must be >= 1")
        if self.max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON form; inverse of :meth:`from_dict`."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SplitterConfig":
        """Rebuild from :meth:`to_dict` output; unknown fields are rejected."""
        return cls(**_checked_kwargs(cls, data))


@dataclass(frozen=True)
class SortConfig:
    """Configuration of the full four-superstep histogram sort.

    Attributes
    ----------
    eps:
        Load-balance threshold (§II, Definition 1).  ``0.0`` is the paper's
        *perfect partitioning* used in all of its benchmarks.
    merge_strategy:
        How received chunks are combined: ``"sort"`` (re-sort, the paper's
        evaluated configuration), ``"binary_tree"``, ``"tournament"``, or
        ``"adaptive"`` (tree for few chunks, re-sort for many small ones,
        following the §VI-E.2 findings).
    splitter:
        The :class:`SplitterConfig` for the splitting phase.
    uniquify:
        Apply the packed composite-key transform (§V-A's ``(key, rank,
        index)`` triple) before sorting.  Not required for correctness —
        the tie-aware exchange handles duplicates — but provided for
        fidelity; only valid for unsigned integer keys with headroom.
    trace:
        Enable event tracing on the communicator's runtime for this sort
        (idempotent if the runtime already traces).  Every communication
        operation, compute charge, histogram round, and phase boundary
        becomes a span in ``runtime.trace``; see :mod:`repro.trace`.
        Tracing never perturbs the virtual clocks, so results and
        modelled makespans are identical with it on or off.
    """

    eps: float = 0.0
    merge_strategy: str = "sort"
    splitter: SplitterConfig = field(default_factory=SplitterConfig)
    uniquify: bool = False
    #: pipeline the exchange with pairwise merges over a 1-factor schedule
    #: (the §VI-E.1 optimisation); replaces the merge phase entirely.
    overlap_exchange: bool = False
    trace: bool = False
    #: run the fault-tolerant driver (:mod:`repro.core.resilient`):
    #: collectives ride the reliable p2p layer, and on a rank failure the
    #: survivors agree, shrink, and re-run splitter determination —
    #: :func:`~repro.core.histsort.histogram_sort` then returns a
    #: :class:`~repro.core.resilient.ResilientSortResult`.
    resilient: bool = False
    #: bound on shrink-and-retry epochs before the resilient driver gives up
    max_recovery_attempts: int = 8
    #: buddy-checkpoint each phase boundary (:mod:`repro.mpi.checkpoint`)
    #: and recover losslessly through the spare-pool rendezvous instead of
    #: shrink-and-restart; requires ``resilient``.  Off by default — the
    #: legacy recovery path is then executed unchanged.
    checkpoint: bool = False

    def __post_init__(self) -> None:
        if self.eps < 0:
            raise ValueError("eps must be >= 0")
        if self.merge_strategy not in _MERGE_STRATEGIES:
            raise ValueError(
                f"merge_strategy must be one of {_MERGE_STRATEGIES}, got {self.merge_strategy!r}"
            )
        if self.max_recovery_attempts < 1:
            raise ValueError("max_recovery_attempts must be >= 1")
        if self.resilient and self.overlap_exchange:
            raise ValueError(
                "resilient mode has no overlap-exchange implementation; "
                "use the plain exchange"
            )
        if self.checkpoint and not self.resilient:
            raise ValueError(
                "checkpoint=True requires resilient=True (buddy "
                "checkpointing only exists inside the recovery loop)"
            )

    def with_(self, **kwargs) -> "SortConfig":
        """A copy with some fields replaced."""
        return replace(self, **kwargs)

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON form (nested splitter dict); inverse of :meth:`from_dict`."""
        out = {f.name: getattr(self, f.name) for f in fields(self)}
        out["splitter"] = self.splitter.to_dict()
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SortConfig":
        """Rebuild from :meth:`to_dict` output; unknown fields are rejected."""
        kwargs = _checked_kwargs(cls, data)
        splitter = kwargs.get("splitter")
        if isinstance(splitter, Mapping):
            kwargs["splitter"] = SplitterConfig.from_dict(splitter)
        return cls(**kwargs)
