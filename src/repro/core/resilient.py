"""ULFM-style fault-tolerant driver around the histogram sort.

The resilient sort runs the ordinary four-superstep
:func:`~repro.core.histsort.histogram_sort` on a
:class:`~repro.mpi.resilient.ResilientComm` — whose collectives travel the
reliable p2p layer, healing injected drops/duplications by retransmission
— inside a recovery loop modelled on MPI's User-Level Failure Mitigation
(ULFM) proposal.  Two recovery modes share one state machine
(detect → revoke → agree → restore/substitute → resume):

**Shrink-and-restart** (the default, when ``run_spmd`` has no spares and
``config.checkpoint`` is off):

1. Run one *epoch* of the sort on the current communicator.  A rank that
   observes a failure (:class:`RankFailedError` from a crashed peer,
   :class:`CommRevokedError`, or a :class:`MessageTimeoutError` from an
   unhealable link) **revokes** the communicator, which hoists every
   surviving peer out of whatever it was blocked on.
2. All live ranks then **agree** (a fault-tolerant AND, immune to both
   revocation and crashes) on whether everyone finished and the output
   verified globally.  Agreement is the only exit: either every survivor
   returns, or every survivor retries — no rank can be left behind.
3. On disagreement the survivors **shrink** to a fresh communicator over
   the live membership and re-run the sort — including a fresh splitter
   determination, since the rank count changed — on their original,
   untouched input partitions.

Data on crashed ranks is lost in this mode (it models process failure
without checkpointing): the recovered sort is a correct, verified sort of
the *survivors'* data.

**Lossless recovery** (``run_spmd(..., spares=k)`` and/or
``SortConfig(checkpoint=True)``): epochs run phase-granular under buddy
checkpointing (:mod:`repro.mpi.checkpoint`) and exit through the
spare-pool rendezvous (:mod:`repro.mpi.spare`) instead of agree+shrink.
On failure the verdict substitutes a warm spare for each crashed rank —
keeping ``p`` and any capacity-tuned plan valid — restores the lost
partitions from their buddies' replicas, and resumes the epoch from the
deepest phase every member has checkpointed (``PH_START`` → input,
``PH_SORTED`` → skip the local sort, ``PH_SPLIT`` → skip splitter
determination too).  Shrinking remains the fallback once the pool is
exhausted; a dropped rank's partition is then *salvaged* into the
surviving buddy so the sort still completes on the full input.  Only an
adjacent double failure (a rank and its buddy in the same epoch) loses
data, which the result reports in ``lost`` by initial rank.

Every rank ends each epoch with exactly one fault-tolerant rendezvous
(``agree`` or the pool round) and, on a failed epoch, exactly one
membership change, which keeps the rendezvous generations congruent
across ranks.  Both modes are deterministic under a seeded
:class:`~repro.faults.FaultPlan`; with spares and checkpointing disabled
the legacy path below is executed unchanged, bit-identical to previous
releases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Sequence

import numpy as np

from ..mpi.checkpoint import (
    MARKER_NAMES,
    PH_SORTED,
    PH_SPLIT,
    PH_START,
    BuddyCheckpointer,
)
from ..mpi.errors import CommRevokedError, MessageTimeoutError, RankFailedError
from ..mpi.resilient import ResilientComm
from ..mpi.spare import PoolVerdict, pool_round
from ..trace.timer import PhaseTimer
from .config import SortConfig
from .exchange import build_exchange_plan, exchange
from .histsort import _MAXMAX, PHASES, SortResult, histogram_sort
from .keys import pack_keys, plan_packing, unpack_keys
from .merge import local_merge
from .multiselect import find_splitters

if TYPE_CHECKING:  # pragma: no cover
    from ..mpi import Comm

__all__ = ["ResilientSortResult", "RecoveryExhaustedError", "resilient_sort"]

#: failures a recovery epoch can absorb; anything else is a bug and escapes
RECOVERABLE = (RankFailedError, CommRevokedError, MessageTimeoutError)


class RecoveryExhaustedError(RuntimeError):
    """The recovery loop hit ``max_recovery_attempts`` without agreement."""


@dataclass(frozen=True)
class ResilientSortResult:
    """A verified sort of the recoverable data.

    ``output`` is this rank's partition of the globally sorted data;
    ``comm`` is the (possibly substituted or shrunk) communicator it
    lives on.  Under lossless recovery ``spares_used`` counts pool
    substitutions and ``lost`` names the initial ranks whose input could
    not be recovered (empty unless a rank and its checkpoint buddy died
    in the same epoch, or checkpointing was off); in legacy
    shrink-and-restart mode every crashed rank's data is lost but
    ``lost`` stays empty for backward compatibility — consult ``failed``.
    """

    output: np.ndarray
    result: SortResult
    comm: ResilientComm
    attempts: int
    survivors: tuple[int, ...]
    failed: tuple[int, ...]
    spares_used: int = 0
    lost: tuple[int, ...] = ()

    @property
    def phases(self) -> dict[str, float]:
        """Phase breakdown of the successful epoch."""
        return self.result.phases

    @property
    def splitters(self):
        return self.result.splitters


def _verified(work: ResilientComm, n_in: int, output: np.ndarray) -> bool:
    """Global output verification (collective over ``work``): element
    conservation across the live ranks plus sorted, non-overlapping
    partition boundaries."""
    lo = float(output[0]) if output.size else None
    hi = float(output[-1]) if output.size else None
    if output.size and np.any(np.diff(output) < 0):
        return False
    cells = work.allgather((int(n_in), int(output.size), lo, hi))
    if sum(c[0] for c in cells) != sum(c[1] for c in cells):
        return False
    prev_hi = None
    for _, n_out, c_lo, c_hi in cells:
        if n_out == 0:
            continue
        if prev_hi is not None and c_lo < prev_hi:
            return False
        prev_hi = c_hi
    return True


def resilient_sort(
    comm: "Comm",
    local: np.ndarray,
    config: SortConfig | None = None,
    capacities: Sequence[int] | None = None,
) -> ResilientSortResult:
    """Fault-tolerant :func:`histogram_sort`; collective over ``comm``.

    Completes a verified sort of the recoverable data under injected
    message drops, duplications, delays, and rank crashes, or raises a
    typed error (:class:`RecoveryExhaustedError` after too many epochs;
    :class:`RankFailedError` if this rank cannot take part in recovery).
    Never hangs: blocked survivors are hoisted out by revocation, crashed
    peers by the runtime's failure notifications, and silent message loss
    by virtual-time retry deadlines.

    When the runtime has spare ranks or ``config.checkpoint`` is set, the
    lossless pooled recovery path runs (see the module docs); otherwise
    the legacy shrink-and-restart loop below executes unchanged.
    """
    if config is None:
        config = SortConfig(resilient=True)
    local = np.asarray(local)
    if local.ndim != 1:
        raise ValueError("local partition must be 1-D")
    if config.trace:
        comm.ensure_tracing()
    work = (
        comm
        if isinstance(comm, ResilientComm)
        else ResilientComm(comm._state, comm.rank)
    )
    rt = comm._rt
    if rt.spares > 0 or config.checkpoint:
        return _pooled_sort(rt, work, local, config, capacities)
    initial_members = tuple(work.world_ranks)
    inner_cfg = config.with_(resilient=False)
    tracer = comm.tracer

    for attempt in range(1, config.max_recovery_attempts + 1):
        result: SortResult | None = None
        ok_local = True
        try:
            result = histogram_sort(
                work,
                local.copy(),
                inner_cfg,
                capacities if work.size == len(initial_members) else None,
            )
            ok_local = _verified(work, int(local.size), result.output)
        except RECOVERABLE:
            # Hoist peers still blocked on this epoch's traffic out of
            # their waits, then vote to retry.
            work.revoke()
            ok_local = False
        if work.agree(ok_local):
            assert result is not None
            survivors = tuple(work.world_ranks)
            return ResilientSortResult(
                output=result.output,
                result=result,
                comm=work,
                attempts=attempt,
                survivors=survivors,
                failed=tuple(r for r in initial_members if r not in survivors),
            )
        t0 = work.clock
        work.revoke()
        work = work.shrink()
        if tracer.enabled:
            tracer.record("recover", t0, cat="fault", attempt=attempt,
                          survivors=work.size)
    raise RecoveryExhaustedError(
        f"sort did not complete within {config.max_recovery_attempts} "
        "recovery attempts"
    )


# ---------------------------------------------------------------------------
# Lossless recovery: phase-granular epochs over the spare-pool rendezvous.
# ---------------------------------------------------------------------------


@dataclass
class _EpochState:
    """One rank's restartable sort state between recovery epochs.

    ``local`` is the raw-key input basis — kept through every phase so a
    roll-back to ``PH_START`` (shrink, or a peer that lost all progress)
    can always restart from scratch.  ``sorted_work`` / ``spec`` carry
    the packed, locally sorted partition once ``marker`` reaches
    ``PH_SORTED``; ``splitters`` the agreed splitter set at ``PH_SPLIT``.
    ``origins`` are the initial ring positions whose input data this
    rank currently carries (the unit of loss accounting).
    """

    local: np.ndarray
    dtype: Any
    origins: tuple[int, ...]
    marker: int = PH_START
    sorted_work: np.ndarray | None = None
    spec: Any = None
    splitters: Any = None

    def n_in(self) -> int:
        """Elements this rank brings into the epoch (packing is 1:1)."""
        if self.marker >= PH_SORTED and self.sorted_work is not None:
            return int(self.sorted_work.size)
        return int(self.local.size)


def _pooled_sort(rt, work: ResilientComm, local: np.ndarray,
                 config: SortConfig, capacities) -> ResilientSortResult:
    """Entry point of the pooled (checkpoint + spares) recovery path for
    the initial active ranks."""
    initial_members = tuple(work.world_ranks)
    st = _EpochState(local=local.copy(), dtype=local.dtype,
                     origins=(work.rank,))
    ckpt = BuddyCheckpointer() if config.checkpoint else None
    meta = {
        "config": config,
        "capacities": None if capacities is None else tuple(capacities),
        "initial_p": len(initial_members),
        "initial_members": initial_members,
        "dtype": local.dtype,
    }
    origin_map = {i: (i,) for i in range(len(initial_members))}
    return _epoch_loop(rt, work, st, ckpt, meta, origin_map=origin_map,
                       epoch=0, spares_used=0, lost=())


def _substitute_entry(rt, wc, verdict: PoolVerdict, pos: int):
    """Continuation a spare runs after the pool assigned it position
    ``pos`` (deposited by the actives; see :func:`repro.mpi.spare.spare_main`).
    Receives the buddy replica planned for it (if any) and joins the
    epoch loop as a full member."""
    meta = verdict.meta
    config: SortConfig = meta["config"]
    work = ResilientComm(verdict.state, pos)
    if config.trace:
        work.ensure_tracing()
    ckpt = BuddyCheckpointer() if config.checkpoint else None
    st = _EpochState(local=np.empty(0, dtype=meta["dtype"]),
                     dtype=meta["dtype"], origins=())
    try:
        for holder, target in verdict.restores:
            if pos == target:
                rep = BuddyCheckpointer.restore_recv(work, holder)
                _load_replica(st, rep, verdict.resume_marker)
    except RECOVERABLE:
        work.revoke()
    if st.marker >= PH_SPLIT:
        st.splitters = verdict.splitters
    return _epoch_loop(rt, work, st, ckpt, meta,
                       origin_map=dict(verdict.origin_map),
                       epoch=verdict.epoch, spares_used=verdict.spares_used,
                       lost=verdict.lost)


def _epoch_loop(rt, work: ResilientComm, st: _EpochState,
                ckpt: BuddyCheckpointer | None, meta: dict, *,
                origin_map: dict[int, tuple[int, ...]], epoch: int,
                spares_used: int,
                lost: tuple[int, ...]) -> ResilientSortResult:
    """Run recovery epochs until the pool rendezvous declares the sort
    done (or the attempt budget is exhausted)."""
    config: SortConfig = meta["config"]
    initial_p: int = meta["initial_p"]
    initial_members: tuple[int, ...] = meta["initial_members"]
    while True:
        epoch += 1
        result: SortResult | None = None
        ok = True
        try:
            n_in = st.n_in()
            # Tuned capacities are only meaningful while the rank count
            # and the input multiset both match the original plan.
            caps = (meta["capacities"]
                    if work.size == initial_p and not lost else None)
            result = _sort_epoch(work, st, ckpt, config, caps)
            ok = _verified(work, n_in, result.output)
        except RECOVERABLE:
            work.revoke()
            ok = False
        deposit = ("active", {
            "pos": work.rank,
            "positions": tuple(work.world_ranks),
            "ok": ok,
            "marker": st.marker,
            "origins": st.origins,
            "held": (None if ckpt is None or ckpt.held is None
                     else (ckpt.held.owner_pos, ckpt.held.marker)),
            "splitters": st.splitters,
            "lost": lost,
            "origin_map": origin_map,
            "epoch": epoch,
            "max_epochs": config.max_recovery_attempts,
            "spares_used": spares_used,
            "cont": _substitute_entry,
            "meta": meta,
        })
        verdict = pool_round(rt, work.world_rank, deposit, work)
        if verdict.kind == "done":
            assert result is not None
            survivors = tuple(work.world_ranks)
            return ResilientSortResult(
                output=result.output,
                result=result,
                comm=work,
                attempts=epoch,
                survivors=survivors,
                failed=tuple(r for r in initial_members
                             if r not in survivors),
                spares_used=verdict.spares_used,
                lost=verdict.lost,
            )
        if verdict.kind == "exhausted":
            raise RecoveryExhaustedError(
                f"sort did not complete within "
                f"{config.max_recovery_attempts} recovery attempts"
            )
        assert verdict.kind == "recover", verdict.kind
        epoch = verdict.epoch
        spares_used = verdict.spares_used
        lost = verdict.lost
        origin_map = dict(verdict.origin_map)
        work = _apply_recovery(work, st, ckpt, verdict)


def _apply_recovery(work: ResilientComm, st: _EpochState,
                    ckpt: BuddyCheckpointer | None,
                    verdict: PoolVerdict) -> ResilientComm:
    """Move a surviving rank onto the recovered communicator: roll state
    back to the agreed resume phase and execute this rank's share of the
    planned replica transfers.  A failure *during* recovery revokes the
    new communicator, which turns the next epoch into an immediate
    recoverable failure — the following rendezvous plans again."""
    t0 = work.clock
    new_pos = verdict.positions.index(work.world_rank)
    nw = ResilientComm(verdict.state, new_pos)
    _rollback(st, verdict)
    try:
        _run_transfers(nw, st, ckpt, verdict)
    except RECOVERABLE:
        nw.revoke()
    if ckpt is not None and verdict.shrunk:
        # Positions renumbered: replicas keyed by the old numbering must
        # never be offered as restore sources for the new one.  The
        # epoch-start refresh rebuilds them under the new membership.
        ckpt.held = None
    tracer = nw.tracer
    if tracer.enabled:
        tracer.record("recover", t0, cat="fault", attempt=verdict.epoch,
                      survivors=nw.size,
                      resume=MARKER_NAMES[verdict.resume_marker],
                      substituted=len(verdict.assigned),
                      shrunk=verdict.shrunk)
    return nw


def _rollback(st: _EpochState, verdict: PoolVerdict) -> None:
    """Roll phase progress back to the verdict's resume marker (the
    minimum over the new membership — deeper progress of this rank is
    discarded so every member replays the same phases)."""
    st.marker = min(st.marker, verdict.resume_marker)
    if st.marker >= PH_SPLIT:
        st.splitters = verdict.splitters
    else:
        st.splitters = None
    if st.marker < PH_SORTED:
        st.sorted_work = None
        st.spec = None


def _run_transfers(nw: ResilientComm, st: _EpochState,
                   ckpt: BuddyCheckpointer | None,
                   verdict: PoolVerdict) -> None:
    """Execute this rank's share of the verdict's replica transfers.

    Every rank walks the same globally ordered transfer list; blocked
    reliable operations service the whole channel, so the pairwise
    sends/receives cannot deadlock.  Substitute targets run their
    receives in :func:`_substitute_entry` instead."""
    for holder, target in verdict.restores:
        if nw.rank == holder:
            assert ckpt is not None
            ckpt.restore_send(nw, target)
        elif nw.rank == target:
            # Dataless until the replica actually lands: if the transfer
            # dies halfway we must not claim data we do not hold (the
            # next rendezvous re-plans the restore from the live buddy).
            st.local = np.empty(0, dtype=st.dtype)
            st.origins = ()
            st.sorted_work = None
            st.spec = None
            st.marker = PH_START
            rep = BuddyCheckpointer.restore_recv(nw, holder)
            _load_replica(st, rep, verdict.resume_marker)
            if st.marker >= PH_SPLIT:
                st.splitters = verdict.splitters
    for holder in verdict.salvages:
        if nw.rank == holder and ckpt is not None and ckpt.held is not None:
            # Shrink fallback: fold the dropped owner's replica into this
            # rank's input basis so its data still reaches the output.
            extra = ckpt.held.unpacked()
            st.local = (np.concatenate([st.local, extra])
                        if st.local.size else extra.copy())
            st.origins = tuple(sorted(set(st.origins)
                                      | set(ckpt.held.origins)))


def _load_replica(st: _EpochState, rep, resume: int) -> None:
    """Adopt a buddy replica as this rank's partition state."""
    st.origins = tuple(rep.origins)
    if rep.dtype is not None:
        st.dtype = rep.dtype
    st.local = rep.unpacked()
    if resume >= PH_SORTED and rep.marker >= PH_SORTED:
        st.sorted_work = rep.data
        st.spec = rep.spec
        st.marker = min(int(rep.marker), resume)
    else:
        st.sorted_work = None
        st.spec = None
        st.marker = PH_START


def _sort_epoch(work: ResilientComm, st: _EpochState,
                ckpt: BuddyCheckpointer | None, config: SortConfig,
                capacities) -> SortResult:
    """One phase-granular epoch of the histogram sort.

    Mirrors :func:`~repro.core.histsort.histogram_sort` superstep by
    superstep, but resumes from ``st.marker`` — phases already
    checkpointed by every member are skipped — and, when checkpointing
    is on, replicates state to the buddy at each phase boundary."""
    compute = work.cost.compute
    tracer = work.tracer
    t_begin = work.clock
    marker0 = st.marker
    timer = PhaseTimer(work)
    if ckpt is not None:
        # Epoch-start refresh: every buddy (including a fresh
        # substitute's) holds a current replica before new failures can
        # strike, and replicas invalidated by a membership change are
        # replaced under the new numbering.
        if st.marker >= PH_SORTED:
            ckpt.save(work, st.marker, st.origins, st.sorted_work,
                      st.spec, st.dtype)
        else:
            ckpt.save(work, PH_START, st.origins, st.local, None, st.dtype)

    # Superstep 1: local sort (skipped at PH_SORTED and beyond).
    if st.marker < PH_SORTED:
        w = st.local
        spec = None
        if config.uniquify:
            max_key = int(w.max()) if w.size else 0
            gmax_key, gmax_n = work.allreduce(
                (max_key, int(w.size)), op=_MAXMAX
            )
            spec = plan_packing(gmax_key, work.size, max(gmax_n, 1))
            w = pack_keys(w, work.rank, spec)
            work.compute(compute.partition(w.size))
        w = np.sort(w, kind="stable")
        work.compute(compute.sort(w.size, w.dtype.itemsize))
        st.sorted_work = w
        st.spec = spec
        st.marker = PH_SORTED
        timer.mark("local_sort")
        if ckpt is not None:
            ckpt.save(work, PH_SORTED, st.origins, w, spec, st.dtype)
    else:
        timer.mark("local_sort")

    # Superstep 2: splitter determination (skipped at PH_SPLIT).
    if st.marker < PH_SPLIT:
        st.splitters = find_splitters(
            work, st.sorted_work, capacities=capacities, eps=config.eps,
            config=config.splitter,
        )
        st.marker = PH_SPLIT
        timer.mark("splitting")
        if ckpt is not None:
            # Splitters are identical on every rank; a marker-only ring
            # update suffices (survivors re-share them at recovery).
            ckpt.save_marker(work, PH_SPLIT)
    else:
        timer.mark("splitting")

    # Supersteps 3+4: exchange and merge (never checkpointed — the
    # verification rendezvous right after is the epoch's commit point).
    plan = build_exchange_plan(work, st.sorted_work, st.splitters)
    timer.mark("other")
    chunks = exchange(work, st.sorted_work, plan)
    timer.mark("exchange")
    merged = local_merge(work, chunks, strategy=config.merge_strategy)
    if st.spec is not None:
        merged = unpack_keys(merged, st.spec, dtype=st.dtype)
        work.compute(compute.partition(merged.size))
    timer.mark("merge")

    phases = {name: timer.phases.get(name, 0.0) for name in PHASES}
    tracer.record(
        "sort_epoch",
        t_begin,
        rounds=st.splitters.rounds,
        n=st.n_in(),
        resumed=MARKER_NAMES[marker0],
    )
    itemsize = int(st.sorted_work.dtype.itemsize)
    return SortResult(
        output=merged,
        phases=phases,
        splitters=st.splitters,
        plan_bytes=plan.elements_sent * itemsize,
        exchanged_bytes=plan.elements_received * itemsize,
    )
