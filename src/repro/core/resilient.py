"""ULFM-style fault-tolerant driver around the histogram sort.

The resilient sort runs the ordinary four-superstep
:func:`~repro.core.histsort.histogram_sort` on a
:class:`~repro.mpi.resilient.ResilientComm` — whose collectives travel the
reliable p2p layer, healing injected drops/duplications by retransmission
— inside a shrink-and-retry recovery loop modelled on MPI's User-Level
Failure Mitigation (ULFM) proposal:

1. Run one *epoch* of the sort on the current communicator.  A rank that
   observes a failure (:class:`RankFailedError` from a crashed peer,
   :class:`CommRevokedError`, or a :class:`MessageTimeoutError` from an
   unhealable link) **revokes** the communicator, which hoists every
   surviving peer out of whatever it was blocked on.
2. All live ranks then **agree** (a fault-tolerant AND, immune to both
   revocation and crashes) on whether everyone finished and the output
   verified globally.  Agreement is the only exit: either every survivor
   returns, or every survivor retries — no rank can be left behind.
3. On disagreement the survivors **shrink** to a fresh communicator over
   the live membership and re-run the sort — including a fresh splitter
   determination, since the rank count changed — on their original,
   untouched input partitions.

Data on crashed ranks is lost (this models process failure, not
checkpointing): the recovered sort is a correct, verified sort of the
*survivors'* data.  Every rank ends each epoch with exactly one ``agree``
and, on a failed epoch, exactly one ``shrink``, which keeps the
fault-tolerant rendezvous generations congruent across ranks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..mpi.errors import CommRevokedError, MessageTimeoutError, RankFailedError
from ..mpi.resilient import ResilientComm
from .config import SortConfig
from .histsort import SortResult, histogram_sort

if TYPE_CHECKING:  # pragma: no cover
    from ..mpi import Comm

__all__ = ["ResilientSortResult", "RecoveryExhaustedError", "resilient_sort"]

#: failures a recovery epoch can absorb; anything else is a bug and escapes
RECOVERABLE = (RankFailedError, CommRevokedError, MessageTimeoutError)


class RecoveryExhaustedError(RuntimeError):
    """The recovery loop hit ``max_recovery_attempts`` without agreement."""


@dataclass(frozen=True)
class ResilientSortResult:
    """A verified sort of the surviving ranks' data.

    ``output`` is this rank's partition of the globally sorted surviving
    data; ``comm`` is the (possibly shrunk) communicator it lives on.
    """

    output: np.ndarray
    result: SortResult
    comm: ResilientComm
    attempts: int
    survivors: tuple[int, ...]
    failed: tuple[int, ...]

    @property
    def phases(self) -> dict[str, float]:
        """Phase breakdown of the successful epoch."""
        return self.result.phases

    @property
    def splitters(self):
        return self.result.splitters


def _verified(work: ResilientComm, n_in: int, output: np.ndarray) -> bool:
    """Global output verification (collective over ``work``): element
    conservation across the live ranks plus sorted, non-overlapping
    partition boundaries."""
    lo = float(output[0]) if output.size else None
    hi = float(output[-1]) if output.size else None
    if output.size and np.any(np.diff(output) < 0):
        return False
    cells = work.allgather((int(n_in), int(output.size), lo, hi))
    if sum(c[0] for c in cells) != sum(c[1] for c in cells):
        return False
    prev_hi = None
    for _, n_out, c_lo, c_hi in cells:
        if n_out == 0:
            continue
        if prev_hi is not None and c_lo < prev_hi:
            return False
        prev_hi = c_hi
    return True


def resilient_sort(
    comm: "Comm",
    local: np.ndarray,
    config: SortConfig | None = None,
    capacities: Sequence[int] | None = None,
) -> ResilientSortResult:
    """Fault-tolerant :func:`histogram_sort`; collective over ``comm``.

    Completes a verified sort of the surviving ranks' data under injected
    message drops, duplications, delays, and rank crashes, or raises a
    typed error (:class:`RecoveryExhaustedError` after too many epochs;
    :class:`RankFailedError` if this rank cannot take part in recovery).
    Never hangs: blocked survivors are hoisted out by revocation, crashed
    peers by the runtime's failure notifications, and silent message loss
    by virtual-time retry deadlines.
    """
    if config is None:
        config = SortConfig(resilient=True)
    local = np.asarray(local)
    if local.ndim != 1:
        raise ValueError("local partition must be 1-D")
    if config.trace:
        comm.ensure_tracing()
    work = (
        comm
        if isinstance(comm, ResilientComm)
        else ResilientComm(comm._state, comm.rank)
    )
    initial_members = tuple(work.world_ranks)
    inner_cfg = config.with_(resilient=False)
    tracer = comm.tracer

    for attempt in range(1, config.max_recovery_attempts + 1):
        result: SortResult | None = None
        ok_local = True
        try:
            result = histogram_sort(
                work,
                local.copy(),
                inner_cfg,
                capacities if work.size == len(initial_members) else None,
            )
            ok_local = _verified(work, int(local.size), result.output)
        except RECOVERABLE:
            # Hoist peers still blocked on this epoch's traffic out of
            # their waits, then vote to retry.
            work.revoke()
            ok_local = False
        if work.agree(ok_local):
            assert result is not None
            survivors = tuple(work.world_ranks)
            return ResilientSortResult(
                output=result.output,
                result=result,
                comm=work,
                attempts=attempt,
                survivors=survivors,
                failed=tuple(r for r in initial_members if r not in survivors),
            )
        t0 = work.clock
        work.revoke()
        work = work.shrink()
        if tracer.enabled:
            tracer.record("recover", t0, cat="fault", attempt=attempt,
                          survivors=work.size)
    raise RecoveryExhaustedError(
        f"sort did not complete within {config.max_recovery_attempts} "
        "recovery attempts"
    )
