"""Data exchange — Algorithm 4 and the single ALL-TO-ALLV round (§V-B).

Once the splitters are known, each rank cuts its locally sorted partition
into ``P`` contiguous segments and ships segment ``i`` to rank ``i``.  With
perfect partitioning (or duplicate keys) the cut positions need refinement
around the splitter boundaries: all keys strictly below splitter ``i`` are
*definitely* left of boundary ``i``; the keys *equal* to the splitter are
assigned left-to-right by rank order until the boundary's realized rank is
met — this is the permutation-matrix refinement of Algorithm 4, and it is
what makes the sort exact in the presence of arbitrary duplicate runs.

Communication stays ``O(p)`` per rank as in the paper: an EXCLUSIVE_SCAN
over the per-boundary duplicate counts gives each rank its rank-order fill
offset, and one ALL-TO-ALL of the send counts gives the receive side —
together the equivalent of the paper's two ALL-TO-ALLs plus scan (§V-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..seq.search import local_histogram
from .multiselect import SplitterResult

if TYPE_CHECKING:  # pragma: no cover
    from ..mpi import Comm

__all__ = ["ExchangePlan", "build_exchange_plan", "exchange"]


@dataclass(frozen=True)
class ExchangePlan:
    """Cut positions and count vectors for the ALL-TO-ALLV.

    ``cuts`` has ``P+1`` entries; this rank sends
    ``local_sorted[cuts[d]:cuts[d+1]]`` to rank ``d``.  ``send_counts`` and
    ``recv_counts`` are the classic MPI count vectors (elements, not bytes).
    """

    cuts: np.ndarray
    send_counts: np.ndarray
    recv_counts: np.ndarray

    @property
    def elements_sent(self) -> int:
        return int(self.send_counts.sum())

    @property
    def elements_received(self) -> int:
        return int(self.recv_counts.sum())


def build_exchange_plan(
    comm: "Comm", local_sorted: np.ndarray, splitters: SplitterResult
) -> ExchangePlan:
    """Compute this rank's cut positions (Algorithm 4)."""
    local_sorted = np.asarray(local_sorted)
    p = comm.size
    n_local = int(local_sorted.size)
    compute = comm.cost.compute

    if p == 1:
        counts = np.array([n_local], dtype=np.int64)
        return ExchangePlan(
            cuts=np.array([0, n_local], dtype=np.int64),
            send_counts=counts,
            recv_counts=counts.copy(),
        )

    t_plan = comm.clock
    # Local bounds of every splitter value: lb = keys strictly below,
    # ub = keys at-or-below; the difference is this rank's share of the
    # boundary's duplicate run.
    lb, ub = local_histogram(local_sorted, splitters.values)
    comm.compute(compute.search(2 * (p - 1), max(n_local, 1)))

    # Rank-order fill (Algorithm 4): boundary i must place need[i] =
    # realized[i] - L[i] of its duplicate run on the left side; ranks
    # contribute in rank order, so this rank's fill offset is the sum of
    # the duplicate counts on all lower ranks — one EXCLUSIVE_SCAN.
    equal = (ub - lb).astype(np.int64)
    prefix = comm.exscan(equal)
    if prefix is None:  # rank 0
        prefix = np.zeros_like(equal)
    need = (splitters.realized_ranks - splitters.lower).astype(np.int64)
    take = np.clip(need - prefix, 0, equal)
    my_cuts = np.concatenate(([0], lb + take, [n_local])).astype(np.int64)
    if np.any(np.diff(my_cuts) < 0):
        raise AssertionError("non-monotone cut positions (internal error)")
    send_counts = np.diff(my_cuts)
    comm.compute(compute.partition(2 * p))

    # Receive counts: one ALL-TO-ALL of the send counts (§V-B).
    recv_counts = np.asarray(
        comm.alltoall([int(c) for c in send_counts]), dtype=np.int64
    )
    comm.tracer.record("exchange_plan", t_plan, elements=int(send_counts.sum()))

    return ExchangePlan(
        cuts=my_cuts,
        send_counts=send_counts,
        recv_counts=recv_counts,
    )


def exchange(
    comm: "Comm", local_sorted: np.ndarray, plan: ExchangePlan
) -> list[np.ndarray]:
    """Run the single ALL-TO-ALLV round; returns the received sorted chunks."""
    local_sorted = np.asarray(local_sorted)
    t_data = comm.clock
    chunks = [
        local_sorted[plan.cuts[d] : plan.cuts[d + 1]] for d in range(comm.size)
    ]
    received = comm.alltoallv(chunks)
    comm.tracer.record(
        "exchange_data",
        t_data,
        elements_sent=plan.elements_sent,
        elements_received=plan.elements_received,
    )
    expected = plan.recv_counts
    got = np.array([c.size for c in received], dtype=np.int64)
    if not np.array_equal(got, expected):
        raise AssertionError(
            f"rank {comm.rank}: received counts {got} != planned {expected}"
        )
    return received
