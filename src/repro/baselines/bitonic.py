"""Batcher's bitonic sort over ranks (§III-C's sorting-network baseline).

``log2(P) * (log2(P)+1) / 2`` compare-split stages; every stage exchanges
whole partitions with a partner rank and keeps the lower or upper half of
the merged pair.  Transfers the data ``O(log^2 P)`` times, which is why it
"cannot keep up with sample sort if N/P >> 1" (§III-C).

Each rank keeps its input size, so perfect partitioning holds by
construction when input sizes are the target capacities.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..mpi.tags import BITONIC_STAGE_BASE
from ..seq.kmerge import merge_two_sorted
from ..trace.timer import PhaseTimer
from .common import BaselineResult

if TYPE_CHECKING:  # pragma: no cover
    from ..mpi import Comm

__all__ = ["bitonic_sort"]


def bitonic_sort(comm: "Comm", local: np.ndarray) -> BaselineResult:
    """Bitonic sort; ``comm.size`` must be a power of two."""
    p = comm.size
    if p & (p - 1):
        raise ValueError(f"bitonic sort needs a power-of-two rank count, got {p}")
    local = np.asarray(local)
    compute = comm.cost.compute
    timer = PhaseTimer(comm)

    sizes = comm.allgather(int(local.size))
    if len(set(sizes)) > 1:
        # Block-bitonic compare-split is only a sorting network for equal
        # block sizes (0-1 principle on blocks).
        raise ValueError(f"bitonic sort requires equal partition sizes, got {sizes}")

    work = np.sort(local)
    comm.compute(compute.sort(work.size))
    timer.mark("local_sort")

    d = p.bit_length() - 1
    stages = 0
    moved = 0
    tracer = comm.tracer
    for i in range(d):
        for j in range(i, -1, -1):
            stages += 1
            partner = comm.rank ^ (1 << j)
            ascending = ((comm.rank >> (i + 1)) & 1) == 0
            t_stage = comm.clock
            other = comm.sendrecv(work, partner, tag=BITONIC_STAGE_BASE + stages)
            moved += int(work.size)
            merged = merge_two_sorted(work, other)
            comm.compute(compute.merge_pass(merged.size))
            keep_low = ascending == (comm.rank < partner)
            n_keep = int(work.size)
            work = merged[:n_keep] if keep_low else merged[merged.size - n_keep :]
            tracer.record("compare_split", t_stage, stage=stages, partner=partner)
    timer.mark("exchange")

    return BaselineResult(
        output=work,
        phases=dict(timer.phases),
        info={"stages": stages, "elements_moved": moved},
    )
