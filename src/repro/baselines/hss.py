"""Histogram Sort with Sampling — the paper's Charm++ comparator [1].

Harsh, Kale & Solomonik (SPAA'19) iterate histogramming like the histogram
sort, but generate probe candidates by *sampling*: each round draws random
keys from the still-unresolved splitter intervals, histograms the candidate
vector, keeps probes that satisfy their target ranks, and re-samples the
rest.  Convergence therefore depends on sample luck — the volatility the
paper observes in Figs. 2/3 (wide confidence intervals, 5–25 s
histogramming in weak scaling, non-termination on a normal distribution
within the job limit).

This implementation reproduces that structure: interval-tracked targets,
sampled probe generation (``samples_per_round`` per rank), histogram
rounds, and a final tie-aware exchange so the comparison against the
histogram sort is about *splitter determination*, not tie handling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..seq.kmerge import binary_merge_tree
from ..seq.search import local_histogram
from ..trace.timer import PhaseTimer
from .common import BaselineResult

if TYPE_CHECKING:  # pragma: no cover
    from ..mpi import Comm

__all__ = ["hss_sort", "HSSDiagnostics"]


@dataclass(frozen=True)
class HSSDiagnostics:
    rounds: int
    probes_total: int
    converged: bool


def hss_sort(
    comm: "Comm",
    local: np.ndarray,
    eps: float = 0.0,
    samples_per_round: int = 12,
    max_rounds: int = 128,
    seed: int = 1,
    sampling: str = "global",
) -> BaselineResult:
    """Sort via sampled iterative histogramming (HSS).

    ``sampling`` selects the probe generator:

    * ``"global"`` (default) — every round draws random keys from the whole
      local partition and keeps those that fall into a still-open splitter
      interval.  Narrow intervals are rarely hit, so convergence is slow
      and seed-dependent — this mirrors the "improper sampling in each
      histogramming round" the paper suspects in the Charm++ runs and
      reproduces their volatility.
    * ``"interval"`` — importance sampling inside each open interval (the
      idealized HSS of the SPAA'19 paper): a handful of rounds suffice.

    With ``eps == 0`` exact boundary ranks are required; sampled probes can
    only *bracket* them, so the final boundary refinement falls back to the
    achievable-interval acceptance (as the Charm++ code must around ties).
    """
    if sampling not in ("global", "interval"):
        raise ValueError(f"sampling must be 'global' or 'interval', got {sampling!r}")
    local = np.asarray(local)
    p = comm.size
    compute = comm.cost.compute
    timer = PhaseTimer(comm)

    work = np.sort(local)
    comm.compute(compute.sort(work.size))
    timer.mark("local_sort")

    if p == 1:
        timer.mark("splitting")
        timer.mark("exchange")
        timer.mark("merge")
        return BaselineResult(
            output=work,
            phases=dict(timer.phases),
            info={"diagnostics": HSSDiagnostics(0, 0, True)},
        )

    sizes = np.asarray(comm.allgather(int(work.size)), dtype=np.int64)
    total = int(sizes.sum())
    targets = np.cumsum(sizes)[:-1]
    tol = max(int(np.floor(eps * total / (2 * p))), 0)

    dtype = work.dtype
    rng = np.random.Generator(np.random.MT19937([seed, comm.rank]))

    if total == 0:
        timer.mark("splitting")
        timer.mark("exchange")
        timer.mark("merge")
        return BaselineResult(
            output=work,
            phases=dict(timer.phases),
            info={"diagnostics": HSSDiagnostics(0, 0, True)},
        )

    # Interval state per boundary: value bounds and their achieved ranks.
    if work.size:
        lmin, lmax = work[0], work[-1]
    else:
        info = np.iinfo(dtype) if dtype.kind in "iu" else np.finfo(dtype)
        lmin, lmax = dtype.type(info.max), dtype.type(info.min)
    from ..mpi.ops import ReduceOp

    gmin, gmax = comm.allreduce(
        (lmin, lmax), op=ReduceOp("minmax", lambda a, b: (min(a[0], b[0]), max(a[1], b[1])))
    )

    m = p - 1
    lo_val = np.full(m, gmin, dtype=dtype)
    hi_val = np.full(m, gmax, dtype=dtype)
    lo_rank = np.zeros(m, dtype=np.int64)           # rank of lo_val (keys < lo)
    hi_rank = np.full(m, total, dtype=np.int64)     # at-or-below count of hi_val
    values = np.empty(m, dtype=dtype)
    realized = np.zeros(m, dtype=np.int64)
    lower = np.zeros(m, dtype=np.int64)
    upper = np.zeros(m, dtype=np.int64)
    active = np.ones(m, dtype=bool)

    rounds = 0
    probes_total = 0
    tracer = comm.tracer
    while active.any() and rounds < max_rounds:
        t_round = comm.clock
        rounds += 1
        act = np.flatnonzero(active)
        # Sampled probe generation (the "sampling" of HSS); one gathering
        # round merges every rank's proposals into the candidate vector.
        if sampling == "interval":
            proposals = []
            for i in act:
                a = int(np.searchsorted(work, lo_val[i], side="right"))
                b = int(np.searchsorted(work, hi_val[i], side="left"))
                if b > a:
                    take = min(samples_per_round, b - a)
                    idx = rng.integers(a, b, size=take)
                    proposals.append(work[idx])
                else:
                    proposals.append(work[:0])
            flat = np.concatenate(proposals) if proposals else work[:0]
        else:
            # Global sampling: draw from the whole partition, keep what
            # lands in any open interval.
            take = min(samples_per_round * max(act.size, 1), int(work.size))
            draw = work[rng.integers(0, work.size, size=take)] if take else work[:0]
            keep = np.zeros(draw.size, dtype=bool)
            for i in act:
                keep |= (draw > lo_val[i]) & (draw < hi_val[i])
            flat = draw[keep]
        gathered = comm.allgather(flat)
        # Two deterministic probe families ride along with the samples:
        # the current interval bounds (duplicate-run boundaries resolve
        # once a bracket collapses onto the duplicated value) and a
        # rank-interpolated probe per open target — HSS's regula-falsi
        # style refinement, whose convergence is fast exactly when the key
        # CDF is locally linear and slow on skewed regions (the source of
        # the volatility the paper observes).
        interp = np.empty(act.size, dtype=dtype)
        for j, i in enumerate(act):
            span = float(hi_rank[i] - lo_rank[i])
            frac = (float(targets[i] - lo_rank[i]) / span) if span > 0 else 0.5
            frac = min(max(frac, 0.02), 0.98)
            val = float(lo_val[i]) + (float(hi_val[i]) - float(lo_val[i])) * frac
            interp[j] = np.asarray(val).astype(dtype)
        cand = np.unique(
            np.concatenate([*gathered, lo_val[act], hi_val[act], interp])
        )
        cand = cand[(cand >= gmin) & (cand <= gmax)]
        comm.compute(compute.sort(max(int(cand.size), 1)))

        l_loc, u_loc = local_histogram(work, cand)
        comm.compute(compute.search(2 * int(cand.size), max(int(work.size), 1)))
        glob = comm.allreduce(np.concatenate([l_loc, u_loc]))
        L, U = glob[: cand.size], glob[cand.size :]
        probes_total += int(cand.size)

        for i in act:
            t = targets[i]
            # Accept any candidate achieving the target within tolerance.
            ok = (L <= t + tol) & (U >= t - tol)
            hit = np.flatnonzero(ok)
            if hit.size:
                j = int(hit[0])
                values[i] = cand[j]
                lower[i], upper[i] = int(L[j]), int(U[j])
                realized[i] = int(np.clip(t, L[j], U[j]))
                active[i] = False
                continue
            # Otherwise shrink the interval with the bracketing candidates.
            below = np.flatnonzero(U < t - tol)
            if below.size:
                j = int(below[-1])
                if cand[j] > lo_val[i]:
                    lo_val[i], lo_rank[i] = cand[j], int(U[j])
            above = np.flatnonzero(L > t + tol)
            if above.size:
                j = int(above[0])
                if cand[j] < hi_val[i]:
                    hi_val[i], hi_rank[i] = cand[j], int(L[j])
        comm.compute(compute.call_overhead + 2.0e-9 * int(cand.size))
        tracer.record(
            "hss_round",
            t_round,
            round=rounds,
            candidates=int(cand.size),
            open=int(active.sum()),
        )

    converged = not active.any()
    if not converged:
        # Residual open boundaries: resolve on their upper endpoints with a
        # final exact histogram (what keeps HSS from hanging forever on
        # duplicate-heavy inputs; the Charm++ prototype lacked this and
        # timed out — see §VI-B).
        act = np.flatnonzero(active)
        probes = hi_val[act].astype(dtype)
        l_loc, u_loc = local_histogram(work, probes)
        glob = comm.allreduce(np.concatenate([l_loc, u_loc]))
        L, U = glob[: act.size], glob[act.size :]
        for j, i in enumerate(act):
            values[i] = probes[j]
            lower[i], upper[i] = int(L[j]), int(U[j])
            realized[i] = int(np.clip(targets[i], L[j], U[j]))
            active[i] = False

    timer.mark("splitting")

    # Tie-aware exchange reusing the histogram sort's Algorithm 4 machinery.
    from ..core.exchange import build_exchange_plan, exchange
    from ..core.multiselect import SplitterResult

    # Sort the accepted values (independent per-target acceptance can land
    # out of order around ties) and re-derive exact global bounds so the
    # rank-order fill sees consistent numbers even for tol-accepted probes.
    values = np.sort(values)
    l_loc, u_loc = local_histogram(work, values)
    glob = comm.allreduce(np.concatenate([l_loc, u_loc]))
    lower = glob[: values.size].astype(np.int64)
    upper = glob[values.size :].astype(np.int64)
    realized = np.clip(targets, lower, upper)
    realized = np.maximum.accumulate(realized)

    splitters = SplitterResult(
        values=values,
        realized_ranks=realized,
        lower=lower,
        upper=upper,
        targets=targets,
        capacities=sizes,
        total=total,
        tolerance=tol,
        rounds=rounds,
        probes_total=probes_total,
    )
    plan = build_exchange_plan(comm, work, splitters)
    received = exchange(comm, work, plan)
    timer.mark("exchange")

    n_recv = int(sum(c.size for c in received))
    output = binary_merge_tree(received)
    comm.compute(compute.kway_merge(n_recv, max(len(received), 2)))
    timer.mark("merge")

    return BaselineResult(
        output=output,
        phases=dict(timer.phases),
        info={"diagnostics": HSSDiagnostics(rounds, probes_total, converged)},
    )
