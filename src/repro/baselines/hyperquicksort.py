"""Hyperquicksort (Wagar 1987) — §III-C's hypercube quicksort baseline.

Requires ``P = 2^d`` ranks.  Each of the ``d`` rounds: the subcube's first
rank broadcasts its local median as the pivot, every rank splits its data
at the pivot, partners across the halving dimension swap halves, and each
rank merges what it kept with what it received.  Data therefore moves up to
``log2 P`` times — the structural disadvantage versus single-exchange
algorithms that §III-C calls out.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..mpi.tags import HYPERQUICKSORT_ROUND_BASE
from ..seq.kmerge import merge_two_sorted
from ..trace.timer import PhaseTimer
from .common import BaselineResult

if TYPE_CHECKING:  # pragma: no cover
    from ..mpi import Comm

__all__ = ["hyperquicksort"]


def hyperquicksort(comm: "Comm", local: np.ndarray) -> BaselineResult:
    """Hypercube quicksort; ``comm.size`` must be a power of two."""
    p = comm.size
    if p & (p - 1):
        raise ValueError(f"hyperquicksort needs a power-of-two rank count, got {p}")
    local = np.asarray(local)
    compute = comm.cost.compute
    timer = PhaseTimer(comm)

    work = np.sort(local)
    comm.compute(compute.sort(work.size))
    timer.mark("local_sort")

    sub = comm
    moved = 0
    rounds = 0
    tracer = comm.tracer
    while sub.size > 1:
        t_round = comm.clock
        rounds += 1
        half = sub.size // 2
        # Pivot: median of the subcube's first rank (classic formulation).
        if sub.rank == 0:
            pivot = work[work.size // 2] if work.size else None
        else:
            pivot = None
        pivot = sub.bcast(pivot, root=0)
        if pivot is None:
            # First rank empty: fall back to the subcube-wide max of mins.
            lo = work[0] if work.size else None
            cands = [c for c in sub.allgather(lo) if c is not None]
            pivot = cands[len(cands) // 2] if cands else np.float64(0)

        cut = int(np.searchsorted(work, pivot, side="right"))
        comm.compute(compute.search(1, max(work.size, 1)))
        low, high = work[:cut], work[cut:]
        in_low_half = sub.rank < half
        partner = sub.rank + half if in_low_half else sub.rank - half
        outgoing = high if in_low_half else low
        keep = low if in_low_half else high
        incoming = sub.sendrecv(outgoing, partner, tag=HYPERQUICKSORT_ROUND_BASE + rounds)
        moved += int(outgoing.size)
        work = merge_two_sorted(keep, incoming)
        comm.compute(compute.merge_pass(work.size))
        sub2 = sub.split(0 if in_low_half else 1, sub.rank)
        assert sub2 is not None
        sub = sub2
        tracer.record("hq_round", t_round, round=rounds, partner=partner)
    timer.mark("exchange")

    return BaselineResult(
        output=work,
        phases=dict(timer.phases),
        info={"rounds": rounds, "elements_moved": moved},
    )
