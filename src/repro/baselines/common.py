"""Shared plumbing of the baseline sorters."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from ..mpi import Comm

__all__ = ["BaselineResult", "partition_counts", "exchange_by_splitters"]


@dataclass(frozen=True)
class BaselineResult:
    """Output partition + phase timings + algorithm-specific diagnostics."""

    output: np.ndarray
    phases: dict[str, float]
    info: dict[str, Any] = field(default_factory=dict)

    @property
    def time(self) -> float:
        return float(sum(self.phases.values()))


def partition_counts(local_sorted: np.ndarray, splitter_values: np.ndarray) -> np.ndarray:
    """Send counts per destination from P-1 splitter values (keys <= splitter
    go left; no tie refinement — baselines are allowed imbalance)."""
    cuts = np.searchsorted(local_sorted, splitter_values, side="right")
    cuts = np.concatenate(([0], cuts, [local_sorted.size]))
    return np.diff(cuts).astype(np.int64)


def exchange_by_splitters(
    comm: "Comm", local_sorted: np.ndarray, splitter_values: np.ndarray
) -> list[np.ndarray]:
    """Cut a sorted partition at the splitters and run the ALL-TO-ALLV."""
    t0 = comm.clock
    counts = partition_counts(local_sorted, splitter_values)
    offsets = np.concatenate(([0], np.cumsum(counts)))
    chunks = [
        local_sorted[offsets[d] : offsets[d + 1]] for d in range(comm.size)
    ]
    received = comm.alltoallv(chunks)
    comm.tracer.record("exchange_data", t0, elements_sent=int(counts.sum()))
    return received
