"""Baseline distributed sorting algorithms (§III related work).

All baselines share the rank-centric calling convention of the core sort:
``algo(comm, local_array, **params) -> BaselineResult``.  The registry
:data:`BASELINES` maps names to callables for the benchmark harness.
"""

from typing import Callable, Mapping

from .bitonic import bitonic_sort
from .common import BaselineResult
from .hss import HSSDiagnostics, hss_sort
from .hyksort import hyksort
from .hyperquicksort import hyperquicksort
from .samplesort import psrs_sort, sample_sort

BASELINES: Mapping[str, Callable] = {
    "sample_sort": sample_sort,
    "psrs": psrs_sort,
    "hss": hss_sort,
    "hyperquicksort": hyperquicksort,
    "hyksort": hyksort,
    "bitonic": bitonic_sort,
}

__all__ = [
    "BASELINES",
    "BaselineResult",
    "HSSDiagnostics",
    "bitonic_sort",
    "hss_sort",
    "hyksort",
    "hyperquicksort",
    "psrs_sort",
    "sample_sort",
]
