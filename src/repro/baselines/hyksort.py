"""HykSort (Sundar, Malhotra & Biros 2013) — §III-C's k-way hypercube sort.

Generalizes hyperquicksort: each round splits the current process group
into ``k`` subgroups around ``k-1`` sampled splitters, exchanges data so
subgroup ``g`` holds bucket ``g`` (an all-to-allv within the group), merges,
and recurses into the subgroup — ``log_k P`` rounds, with the communicator
split per round whose linear cost §III-C criticizes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..seq.kmerge import binary_merge_tree
from ..trace.timer import PhaseTimer
from .common import BaselineResult

if TYPE_CHECKING:  # pragma: no cover
    from ..mpi import Comm

__all__ = ["hyksort"]


def _sampled_splitters(
    sub: "Comm", work: np.ndarray, nsplit: int, oversampling: int, rng: np.random.Generator
) -> np.ndarray:
    """k-1 splitters from a gathered regular+random sample of the group."""
    n = work.size
    take = min(oversampling * max(nsplit, 1), n)
    if take:
        idx = np.unique(
            np.concatenate(
                [
                    np.linspace(0, n - 1, num=max(take // 2, 1)).astype(np.int64),
                    rng.integers(0, n, size=max(take // 2, 1)),
                ]
            )
        )
        sample = work[idx]
    else:
        sample = work[:0]
    gathered = sub.allgather(sample)
    flat = np.sort(np.concatenate(gathered))
    if flat.size == 0:
        return flat[: 0]
    pos = np.minimum((np.arange(1, nsplit + 1) * flat.size) // (nsplit + 1), flat.size - 1)
    return flat[pos]


def hyksort(
    comm: "Comm",
    local: np.ndarray,
    k: int = 4,
    oversampling: int = 16,
    seed: int = 1,
) -> BaselineResult:
    """k-way hypercube sort; ``comm.size`` must be a power of ``k``... or at
    least splittable — any ``comm.size`` works, the last round simply uses a
    smaller ``k``."""
    if k < 2:
        raise ValueError("k must be >= 2")
    local = np.asarray(local)
    compute = comm.cost.compute
    timer = PhaseTimer(comm)
    rng = np.random.Generator(np.random.MT19937([seed, comm.rank]))

    work = np.sort(local)
    comm.compute(compute.sort(work.size))
    timer.mark("local_sort")

    sub = comm
    rounds = 0
    moved = 0
    tracer = comm.tracer
    while sub.size > 1:
        t_round = comm.clock
        rounds += 1
        kk = min(k, sub.size)
        # Subgroup sizes as equal as possible.
        base, rem = divmod(sub.size, kk)
        group_sizes = [base + (1 if g < rem else 0) for g in range(kk)]
        starts = np.concatenate(([0], np.cumsum(group_sizes)))
        my_group = int(np.searchsorted(starts, sub.rank, side="right") - 1)

        splitters = _sampled_splitters(sub, work, kk - 1, oversampling, rng)
        comm.compute(compute.sort(max(splitters.size, 1)))
        if splitters.size < kk - 1:
            pad = work[-1] if work.size else (splitters[-1] if splitters.size else np.float64(0))
            splitters = np.concatenate(
                [splitters, np.full(kk - 1 - splitters.size, pad, dtype=work.dtype)]
            )

        # Bucket g of every rank goes to the g-th subgroup, spread round-
        # robin over its members.
        bucket_cuts = np.concatenate(
            ([0], np.searchsorted(work, splitters, side="right"), [work.size])
        ).astype(np.int64)
        chunks: list[np.ndarray] = []
        for dest in range(sub.size):
            g = int(np.searchsorted(starts, dest, side="right") - 1)
            lo_b, hi_b = bucket_cuts[g], bucket_cuts[g + 1]
            seg = work[lo_b:hi_b]
            # Split bucket g evenly over the members of subgroup g.
            within = dest - int(starts[g])
            gs = group_sizes[g]
            a = (seg.size * within) // gs
            b = (seg.size * (within + 1)) // gs
            chunks.append(seg[a:b])
        received = sub.alltoallv(chunks)
        moved += int(sum(c.size for c in chunks if c.size)) - int(chunks[sub.rank].size)
        work = binary_merge_tree(received)
        comm.compute(compute.kway_merge(work.size, max(len(received), 2)))

        new_sub = sub.split(my_group, sub.rank)
        assert new_sub is not None
        sub = new_sub
        tracer.record("hyk_round", t_round, round=rounds, group=my_group, k=kk)
    timer.mark("exchange")

    return BaselineResult(
        output=work,
        phases=dict(timer.phases),
        info={"rounds": rounds, "elements_moved": moved, "k": k},
    )
