"""Sample sort baselines (§III-A): random sampling and regular sampling (PSRS).

Random sample sort follows the paper's three supersteps verbatim: sample →
central splitter selection → one ALL-TO-ALL exchange + local sort.  Regular
sampling (Shi & Schaeffer's PSRS) probes an already-sorted partition at
regular offsets, which in practice balances much better (§III-A).

Neither guarantees perfect partitioning: output sizes deviate according to
sample luck, which is exactly the behaviour the histogram sort's splitting
phase removes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..seq.kmerge import binary_merge_tree
from ..trace.timer import PhaseTimer
from .common import BaselineResult, exchange_by_splitters

if TYPE_CHECKING:  # pragma: no cover
    from ..mpi import Comm

__all__ = ["sample_sort", "psrs_sort"]


def sample_sort(
    comm: "Comm",
    local: np.ndarray,
    oversampling: int = 32,
    seed: int = 1,
) -> BaselineResult:
    """Random-sampling sample sort.

    ``oversampling`` random keys per rank are gathered on rank 0, which
    sorts them and broadcasts every ``oversampling``-th as a splitter.
    """
    local = np.asarray(local)
    p = comm.size
    compute = comm.cost.compute
    timer = PhaseTimer(comm)
    if p == 1:
        out = np.sort(local)
        comm.compute(compute.sort(out.size))
        timer.mark("merge")
        return BaselineResult(output=out, phases=dict(timer.phases))
    rng = np.random.Generator(np.random.MT19937([seed, comm.rank]))

    # Superstep 1: sampling.
    s = min(oversampling, local.size)
    sample = local[rng.integers(0, local.size, size=s)] if s else local[:0]
    gathered = comm.gather(sample, root=0)
    timer.mark("sampling")

    # Superstep 2: splitting on the central rank.
    if comm.rank == 0:
        flat = np.sort(np.concatenate(gathered))
        comm.compute(compute.sort(flat.size))
        if flat.size >= p - 1 and p > 1:
            idx = (np.arange(1, p) * flat.size) // p
            splitters = flat[idx]
        else:
            # Degenerate sample (tiny inputs): pad with the sample maximum
            # so the trailing destinations receive nothing.
            pad = flat[-1] if flat.size else local.dtype.type(0)
            splitters = np.concatenate(
                [flat, np.full(p - 1 - flat.size, pad, dtype=flat.dtype)]
            )
    else:
        splitters = None
    splitters = comm.bcast(splitters, root=0)
    timer.mark("splitting")

    # Superstep 3: exchange, then sort the received chunks locally.
    work = np.sort(local)
    comm.compute(compute.sort(work.size))
    received = exchange_by_splitters(comm, work, splitters)
    timer.mark("exchange")

    n_recv = int(sum(c.size for c in received))
    output = binary_merge_tree(received)
    comm.compute(compute.kway_merge(n_recv, max(len(received), 2)))
    timer.mark("merge")

    return BaselineResult(
        output=output,
        phases=dict(timer.phases),
        info={"splitters": splitters, "oversampling": oversampling},
    )


def psrs_sort(comm: "Comm", local: np.ndarray) -> BaselineResult:
    """Parallel Sorting by Regular Sampling (deterministic splitters)."""
    local = np.asarray(local)
    p = comm.size
    compute = comm.cost.compute
    timer = PhaseTimer(comm)
    if p == 1:
        out = np.sort(local)
        comm.compute(compute.sort(out.size))
        timer.mark("merge")
        return BaselineResult(output=out, phases=dict(timer.phases))

    # Local sort first — regular sampling probes a sorted run.
    work = np.sort(local)
    comm.compute(compute.sort(work.size))
    timer.mark("local_sort")

    # Regular samples: p-1 per rank at offsets (i+1) * n / p.
    if p > 1 and work.size:
        idx = np.minimum(((np.arange(1, p) * work.size) // p), work.size - 1)
        sample = work[idx]
    else:
        sample = work[:0]
    gathered = comm.gather(sample, root=0)
    if comm.rank == 0:
        flat = np.sort(np.concatenate(gathered))
        comm.compute(compute.sort(flat.size))
        if flat.size >= p - 1 and p > 1:
            idx = np.minimum((np.arange(1, p) * flat.size) // p, flat.size - 1)
            splitters = flat[idx]
        else:
            pad = flat[-1] if flat.size else local.dtype.type(0)
            splitters = np.concatenate(
                [flat, np.full(p - 1 - flat.size, pad, dtype=flat.dtype)]
            )
    else:
        splitters = None
    splitters = comm.bcast(splitters, root=0)
    timer.mark("splitting")

    received = exchange_by_splitters(comm, work, splitters)
    timer.mark("exchange")

    n_recv = int(sum(c.size for c in received))
    output = binary_merge_tree(received)
    comm.compute(compute.kway_merge(n_recv, max(len(received), 2)))
    timer.mark("merge")

    return BaselineResult(
        output=output,
        phases=dict(timer.phases),
        info={"splitters": splitters},
    )
