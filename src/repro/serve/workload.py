"""Scripted service workloads: arrival scripts, oracles, chaos schedules.

A *workload* is a deterministic arrival script — a list of
:class:`~repro.serve.job.JobSpec` ordered by submission — plus host-side
**oracles**: for every job, the answer a trivial single-process
implementation would give.  The replay driver (CLI ``replay`` mode,
``tests/test_serve.py``, the CI soak) submits the script, drains the
service, and compares every completed job against its oracle, so service
correctness never rests on the service's own code paths.

:func:`make_workload` builds the standard mixed soak: ≥32 jobs, all four
kinds, multiple tenants, a fusable cluster of ≥3 compatible small sorts,
repeat-fingerprint sorts (the warm-plan assertion), a float dataset that
must run solo, and queries arriving both after and *before* their sort
(the defer path).  :func:`make_chaos` pairs it with a crash schedule.
"""

from __future__ import annotations

import zlib
from math import ceil
from typing import Any, Sequence

import numpy as np

from ..data import make_partition
from .job import JobSpec
from .service import ServiceChaos

__all__ = ["make_chaos", "make_workload", "oracle", "oracle_all"]


def make_workload(p: int, *, seed: int = 0, n_small: int = 192) -> list[JobSpec]:
    """The standard mixed arrival script (deterministic in ``seed``).

    Structure, in virtual-second arrival order:

    * ``t=0``: four compatible ``uniform_u64`` sorts for tenant *acme*
      (same dtype + log2 size class → one fused epoch of up to
      ``max_epoch_jobs``), plus one ``normal_f64`` sort for *globex*
      (floats cannot pack → solo epoch).
    * ``t=5``: a query volley against those datasets — percentiles
      (including the 0/100 edges), top-k, ranges.
    * ``t=10``: four repeat-fingerprint sorts (same job count, shape,
      and distribution class as wave one) — these must hit the
      warm-plan tier with **zero** planner dry runs — plus a *zipf*
      skew sort.
    * ``t=12``: queries for a dataset that only arrives at ``t=15``
      (exercising deferral), then its sort, then follow-up queries.
    """
    base = seed * 1000
    specs: list[JobSpec] = []

    def sort(tenant: str, ds: str, t: float, dist: str, n: int, s: int, prio: int = 0):
        specs.append(
            JobSpec(
                kind="sort", tenant=tenant, dataset=ds, arrival=t, priority=prio,
                dist=dist, n_per_rank=n, seed=base + s,
            )
        )

    def q(kind: str, tenant: str, ds: str, t: float, **kw: Any):
        specs.append(
            JobSpec(kind=kind, tenant=tenant, dataset=ds, arrival=t, **kw)
        )

    # wave 1: the fusable cluster + a solo float sort
    for i in range(4):
        sort("acme", f"events-{i}", 0.0, "uniform_u64", n_small, 11 + i)
    sort("globex", "readings", 0.0, "normal_f64", n_small, 31)

    # wave 2: queries against wave-1 datasets
    for i in range(4):
        q("percentile", "acme", f"events-{i}", 5.0, pcts=(0.0, 25.0, 50.0, 99.0, 100.0))
    q("top_k", "acme", "events-0", 5.0, k=7)
    q("top_k", "acme", "events-1", 5.0, k=3)
    q("range_query", "acme", "events-2", 5.0, lo=1e8, hi=6e8)
    q("range_query", "acme", "events-3", 5.0, lo=0.0, hi=1e9)
    q("percentile", "globex", "readings", 5.0, pcts=(50.0, 90.0))
    q("top_k", "globex", "readings", 5.0, k=5)

    # wave 3: repeat fingerprints (warm-plan tier) + skew.  Same job
    # count, dtype, and size class as wave 1, so the fused epoch's
    # fingerprint lands in wave 1's cache bucket and planning is skipped.
    for i in range(4):
        sort("acme", f"events-{i}", 10.0, "uniform_u64", n_small, 41 + i)
    # a different log2 size class, so the skew sort cannot fuse into —
    # and perturb the fingerprint of — the repeat batch above
    sort("globex", "clicks", 10.0, "zipf_u64", n_small * 3, 51)
    q("range_query", "globex", "clicks", 11.0, lo=1.0, hi=10.0)
    q("percentile", "globex", "clicks", 11.0, pcts=(50.0, 100.0))

    # wave 4: queries arriving BEFORE their sort (deferral), then the sort
    q("percentile", "acme", "late", 12.0, pcts=(10.0, 90.0))
    q("top_k", "acme", "late", 12.0, k=4)
    sort("acme", "late", 15.0, "uniform_u64", n_small, 61)
    q("range_query", "acme", "late", 16.0, lo=2e8, hi=9e8)

    # trailing low-priority singles so every kind appears for two tenants
    q("top_k", "acme", "events-2", 18.0, k=2)
    q("range_query", "globex", "readings", 18.0, lo=-1.0, hi=1.0)
    q("percentile", "acme", "events-3", 18.0, pcts=(75.0,))
    sort("globex", "audit", 20.0, "duplicates_i64", n_small, 71, prio=1)
    q("percentile", "globex", "audit", 21.0, pcts=(0.0, 50.0))
    q("top_k", "globex", "audit", 21.0, k=6)
    q("range_query", "globex", "audit", 21.0, lo=0.0, hi=4.0)
    return specs


def make_chaos(workload: Sequence[JobSpec], *, seed: int = 1) -> ServiceChaos:
    """A crash schedule proportioned to ``workload``'s sort epochs.

    Injects two mid-epoch rank crashes: one in the first sort epoch
    (which carries the fused cluster) and one in a later epoch, with
    ``at_op`` placed inside the sort proper — late enough that packing
    and splitter determination have started, early enough that every
    rank still has work left (a rank that finishes before its ``at_op``
    never crashes).  Epoch ordinals count *sort* epochs only, matching
    :class:`~repro.serve.service.ServiceChaos` semantics.
    """
    n_sorts = sum(1 for s in workload if s.kind == "sort")
    crashes: dict[int, tuple[tuple[int, int], ...]] = {0: ((1, 30),)}
    if n_sorts > 2:
        crashes[2] = ((0, 35),)
    return ServiceChaos(crashes=crashes, spares=2, seed=seed)


# --------------------------------------------------------------------- oracle


def _global_sorted(spec: JobSpec, p: int) -> np.ndarray:
    parts = [
        make_partition(spec.dist, spec.n_per_rank, rank=r, seed=spec.seed)
        for r in range(p)
    ]
    return np.sort(np.concatenate(parts))


def oracle(
    spec: JobSpec, p: int, *, sort_specs: dict[tuple[str, str], JobSpec]
) -> Any:
    """The single-process answer for one job of a script.

    ``sort_specs`` maps ``(tenant, dataset)`` to the *latest preceding*
    sort spec for that dataset (queries read the most recent sort).
    """
    if spec.kind == "sort":
        data = _global_sorted(spec, p)
        return {
            "n": int(data.size),
            "dtype": str(data.dtype),
            "min": data[0].item() if data.size else None,
            "max": data[-1].item() if data.size else None,
            "checksum": zlib.crc32(np.ascontiguousarray(data).tobytes()),
        }
    src = sort_specs[(spec.tenant, spec.dataset)]
    data = _global_sorted(src, p)
    n = int(data.size)
    if spec.kind == "percentile":
        return {
            float(pct): data[min(max(ceil(pct / 100.0 * n) - 1, 0), n - 1)].item()
            for pct in spec.pcts
        }
    if spec.kind == "top_k":
        k = min(spec.k, n)
        return [v.item() for v in data[n - k :][::-1]]
    lo_cnt = int(np.searchsorted(data, spec.lo, side="left"))
    hi_cnt = int(np.searchsorted(data, spec.hi, side="left"))
    return {"count": hi_cnt - lo_cnt, "first_rank": lo_cnt}


def oracle_all(workload: Sequence[JobSpec], p: int) -> list[Any]:
    """Oracle answers for every spec, in script order.

    Tracks dataset redefinition: a query's oracle uses the last sort of
    its dataset whose arrival is ``<=`` the query's arrival — a
    same-instant sort counts, because the service runs a round's sort
    epochs before re-admitting its deferred queries.  A query with *no*
    preceding sort resolves against the earliest future sort of its
    dataset (the defer path: the query waits for exactly that epoch).
    """
    out: list[Any] = []
    for spec in workload:
        if spec.kind == "sort":
            out.append(oracle(spec, p, sort_specs={}))
            continue
        key = (spec.tenant, spec.dataset)
        past = [
            o for o in workload
            if o.kind == "sort" and (o.tenant, o.dataset) == key
            and o.arrival <= spec.arrival
        ]
        if past:
            src = max(past, key=lambda o: o.arrival)
        else:
            future = [
                o for o in workload
                if o.kind == "sort" and (o.tenant, o.dataset) == key
            ]
            src = min(future, key=lambda o: o.arrival)
        out.append(oracle(spec, p, sort_specs={key: src}))
    return out
