"""``SortService`` — the long-running multi-tenant sort service.

The service is the *driver* side of the system: it owns the job queue,
the dataset registry (the persistent query tier), the plan cache (the
warm-plan tier), a metrics registry, and a **service clock** in virtual
seconds.  Rank-side work happens in *epochs*: each scheduling round takes
every job whose arrival has been reached, batches compatible sort jobs
(:mod:`repro.serve.batch`), groups queries into query epochs
(:mod:`repro.serve.index`), and runs each epoch on a fresh virtual-clock
:class:`~repro.mpi.Runtime` of the service's ``p`` ranks.  The epoch's
modelled makespan advances the service clock, so per-job
``time_to_result`` (completion − arrival) is an end-to-end virtual
latency including queueing delay.

Everything is deterministic: scheduling order, batch composition, epoch
programs, and — through the lossless-recovery substrate — even epochs
with injected rank crashes replay bit-identically
(:meth:`SortService.fingerprint` is the replay oracle).

Chaos: a :class:`ServiceChaos` schedule marks sort epochs for fault
injection.  Marked epochs run the resilient path (buddy checkpoints +
warm spares), so jobs survive mid-epoch crashes with ``p`` — and with it
every cached plan — unchanged.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from ..core.resilient import ResilientSortResult
from ..data import make_partition
from ..faults import CrashEvent, FaultPlan, FaultSpec
from ..machine import MachineSpec
from ..metrics import TIME_BUCKETS, MetricsRegistry
from ..metrics.collect import collect_runtime
from ..mpi import Runtime
from ..tune import planner
from ..tune.cache import PlanCache
from .batch import Batch, demux_output, plan_batches
from .epoch import sort_epoch_program
from .index import Dataset, SortedIndex, query_program
from .job import AdmissionError, Job, JobResult, JobSpec, UnknownDatasetError
from .queue import AdmissionPolicy, JobQueue

__all__ = ["ServiceChaos", "ServiceError", "SortService", "STATE_SCHEMA"]

#: on-disk state layout version (see :meth:`SortService.save`)
STATE_SCHEMA = 1


class ServiceError(RuntimeError):
    """The service broke an internal invariant (a bug, not a job error)."""


@dataclass(frozen=True)
class ServiceChaos:
    """Deterministic fault schedule for a service run.

    ``crashes`` maps a **sort-epoch ordinal** (0 = the first sort epoch
    executed) to the crash events injected into that epoch, each a
    ``(rank, at_op)`` pair.  Marked epochs run resiliently with
    ``spares`` warm spare ranks; unmarked epochs (and all query epochs)
    run on pristine runtimes and stay bit-identical to a chaos-free
    service.
    """

    crashes: Mapping[int, tuple[tuple[int, int], ...]] = field(default_factory=dict)
    spares: int = 2
    seed: int = 1
    drop_rate: float = 0.0

    def plan_for(self, ordinal: int, total_ranks: int) -> FaultPlan | None:
        events = self.crashes.get(ordinal)
        if not events:
            return None
        spec = FaultSpec(
            drop_rate=self.drop_rate,
            dup_rate=self.drop_rate / 2,
            crashes=tuple(CrashEvent(rank=r, at_op=op) for r, op in events),
        )
        return FaultPlan(spec, seed=self.seed + ordinal, size=total_ranks)


class SortService:
    """A sort-as-a-service instance over the virtual-clock runtime.

    Parameters
    ----------
    p:
        Ranks of the service's SPMD cluster (fixed for its lifetime).
    machine, ranks_per_node:
        The priced machine (defaults to the auto-sized abstract cluster).
    policy:
        Admission limits (:class:`~repro.serve.queue.AdmissionPolicy`).
    plan_cache:
        The warm-plan tier.  Defaults to an **in-memory**
        :class:`~repro.tune.cache.MemoryPlanCache`; pass a disk-backed
        :class:`~repro.tune.cache.PlanCache` to persist plans across
        service restarts.
    chaos:
        Optional :class:`ServiceChaos` fault schedule.
    trace:
        Record every epoch's spans (service clock timeline); the span
        tree is part of :meth:`fingerprint`.
    """

    def __init__(
        self,
        p: int,
        *,
        machine: MachineSpec | None = None,
        ranks_per_node: int | None = None,
        policy: AdmissionPolicy | None = None,
        plan_cache: PlanCache | None = None,
        chaos: ServiceChaos | None = None,
        trace: bool = False,
        check: bool | None = None,
        seed: int = 0,
        registry: MetricsRegistry | None = None,
    ):
        if p < 1:
            raise ValueError("p must be >= 1")
        self.p = p
        self.machine = machine
        self.ranks_per_node = ranks_per_node
        self.chaos = chaos
        self.trace = trace
        self.check = check
        self.seed = seed
        from ..tune.cache import MemoryPlanCache

        self.plan_cache = plan_cache if plan_cache is not None else MemoryPlanCache()
        self.registry = registry if registry is not None else MetricsRegistry()
        self._queue = JobQueue(policy)
        self.jobs: dict[int, Job] = {}
        self.datasets: dict[tuple[str, str], Dataset] = {}
        self.clock = 0.0
        self.next_epoch = 0
        self.sort_epochs = 0
        #: per-epoch service records: batch composition, timings, spans
        self.events: list[dict[str, Any]] = []
        self._declare_metrics()

    # --------------------------------------------------------------- metrics

    def _declare_metrics(self) -> None:
        reg = self.registry
        self._m_submitted = reg.counter(
            "serve_jobs_submitted_total", "Jobs submitted", ("tenant", "kind")
        )
        self._m_rejected = reg.counter(
            "serve_jobs_rejected_total", "Typed admission rejections", ("reason",)
        )
        self._m_completed = reg.counter(
            "serve_jobs_completed_total", "Jobs completed", ("tenant", "kind")
        )
        self._m_failed = reg.counter(
            "serve_jobs_failed_total", "Jobs failed at scheduling/run", ("reason",)
        )
        self._m_batched = reg.counter(
            "serve_jobs_batched_total", "Jobs that ran in a fused batch (>= 2 jobs)"
        ).default()
        self._m_epochs = reg.counter(
            "serve_epochs_total", "Executed epochs", ("kind",)
        )
        self._m_batch_size = reg.histogram(
            "serve_batch_jobs",
            "Jobs fused per sort epoch",
            buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0),
        ).default()
        self._m_depth = reg.gauge(
            "serve_queue_depth", "Jobs waiting in the queue"
        ).default()
        self._m_ttr = reg.histogram(
            "serve_time_to_result_seconds",
            "Virtual completion minus arrival, per job",
            ("kind",),
            buckets=TIME_BUCKETS,
        )
        self._m_epoch_span = reg.histogram(
            "serve_epoch_makespan_seconds",
            "Virtual makespan of one epoch",
            buckets=TIME_BUCKETS,
        ).default()
        self._m_warm = reg.counter(
            "serve_warm_plan_hits_total", "Sort epochs served from the plan cache"
        ).default()
        self._m_dry = reg.counter(
            "serve_plan_dry_runs_total", "Planner dry runs performed by sort epochs"
        ).default()
        self._m_query_a2av = reg.counter(
            "serve_query_alltoallv_total",
            "ALLTOALLV calls observed in query epochs (must stay 0)",
        ).default()
        self._m_crash = reg.counter(
            "serve_crashes_survived_total", "Rank crashes absorbed inside epochs"
        ).default()
        self._m_spares = reg.counter(
            "serve_spares_used_total", "Warm spares promoted during recovery"
        ).default()

    # ------------------------------------------------------------- admission

    def submit(self, spec: JobSpec) -> Job:
        """Admit one job (or raise a typed rejection, recorded either way).

        The job's ``arrival`` may lie in the future of the service clock;
        it becomes schedulable once the clock reaches it.
        """
        try:
            job = self._queue.submit(spec, now=self.clock)
        except AdmissionError as exc:
            rejected = getattr(exc, "job", None)
            if rejected is not None:
                self.jobs[rejected.job_id] = rejected
            self._m_rejected.labels(reason=exc.reason).inc()
            raise
        self.jobs[job.job_id] = job
        self._m_submitted.labels(tenant=spec.tenant, kind=spec.kind).inc()
        self._m_depth.set(self._queue.depth())
        return job

    def replay(self, specs: Iterable[JobSpec]) -> dict[int, JobResult]:
        """Scripted mode: submit a whole arrival script, then drain.

        Typed rejections are recorded (metrics + REJECTED job records)
        and skipped; returns ``{job_id: result}`` for completed jobs.
        """
        for spec in specs:
            try:
                self.submit(spec)
            except AdmissionError:
                continue
        self.drain()
        return self.results()

    # ------------------------------------------------------------ scheduling

    def drain(self) -> None:
        """Run epochs until no queued job remains."""
        while self.step():
            pass

    def step(self) -> bool:
        """One scheduling round; returns False when the queue is drained."""
        ready = self._queue.take_ready(self.clock)
        if not ready:
            nxt = self._queue.next_arrival(self.clock)
            if nxt is None:
                return False
            self.clock = nxt
            return True

        sort_jobs: list[Job] = []
        query_jobs: list[Job] = []
        deferred: list[Job] = []
        upcoming = {
            (j.spec.tenant, j.spec.dataset)
            for j in list(ready) + list(self._queue.queued_jobs())
            if j.spec.kind == "sort"
        }
        for job in ready:
            if not job.spec.is_query:
                sort_jobs.append(job)
                continue
            key = (job.spec.tenant, job.spec.dataset)
            if key in self.datasets:
                query_jobs.append(job)
            elif key in upcoming:
                deferred.append(job)
            else:
                self._fail(job, UnknownDatasetError.reason)

        ran = False
        max_jobs = self._queue.policy.max_epoch_jobs
        for start in range(0, len(query_jobs), max_jobs):
            self._run_query_epoch(query_jobs[start : start + max_jobs])
            ran = True
        if sort_jobs:
            data = {
                j.job_id: [
                    make_partition(
                        j.spec.dist, j.spec.n_per_rank, rank=r, seed=j.spec.seed
                    )
                    for r in range(self.p)
                ]
                for j in sort_jobs
            }
            for batch in plan_batches(sort_jobs, data, max_epoch_jobs=max_jobs):
                self._run_sort_epoch(batch)
                ran = True
        for job in deferred:
            self._queue.requeue(job)
        if not ran and deferred:
            # only deferred queries were ready: their sort dependency has
            # a future arrival, so jump the clock to it rather than spin
            nxt = self._queue.next_arrival(self.clock)
            if nxt is None:  # pragma: no cover - upcoming guarantees one
                for job in self._queue.take_ready(self.clock):
                    self._fail(job, UnknownDatasetError.reason)
                return bool(len(self._queue))
            self.clock = nxt
        self._m_depth.set(self._queue.depth())
        return True

    def _fail(self, job: Job, reason: str) -> None:
        job.transition("FAILED")
        job.error = reason
        job.done_at = self.clock
        self._m_failed.labels(reason=reason).inc()

    # ---------------------------------------------------------------- epochs

    def _runtime(self, *, faults: FaultPlan | None = None, spares: int = 0) -> Runtime:
        return Runtime(
            self.p,
            machine=self.machine,
            ranks_per_node=self.ranks_per_node,
            trace=self.trace,
            check=self.check,
            faults=faults,
            spares=spares,
        )

    def _finish_epoch(self, rt: Runtime, record: dict[str, Any]) -> float:
        """Advance the service clock, fold metrics/spans, file the record."""
        t0 = self.clock
        makespan = rt.elapsed()
        self.clock = t0 + makespan
        record.update(epoch=self.next_epoch, t0=t0, t1=self.clock)
        if self.trace and rt.trace is not None:
            record["spans"] = [
                (s.rank, s.name, s.cat, t0 + s.t0, t0 + s.t1)
                for s in rt.trace.spans()
            ]
        self.events.append(record)
        self._m_epochs.labels(kind=record["kind"]).inc()
        self._m_epoch_span.observe(makespan)
        collect_runtime(self.registry, rt, labels={"surface": "serve"})
        self.next_epoch += 1
        return makespan

    def _complete(self, job: Job, value: Any, epoch: int, batched_with: int) -> None:
        job.transition("DONE")
        job.done_at = self.clock
        job.epoch = epoch
        ttr = self.clock - job.spec.arrival
        job.result = JobResult(
            job_id=job.job_id,
            kind=job.spec.kind,
            value=value,
            time_to_result=ttr,
            epoch=epoch,
            batched_with=batched_with,
        )
        self._m_completed.labels(tenant=job.spec.tenant, kind=job.spec.kind).inc()
        self._m_ttr.labels(kind=job.spec.kind).observe(max(ttr, 0.0))

    def _run_query_epoch(self, jobs: Sequence[Job]) -> None:
        queries = []
        for job in jobs:
            job.transition("RUNNING")
            job.started_at = self.clock
            ds = self.datasets[(job.spec.tenant, job.spec.dataset)]
            q: dict[str, Any] = {
                "job_id": job.job_id,
                "kind": job.spec.kind,
                "parts": ds.parts,
                "index": ds.index,
            }
            if job.spec.kind == "percentile":
                q["pcts"] = job.spec.pcts
            elif job.spec.kind == "top_k":
                q["k"] = job.spec.k
            else:
                q["lo"], q["hi"] = job.spec.lo, job.spec.hi
            queries.append(q)
        rt = self._runtime()
        results = rt.run(query_program, args=(queries,))
        answers = results[0]
        snap = rt.stats.snapshot()
        a2av_calls = snap.collectives.get("alltoallv", (0, 0.0, 0))[0]
        self._m_query_a2av.inc(a2av_calls)
        if a2av_calls:
            raise ServiceError(
                "query epoch moved data: the index tier must never alltoallv"
            )
        epoch = self.next_epoch
        self._finish_epoch(
            rt,
            {
                "kind": "query",
                "jobs": [j.job_id for j in jobs],
                "datasets": sorted(
                    {f"{j.spec.tenant}/{j.spec.dataset}" for j in jobs}
                ),
            },
        )
        for job in jobs:
            self._complete(job, answers[job.job_id], epoch, len(jobs))

    def _run_sort_epoch(self, batch: Batch) -> None:
        for job in batch.jobs:
            job.transition("RUNNING")
            job.started_at = self.clock
        self._m_batch_size.observe(float(len(batch.jobs)))
        if batch.fused and len(batch.jobs) > 1:
            self._m_batched.inc(len(batch.jobs))
        ordinal = self.sort_epochs
        self.sort_epochs += 1
        spares = self.chaos.spares if self.chaos is not None else 0
        faults = (
            self.chaos.plan_for(ordinal, self.p + spares)
            if self.chaos is not None
            else None
        )
        resilient = faults is not None
        rt = self._runtime(faults=faults, spares=spares if resilient else 0)
        dry_before = planner.dry_run_count()
        results = rt.run(
            sort_epoch_program,
            args=(batch, self.plan_cache, resilient, self.seed),
        )
        self._m_dry.inc(planner.dry_run_count() - dry_before)

        dtype = batch.data[0][0].dtype
        if resilient:
            outputs, meta = self._collect_resilient(results, batch, dtype, rt)
        else:
            outputs = [None] * self.p
            for logical, runs, rank_meta in results[: self.p]:
                outputs[logical] = runs
            meta = results[0][2]
            if meta.get("cache_hit"):
                self._m_warm.inc()

        epoch = self.next_epoch
        self._finish_epoch(
            rt,
            {
                "kind": "sort",
                "jobs": list(batch.job_ids),
                "fused": batch.fused,
                "key_bits": batch.key_bits,
                "meta": meta,
            },
        )
        for slot, job in enumerate(batch.jobs):
            parts = [np.asarray(outputs[r][slot]) for r in range(self.p)]
            ds = Dataset(
                tenant=job.spec.tenant,
                name=job.spec.dataset,
                parts=parts,
                index=SortedIndex.build(parts),
                created_epoch=epoch,
            )
            self.datasets[ds.key] = ds  # atomically replaces any stale index
            job.notes.update(meta)
            self._complete(job, ds.summary(), epoch, len(batch.jobs))

    def _collect_resilient(
        self, results: list[Any], batch: Batch, dtype: np.dtype, rt: Runtime
    ) -> tuple[list[list[np.ndarray]], dict[str, Any]]:
        """Reassemble a crashed epoch's outputs by logical rank."""
        live = [r for r in results if isinstance(r, ResilientSortResult)]
        if len(live) != self.p or any(r.lost for r in live):
            raise ServiceError(
                f"lossless recovery failed: {len(live)}/{self.p} logical ranks "
                f"returned, lost={sorted(set().union(*(r.lost for r in live)) if live else ())}"
            )
        outputs: list[list[np.ndarray] | None] = [None] * self.p
        for res in live:
            runs = (
                demux_output(res.output, len(batch.jobs), batch.key_bits, dtype)
                if batch.fused
                else [np.asarray(res.output)]
            )
            outputs[int(res.comm.rank)] = runs
        first = live[0]
        crashed = len(rt.fault_stats.crashed)
        self._m_crash.inc(crashed)
        self._m_spares.inc(first.spares_used)
        meta = {
            "resilient": True,
            "attempts": first.attempts,
            "spares_used": first.spares_used,
            "crashed": sorted(rt.fault_stats.crashed),
        }
        return outputs, meta  # type: ignore[return-value]

    # ------------------------------------------------------------- reporting

    def results(self) -> dict[int, JobResult]:
        return {
            j.job_id: j.result
            for j in sorted(self.jobs.values(), key=lambda j: j.job_id)
            if j.result is not None
        }

    def stats(self) -> dict[str, Any]:
        """A JSON-able service summary (the ``stats`` CLI payload)."""
        states: dict[str, int] = {}
        for job in self.jobs.values():
            states[job.state] = states.get(job.state, 0) + 1
        completed = [j for j in self.jobs.values() if j.result is not None]
        return {
            "clock_s": self.clock,
            "p": self.p,
            "epochs": self.next_epoch,
            "sort_epochs": self.sort_epochs,
            "jobs": dict(sorted(states.items())),
            "queue_depth": self._queue.depth(),
            "datasets": [f"{t}/{d}" for t, d in sorted(self.datasets)],
            "jobs_per_vsecond": (
                len(completed) / self.clock if self.clock > 0 else 0.0
            ),
            "warm_plan_hits": self.registry.value("serve_warm_plan_hits_total"),
            "plan_dry_runs": self.registry.value("serve_plan_dry_runs_total"),
        }

    def span_tree(self) -> list[dict[str, Any]]:
        """Epoch records (with spans when tracing) on the service timeline."""
        return [dict(e) for e in self.events]

    def fingerprint(self) -> str:
        """Canonical digest of batch composition + results + span tree.

        Two replays of the same arrival script — crashes included — must
        produce identical fingerprints; ``tests/test_serve.py`` and the
        CLI ``--determinism`` flag assert exactly this.
        """
        doc = {
            "events": self.events,
            "results": {jid: r.to_dict() for jid, r in self.results().items()},
            "jobs": {
                j.job_id: (j.state, j.error) for j in self.jobs.values()
            },
        }
        blob = json.dumps(doc, sort_keys=True, default=str).encode()
        return hashlib.sha256(blob).hexdigest()

    # ----------------------------------------------------------- persistence

    def save(self, directory: str | Path) -> Path:
        """Persist jobs, datasets, and the index tier under ``directory``.

        Written as ``state.json`` (schema-versioned job/dataset/clock
        state) plus ``datasets.npz`` (the sorted partitions), so a later
        process can :meth:`load` the service and serve queries against
        existing indexes without re-sorting anything.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        ds_list = []
        arrays: dict[str, np.ndarray] = {}
        for i, (key, ds) in enumerate(sorted(self.datasets.items())):
            ds_list.append(
                {
                    "tenant": ds.tenant,
                    "name": ds.name,
                    "created_epoch": ds.created_epoch,
                    "dtype": str(ds.dtype),
                    "index": ds.index.to_dict(),
                    "slot": i,
                }
            )
            for r, part in enumerate(ds.parts):
                arrays[f"{i}:{r}"] = part
        state = {
            "schema": STATE_SCHEMA,
            "p": self.p,
            "clock": self.clock,
            "seed": self.seed,
            "next_epoch": self.next_epoch,
            "sort_epochs": self.sort_epochs,
            "next_job_id": self._queue._next_id,
            "jobs": [j.to_dict() for j in sorted(self.jobs.values(), key=lambda j: j.job_id)],
            "datasets": ds_list,
            "stats": self.stats(),
        }
        np.savez(directory / "datasets.npz", **arrays)
        tmp = directory / "state.json.tmp"
        tmp.write_text(json.dumps(state, indent=2, sort_keys=True, default=str))
        tmp.replace(directory / "state.json")
        return directory

    @classmethod
    def load(cls, directory: str | Path, **kwargs: Any) -> "SortService":
        """Rebuild a service from :meth:`save` output (datasets warm)."""
        directory = Path(directory)
        state = json.loads((directory / "state.json").read_text())
        if state.get("schema") != STATE_SCHEMA:
            raise ServiceError(
                f"state schema {state.get('schema')!r} unsupported "
                f"(this build reads {STATE_SCHEMA})"
            )
        service = cls(int(state["p"]), seed=int(state.get("seed", 0)), **kwargs)
        service.clock = float(state["clock"])
        service.next_epoch = int(state["next_epoch"])
        service.sort_epochs = int(state["sort_epochs"])
        service._queue.allocate_from(int(state["next_job_id"]))
        for raw in state["jobs"]:
            job = Job.from_dict(raw)
            service.jobs[job.job_id] = job
        with np.load(directory / "datasets.npz") as npz:
            for raw in state["datasets"]:
                slot = raw["slot"]
                index = SortedIndex.from_dict(raw["index"])
                parts = [npz[f"{slot}:{r}"] for r in range(int(state["p"]))]
                ds = Dataset(
                    tenant=raw["tenant"],
                    name=raw["name"],
                    parts=parts,
                    index=index,
                    created_epoch=int(raw["created_epoch"]),
                )
                service.datasets[ds.key] = ds
        return service
