"""Deterministic admission control and the ready queue.

Admission is synchronous and typed: :meth:`JobQueue.submit` either
returns a live :class:`~repro.serve.job.Job` or raises an
:class:`~repro.serve.job.AdmissionError` subclass naming the reason
(queue depth, tenant quota, malformed spec).  Rejected work never enters
the queue, so backpressure is visible to the tenant at submit time — the
"Robust Massively Parallel Sorting" lesson applied to the service tier:
an adversarial job mix degrades into typed rejections, not into unbounded
queue growth.

Scheduling order is a pure function of the job set: ready jobs sort by
``(-priority, arrival, job_id)`` — strict priority first, FIFO inside a
priority class, job id as the final total-order tiebreak.  Two replays of
the same arrival script therefore always dequeue identically, which is
what makes batch composition reproducible (asserted by
``tests/test_serve.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

from .job import (
    AdmissionError,
    Job,
    JobSpec,
    QueueFullError,
    QuotaExceededError,
)

__all__ = ["AdmissionPolicy", "JobQueue"]


@dataclass(frozen=True)
class AdmissionPolicy:
    """Service-side limits; all enforced at submit time.

    ``max_epoch_jobs`` caps how many jobs one epoch may fuse (batching
    compatibility can lower it further, never raise it).
    """

    max_queue_depth: int = 256
    max_per_tenant: int = 64
    max_epoch_jobs: int = 8

    def __post_init__(self) -> None:
        if self.max_queue_depth < 1 or self.max_per_tenant < 1:
            raise ValueError("queue depth and tenant quota must be >= 1")
        if self.max_epoch_jobs < 1:
            raise ValueError("max_epoch_jobs must be >= 1")


class JobQueue:
    """The pending/ready set with per-tenant accounting.

    Owns job-id allocation (dense, in submission order) so ids are a
    deterministic function of the arrival script.
    """

    def __init__(self, policy: AdmissionPolicy | None = None):
        self.policy = policy or AdmissionPolicy()
        self._queued: list[Job] = []
        self._next_id = 0

    # ------------------------------------------------------------- admission

    def submit(self, spec: JobSpec, *, now: float = 0.0) -> Job:
        """Admit ``spec`` or raise a typed :class:`AdmissionError`.

        ``JobSpec`` construction itself raises
        :class:`~repro.serve.job.MalformedJobError` for structural
        problems, so by the time a spec object exists only capacity
        checks remain.  Every submission — rejected ones included —
        consumes one job id, so ids are a pure function of the
        submission sequence; a rejection carries its (REJECTED) job on
        the exception's ``job`` attribute for the service's records.
        """
        job = Job(job_id=self._next_id, spec=spec, submitted_at=max(now, spec.arrival))
        self._next_id += 1
        error: AdmissionError | None = None
        if len(self._queued) >= self.policy.max_queue_depth:
            error = QueueFullError(
                f"queue is at max_queue_depth={self.policy.max_queue_depth}"
            )
        else:
            live = sum(1 for j in self._queued if j.spec.tenant == spec.tenant)
            if live >= self.policy.max_per_tenant:
                error = QuotaExceededError(
                    f"tenant {spec.tenant!r} already has {live} live jobs "
                    f"(max_per_tenant={self.policy.max_per_tenant})"
                )
        if error is not None:
            job.transition("REJECTED")
            job.error = error.reason
            error.job = job
            raise error
        self._queued.append(job)
        return job

    def allocate_from(self, next_id: int) -> None:
        """Resume id allocation at ``next_id`` (service restore path)."""
        self._next_id = max(self._next_id, int(next_id))

    def queued_jobs(self) -> tuple[Job, ...]:
        """The queued set, id-ordered (scheduling introspection)."""
        return tuple(sorted(self._queued, key=lambda j: j.job_id))

    # ------------------------------------------------------------ scheduling

    def depth(self) -> int:
        return len(self._queued)

    def tenants(self) -> dict[str, int]:
        """Live queued jobs per tenant (deterministically ordered)."""
        out: dict[str, int] = {}
        for job in self._queued:
            out[job.spec.tenant] = out.get(job.spec.tenant, 0) + 1
        return dict(sorted(out.items()))

    def next_arrival(self, now: float) -> float | None:
        """Earliest arrival strictly after ``now`` (None when drained)."""
        future = [j.spec.arrival for j in self._queued if j.spec.arrival > now]
        return min(future) if future else None

    def take_ready(self, now: float) -> list[Job]:
        """Remove and return every job with ``arrival <= now``.

        Returned in scheduling order: ``(-priority, arrival, job_id)``.
        """
        ready = [j for j in self._queued if j.spec.arrival <= now]
        if not ready:
            return []
        taken = set(j.job_id for j in ready)
        self._queued = [j for j in self._queued if j.job_id not in taken]
        ready.sort(key=lambda j: (-j.spec.priority, j.spec.arrival, j.job_id))
        for job in ready:
            job.transition("READY")
        return ready

    def requeue(self, job: Job) -> None:
        """Put a deferred job back (a query waiting for its dataset)."""
        job.transition("PENDING")
        self._queued.append(job)
        # keep the backing list id-ordered so iteration order never
        # depends on defer/requeue history
        self._queued.sort(key=lambda j: j.job_id)

    def __len__(self) -> int:
        return len(self._queued)
