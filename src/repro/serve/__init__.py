"""``repro.serve`` — sort-as-a-service on the virtual-clock runtime.

The library's algorithms become a long-running multi-tenant *service*:

* :mod:`~repro.serve.job` / :mod:`~repro.serve.queue` — the job model
  (sort / percentile / top_k / range_query), deterministic admission
  control with typed rejections, priority + FIFO scheduling;
* :mod:`~repro.serve.batch` — shared-epoch batching: compatible small
  sorts fuse into **one** SPMD sort via concatenate-with-provenance
  packing, amortizing splitter determination and the single ALLTOALLV;
* :mod:`~repro.serve.epoch` — the rank-side epoch programs, riding
  :func:`repro.autosort` (warm-plan tier: repeat fingerprints skip
  planning entirely) or the resilient paper-default path under chaos;
* :mod:`~repro.serve.index` — the persistent query tier: per-rank
  splitter tables + global offsets answer rank/percentile/range queries
  with **zero data movement**;
* :mod:`~repro.serve.service` — :class:`SortService`: the scheduler,
  the virtual service clock, dataset registry, metrics, chaos, and
  save/load persistence;
* :mod:`~repro.serve.workload` — scripted workloads + host-side oracles
  (the replay/soak driver).

CLI: ``python -m repro.serve replay|submit|status|stats``.
"""

from .batch import Batch, plan_batches, size_class
from .index import Dataset, SortedIndex, nearest_rank
from .job import (
    JOB_KINDS,
    JOB_STATES,
    AdmissionError,
    Job,
    JobResult,
    JobSpec,
    MalformedJobError,
    QueueFullError,
    QuotaExceededError,
    UnknownDatasetError,
)
from .queue import AdmissionPolicy, JobQueue
from .service import ServiceChaos, ServiceError, SortService
from .workload import make_chaos, make_workload, oracle, oracle_all

__all__ = [
    "JOB_KINDS",
    "JOB_STATES",
    "AdmissionError",
    "AdmissionPolicy",
    "Batch",
    "Dataset",
    "Job",
    "JobQueue",
    "JobResult",
    "JobSpec",
    "MalformedJobError",
    "QueueFullError",
    "QuotaExceededError",
    "ServiceChaos",
    "ServiceError",
    "SortService",
    "SortedIndex",
    "UnknownDatasetError",
    "make_chaos",
    "make_workload",
    "nearest_rank",
    "oracle",
    "oracle_all",
    "plan_batches",
    "size_class",
]
