"""Entry point for ``python -m repro.serve``."""

import sys

from .cli import main

sys.exit(main())
