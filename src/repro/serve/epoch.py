"""SPMD programs of one service epoch (the rank-side of the scheduler).

A *sort epoch* runs one distributed sort for a batch of 1..b jobs:

* **tuned path** (the steady state): the packed/solo input goes through
  :func:`repro.autosort`, so the service inherits the whole warm-plan
  tier — a repeat fingerprint hits the plan cache and performs **zero**
  planning dry runs (the counter the acceptance test watches).
* **resilient path** (epochs a chaos schedule marks): the paper-default
  plan under ``SortConfig(resilient=True, checkpoint=True)`` — mid-epoch
  rank crashes are absorbed by buddy checkpoints + warm spares and the
  epoch still returns every job's data with ``p`` unchanged.

On the tuned path each rank returns ``(logical_rank, per_job_runs,
meta)`` with the demultiplex charged to its virtual clock.  The resilient
path returns the raw :class:`~repro.core.resilient.ResilientSortResult`
instead: a promoted spare resumes *inside* the recovery loop and unwinds
straight out of ``rt.run`` with that result — code after the sort call
never executes on its thread — so the service demultiplexes host-side,
ordering partitions by each result's final communicator rank (the
logical slot), never by thread index.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

import numpy as np

from ..core.api import autosort
from ..core.config import SortConfig
from ..core.histsort import histogram_sort
from .batch import Batch, demux_output, pack_batch

if TYPE_CHECKING:  # pragma: no cover
    from ..mpi import Comm
    from ..tune.cache import PlanCache

__all__ = ["sort_epoch_program"]


def _demux(
    comm: "Comm", output: np.ndarray, batch: Batch, dtype: np.dtype
) -> list[np.ndarray]:
    """Per-job runs of this rank's sorted output (+ the demux charge)."""
    if not batch.fused:
        return [np.asarray(output)]
    comm.compute(comm.cost.compute.partition(int(np.asarray(output).size)))
    return demux_output(output, len(batch.jobs), batch.key_bits, dtype)


def sort_epoch_program(
    comm: "Comm",
    batch: Batch,
    cache: "PlanCache | None",
    resilient: bool,
    seed: int,
) -> Any:
    """Run one sort epoch; collective over ``comm``.

    Tuned path: ``(logical_rank, per_job_sorted_runs, meta)`` with the
    tuning decision in ``meta``.  Resilient path: the
    :class:`~repro.core.resilient.ResilientSortResult` itself (see the
    module docstring for why).
    """
    dtype = batch.data[0][comm.rank].dtype
    if batch.fused:
        with comm.tracer.span("serve.pack", jobs=len(batch.jobs)):
            work, dtype = pack_batch(batch, comm.rank, batch.key_bits)
            comm.compute(comm.cost.compute.partition(int(work.size)))
    else:
        work = np.asarray(batch.data[0][comm.rank])

    if resilient:
        cfg = SortConfig(resilient=True, checkpoint=True)
        # Returned as-is: promoted spares unwind out of rt.run with this
        # same result type, so the service treats every rank uniformly.
        return histogram_sort(comm, work, config=cfg)

    auto = autosort(comm, work, cache=cache, seed=seed)
    runs = _demux(comm, auto.output, batch, dtype)
    meta = {
        "resilient": False,
        "plan_id": auto.plan.plan_id,
        "plan_label": auto.plan.label,
        "plan_algo": auto.plan.algo,
        "cache_hit": bool(auto.cache_hit),
        "fingerprint": auto.fingerprint.bucket_key(),
    }
    return comm.rank, runs, meta
