"""Shared-epoch batching: fuse compatible small sort jobs into one sort.

The amortization argument of "Histogram Sort with Sampling" applied to a
multi-tenant service: splitter determination and the single ALLTOALLV
dominate small sorts, so ``b`` compatible jobs fused into **one** SPMD
epoch pay for one splitter search and one exchange instead of ``b``.

Fusion works by *concatenation with provenance*: each job in a batch gets
a slot number, every rank packs its per-job fragments as

    ``packed = (slot << key_bits) | key``        (uint64)

concatenates them, and the epoch runs one histogram sort over the packed
keys.  Because the slot occupies the high bits, the sorted output is
grouped slot-major — demultiplexing is a mask per job, and each job's
unpacked values form a valid globally sorted distributed dataset (its
per-rank pieces are contiguous in the global order).

Compatibility rules (all must hold, checked host-side at plan time):

* every job's keys are non-negative integers of the **same dtype**,
* the packed layout fits: ``slot_bits + key_bits <= 64`` where
  ``key_bits`` covers the batch-wide maximum key,
* the jobs sit in the same log2 size class (fusing a huge job with tiny
  ones would charge the giant's makespan to every small job's latency),
* the batch stays within ``AdmissionPolicy.max_epoch_jobs``.

Jobs that cannot fuse (floats, oversized keys, lone size classes) run as
solo epochs — correctness never depends on fusion.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from .job import Job

__all__ = ["Batch", "plan_batches", "size_class"]


def _bits_for(value: int) -> int:
    return max(1, int(value).bit_length())


def size_class(n_per_rank: int) -> int:
    """Jobs fuse only within one log2 class of per-rank volume."""
    return int(math.log2(max(n_per_rank, 1)))


@dataclass
class Batch:
    """One planned sort epoch: 1 job (solo) or several (fused).

    ``key_bits`` is the packed key width for fused batches (0 for solo);
    slots are positions in ``jobs`` order.
    """

    jobs: list[Job]
    fused: bool
    key_bits: int = 0
    #: host-side per-job per-rank input partitions, jobs-order aligned
    data: list[list[np.ndarray]] = field(default_factory=list)

    @property
    def job_ids(self) -> tuple[int, ...]:
        return tuple(j.job_id for j in self.jobs)

    @property
    def slot_bits(self) -> int:
        return _bits_for(max(len(self.jobs) - 1, 0)) if self.fused else 0

    def describe(self) -> dict[str, object]:
        return {
            "jobs": list(self.job_ids),
            "fused": self.fused,
            "key_bits": self.key_bits,
        }


def _fusable(parts: list[np.ndarray]) -> tuple[bool, int]:
    """(can this job's data enter a fused batch, max key observed)."""
    dtype = parts[0].dtype
    if dtype.kind not in "iu":
        return False, 0
    max_key = 0
    for arr in parts:
        if arr.size == 0:
            continue
        if dtype.kind == "i" and int(arr.min()) < 0:
            return False, 0
        max_key = max(max_key, int(arr.max()))
    return True, max_key


def plan_batches(
    sort_jobs: Sequence[Job],
    data: dict[int, list[np.ndarray]],
    *,
    max_epoch_jobs: int,
) -> list[Batch]:
    """Group ready sort jobs into fused/solo batches, deterministically.

    ``sort_jobs`` arrives in scheduling order and that order is preserved
    both across batches and inside each batch (slot numbers follow it).
    ``data`` maps job id to the job's materialized per-rank partitions.
    """
    groups: dict[tuple[str, int], list[tuple[Job, int]]] = {}
    solos: list[Batch] = []
    for job in sort_jobs:
        parts = data[job.job_id]
        ok, max_key = _fusable(parts)
        if not ok:
            solos.append(Batch(jobs=[job], fused=False, data=[parts]))
            continue
        key = (str(parts[0].dtype), size_class(job.spec.n_per_rank))
        groups.setdefault(key, []).append((job, max_key))

    batches: list[Batch] = []
    for _, members in sorted(groups.items()):
        start = 0
        while start < len(members):
            chunk = members[start : start + max_epoch_jobs]
            # shrink the chunk until the packed layout fits 64 bits
            while len(chunk) > 1:
                key_bits = _bits_for(max(mk for _, mk in chunk))
                if _bits_for(len(chunk) - 1) + key_bits <= 64:
                    break
                chunk = chunk[:-1]
            key_bits = _bits_for(max(mk for _, mk in chunk))
            jobs = [j for j, _ in chunk]
            if len(jobs) == 1 or _bits_for(len(jobs) - 1) + key_bits > 64:
                batches.extend(
                    Batch(jobs=[j], fused=False, data=[data[j.job_id]]) for j in jobs
                )
            else:
                batches.append(
                    Batch(
                        jobs=jobs,
                        fused=True,
                        key_bits=key_bits,
                        data=[data[j.job_id] for j in jobs],
                    )
                )
            start += len(chunk)

    batches.extend(solos)
    # deterministic epoch order: the batch carrying the oldest job first
    batches.sort(key=lambda b: min(b.job_ids))
    return batches


def pack_batch(
    batch: Batch, rank: int, key_bits: int
) -> tuple[np.ndarray, np.dtype]:
    """Rank ``rank``'s concatenated packed input for a fused batch."""
    frags = []
    for slot, parts in enumerate(batch.data):
        arr = np.asarray(parts[rank])
        frags.append((np.uint64(slot) << np.uint64(key_bits)) | arr.astype(np.uint64))
    combined = (
        np.concatenate(frags) if frags else np.empty(0, np.uint64)
    )
    return combined, batch.data[0][rank].dtype


def demux_output(
    output: np.ndarray, n_jobs: int, key_bits: int, dtype: np.dtype
) -> list[np.ndarray]:
    """Split one rank's sorted packed output back into per-job runs.

    Output stays sorted inside each slot because the slot occupies the
    high bits; the per-job run is the job's contiguous share of the
    global order that landed on this rank.
    """
    output = np.asarray(output, dtype=np.uint64)
    slots = output >> np.uint64(key_bits)
    mask = np.uint64((1 << key_bits) - 1)
    return [
        (output[slots == np.uint64(slot)] & mask).astype(dtype)
        for slot in range(n_jobs)
    ]
