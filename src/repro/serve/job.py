"""The service job model: specs, lifecycle states, results, rejections.

A *job* is one tenant request against the sort service.  Four kinds exist
(:data:`JOB_KINDS`):

``sort``
    Materialize a distributed dataset (a named generator spec — the
    scripted service is driven by reproducible workloads, so data is
    described, not shipped), sort it, and register the sorted partitions
    plus their :class:`~repro.serve.index.SortedIndex` under
    ``(tenant, dataset)``.
``percentile`` / ``top_k`` / ``range_query``
    Queries against a previously sorted dataset, answered from the index
    with **zero data movement** (no ALLTOALLV; see
    :mod:`repro.serve.index`).

Lifecycle
---------
::

    submit ──► PENDING ──► READY ──► RUNNING ──► DONE
        │          │                    │
        ├─► REJECTED (typed, at admission)
        │          └────────────────► FAILED (typed, at scheduling/run)

``PENDING`` jobs have been admitted but their virtual arrival time has
not been reached (or a query's dataset does not exist yet); ``READY``
jobs are eligible for the next epoch.  Rejections happen synchronously
at :meth:`~repro.serve.service.SortService.submit` and carry a typed
:class:`AdmissionError` subclass; ``FAILED`` marks jobs whose dataset
dependency can never be satisfied.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Mapping

__all__ = [
    "JOB_KINDS",
    "JOB_STATES",
    "AdmissionError",
    "Job",
    "JobResult",
    "JobSpec",
    "MalformedJobError",
    "QueueFullError",
    "QuotaExceededError",
    "UnknownDatasetError",
]

#: the four job kinds the service accepts
JOB_KINDS = ("sort", "percentile", "top_k", "range_query")

#: lifecycle states (see the module docstring for the transition diagram)
JOB_STATES = ("PENDING", "READY", "RUNNING", "DONE", "REJECTED", "FAILED")

#: kinds that only read an existing sorted dataset
QUERY_KINDS = ("percentile", "top_k", "range_query")


class AdmissionError(ValueError):
    """Base of every typed rejection; ``reason`` keys the rejection metric."""

    reason = "rejected"


class QueueFullError(AdmissionError):
    """The service queue is at ``max_queue_depth``."""

    reason = "queue_full"


class QuotaExceededError(AdmissionError):
    """The tenant already has ``max_per_tenant`` live jobs."""

    reason = "tenant_quota"


class MalformedJobError(AdmissionError):
    """The spec is structurally invalid (bad kind, missing parameters)."""

    reason = "malformed"


class UnknownDatasetError(AdmissionError):
    """A query names a dataset no sort job has created or will create."""

    reason = "unknown_dataset"


@dataclass(frozen=True)
class JobSpec:
    """One immutable job request.

    ``arrival`` is the job's submission instant in **virtual seconds** on
    the service clock — the scripted replay driver uses it to model load;
    interactive submission passes the current clock.  Kind-specific
    parameters live in the dedicated fields; unused ones stay at their
    defaults and are validated away.
    """

    kind: str
    tenant: str
    dataset: str
    arrival: float = 0.0
    priority: int = 0
    #: sort jobs: generator spec (see :data:`repro.data.DISTRIBUTIONS`)
    dist: str = "uniform_u64"
    n_per_rank: int = 0
    seed: int = 1
    #: percentile jobs: requested percentiles in (0, 100]
    pcts: tuple[float, ...] = ()
    #: top_k jobs: how many of the globally largest keys
    k: int = 0
    #: range_query jobs: half-open key interval [lo, hi)
    lo: float = 0.0
    hi: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise MalformedJobError(
                f"unknown job kind {self.kind!r}; expected one of {JOB_KINDS}"
            )
        if not self.tenant or not self.dataset:
            raise MalformedJobError("tenant and dataset must be non-empty")
        if self.arrival < 0:
            raise MalformedJobError("arrival must be >= 0 virtual seconds")
        if self.kind == "sort":
            if self.n_per_rank < 1:
                raise MalformedJobError("sort jobs need n_per_rank >= 1")
        elif self.kind == "percentile":
            if not self.pcts:
                raise MalformedJobError("percentile jobs need a non-empty pcts")
            for p in self.pcts:
                if not 0.0 <= p <= 100.0:
                    raise MalformedJobError(f"percentile {p} outside [0, 100]")
        elif self.kind == "top_k":
            if self.k < 1:
                raise MalformedJobError("top_k jobs need k >= 1")
        elif self.kind == "range_query":
            if not self.lo <= self.hi:
                raise MalformedJobError("range_query needs lo <= hi")

    @property
    def is_query(self) -> bool:
        return self.kind in QUERY_KINDS

    def to_dict(self) -> dict[str, Any]:
        out = {f.name: getattr(self, f.name) for f in fields(self)}
        out["pcts"] = list(self.pcts)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobSpec":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise MalformedJobError(f"unknown JobSpec field(s): {sorted(unknown)}")
        kwargs = dict(data)
        if "pcts" in kwargs:
            kwargs["pcts"] = tuple(float(p) for p in kwargs["pcts"])
        return cls(**kwargs)


@dataclass(frozen=True)
class JobResult:
    """What a completed job hands back to its tenant.

    ``value`` is kind-shaped: a sort summary (element count, key range,
    checksum of the globally sorted sequence — partition layout is a
    service detail), a ``{pct: value}`` mapping, a descending top-k list,
    or a ``{count, first_rank}`` range summary.  All values are plain
    JSON-able Python so results persist across service restarts.
    """

    job_id: int
    kind: str
    value: Any
    #: completion − arrival, virtual seconds (what the latency SLO sees)
    time_to_result: float
    epoch: int
    #: jobs fused into the same epoch, this one included (1 = solo)
    batched_with: int = 1

    def to_dict(self) -> dict[str, Any]:
        return {
            "job_id": self.job_id,
            "kind": self.kind,
            "value": self.value,
            "time_to_result": self.time_to_result,
            "epoch": self.epoch,
            "batched_with": self.batched_with,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobResult":
        return cls(
            job_id=int(data["job_id"]),
            kind=str(data["kind"]),
            value=data["value"],
            time_to_result=float(data["time_to_result"]),
            epoch=int(data["epoch"]),
            batched_with=int(data.get("batched_with", 1)),
        )


@dataclass
class Job:
    """One admitted job's mutable service record."""

    job_id: int
    spec: JobSpec
    state: str = "PENDING"
    submitted_at: float = 0.0
    started_at: float | None = None
    done_at: float | None = None
    epoch: int | None = None
    result: JobResult | None = None
    error: str | None = None
    #: free-form service annotations (plan id, warm-hit flag, ...)
    notes: dict[str, Any] = field(default_factory=dict)

    def transition(self, state: str) -> None:
        if state not in JOB_STATES:
            raise ValueError(f"unknown job state {state!r}")
        self.state = state

    def to_dict(self) -> dict[str, Any]:
        return {
            "job_id": self.job_id,
            "spec": self.spec.to_dict(),
            "state": self.state,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "done_at": self.done_at,
            "epoch": self.epoch,
            "result": self.result.to_dict() if self.result is not None else None,
            "error": self.error,
            "notes": self.notes,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Job":
        result = data.get("result")
        return cls(
            job_id=int(data["job_id"]),
            spec=JobSpec.from_dict(data["spec"]),
            state=str(data["state"]),
            submitted_at=float(data["submitted_at"]),
            started_at=data.get("started_at"),
            done_at=data.get("done_at"),
            epoch=data.get("epoch"),
            result=JobResult.from_dict(result) if result is not None else None,
            error=data.get("error"),
            notes=dict(data.get("notes", {})),
        )
