"""``python -m repro.serve`` — replay / submit / status / stats.

Exit codes (CI contract):

* ``0`` — success; for ``replay``, every completed job matched its
  oracle (and, under ``--determinism``, both replays fingerprinted
  identically);
* ``1`` — an oracle mismatch, a failed job, a determinism divergence,
  or a broken service invariant;
* ``2`` — usage error: unknown state directory, malformed spec, bad
  arguments.

``replay`` is the scripted soak the CI ``serve`` job runs: build the
standard mixed workload (:func:`repro.serve.workload.make_workload`),
optionally arm a chaos schedule, drain the service, and verify every
result against the single-process oracle.  ``submit``/``status``/
``stats`` operate on a saved service directory (:meth:`SortService.save`)
— the persistent query tier: a later process can answer queries against
existing sorted indexes without re-sorting anything.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Sequence

from .job import AdmissionError, JobSpec
from .queue import AdmissionPolicy
from .service import ServiceError, SortService
from .workload import make_chaos, make_workload, oracle_all

__all__ = ["main"]

USAGE_ERROR = 2


def _progress(msg: str, *, quiet: bool) -> None:
    if not quiet:
        print(f"[repro.serve] {msg}", file=sys.stderr)


def _run_replay(args: argparse.Namespace) -> tuple[SortService, list[JobSpec]]:
    workload = make_workload(args.p, seed=args.seed)
    chaos = make_chaos(workload, seed=args.seed + 1) if args.chaos else None
    if chaos is not None and args.spares is not None:
        from .service import ServiceChaos

        chaos = ServiceChaos(
            crashes=chaos.crashes, spares=args.spares, seed=chaos.seed
        )
    service = SortService(
        args.p,
        policy=AdmissionPolicy(max_epoch_jobs=args.max_epoch_jobs),
        chaos=chaos,
        trace=args.trace,
        seed=args.seed,
    )
    service.replay(workload)
    return service, workload


def _check_oracle(
    service: SortService, workload: Sequence[JobSpec], *, quiet: bool
) -> int:
    expected = oracle_all(workload, service.p)
    mismatches = 0
    for job_id, want in enumerate(expected):
        job = service.jobs.get(job_id)
        if job is None or job.result is None:
            print(f"job {job_id}: no result (state={job.state if job else '?'})")
            mismatches += 1
            continue
        got = job.result.value
        if got != want:
            print(f"job {job_id} ({job.spec.kind}): got {got!r}, want {want!r}")
            mismatches += 1
    _progress(
        f"oracle: {len(expected) - mismatches}/{len(expected)} jobs match",
        quiet=quiet,
    )
    return mismatches


def _cmd_replay(args: argparse.Namespace) -> int:
    service, workload = _run_replay(args)
    failures = 0
    if not args.no_oracle:
        failures += _check_oracle(service, workload, quiet=args.quiet)
    if args.determinism:
        _progress("determinism: second replay", quiet=args.quiet)
        second, _ = _run_replay(args)
        fp1, fp2 = service.fingerprint(), second.fingerprint()
        if fp1 != fp2:
            print(f"determinism: fingerprints diverge\n  {fp1}\n  {fp2}")
            failures += 1
        else:
            _progress(f"determinism: fingerprint {fp1[:16]}… stable", quiet=args.quiet)
    stats = service.stats()
    if args.save:
        service.save(args.save)
        _progress(f"state saved to {args.save}", quiet=args.quiet)
    if args.json:
        print(json.dumps(stats, indent=2, sort_keys=True, default=str))
    else:
        print(_format_stats(stats))
    return 1 if failures else 0


def _format_stats(stats: dict[str, Any]) -> str:
    lines = [
        f"clock               {stats['clock_s']:.6f} virtual s",
        f"epochs              {stats['epochs']} ({stats['sort_epochs']} sort)",
        f"jobs                " + ", ".join(f"{k}={v}" for k, v in stats["jobs"].items()),
        f"throughput          {stats['jobs_per_vsecond']:.2f} jobs/virtual-s",
        f"warm plan hits      {int(stats['warm_plan_hits'])}",
        f"planner dry runs    {int(stats['plan_dry_runs'])}",
        f"datasets            {len(stats['datasets'])}",
    ]
    return "\n".join(lines)


def _load_state(args: argparse.Namespace) -> SortService | None:
    directory = Path(args.state)
    if not (directory / "state.json").exists():
        print(f"error: no service state in {directory}", file=sys.stderr)
        return None
    return SortService.load(directory)


def _cmd_submit(args: argparse.Namespace) -> int:
    service = _load_state(args)
    if service is None:
        return USAGE_ERROR
    try:
        raw = json.loads(args.spec)
        spec_data = dict(raw)
        if "pcts" in spec_data:
            spec_data["pcts"] = tuple(spec_data["pcts"])
        spec_data.setdefault("arrival", service.clock)
        spec = JobSpec.from_dict(spec_data)
    except (json.JSONDecodeError, TypeError) as exc:
        print(f"error: spec is not valid JSON: {exc}", file=sys.stderr)
        return USAGE_ERROR
    except AdmissionError as exc:
        print(f"error: malformed spec: {exc}", file=sys.stderr)
        return USAGE_ERROR
    try:
        job = service.submit(spec)
    except AdmissionError as exc:
        print(f"rejected ({exc.reason}): {exc}", file=sys.stderr)
        return 1
    service.drain()
    service.save(args.state)
    result = service.jobs[job.job_id].result
    payload = service.jobs[job.job_id].to_dict()
    print(json.dumps(payload, indent=2, sort_keys=True, default=str))
    return 0 if result is not None else 1


def _cmd_status(args: argparse.Namespace) -> int:
    service = _load_state(args)
    if service is None:
        return USAGE_ERROR
    if args.job is not None:
        job = service.jobs.get(args.job)
        if job is None:
            print(f"error: no job {args.job}", file=sys.stderr)
            return USAGE_ERROR
        print(json.dumps(job.to_dict(), indent=2, sort_keys=True, default=str))
        return 0
    for job in sorted(service.jobs.values(), key=lambda j: j.job_id):
        ttr = (
            f"{job.result.time_to_result:.6f}s" if job.result is not None else "-"
        )
        print(
            f"{job.job_id:>5}  {job.state:<8}  {job.spec.kind:<12}"
            f"{job.spec.tenant}/{job.spec.dataset:<14}  epoch={job.epoch}  ttr={ttr}"
        )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    service = _load_state(args)
    if service is None:
        return USAGE_ERROR
    stats = service.stats()
    if args.json:
        print(json.dumps(stats, indent=2, sort_keys=True, default=str))
    else:
        print(_format_stats(stats))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="The sort service: scripted replay and state inspection.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_replay = sub.add_parser(
        "replay", help="run the standard mixed workload and verify oracles"
    )
    p_replay.add_argument("--p", type=int, default=4, help="service ranks")
    p_replay.add_argument("--seed", type=int, default=0, help="workload seed")
    p_replay.add_argument(
        "--chaos", action="store_true", help="inject the standard crash schedule"
    )
    p_replay.add_argument(
        "--spares", type=int, help="override warm spares for chaos epochs"
    )
    p_replay.add_argument(
        "--determinism",
        action="store_true",
        help="replay twice and require identical service fingerprints",
    )
    p_replay.add_argument("--max-epoch-jobs", type=int, default=8)
    p_replay.add_argument("--trace", action="store_true", help="record epoch spans")
    p_replay.add_argument(
        "--no-oracle", action="store_true", help="skip oracle verification"
    )
    p_replay.add_argument("--save", help="persist service state to this directory")
    p_replay.add_argument("--json", action="store_true", help="JSON stats output")
    p_replay.add_argument("--quiet", action="store_true")
    p_replay.set_defaults(fn=_cmd_replay)

    p_submit = sub.add_parser(
        "submit", help="submit one job (JSON spec) against saved service state"
    )
    p_submit.add_argument("--state", required=True, help="service state directory")
    p_submit.add_argument(
        "spec", help='JobSpec JSON, e.g. \'{"kind":"top_k","tenant":"acme",...}\''
    )
    p_submit.set_defaults(fn=_cmd_submit)

    p_status = sub.add_parser("status", help="list jobs of a saved service")
    p_status.add_argument("--state", required=True)
    p_status.add_argument("--job", type=int, help="show one job in full")
    p_status.set_defaults(fn=_cmd_status)

    p_stats = sub.add_parser("stats", help="service summary of a saved service")
    p_stats.add_argument("--state", required=True)
    p_stats.add_argument("--json", action="store_true")
    p_stats.set_defaults(fn=_cmd_stats)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except ServiceError as exc:
        print(f"service invariant broken: {exc}", file=sys.stderr)
        return 1
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return USAGE_ERROR


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
