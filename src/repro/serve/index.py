"""The sorted-output index: the service's persistent query tier.

After a sort epoch the service keeps, per dataset, the sorted per-rank
partitions **plus** a :class:`SortedIndex` — the per-rank splitter table
(first/last key of every partition) and the global offset of each
partition.  Rank/percentile/range queries then become ``nth_element``-style
lookups: every rank binary-searches its own partition and the answers
travel as O(result) scalars through small collectives — **no ALLTOALLV,
no data movement** (asserted per query epoch by the service and by
``tests/test_serve.py``).

Index invalidation: an index is valid exactly as long as its dataset's
partitions.  Re-sorting a dataset (a second ``sort`` job under the same
``(tenant, dataset)`` name) atomically replaces partitions *and* index in
the same epoch; there is no window in which queries can observe a stale
index, because epochs are serialized on the service's virtual clock.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Mapping, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from ..mpi import Comm

__all__ = ["Dataset", "SortedIndex", "nearest_rank", "query_program"]


def nearest_rank(pct: float, n: int) -> int:
    """0-based global position of the ``pct``-th percentile (nearest-rank).

    ``ceil(pct/100 * n) - 1`` clamped into ``[0, n-1]``: exact at both
    edges (``pct=100`` maps to the maximum, never one past it — the
    truncation bug the open-coded variant had).
    """
    if n < 1:
        raise ValueError("nearest_rank needs n >= 1")
    if not 0.0 <= pct <= 100.0:
        raise ValueError(f"percentile {pct} outside [0, 100]")
    return min(max(math.ceil(pct / 100.0 * n) - 1, 0), n - 1)


@dataclass(frozen=True)
class SortedIndex:
    """Per-rank splitter table + global offsets of one sorted dataset.

    ``offsets`` has ``p + 1`` entries (partition ``r`` holds global
    positions ``[offsets[r], offsets[r+1])``); ``lo``/``hi`` are the
    first/last key of each partition (0 for empty partitions — consult
    ``offsets`` for emptiness).
    """

    offsets: tuple[int, ...]
    lo: tuple[float, ...]
    hi: tuple[float, ...]

    @property
    def total(self) -> int:
        return self.offsets[-1]

    @property
    def p(self) -> int:
        return len(self.offsets) - 1

    def owner(self, position: int) -> int:
        """The rank whose partition holds global ``position``."""
        if not 0 <= position < self.total:
            raise IndexError(f"position {position} out of range [0, {self.total})")
        return int(np.searchsorted(np.asarray(self.offsets), position, side="right")) - 1

    @classmethod
    def build(cls, parts: Sequence[np.ndarray]) -> "SortedIndex":
        sizes = [int(np.asarray(p).size) for p in parts]
        offsets = [0]
        for s in sizes:
            offsets.append(offsets[-1] + s)
        lo = tuple(float(p[0]) if np.asarray(p).size else 0.0 for p in parts)
        hi = tuple(float(p[-1]) if np.asarray(p).size else 0.0 for p in parts)
        return cls(offsets=tuple(offsets), lo=lo, hi=hi)

    def to_dict(self) -> dict[str, Any]:
        return {"offsets": list(self.offsets), "lo": list(self.lo), "hi": list(self.hi)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SortedIndex":
        return cls(
            offsets=tuple(int(x) for x in data["offsets"]),
            lo=tuple(float(x) for x in data["lo"]),
            hi=tuple(float(x) for x in data["hi"]),
        )


@dataclass
class Dataset:
    """One tenant-scoped sorted dataset the service keeps warm."""

    tenant: str
    name: str
    parts: list[np.ndarray]
    index: SortedIndex
    created_epoch: int

    @property
    def key(self) -> tuple[str, str]:
        return (self.tenant, self.name)

    @property
    def dtype(self) -> np.dtype:
        return self.parts[0].dtype

    def summary(self) -> dict[str, Any]:
        """The sort job's result payload: layout-independent facts only.

        The checksum covers the globally sorted concatenation, so it is
        identical whatever partitioning the chosen plan produced.
        """
        joined = np.concatenate(self.parts) if self.parts else np.empty(0)
        return {
            "n": int(self.index.total),
            "dtype": str(self.dtype),
            "min": joined[0].item() if joined.size else None,
            "max": joined[-1].item() if joined.size else None,
            "checksum": zlib.crc32(np.ascontiguousarray(joined).tobytes()),
        }


def _scalar(value: Any) -> Any:
    """Numpy scalar → plain Python (results must persist as JSON)."""
    return value.item() if hasattr(value, "item") else value


def query_program(comm: "Comm", queries: Sequence[Mapping[str, Any]]) -> dict[int, Any]:
    """SPMD program of one query epoch; collective over ``comm``.

    ``queries`` is the epoch's batch — each entry carries the job id,
    kind, parameters, and the target dataset's partitions + index.  All
    ranks iterate the same list (collective congruence), do local binary
    searches, and combine O(result)-sized scalars with small collectives.
    By construction there is **no alltoallv and no partition movement**;
    the service asserts this on the epoch's traffic statistics.
    """
    compute = comm.cost.compute
    out: dict[int, Any] = {}
    for q in queries:
        kind = q["kind"]
        index: SortedIndex = q["index"]
        local = np.asarray(q["parts"][comm.rank])
        off = index.offsets[comm.rank]
        end = index.offsets[comm.rank + 1]
        with comm.tracer.span("serve.query", job=q["job_id"], kind=kind):
            if kind == "percentile":
                positions = [nearest_rank(p, index.total) for p in q["pcts"]]
                mine = [
                    (i, _scalar(local[k - off]))
                    for i, k in enumerate(positions)
                    if off <= k < end
                ]
                comm.compute(compute.search(len(positions), max(local.size, 1)))
                gathered = comm.allgather(mine)
                by_pos = {i: v for pairs in gathered for i, v in pairs}
                out[q["job_id"]] = {
                    float(p): by_pos[i] for i, p in enumerate(q["pcts"])
                }
            elif kind == "top_k":
                k = min(q["k"], index.total)
                cut = index.total - k
                start = max(cut, off)
                slice_ = local[start - off : end - off] if start < end else local[:0]
                comm.compute(compute.search(1, max(local.size, 1)))
                gathered = comm.allgather([_scalar(v) for v in slice_])
                ascending = [v for chunk in gathered for v in chunk]
                out[q["job_id"]] = ascending[::-1]
            elif kind == "range_query":
                lo_cnt = int(np.searchsorted(local, q["lo"], side="left"))
                hi_cnt = int(np.searchsorted(local, q["hi"], side="left"))
                comm.compute(compute.search(2, max(local.size, 1)))
                count, first = comm.allreduce((hi_cnt - lo_cnt, lo_cnt))
                out[q["job_id"]] = {"count": int(count), "first_rank": int(first)}
            else:  # pragma: no cover - specs are validated at admission
                raise ValueError(f"unknown query kind {kind!r}")
    return out
