"""Payload handling: value-semantics copies and size accounting.

The runtime is in-process, so without copies a "sent" NumPy array would be
aliased between ranks; every payload is copied exactly once at the send /
deposit side, mirroring MPI's value semantics.
"""

from __future__ import annotations

import copy
from numbers import Number
from typing import Any

import numpy as np


def copy_payload(obj: Any) -> Any:
    """Deep-enough copy of a message payload."""
    if obj is None or isinstance(obj, (bool, int, float, complex, str, bytes, np.generic)):
        return obj
    if isinstance(obj, np.ndarray):
        return obj.copy()
    if isinstance(obj, tuple):
        return tuple(copy_payload(x) for x in obj)
    if isinstance(obj, list):
        return [copy_payload(x) for x in obj]
    if isinstance(obj, dict):
        return {k: copy_payload(v) for k, v in obj.items()}
    return copy.deepcopy(obj)


def payload_nbytes(obj: Any) -> int:
    """Approximate wire size of a payload in bytes."""
    if obj is None:
        return 0
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, np.generic):
        return int(obj.itemsize)
    if isinstance(obj, bool):
        return 1
    if isinstance(obj, (bytes, bytearray)):
        return len(obj)
    if isinstance(obj, str):
        return len(obj.encode("utf-8", errors="replace"))
    if isinstance(obj, Number):
        return 8
    if isinstance(obj, (tuple, list)):
        return sum(payload_nbytes(x) for x in obj) + 8
    if isinstance(obj, dict):
        return sum(payload_nbytes(k) + payload_nbytes(v) for k, v in obj.items()) + 8
    return 64
