"""Payload handling: value-semantics copies and size accounting.

The runtime is in-process, so without copies a "sent" NumPy array would be
aliased between ranks; every payload is copied exactly once at the send /
deposit side, mirroring MPI's value semantics.
"""

from __future__ import annotations

import copy
from numbers import Number
from typing import Any, Iterator

import numpy as np


def copy_payload(obj: Any) -> Any:
    """Deep-enough copy of a message payload."""
    if obj is None or isinstance(obj, (bool, int, float, complex, str, bytes, np.generic)):
        return obj
    if isinstance(obj, np.ndarray):
        return obj.copy()
    if isinstance(obj, tuple):
        return tuple(copy_payload(x) for x in obj)
    if isinstance(obj, list):
        return [copy_payload(x) for x in obj]
    if isinstance(obj, dict):
        return {k: copy_payload(v) for k, v in obj.items()}
    return copy.deepcopy(obj)


#: maximum container/object nesting depth walked by :func:`iter_arrays`
_WALK_DEPTH = 8


def iter_arrays(obj: Any, *, _depth: int = 0, _seen: set[int] | None = None) -> Iterator[np.ndarray]:
    """Yield every ndarray reachable inside a payload.

    Walks tuples/lists/dicts, and — for *user* classes only — one
    ``__dict__`` level per object, so a payload object that smuggles an
    array past :func:`copy_payload` (e.g. via ``__deepcopy__``) is still
    visible to the sanitizer.  Instances of ``repro.*`` classes are not
    introspected: runtime handles (``Comm`` and friends) reach the whole
    runtime graph, including mutable bookkeeping arrays that must never be
    mistaken for payload buffers.
    """
    if _depth > _WALK_DEPTH:
        return
    if isinstance(obj, np.ndarray):
        yield obj
        return
    if obj is None or isinstance(obj, (bool, int, float, complex, str, bytes, np.generic)):
        return
    if _seen is None:
        _seen = set()
    if id(obj) in _seen:
        return
    _seen.add(id(obj))
    if isinstance(obj, (tuple, list)):
        for x in obj:
            yield from iter_arrays(x, _depth=_depth + 1, _seen=_seen)
    elif isinstance(obj, dict):
        for v in obj.values():
            yield from iter_arrays(v, _depth=_depth + 1, _seen=_seen)
    elif not type(obj).__module__.startswith("repro"):
        attrs = getattr(obj, "__dict__", None)
        if attrs is not None:
            for v in attrs.values():
                yield from iter_arrays(v, _depth=_depth + 1, _seen=_seen)


def payload_nbytes(obj: Any) -> int:
    """Approximate wire size of a payload in bytes."""
    if obj is None:
        return 0
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, np.generic):
        return int(obj.itemsize)
    if isinstance(obj, bool):
        return 1
    if isinstance(obj, (bytes, bytearray)):
        return len(obj)
    if isinstance(obj, str):
        return len(obj.encode("utf-8", errors="replace"))
    if isinstance(obj, Number):
        return 8
    if isinstance(obj, (tuple, list)):
        return sum(payload_nbytes(x) for x in obj) + 8
    if isinstance(obj, dict):
        return sum(payload_nbytes(k) + payload_nbytes(v) for k, v in obj.items()) + 8
    return 64
