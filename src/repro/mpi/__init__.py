"""In-process SPMD message-passing runtime (the MPI/PGAS substitute).

One thread per rank, mpi4py-like communicator API, deterministic collective
semantics, and virtual-time accounting via :mod:`repro.machine`.

Quick start::

    from repro.mpi import run_spmd

    def program(comm):
        part = comm.rank * 10
        total = comm.allreduce(part)
        return total

    print(run_spmd(4, program))
"""

from .comm import ANY_SOURCE, ANY_TAG, Comm
from .errors import (
    Aborted,
    CollectiveMismatchError,
    CommunicatorError,
    DeadlockError,
    MessageLeakError,
    SPMDError,
)
from .ops import LAND, LOR, MAX, MAXLOC, MIN, MINLOC, PROD, SUM, ReduceOp
from .payload import copy_payload, payload_nbytes
from .requests import Request, waitall
from .runtime import Runtime, Stats, run_spmd

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Aborted",
    "CollectiveMismatchError",
    "Comm",
    "CommunicatorError",
    "DeadlockError",
    "LAND",
    "LOR",
    "MAX",
    "MAXLOC",
    "MIN",
    "MINLOC",
    "MessageLeakError",
    "PROD",
    "ReduceOp",
    "Request",
    "Runtime",
    "SPMDError",
    "SUM",
    "Stats",
    "copy_payload",
    "payload_nbytes",
    "run_spmd",
    "waitall",
]
