"""In-process SPMD message-passing runtime (the MPI/PGAS substitute).

One thread per rank, mpi4py-like communicator API, deterministic collective
semantics, and virtual-time accounting via :mod:`repro.machine`.

Quick start::

    from repro.mpi import run_spmd

    def program(comm):
        part = comm.rank * 10
        total = comm.allreduce(part)
        return total

    print(run_spmd(4, program))

Fault tolerance: pass ``faults=FaultPlan(...)`` (see :mod:`repro.faults`)
to inject deterministic message drops/duplications/delays and rank
crashes; :mod:`repro.mpi.reliable` and :class:`~repro.mpi.resilient.
ResilientComm` provide the ARQ p2p layer and drop-tolerant collectives,
and ``comm.revoke()`` / ``comm.agree()`` / ``comm.shrink()`` implement
ULFM-style recovery.
"""

from .checkpoint import PH_SORTED, PH_SPLIT, PH_START, BuddyCheckpointer, Replica
from .comm import ANY_SOURCE, ANY_TAG, Comm
from .errors import (
    Aborted,
    CircuitOpenError,
    CollectiveMismatchError,
    CommRevokedError,
    CommunicatorError,
    DeadlockError,
    MessageLeakError,
    MessageTimeoutError,
    RankFailedError,
    SPMDError,
)
from .ops import LAND, LOR, MAX, MAXLOC, MIN, MINLOC, PROD, SUM, ReduceOp
from .payload import copy_payload, payload_nbytes
from .reliable import (
    ADAPTIVE_POLICY,
    DEFAULT_POLICY,
    RetryPolicy,
    reliable_recv,
    reliable_send,
)
from .requests import Request, waitall
from .resilient import ResilientComm
from .runtime import Runtime, Stats, StatsSnapshot, run_spmd
from .spare import PoolVerdict

__all__ = [
    "ADAPTIVE_POLICY",
    "ANY_SOURCE",
    "ANY_TAG",
    "Aborted",
    "BuddyCheckpointer",
    "CircuitOpenError",
    "CollectiveMismatchError",
    "Comm",
    "CommRevokedError",
    "CommunicatorError",
    "DEFAULT_POLICY",
    "DeadlockError",
    "LAND",
    "LOR",
    "MAX",
    "MAXLOC",
    "MIN",
    "MINLOC",
    "MessageLeakError",
    "MessageTimeoutError",
    "PH_SORTED",
    "PH_SPLIT",
    "PH_START",
    "PROD",
    "PoolVerdict",
    "RankFailedError",
    "ReduceOp",
    "Replica",
    "Request",
    "ResilientComm",
    "RetryPolicy",
    "Runtime",
    "SPMDError",
    "SUM",
    "Stats",
    "StatsSnapshot",
    "copy_payload",
    "payload_nbytes",
    "reliable_recv",
    "reliable_send",
    "run_spmd",
    "waitall",
]
