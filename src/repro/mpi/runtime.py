"""The SPMD runtime: spawns one thread per rank and runs a rank function.

This is the in-process substitute for ``mpiexec`` + MPI: a
:class:`Runtime` owns the world communicator, the per-rank virtual clocks,
and the traffic statistics; :func:`run_spmd` is the one-call entry point.

Virtual time
------------
``runtime.clocks[r]`` is rank ``r``'s virtual clock in seconds.  Every
communication call and every explicit :meth:`Comm.compute` charge advances
it by the machine model's price.  After a run, ``runtime.elapsed()`` (the
max over ranks) is the modelled makespan of the SPMD program — this is what
the benchmarks report.
"""

from __future__ import annotations

import math
import os
import threading
import warnings
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from ..faults.plan import FaultPlan, FaultStats
from ..machine import CostModel, MachineSpec, abstract_cluster, make_placement
from ..trace.events import TraceRecorder
from .comm import Comm, _CommState
from .errors import Aborted, DeadlockError, MessageLeakError, RankCrashed, SPMDError
from .waitstate import WaitRegistry


def _check_default() -> bool:
    """Resolve ``check=None`` from the ``REPRO_CHECK`` environment variable."""
    return os.environ.get("REPRO_CHECK", "").strip().lower() not in ("", "0", "false")


def _sanitize_default() -> bool:
    """Resolve ``sanitize=None`` from the ``REPRO_SANITIZE`` environment variable."""
    return os.environ.get("REPRO_SANITIZE", "").strip().lower() not in ("", "0", "false")


@dataclass(frozen=True)
class StatsSnapshot:
    """An immutable point-in-time copy of a :class:`Stats` object.

    Per-rank arrays are copies (safe to keep across :meth:`Runtime.reset`),
    and ``collectives`` maps operation name to ``(calls, payload bytes,
    participant-ranks total)``.  This is the one sanctioned way to read the
    statistics of a live runtime: every field is captured under the stats
    lock in a single critical section, so the snapshot is internally
    consistent even while ranks are still communicating.
    """

    size: int
    bytes_sent: np.ndarray
    msgs_sent: np.ndarray
    compute_time: np.ndarray
    collectives: dict[str, tuple[int, float, int]]
    #: control-plane traffic by kind (``arq`` acks/retransmissions,
    #: ``checkpoint`` buddy replication, ``heartbeat`` liveness probes) as
    #: ``kind -> (messages, bytes)`` — kept OUT of ``bytes_sent``/
    #: ``wire_bytes`` so data-plane traffic cells stay comparable across
    #: runs with and without the recovery machinery.
    control: dict[str, tuple[int, float]] = field(default_factory=dict)

    @property
    def total_bytes_sent(self) -> int:
        return int(self.bytes_sent.sum())

    @property
    def total_msgs_sent(self) -> int:
        return int(self.msgs_sent.sum())

    @property
    def total_compute_time(self) -> float:
        return float(self.compute_time.sum())

    @property
    def total_collective_bytes(self) -> float:
        return float(sum(v[1] for v in self.collectives.values()))

    @property
    def total_collective_calls(self) -> int:
        return int(sum(v[0] for v in self.collectives.values()))

    @property
    def wire_bytes(self) -> float:
        """Data-plane bytes on wire: point-to-point payloads plus
        collective payloads (the two are disjoint counters — see
        :meth:`Stats.record_send` vs :meth:`Stats.record_collective`).
        Control-plane traffic (:attr:`control`) is excluded."""
        return float(self.total_bytes_sent) + self.total_collective_bytes

    @property
    def total_control_bytes(self) -> float:
        return float(sum(v[1] for v in self.control.values()))

    @property
    def total_control_msgs(self) -> int:
        return int(sum(v[0] for v in self.control.values()))


class Stats:
    """Per-rank and aggregate communication statistics.

    All mutators take ``_lock``: ranks are concurrent threads and the
    counters must stay exact under interleaved sends, computes, and
    collectives.  Readers go through :meth:`snapshot`, which copies
    everything under the same lock.
    """

    def __init__(self, size: int):
        self.size = size
        self.bytes_sent = np.zeros(size, dtype=np.int64)
        self.msgs_sent = np.zeros(size, dtype=np.int64)
        self.compute_time = np.zeros(size, dtype=np.float64)
        self._lock = threading.Lock()
        #: collective name -> [calls, total payload bytes, participant-ranks total]
        self.collectives: dict[str, list[float]] = defaultdict(lambda: [0, 0.0, 0])
        #: control kind -> [messages, bytes] (ARQ acks/retransmissions,
        #: checkpoint replication, heartbeats); disjoint from the data-plane
        #: counters above
        self.control: dict[str, list[float]] = defaultdict(lambda: [0, 0.0])

    def record_send(self, world_rank: int, nbytes: int) -> None:
        with self._lock:
            self.bytes_sent[world_rank] += nbytes
            self.msgs_sent[world_rank] += 1

    def record_control(self, world_rank: int, nbytes: int, kind: str) -> None:
        with self._lock:
            entry = self.control[kind]
            entry[0] += 1
            entry[1] += nbytes

    def record_compute(self, world_rank: int, seconds: float) -> None:
        with self._lock:
            self.compute_time[world_rank] += seconds

    def record_collective(self, name: str, total_bytes: float, nranks: int) -> None:
        with self._lock:
            entry = self.collectives[name]
            entry[0] += 1
            entry[1] += total_bytes
            entry[2] += nranks

    def snapshot(self) -> StatsSnapshot:
        """A consistent, immutable copy of every counter (public read API)."""
        with self._lock:
            return StatsSnapshot(
                size=self.size,
                bytes_sent=self.bytes_sent.copy(),
                msgs_sent=self.msgs_sent.copy(),
                compute_time=self.compute_time.copy(),
                collectives={
                    k: (int(v[0]), float(v[1]), int(v[2]))
                    for k, v in sorted(self.collectives.items())
                },
                control={
                    k: (int(v[0]), float(v[1]))
                    for k, v in sorted(self.control.items())
                },
            )

    def summary(self) -> dict[str, Any]:
        """Aggregate view; ``collectives`` maps name -> (calls, bytes, ranks)."""
        snap = self.snapshot()
        return {
            "bytes_sent": snap.total_bytes_sent,
            "msgs_sent": snap.total_msgs_sent,
            "compute_time_max": float(snap.compute_time.max(initial=0.0)),
            "collectives": dict(snap.collectives),
            "control": dict(snap.control),
        }


class Runtime:
    """An in-process SPMD machine of ``size`` ranks.

    Parameters
    ----------
    size:
        Number of ranks.
    machine:
        The :class:`MachineSpec` to price operations on.  Defaults to an
        abstract flat cluster with 16 cores per node, sized to fit.
    ranks_per_node:
        Placement density; defaults to one rank per core.
    cost_model:
        Overrides machine/ranks_per_node when given.
    use_shm:
        Price intra-node traffic as shared-memory copies (paper default).
    trace:
        Attach a :class:`~repro.trace.TraceRecorder` so every communication
        call, compute charge, and wait is recorded as a virtual-time span
        (``runtime.trace``).  Off by default; recording never changes the
        virtual clocks.
    check:
        Attach a :class:`~repro.analyze.runtime_check.RuntimeChecker` that
        verifies collective congruence, detects deadlocks via a wait-for
        graph, and reports leaked messages / pending requests at finalize.
        ``None`` (the default) reads the ``REPRO_CHECK`` environment
        variable.  Checking never changes the virtual clocks: a checked
        run is bit-identical to an unchecked one.
    sanitize:
        Attach a :class:`~repro.sanitize.Sanitizer`: per-rank vector
        clocks advanced at every send/recv/collective edge, buffer
        fingerprints taken at ``isend``/``send``/collective entry and
        re-checked at delivery/``wait()``, and FastTrack-style race
        checking of closure-shared objects (``comm.mark_read`` /
        ``comm.mark_write``).  Detected hazards (WRITE-AFTER-ISEND,
        RECV-ALIAS, HB-RACE) raise
        :class:`~repro.sanitize.SanitizerError` at finalize.  ``None``
        (the default) reads the ``REPRO_SANITIZE`` environment variable.
        Sanitizing never changes the virtual clocks and composes with
        ``check`` and ``trace``.
    faults:
        A :class:`~repro.faults.FaultPlan` to inject into the delivery
        path (message drops/duplications/delays, degraded links, rank
        crashes) — all decisions seeded and deterministic.  ``None`` (the
        default) leaves the runtime bit-identical to one built without
        the fault machinery: clocks, statistics, and traces are unchanged.
    spares:
        Warm spare ranks held in reserve for the recovery layer: the
        runtime spawns ``size + spares`` threads, but the rank function
        runs only on the first ``size`` (the *actives*, on their own
        communicator); spares sit in the spare-pool rendezvous
        (:mod:`repro.mpi.spare`) until a failure substitutes one for a
        crashed active — keeping the rank count, and with it every tuned
        plan, valid.  A fault plan must be built for ``size + spares``
        ranks (spares can crash too).  ``0`` (the default) changes
        nothing: actives run directly on the world communicator.
    """

    def __init__(
        self,
        size: int,
        *,
        machine: MachineSpec | None = None,
        ranks_per_node: int | None = None,
        cost_model: CostModel | None = None,
        use_shm: bool = True,
        trace: bool = False,
        check: bool | None = None,
        sanitize: bool | None = None,
        faults: FaultPlan | None = None,
        spares: int = 0,
    ):
        if size < 1:
            raise ValueError("size must be >= 1")
        if spares < 0:
            raise ValueError("spares must be >= 0")
        total = size + spares
        if faults is not None and faults.size != total:
            raise ValueError(
                f"fault plan was built for {faults.size} ranks, runtime has "
                f"{total} ({size} active + {spares} spare)"
            )
        self.size = total
        self.active_size = size
        self.spares = spares
        if cost_model is None:
            if machine is None:
                machine = abstract_cluster(max(1, math.ceil(total / 16)))
            placement = make_placement(machine, total, ranks_per_node)
            cost_model = CostModel(placement, use_shm=use_shm)
        self.cost = cost_model
        self.clocks = np.zeros(total, dtype=np.float64)
        self.stats = Stats(total)
        self.trace: TraceRecorder | None = None
        self.checker = None
        if check is None:
            check = _check_default()
        if check:
            from ..analyze.runtime_check import RuntimeChecker

            self.checker = RuntimeChecker(self)
        self.sanitizer = None
        if sanitize is None:
            sanitize = _sanitize_default()
        if sanitize:
            from ..sanitize import Sanitizer

            self.sanitizer = Sanitizer(self)
        self._states: list[_CommState] = []
        self._registry_lock = threading.Lock()
        self._aborted = False
        #: the fault adversary (None = pristine runtime; every fault hook
        #: is guarded on this so the faultless path is bit-identical)
        self._faults = faults
        self.failed_ranks: set[int] = set()
        self.fault_stats = FaultStats()
        self._fault_lock = threading.Lock()
        self._op_counts = [0] * total
        self._fault_deadlock: str | None = None
        #: always-on wait registry: blocked-rank introspection for run
        #: timeouts, plus the virtual-time timeout / deadlock arbiter
        #: virtual clock at which each crashed rank died, by world rank —
        #: the cut that decides which in-flight messages the dead rank
        #: still acknowledges (see _execute_crash and Comm._post_mortem)
        self.crash_clocks: dict[int, float] = {}
        #: per-dead-rank locks serializing post-mortem channel processing
        #: (the crash-time drain vs. senders emulating owed acks)
        self._dead_channel_locks: dict[int, threading.Lock] = {}
        self._registry = WaitRegistry(total)
        self.world_state = _CommState(self, range(total))
        #: the communicator the rank function runs on: the world when
        #: there are no spares (bit-identical legacy path), otherwise a
        #: separate state over the active ranks only
        self.active_state = (self.world_state if spares == 0
                             else _CommState(self, range(size)))
        if trace:
            self.trace = TraceRecorder(self)

    # ------------------------------------------------------------- plumbing

    def _register_state(self, state: _CommState) -> None:
        with self._registry_lock:
            state.trace_id = len(self._states)
            self._states.append(state)
            if self._aborted:
                state.abort()

    def enable_tracing(self) -> TraceRecorder:
        """Attach a recorder if none is active yet; idempotent and safe to
        call concurrently from every rank (``SortConfig(trace=True)`` path)."""
        with self._registry_lock:
            if self.trace is None:
                self.trace = TraceRecorder(self)
            return self.trace

    def abort(self) -> None:
        """Tear down all pending waits (the in-process ``MPI_Abort``)."""
        with self._registry_lock:
            self._aborted = True
            states = list(self._states)
        for state in states:
            state.abort()

    def comm(self, rank: int) -> Comm:
        """The world communicator handle for ``rank``."""
        if not 0 <= rank < self.size:
            raise IndexError(f"rank {rank} out of range")
        return Comm(self.world_state, rank)

    # --------------------------------------------------------------- faults

    def _count_fault(self, kind: str) -> None:
        with self._fault_lock:
            setattr(self.fault_stats, kind, getattr(self.fault_stats, kind) + 1)

    def _count_detection(self, wait) -> None:
        """A virtual deadline fired (quiescence arbiter): under a fault
        plan this is a failure *suspicion* of the adaptive detector, so it
        counts toward ``FaultStats.detections``.  Fired deadlines are
        quiescence-determined, hence a pure function of the seed."""
        if self._faults is not None:
            self._count_fault("detections")

    def crash_pending(self, world_rank: int) -> bool:
        """Does ``world_rank`` have a planned crash it has not reached yet?

        While this is true the rank's channel servicing must stay
        *clock-bounded* (see :func:`repro.mpi.reliable.service_pending`):
        acking a message whose virtual arrival lies beyond the rank's own
        clock would assert the rank was alive at a time its upcoming crash
        may prove it was not — and whether the wall-clock thread schedule
        let it service that message before reaching the crash op is
        exactly the kind of accident virtual time must not observe."""
        plan = self._faults
        return (plan is not None and world_rank in plan.crashes
                and world_rank not in self.failed_ranks)

    def maybe_crash(self, world_rank: int) -> None:
        """Crash checkpoint: called by the communication layer at the top
        of every p2p/collective operation of ``world_rank`` (own thread
        only).  Advances the rank's operation counter and executes a
        scheduled :class:`~repro.faults.CrashEvent` when its trigger — an
        op count or a virtual time, never wall clock — has been reached."""
        plan = self._faults
        if plan is None or not plan.has_crashes:
            return
        n = self._op_counts[world_rank]
        self._op_counts[world_rank] = n + 1
        if world_rank not in self.failed_ranks and plan.crash_now(
            world_rank, n, float(self.clocks[world_rank])
        ):
            self._execute_crash(world_rank)

    def _execute_crash(self, world_rank: int) -> None:
        """Kill ``world_rank`` (called on its own thread): record the
        failure, drain the channel traffic the rank still owes acks for,
        wake every operation it could be participating in, and unwind the
        thread with :class:`RankCrashed`."""
        now = float(self.clocks[world_rank])
        lock = threading.Lock()
        with self._fault_lock:
            # Lock and clock must be visible before the failure is: a
            # sender that observes ``failed_ranks`` diverts to the
            # post-mortem path, which needs both.
            self._dead_channel_locks[world_rank] = lock
            self.crash_clocks[world_rank] = now
            self.failed_ranks.add(world_rank)
            self.fault_stats.crashed.append(world_rank)
        if self.trace is not None:
            self.trace.record(world_rank, "crash", "fault", now, now,
                              op=self._op_counts[world_rank])
        with self._registry_lock:
            states = list(self._states)
        # Final channel drain: acknowledge every reliable message whose
        # virtual arrival precedes the crash instant.  Whether the dying
        # rank's thread happened to service a message before reaching its
        # crash op is a wall-clock accident; cutting by virtual arrival
        # time makes "did the dead rank ack me" a pure function of the
        # schedule.  Runs before peers are notified, so a peer that
        # observes the failure also observes every ack it was owed
        # (receivers check their mailbox before the failed set).  Late
        # deposits — senders that race past this drain — take the same
        # cut in Comm._post_mortem, serialized by the same lock.
        from .reliable import crash_drain  # circular at module level

        with lock:
            for state in states:
                if world_rank in state._members_set:
                    idx = list(state.world_ranks).index(world_rank)
                    crash_drain(Comm(state, idx), now)
        for state in states:
            if world_rank in state._members_set:
                # Peers blocked in a collective see a broken barrier and
                # map it to RankFailedError; blocked receivers and ft
                # waiters re-check the failed set after the notify.
                state.barrier.abort()
                for mb in state.mailboxes:
                    with mb.cond:
                        mb.cond.notify_all()
                with state.ft_cond:
                    state.ft_cond.notify_all()
        self._registry.die(world_rank)
        raise RankCrashed(f"rank {world_rank} crashed at virtual t={now:.6g}s")

    def _deadlock_abort(self, description: str) -> None:
        """Quiescence arbiter verdict: no rank can make progress and no
        virtual deadline is pending — abort rather than hang (fault plans
        can starve ranks, e.g. by dropping a message the program only
        sends once)."""
        self._fault_deadlock = description
        self.abort()

    # ------------------------------------------------------------ execution

    def run(
        self,
        fn: Callable[..., Any],
        *,
        args: Sequence[Any] = (),
        per_rank_args: Sequence[Sequence[Any]] | None = None,
        timeout: float | None = None,
    ) -> list[Any]:
        """Run ``fn(comm, *args, *per_rank_args[rank])`` on every rank.

        Returns the per-rank results.  If any rank raises, all others are
        aborted and an :class:`SPMDError` carrying the per-rank exceptions
        is raised.

        With spares, ``fn`` runs only on the active ranks (indexed by the
        active communicator); spare slots run the pool loop and yield
        ``None`` — or, once substituted, whatever the continuation they
        joined returns.
        """
        if per_rank_args is not None and len(per_rank_args) != self.active_size:
            raise ValueError("per_rank_args must have one entry per active rank")

        results: list[Any] = [None] * self.size
        failures: dict[int, BaseException] = {}
        failures_lock = threading.Lock()
        checker = self.checker
        if checker is not None:
            checker.begin_run()
        self._registry.begin(
            faults_active=self._faults is not None,
            on_deadlock=self._deadlock_abort,
            on_fire=self._count_detection,
        )

        def worker(rank: int) -> None:
            try:
                if rank < self.active_size:
                    comm = Comm(self.active_state, rank)
                    extra = (per_rank_args[rank]
                             if per_rank_args is not None else ())
                    results[rank] = fn(comm, *args, *extra)
                else:
                    from .spare import spare_main

                    results[rank] = spare_main(self, rank)
            except Aborted:
                pass  # secondary casualty of another rank's failure
            except RankCrashed:
                pass  # fault-injected death: peers observe RankFailedError
            except BaseException as exc:  # noqa: BLE001 - must not hang peers
                with failures_lock:
                    failures[rank] = exc
                self.abort()
            finally:
                if checker is not None:
                    # A finished rank will never send again: this transition
                    # can complete a deadlock, so the checker re-analyzes.
                    checker.finish(rank)
                self._registry.finish(rank)

        old_stack = threading.stack_size()
        if self.size > 64:
            threading.stack_size(1 << 20)
        try:
            threads = [
                threading.Thread(target=worker, args=(r,), name=f"rank-{r}", daemon=True)
                for r in range(self.size)
            ]
        finally:
            threading.stack_size(old_stack)

        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout)
            if t.is_alive():
                blocked = self._registry.describe_blocked()
                self.abort()
                t.join(5.0)
                raise TimeoutError(
                    f"SPMD run exceeded {timeout}s (thread {t.name}); "
                    f"per-rank wait states at expiry:\n{blocked}"
                )
        if failures:
            first = failures[min(failures)]
            raise SPMDError(failures) from first
        if self._fault_deadlock is not None:
            raise DeadlockError(
                "no rank can make progress under the fault plan:\n"
                + self._fault_deadlock
            )
        if self.sanitizer is not None:
            self.sanitizer.raise_if_findings()
        self._finalize_check()
        return results

    def _finalize_check(self) -> None:
        """Post-run accounting: orphaned messages always warn; under
        ``check=True`` they (and never-completed requests) raise."""
        if self._faults is not None:
            # Dropped/duplicated messages and crashed receivers leave
            # mailbox residue by design; leak accounting is meaningless
            # under an adversary.
            return
        leaks = self.leaked_messages()
        if leaks:
            listing = ", ".join(
                f"(src={s}, dest={d}, tag={t})" for s, d, t in leaks[:8]
            )
            if len(leaks) > 8:
                listing += f", ... {len(leaks) - 8} more"
            warnings.warn(
                f"SPMD run finished with {len(leaks)} undelivered message(s): "
                f"{listing}",
                RuntimeWarning,
                stacklevel=3,
            )
        pending = self.checker.pending_requests() if self.checker is not None else []
        if self.checker is not None and (leaks or pending):
            lines = [
                f"SPMD run leaked {len(leaks)} message(s) and "
                f"{len(pending)} pending request(s)"
            ]
            lines += [f"  undelivered: src={s} dest={d} tag={t}" for s, d, t in leaks]
            lines += [
                f"  never-completed irecv on rank {r.world_rank} "
                f"(source={r.source}, tag={r.tag}) from {r.site}"
                for r in pending
            ]
            raise MessageLeakError("\n".join(lines))

    def leaked_messages(self) -> list[tuple[int, int, int]]:
        """Undelivered ``(src_world, dest_world, tag)`` across all mailboxes."""
        with self._registry_lock:
            states = list(self._states)
        leaks: list[tuple[int, int, int]] = []
        for state in states:
            for dest_idx, mb in enumerate(state.mailboxes):
                with mb.cond:
                    msgs = list(mb.messages)
                for m in msgs:
                    leaks.append(
                        (state.world_ranks[m.src], state.world_ranks[dest_idx], m.tag)
                    )
        return leaks

    # ------------------------------------------------------------- reporting

    def elapsed(self) -> float:
        """Modelled makespan so far: the maximum rank clock."""
        return float(self.clocks.max())

    def reset(self) -> None:
        """Zero clocks, statistics, fault bookkeeping, any recorded trace,
        and the attached checker's shadow state (keeps communicators)."""
        self.clocks[:] = 0.0
        self.stats = Stats(self.size)
        if self.trace is not None:
            self.trace = TraceRecorder(self)
        self.failed_ranks.clear()
        self.fault_stats = FaultStats()
        self._op_counts = [0] * self.size
        self._fault_deadlock = None
        if self.checker is not None:
            self.checker.reset()
        if self.sanitizer is not None:
            from ..sanitize import Sanitizer

            self.sanitizer = Sanitizer(self)


def run_spmd(
    size: int,
    fn: Callable[..., Any],
    *args: Any,
    machine: MachineSpec | None = None,
    ranks_per_node: int | None = None,
    cost_model: CostModel | None = None,
    use_shm: bool = True,
    trace: bool = False,
    check: bool | None = None,
    sanitize: bool | None = None,
    faults: FaultPlan | None = None,
    spares: int = 0,
    per_rank_args: Sequence[Sequence[Any]] | None = None,
    timeout: float | None = None,
    return_runtime: bool = False,
) -> Any:
    """Run an SPMD function on a fresh :class:`Runtime`.

    With ``trace=True`` the runtime records a virtual-time span for every
    communication call (pair it with ``return_runtime=True`` to reach the
    recorder at ``rt.trace``).  With ``check=True`` (default: the
    ``REPRO_CHECK`` environment variable) the runtime verifies collective
    congruence, detects deadlocks, and reports message leaks — without
    changing the virtual clocks.  With ``sanitize=True`` (default: the
    ``REPRO_SANITIZE`` environment variable) it additionally tracks
    happens-before vector clocks and buffer lifetimes, raising
    :class:`~repro.sanitize.SanitizerError` on write-after-isend,
    receive-aliasing, or data races — again without touching the clocks.

    >>> def hello(comm):
    ...     return comm.allreduce(comm.rank)
    >>> run_spmd(4, hello)
    [6, 6, 6, 6]
    """
    rt = Runtime(
        size,
        machine=machine,
        ranks_per_node=ranks_per_node,
        cost_model=cost_model,
        use_shm=use_shm,
        trace=trace,
        check=check,
        sanitize=sanitize,
        faults=faults,
        spares=spares,
    )
    results = rt.run(fn, args=args, per_rank_args=per_rank_args, timeout=timeout)
    if return_runtime:
        return results, rt
    return results
