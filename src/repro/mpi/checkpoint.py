"""Buddy checkpointing: in-memory partition replication over the ARQ ring.

Diskless checkpoint/restart in the style of Plank's diskless
checkpointing and the buddy schemes of SCR/Fenix: at every phase
boundary of an epoch, each rank replicates its partition and a
*phase-progress marker* to its **buddy** — the occupant of the next ring
position, ``(pos + 1) % p`` — over the reliable (ARQ) channel
:data:`~repro.mpi.tags.CHECKPOINT_TAG`.  The replica lives in the
buddy's process memory (here: its rank thread's
:class:`BuddyCheckpointer` instance), so the failure model is honest:

* a rank crash destroys that rank's *own* state **and every replica it
  held for others** — the thread unwinds and the checkpointer object
  dies with it;
* a single failure at position ``i`` is always recoverable from the
  buddy at ``(i + 1) % p`` (if it survived);
* adjacent double failures lose the partition — the recovery layer
  counts it in ``FaultStats.lost`` and the chaos oracle subtracts it
  from the conservation check.

The ring exchange is deadlock-free even though the ARQ sender blocks for
its acknowledgement: every blocked reliable operation *services the
whole channel* (see :mod:`repro.mpi.reliable`), so a ring of
``reliable_send``s to successors completes — each rank acknowledges its
predecessor's replica while waiting for its own ack.

All checkpoint traffic is control-plane (``control="checkpoint"``): it
is tallied in :meth:`Stats.record_control` instead of the data-plane
byte counters, so ``wire_bytes`` stays comparable between runs with and
without checkpointing.

Phase markers
-------------
``PH_START < PH_SORTED < PH_SPLIT`` order the restartable points of one
epoch of the histogram sort:

* :data:`PH_START` — replica holds the rank's *input* partition;
* :data:`PH_SORTED` — replica holds the locally sorted (possibly
  packed) partition; the local-sort phase need not be redone;
* :data:`PH_SPLIT` — splitter agreement completed (marker-only update:
  splitters are identical on every rank, so a survivor re-shares them
  through the recovery rendezvous instead of the ring).

The recovery layer resumes an epoch from the *minimum* marker over the
new membership (:mod:`repro.mpi.spare`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from .comm import Comm
from .reliable import ADAPTIVE_POLICY, RetryPolicy, reliable_recv, reliable_send
from .tags import CHECKPOINT_TAG

__all__ = [
    "PH_START", "PH_SORTED", "PH_SPLIT", "MARKER_NAMES",
    "Replica", "BuddyCheckpointer",
]

#: epoch entered; replica payload is the input partition
PH_START = 0
#: local sort finished; replica payload is the sorted (packed) partition
PH_SORTED = 1
#: splitter agreement finished (marker-only ring update)
PH_SPLIT = 2

MARKER_NAMES = {PH_START: "start", PH_SORTED: "sorted", PH_SPLIT: "split"}


@dataclass
class Replica:
    """One buddy replica: a peer's partition at a phase boundary.

    ``origins`` are the *initial* ring positions whose input data the
    partition carries (normally one; more after a shrink salvaged a lost
    peer's replica into a survivor) — the unit of the chaos harness's
    conservation oracle.  ``spec`` is the key-packing plan when the
    payload is packed (``None`` otherwise) and ``dtype`` the unpacked
    element type.
    """

    owner_pos: int
    marker: int
    origins: tuple[int, ...]
    data: np.ndarray
    spec: Any = None
    dtype: Any = None

    def unpacked(self) -> np.ndarray:
        """The replica's payload as unpacked (original-key) elements."""
        if self.spec is None:
            return self.data
        from ..core.keys import unpack_keys

        return unpack_keys(self.data, self.spec, dtype=self.dtype)


class BuddyCheckpointer:
    """One rank's checkpointing endpoint on the replication ring.

    Owned by the rank's thread; holds (at most) one replica — the
    predecessor's — which models the buddy's process memory: it is lost
    when this rank crashes.  ``save`` refreshes the full replica,
    ``save_marker`` advances only the progress marker (splitter
    agreement changes no data).
    """

    def __init__(self, policy: RetryPolicy = ADAPTIVE_POLICY):
        self.policy = policy
        #: the predecessor's replica (None until the first ring exchange)
        self.held: Replica | None = None

    # ------------------------------------------------------------------ ring

    def _ring(self, comm: Comm, payload: Replica | tuple) -> None:
        """One ring exchange: send ``payload`` to the successor, hold what
        the predecessor sent.  ``p == 1`` degenerates to self-buddying —
        the replica dies with its owner either way, so nothing travels."""
        p = comm.size
        if p == 1:
            if isinstance(payload, Replica):
                self.held = payload
            else:  # marker-only update of the (self-held) replica
                if self.held is not None:
                    self.held.marker = payload[1]
            return
        succ = (comm.rank + 1) % p
        pred = (comm.rank - 1) % p
        reliable_send(comm, payload, succ, CHECKPOINT_TAG, self.policy,
                      control="checkpoint")
        got = reliable_recv(comm, pred, CHECKPOINT_TAG)
        if isinstance(got, Replica):
            self.held = got
        elif self.held is not None and self.held.owner_pos == got[0]:
            self.held.marker = got[1]

    # ------------------------------------------------------------------- API

    def save(self, comm: Comm, marker: int, origins: tuple[int, ...],
             data: np.ndarray, spec: Any = None, dtype: Any = None) -> None:
        """Replicate this rank's partition at a phase boundary.

        Collective over the ring: every rank must call it (the successor
        is blocked receiving).  Counted in ``FaultStats.checkpoints``
        (deterministic: one per rank per boundary reached).
        """
        comm._rt._count_fault("checkpoints")
        rep = Replica(owner_pos=comm.rank, marker=marker, origins=origins,
                      data=data, spec=spec,
                      dtype=dtype if dtype is not None else data.dtype)
        self._ring(comm, rep)

    def save_marker(self, comm: Comm, marker: int) -> None:
        """Advance only the progress marker at the buddy (splitter
        agreement: the data is unchanged, so a full replica would waste
        a partition's worth of wire).  Collective over the ring."""
        comm._rt._count_fault("checkpoints")
        self._ring(comm, (comm.rank, marker))

    # ------------------------------------------------------------- transfers

    def restore_send(self, comm: Comm, target: int) -> None:
        """Ship the held replica to ``target`` (a substitute or a dataless
        survivor) over the checkpoint channel of the *new* communicator."""
        assert self.held is not None
        reliable_send(comm, self.held, target, CHECKPOINT_TAG, self.policy,
                      control="checkpoint")

    @staticmethod
    def restore_recv(comm: Comm, holder: int) -> Replica:
        """Receive a replica from ``holder``; counted as a restore."""
        rep = reliable_recv(comm, holder, CHECKPOINT_TAG)
        comm._rt._count_fault("restored")
        return rep
