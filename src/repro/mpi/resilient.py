"""A communicator whose collectives survive message drops and duplications.

The base :class:`~repro.mpi.comm.Comm` implements collectives with a
deposit/leader/extract protocol over shared slots — no messages travel, so
a :class:`~repro.faults.FaultPlan` cannot perturb them.  That is exactly
wrong for fault-injection experiments.  :class:`ResilientComm` re-expresses
every collective in terms of *point-to-point messages* carried by the
stop-and-wait ARQ layer of :mod:`repro.mpi.reliable`, so injected drops,
duplications, and delay spikes hit real traffic and are healed by
retransmission — or surface as a typed :class:`MessageTimeoutError` when
the link is beyond repair.

Algorithms (deliberately simple and deterministic):

* rooted trees are *linear*: ``gather``/``reduce`` pull rank by rank into
  the root, ``bcast``/``scatter`` push rank by rank out of it;
* ``allreduce``/``allgather``/``barrier`` are gather-to-0 + bcast;
* ``alltoall``/``alltoallv`` use an ordered pairwise exchange — each rank
  walks its peers in increasing order, the smaller rank of a pair sends
  first.  Every exchange with the smallest unfinished rank is that peer's
  next operation, so by induction on the rank order no cycle of waits can
  form (deadlock-free even though the ARQ sender blocks for its ack);
* ``scan``/``exscan`` run a linear chain up the ranks.

All collectives multiplex one reliable channel per rank pair
(:data:`~repro.mpi.tags.RESILIENT_COLL_TAG`); stop-and-wait keeps the
channel in order, which makes that safe.

Use ``ResilientComm(comm._state, comm.rank)`` to wrap an existing
communicator's state, or let :func:`repro.core.resilient.resilient_sort`
do it for you.  ``shrink()`` returns a :class:`ResilientComm` again, so
recovery loops stay on the resilient implementation.
"""

from __future__ import annotations

import functools
from typing import Any, Sequence

import numpy as np

from .comm import Comm
from .ops import SUM, ReduceOp
from .payload import copy_payload
from .reliable import ADAPTIVE_POLICY, RetryPolicy, reliable_recv, reliable_send
from .tags import RESILIENT_COLL_TAG

__all__ = ["ResilientComm"]

_CH = RESILIENT_COLL_TAG


class ResilientComm(Comm):
    """Drop-in :class:`Comm` whose collectives ride the reliable p2p layer."""

    #: retry schedule used by all collectives of this communicator:
    #: phi-accrual-adaptive deadlines (per-link arrival histories) with a
    #: 3-strike circuit breaker.  Faultless runs never reach a deadline, so
    #: the adaptive schedule cannot perturb their clocks.
    policy: RetryPolicy = ADAPTIVE_POLICY

    # ------------------------------------------------------------ primitives

    def _rsend(self, obj: Any, dest: int) -> None:
        reliable_send(self, obj, dest, _CH, self.policy)

    def _rrecv(self, source: int) -> Any:
        # Copy on receipt: ranks share one address space, and the base
        # collectives' extract step never hands two ranks the same object.
        return copy_payload(reliable_recv(self, source, _CH))

    def _gather0(self, value: Any) -> list[Any] | None:
        """Linear gather of every rank's ``value`` to rank 0."""
        if self.rank == 0:
            slots = [value]
            for src in range(1, self.size):
                slots.append(self._rrecv(src))
            return slots
        self._rsend(value, 0)
        return None

    def _bcast0(self, obj: Any) -> Any:
        """Linear broadcast of rank 0's ``obj`` to every rank."""
        if self.rank == 0:
            for dest in range(1, self.size):
                self._rsend(obj, dest)
            return obj
        return self._rrecv(0)

    def _exchange(self, peer: int, payload: Any) -> Any:
        """One ordered pairwise exchange (smaller rank sends first)."""
        if self.rank < peer:
            self._rsend(payload, peer)
            return self._rrecv(peer)
        out = self._rrecv(peer)
        self._rsend(payload, peer)
        return out

    # ----------------------------------------------------------- collectives

    def barrier(self) -> None:
        self._gather0(None)
        self._bcast0(None)

    def bcast(self, obj: Any, root: int = 0) -> Any:
        if self.rank == root:
            for dest in range(self.size):
                if dest != root:
                    self._rsend(obj, dest)
            return copy_payload(obj)
        return self._rrecv(root)

    def gather(self, value: Any, root: int = 0) -> list[Any] | None:
        if self.rank == root:
            slots: list[Any] = []
            for src in range(self.size):
                slots.append(copy_payload(value) if src == root
                             else self._rrecv(src))
            return slots
        self._rsend(value, root)
        return None

    def reduce(self, value: Any, op: ReduceOp = SUM, root: int = 0) -> Any:
        slots = self.gather(value, root)
        if slots is None:
            return None
        return functools.reduce(op, slots)

    def allreduce(self, value: Any, op: ReduceOp = SUM) -> Any:
        acc = self.reduce(value, op, 0)
        return self._bcast0(acc)

    def allgather(self, value: Any) -> list[Any]:
        return self._bcast0(self._gather0(value))

    def scatter(self, values: Sequence[Any] | None, root: int = 0) -> Any:
        if self.rank == root:
            assert values is not None and len(values) == self.size
            own: Any = None
            for dest in range(self.size):
                if dest == root:
                    own = copy_payload(values[dest])
                else:
                    self._rsend(values[dest], dest)
            return own
        return self._rrecv(root)

    def alltoall(self, values: Sequence[Any]) -> list[Any]:
        if len(values) != self.size:
            raise ValueError("alltoall needs one value per rank")
        out: list[Any] = [None] * self.size
        out[self.rank] = copy_payload(values[self.rank])
        for peer in range(self.size):
            if peer != self.rank:
                out[peer] = self._exchange(peer, values[peer])
        return out

    def alltoallv(self, chunks: Sequence[np.ndarray]) -> list[np.ndarray]:
        if len(chunks) != self.size:
            raise ValueError("alltoallv needs one chunk per rank")
        out = self.alltoall([np.asarray(c) for c in chunks])
        return [np.asarray(c) for c in out]

    def scan(self, value: Any, op: ReduceOp = SUM) -> Any:
        acc = value
        if self.rank > 0:
            acc = op(self._rrecv(self.rank - 1), value)
        if self.rank + 1 < self.size:
            self._rsend(acc, self.rank + 1)
        return acc

    def exscan(self, value: Any, op: ReduceOp = SUM) -> Any:
        prev = None
        if self.rank > 0:
            prev = self._rrecv(self.rank - 1)
        if self.rank + 1 < self.size:
            acc = value if prev is None else op(prev, value)
            self._rsend(acc, self.rank + 1)
        return prev
