"""Communicators: the rank-facing API of the SPMD runtime.

A :class:`Comm` is one rank's handle on a communicator.  The API follows
mpi4py's lowercase object interface (``send``/``recv``/``bcast``/``allreduce``
/ ``alltoallv`` / ``split`` ...), and every call advances the calling rank's
*virtual clock* according to the machine's cost model.

Implementation notes
--------------------
Collectives use a deposit / leader / extract protocol around a cyclic
three-phase barrier:

1. every rank writes its contribution into its slot and enters barrier A;
2. the leader (the rank that drew index 0 at barrier A) combines the slots
   and computes the group's new virtual clocks, then everyone passes B;
3. every rank reads its result and its new clock, then everyone passes C so
   the slots may be reused by the next collective.

This is deterministic in values (combines fold in rank order) and matches
MPI's requirement that all ranks issue collectives in the same order.
"""

from __future__ import annotations

import functools
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from .errors import Aborted, CommunicatorError
from .ops import SUM, ReduceOp
from .payload import copy_payload, payload_nbytes
from .requests import Request, _DoneRequest, _IRecvRequest

ANY_SOURCE = -1
ANY_TAG = -1


@dataclass
class _Message:
    src: int          # group rank of the sender
    tag: int
    payload: Any
    departure: float  # sender's virtual clock when the message left
    nbytes: int


class _Mailbox:
    """Per-rank FIFO of in-flight messages with a condition variable."""

    def __init__(self) -> None:
        self.cond = threading.Condition()
        self.messages: list[_Message] = []

    def find(self, source: int, tag: int, *, remove: bool) -> _Message | None:
        """First message matching (source, tag); wildcards are ``-1``."""
        for i, m in enumerate(self.messages):
            if (source == ANY_SOURCE or m.src == source) and (
                tag == ANY_TAG or m.tag == tag
            ):
                return self.messages.pop(i) if remove else m
        return None


class _CommState:
    """State shared by all ranks of one communicator."""

    def __init__(self, runtime, world_ranks: Sequence[int]):
        self.runtime = runtime
        self.world_ranks: list[int] = [int(r) for r in world_ranks]
        self.size = len(self.world_ranks)
        self.barrier = threading.Barrier(self.size)
        self.slots: list[Any] = [None] * self.size
        self.cell: Any = None
        self.mailboxes = [_Mailbox() for _ in range(self.size)]
        self.aborted = False
        runtime._register_state(self)

    def abort(self) -> None:
        self.aborted = True
        self.barrier.abort()
        for mb in self.mailboxes:
            with mb.cond:
                mb.cond.notify_all()

    def collective(
        self,
        idx: int,
        deposit: Any,
        leader_fn: Callable[[list[Any]], Any],
        extract_fn: Callable[[list[Any], Any, int], Any],
    ) -> Any:
        if self.aborted:
            raise Aborted("communicator already aborted")
        self.slots[idx] = deposit
        try:
            who = self.barrier.wait()
            if who == 0:
                try:
                    self.cell = leader_fn(self.slots)
                except BaseException:
                    self.runtime.abort()
                    raise
            self.barrier.wait()
            try:
                out = extract_fn(self.slots, self.cell, idx)
            except BaseException:
                self.runtime.abort()
                raise
            self.barrier.wait()
        except threading.BrokenBarrierError:
            raise Aborted("runtime aborted during a collective") from None
        return out


class Comm:
    """One rank's handle on a communicator."""

    def __init__(self, state: _CommState, rank: int):
        self._state = state
        self._rank = rank
        self._rt = state.runtime

    # ------------------------------------------------------------- identity

    @property
    def rank(self) -> int:
        """This rank's index within the communicator."""
        return self._rank

    @property
    def size(self) -> int:
        """Number of ranks in the communicator."""
        return self._state.size

    @property
    def world_rank(self) -> int:
        """This rank's index in the world communicator."""
        return self._state.world_ranks[self._rank]

    @property
    def world_ranks(self) -> list[int]:
        """World ranks of all members, indexed by group rank."""
        return list(self._state.world_ranks)

    @property
    def cost(self):
        """The runtime's :class:`~repro.machine.cost.CostModel`."""
        return self._rt.cost

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Comm rank {self._rank}/{self.size} (world {self.world_rank})>"

    # ---------------------------------------------------------- virtual time

    @property
    def clock(self) -> float:
        """This rank's virtual clock, in seconds."""
        return float(self._rt.clocks[self.world_rank])

    @clock.setter
    def clock(self, value: float) -> None:
        self._rt.clocks[self.world_rank] = value

    def compute(self, seconds: float) -> None:
        """Charge ``seconds`` of modelled local compute to this rank."""
        if seconds < 0:
            raise ValueError("compute time must be >= 0")
        self._rt.clocks[self.world_rank] += seconds
        self._rt.stats.compute_time[self.world_rank] += seconds

    # ------------------------------------------------------------------- p2p

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Buffered (eager) send: never blocks."""
        self._check_peer(dest)
        nbytes = payload_nbytes(obj)
        departure = self.clock + self._rt.cost.software_overhead
        self.clock = departure
        msg = _Message(self._rank, tag, copy_payload(obj), departure, nbytes)
        self._rt.stats.record_send(self.world_rank, nbytes)
        mb = self._state.mailboxes[dest]
        with mb.cond:
            mb.messages.append(msg)
            mb.cond.notify_all()

    def recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        *,
        return_status: bool = False,
    ) -> Any:
        """Blocking receive; with ``return_status`` returns ``(obj, (src, tag))``."""
        if source != ANY_SOURCE:
            self._check_peer(source)
        mb = self._state.mailboxes[self._rank]
        with mb.cond:
            while True:
                if self._state.aborted:
                    raise Aborted("runtime aborted during recv")
                msg = mb.find(source, tag, remove=True)
                if msg is not None:
                    break
                mb.cond.wait()
        cost = self._rt.cost.ptp(
            self._state.world_ranks[msg.src], self.world_rank, msg.nbytes
        )
        self.clock = max(self.clock, msg.departure + cost)
        if return_status:
            return msg.payload, (msg.src, msg.tag)
        return msg.payload

    def sendrecv(
        self, obj: Any, dest: int, source: int | None = None, tag: int = 0
    ) -> Any:
        """Combined exchange; safe against deadlock because sends are eager."""
        if source is None:
            source = dest
        self.send(obj, dest, tag)
        return self.recv(source, tag)

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        self.send(obj, dest, tag)
        return _DoneRequest()

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        return _IRecvRequest(self, source, tag)

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        """Non-blocking check whether a matching message is pending."""
        mb = self._state.mailboxes[self._rank]
        with mb.cond:
            return mb.find(source, tag, remove=False) is not None

    # ------------------------------------------------------------ collectives

    def _entry_clocks(self, slots_world: Sequence[int]) -> np.ndarray:
        return self._rt.clocks[slots_world]

    def _simple_collective(
        self,
        name: str,
        deposit: Any,
        combine: Callable[[list[Any]], Any],
        cost_fn: Callable[[list[Any]], Any],
        *,
        result_for_all: bool = True,
        root: int | None = None,
    ) -> Any:
        """Collective with a uniform (or per-rank) cost and one combined value."""
        state = self._state
        wr = state.world_ranks
        rt = self._rt

        def leader(slots: list[Any]) -> Any:
            entry = rt.clocks[wr]
            cost = cost_fn(slots)
            newclocks = entry.max() + np.asarray(cost, dtype=np.float64)
            total_bytes = sum(payload_nbytes(s) for s in slots)
            rt.stats.record_collective(name, total_bytes, state.size)
            return combine(slots), newclocks

        def extract(slots: list[Any], cell: Any, idx: int) -> Any:
            result, newclocks = cell
            nc = newclocks if np.ndim(newclocks) == 0 else newclocks[idx]
            rt.clocks[wr[idx]] = nc
            if root is not None and idx != root:
                return None
            return copy_payload(result) if result_for_all else result

        return state.collective(self._rank, deposit, leader, extract)

    def barrier(self) -> None:
        """Synchronize all ranks (and their virtual clocks)."""
        ranks = self._state.world_ranks
        self._simple_collective(
            "barrier", None, lambda s: None, lambda s: self._rt.cost.barrier(ranks)
        )

    def bcast(self, obj: Any, root: int = 0) -> Any:
        self._check_peer(root)
        ranks = self._state.world_ranks
        deposit = obj if self._rank == root else None
        return self._simple_collective(
            "bcast",
            deposit,
            lambda s: s[root],
            lambda s: self._rt.cost.bcast(payload_nbytes(s[root]), ranks),
        )

    def reduce(self, value: Any, op: ReduceOp = SUM, root: int = 0) -> Any:
        self._check_peer(root)
        ranks = self._state.world_ranks
        return self._simple_collective(
            "reduce",
            value,
            lambda s: functools.reduce(op, s),
            lambda s: self._rt.cost.reduce(payload_nbytes(s[0]), ranks),
            root=root,
        )

    def allreduce(self, value: Any, op: ReduceOp = SUM) -> Any:
        ranks = self._state.world_ranks
        return self._simple_collective(
            "allreduce",
            value,
            lambda s: functools.reduce(op, s),
            lambda s: self._rt.cost.allreduce(payload_nbytes(s[0]), ranks),
        )

    def gather(self, value: Any, root: int = 0) -> list[Any] | None:
        self._check_peer(root)
        ranks = self._state.world_ranks
        return self._simple_collective(
            "gather",
            value,
            lambda s: list(s),
            lambda s: self._rt.cost.gather(payload_nbytes(s[0]), ranks),
            root=root,
        )

    def allgather(self, value: Any) -> list[Any]:
        ranks = self._state.world_ranks
        return self._simple_collective(
            "allgather",
            value,
            lambda s: list(s),
            lambda s: self._rt.cost.allgather(payload_nbytes(s[0]), ranks),
        )

    def scatter(self, values: Sequence[Any] | None, root: int = 0) -> Any:
        self._check_peer(root)
        ranks = self._state.world_ranks
        size = self.size
        if self._rank == root:
            if values is None or len(values) != size:
                raise CommunicatorError(
                    f"scatter at root needs exactly {size} values"
                )
        state = self._state
        rt = self._rt

        def leader(slots: list[Any]) -> Any:
            vals = slots[root]
            entry = rt.clocks[ranks]
            per = payload_nbytes(vals) / max(size, 1)
            cost = rt.cost.scatter(per, ranks)
            rt.stats.record_collective("scatter", payload_nbytes(vals), size)
            return vals, entry.max() + cost

        def extract(slots: list[Any], cell: Any, idx: int) -> Any:
            vals, newclock = cell
            rt.clocks[ranks[idx]] = newclock
            return copy_payload(vals[idx])

        return state.collective(self._rank, values if self._rank == root else None, leader, extract)

    def alltoall(self, values: Sequence[Any]) -> list[Any]:
        """Personalized exchange of one payload per peer."""
        if len(values) != self.size:
            raise CommunicatorError(f"alltoall needs {self.size} values")
        state = self._state
        ranks = state.world_ranks
        rt = self._rt

        def leader(slots: list[Any]) -> Any:
            entry = rt.clocks[ranks]
            total = sum(payload_nbytes(row) for row in slots)
            per_pair = total / max(state.size**2, 1)
            cost = rt.cost.alltoall(per_pair, ranks)
            rt.stats.record_collective("alltoall", total, state.size)
            return entry.max() + cost

        def extract(slots: list[Any], newclock: float, idx: int) -> list[Any]:
            rt.clocks[ranks[idx]] = newclock
            return [copy_payload(slots[j][idx]) for j in range(state.size)]

        return state.collective(self._rank, list(values), leader, extract)

    def alltoallv(self, chunks: Sequence[np.ndarray]) -> list[np.ndarray]:
        """Irregular personalized exchange of NumPy arrays.

        ``chunks[j]`` is what this rank sends to group rank ``j``; the return
        value is the list of arrays received, indexed by source rank.  Costs
        come from :meth:`CostModel.alltoallv_per_rank` over the full volume
        matrix.
        """
        if len(chunks) != self.size:
            raise CommunicatorError(f"alltoallv needs {self.size} chunks")
        chunks = [np.asarray(c) for c in chunks]
        state = self._state
        ranks = state.world_ranks
        rt = self._rt

        def leader(slots: list[Any]) -> Any:
            entry = rt.clocks[ranks]
            vols = np.array(
                [[c.nbytes for c in row] for row in slots], dtype=np.float64
            )
            per_rank = rt.cost.alltoallv_per_rank(vols, ranks)
            rt.stats.record_collective("alltoallv", float(vols.sum()), state.size)
            return entry.max() + per_rank

        def extract(slots: list[Any], newclocks: np.ndarray, idx: int) -> list[np.ndarray]:
            rt.clocks[ranks[idx]] = newclocks[idx]
            return [slots[j][idx].copy() for j in range(state.size)]

        return state.collective(self._rank, chunks, leader, extract)

    def scan(self, value: Any, op: ReduceOp = SUM) -> Any:
        """Inclusive prefix reduction over ranks."""
        ranks = self._state.world_ranks
        state = self._state
        rt = self._rt

        def leader(slots: list[Any]) -> Any:
            entry = rt.clocks[ranks]
            prefix, acc = [], None
            for s in slots:
                acc = s if acc is None else op(acc, s)
                prefix.append(acc)
            cost = rt.cost.scan(payload_nbytes(slots[0]), ranks)
            rt.stats.record_collective("scan", sum(payload_nbytes(s) for s in slots), state.size)
            return prefix, entry.max() + cost

        def extract(slots: list[Any], cell: Any, idx: int) -> Any:
            prefix, newclock = cell
            rt.clocks[ranks[idx]] = newclock
            return copy_payload(prefix[idx])

        return state.collective(self._rank, value, leader, extract)

    def exscan(self, value: Any, op: ReduceOp = SUM) -> Any:
        """Exclusive prefix reduction; rank 0 receives ``None``."""
        ranks = self._state.world_ranks
        state = self._state
        rt = self._rt

        def leader(slots: list[Any]) -> Any:
            entry = rt.clocks[ranks]
            prefix: list[Any] = [None]
            acc = None
            for s in slots[:-1]:
                acc = s if acc is None else op(acc, s)
                prefix.append(acc)
            cost = rt.cost.scan(payload_nbytes(slots[0]), ranks)
            rt.stats.record_collective("exscan", sum(payload_nbytes(s) for s in slots), state.size)
            return prefix, entry.max() + cost

        def extract(slots: list[Any], cell: Any, idx: int) -> Any:
            prefix, newclock = cell
            rt.clocks[ranks[idx]] = newclock
            return copy_payload(prefix[idx])

        return state.collective(self._rank, value, leader, extract)

    # -------------------------------------------------------- comm management

    def split(self, color: int | None, key: int = 0) -> "Comm | None":
        """Partition the communicator by ``color``; order members by ``key``.

        ``color=None`` (MPI_UNDEFINED) yields ``None`` for that rank.
        """
        state = self._state
        ranks = state.world_ranks
        rt = self._rt

        def leader(slots: list[Any]) -> Any:
            entry = rt.clocks[ranks]
            groups: dict[int, list[tuple[int, int]]] = {}
            for idx, (col, k) in enumerate(slots):
                if col is not None:
                    groups.setdefault(col, []).append((k, idx))
            assignment: dict[int, tuple[_CommState, int]] = {}
            for col in sorted(groups):
                members = sorted(groups[col])
                new_state = _CommState(rt, [ranks[idx] for _, idx in members])
                for new_rank, (_, idx) in enumerate(members):
                    assignment[idx] = (new_state, new_rank)
            cost = rt.cost.comm_split(ranks)
            rt.stats.record_collective("split", 16 * state.size, state.size)
            return assignment, entry.max() + cost

        def extract(slots: list[Any], cell: Any, idx: int) -> "Comm | None":
            assignment, newclock = cell
            rt.clocks[ranks[idx]] = newclock
            if idx not in assignment:
                return None
            new_state, new_rank = assignment[idx]
            return Comm(new_state, new_rank)

        return state.collective(self._rank, (color, key), leader, extract)

    def dup(self) -> "Comm":
        """Duplicate the communicator (fresh collective/p2p context)."""
        dup = self.split(0, self._rank)
        assert dup is not None
        return dup

    # --------------------------------------------------------------- helpers

    def _check_peer(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise CommunicatorError(
                f"peer rank {rank} out of range [0, {self.size})"
            )
