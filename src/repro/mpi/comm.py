"""Communicators: the rank-facing API of the SPMD runtime.

A :class:`Comm` is one rank's handle on a communicator.  The API follows
mpi4py's lowercase object interface (``send``/``recv``/``bcast``/``allreduce``
/ ``alltoallv`` / ``split`` ...), and every call advances the calling rank's
*virtual clock* according to the machine's cost model.

Implementation notes
--------------------
Collectives use a deposit / leader / extract protocol around a cyclic
three-phase barrier:

1. every rank writes its contribution into its slot and enters barrier A;
2. the leader (the rank that drew index 0 at barrier A) combines the slots
   and computes the group's new virtual clocks, then everyone passes B;
3. every rank reads its result and its new clock, then everyone passes C so
   the slots may be reused by the next collective.

This is deterministic in values (combines fold in rank order) and matches
MPI's requirement that all ranks issue collectives in the same order.
"""

from __future__ import annotations

import functools
import threading
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from ..trace.events import NULL_TRACER, NullTracer, RankTracer
from .errors import (
    Aborted,
    CommRevokedError,
    CommunicatorError,
    MessageTimeoutError,
    RankFailedError,
)
from .ops import SUM, ReduceOp
from .payload import copy_payload, payload_nbytes
from .requests import Request, _DoneRequest, _IRecvRequest
from .tags import NAMESPACE_WIDTH, RELIABLE_BASE

ANY_SOURCE = -1
ANY_TAG = -1


@dataclass
class _Message:
    src: int          # group rank of the sender
    tag: int
    payload: Any
    departure: float  # sender's virtual clock when the message left
    nbytes: int
    #: extra transfer-cost multiples injected by the fault plan (delay
    #: spikes + degraded-link windows); 0.0 on every faultless path
    penalty: float = 0.0
    #: sanitizer annotation (vector-clock snapshot + origin-buffer refs);
    #: None whenever the sanitizer is off
    san: Any = None


class _Mailbox:
    """Per-rank FIFO of in-flight messages with a condition variable."""

    def __init__(self) -> None:
        self.cond = threading.Condition()
        self.messages: list[_Message] = []

    def find(self, source: int, tag: int, *, remove: bool,
             visible=None) -> _Message | None:
        """First message matching (source, tag); wildcards are ``-1``.

        ``visible`` optionally filters matches: messages it rejects are
        skipped (and left in place) as if they had not arrived yet — the
        reliable layer uses this to keep data a crash-pending rank may
        not ack yet out of its channel waits."""
        for i, m in enumerate(self.messages):
            if (source == ANY_SOURCE or m.src == source) and (
                tag == ANY_TAG or m.tag == tag
            ) and (visible is None or visible(m)):
                return self.messages.pop(i) if remove else m
        return None


class _CommState:
    """State shared by all ranks of one communicator."""

    def __init__(self, runtime, world_ranks: Sequence[int]):
        self.runtime = runtime
        self.world_ranks: list[int] = [int(r) for r in world_ranks]
        self.size = len(self.world_ranks)
        self.barrier = threading.Barrier(self.size)
        self.slots: list[Any] = [None] * self.size
        self.cell: Any = None
        self.mailboxes = [_Mailbox() for _ in range(self.size)]
        self.aborted = False
        #: ULFM revocation flag; poisons every blocked/future ordinary
        #: operation on this communicator (shrink/agree keep working)
        self.revoked = False
        self._members_set = frozenset(self.world_ranks)
        # fault-tolerant rendezvous (agree/shrink): generation-stamped
        # deposits completed over the live membership, independent of the
        # (possibly broken) collective barrier.
        self.ft_cond = threading.Condition()
        self.ft_count = [0] * self.size
        self.ft_deposits: dict[int, dict[int, tuple[Any, float]]] = {}
        self.ft_results: dict[int, tuple[Any, float, list[int]]] = {}
        # reliable p2p bookkeeping, all keyed (own rank, peer, tag): send
        # sequence counters, highest (ack seq, arrival), highest in-order
        # delivery, buffered (payload, arrival) pairs awaiting consumption,
        # and per-sequence ack transmission counts.  Every key's first
        # element is the rank that touches it, so no locking is needed.
        self.rel_seq: dict[tuple[int, int, int], int] = {}
        self.rel_acked: dict[tuple[int, int, int], tuple[int, float]] = {}
        self.rel_delivered: dict[tuple[int, int, int], int] = {}
        self.rel_buf: dict[tuple[int, int, int], list[tuple[Any, float]]] = {}
        self.rel_ackseq: dict[tuple[int, int, int, int], int] = {}
        # per-sequence data arrivals already acknowledged: duplicate
        # copies of one transmission share an arrival and get ONE ack
        # (see _process — a second ack with its own fate would make the
        # sender's release time depend on processing order)
        self.rel_ack_sent: dict[tuple[int, int, int, int], list[float]] = {}
        # adaptive-ARQ extensions, same (own rank, peer, tag) ownership
        # discipline: per-link phi-accrual arrival histories and per-link
        # consecutive retry-budget exhaustions (the circuit breaker).
        self.rel_detect: dict[tuple[int, int, int], Any] = {}
        self.rel_breaker: dict[tuple[int, int, int], int] = {}
        #: serial number of this communicator (set by the runtime registry);
        #: together with the per-rank collective sequence number it matches
        #: the spans of one collective invocation across ranks.
        self.trace_id = -1
        self._seq = [0] * self.size
        self._entry_max = 0.0
        self._span_level: str | None = None
        runtime._register_state(self)

    def _group_level(self) -> str:
        """Locality level spanned by this communicator (cached)."""
        if self._span_level is None:
            placement = getattr(self.runtime.cost, "placement", None)
            if placement is None or self.size == 1:
                self._span_level = "self"
            else:
                self._span_level = placement.span_level(self.world_ranks).name.lower()
        return self._span_level

    def abort(self) -> None:
        self.aborted = True
        self.barrier.abort()
        for mb in self.mailboxes:
            with mb.cond:
                mb.cond.notify_all()
        with self.ft_cond:
            self.ft_cond.notify_all()

    def _checked_barrier_wait(self, idx: int, op: str) -> int:
        """``barrier.wait()`` with blocked-rank registration for the wait
        registry (always) and the runtime checker (when attached)."""
        rt = self.runtime
        wr = self.world_ranks[idx]
        reg = rt._registry
        reg.block_barrier(wr, self.barrier, f"collective '{op}' on comm#{self.trace_id}")
        try:
            chk = rt.checker
            if chk is None:
                return self.barrier.wait()
            chk.block_collective(self, idx, op)
            try:
                return self.barrier.wait()
            finally:
                chk.unblock(wr)
        finally:
            reg.unblock(wr)

    def collective(
        self,
        idx: int,
        deposit: Any,
        leader_fn: Callable[[list[Any]], Any],
        extract_fn: Callable[[list[Any], Any, int], Any],
        trace_name: str | None = None,
        trace_bytes: int = 0,
        root: int | None = None,
    ) -> Any:
        rt = self.runtime
        if rt._faults is not None:
            rt.maybe_crash(self.world_ranks[idx])
        if self.aborted:
            chk = rt.checker
            if chk is not None:
                chk.maybe_raise_deadlock()
            raise Aborted("communicator already aborted")
        if self.revoked:
            raise CommRevokedError(
                f"communicator #{self.trace_id} was revoked"
            )
        failed = rt.failed_ranks
        if failed and not failed.isdisjoint(self._members_set):
            raise RankFailedError(
                f"collective '{trace_name or '<anonymous>'}' on comm#"
                f"{self.trace_id}: member rank(s) "
                f"{sorted(failed & self._members_set)} have failed",
                failed & self._members_set,
            )
        chk = rt.checker
        if chk is not None:
            chk.collective_op(self, idx, trace_name or "<anonymous>", root)
        san = rt.sanitizer
        if san is not None:
            # Deposit edge: snapshot this member's vector clock and pin
            # weak references to its deposit arrays (stable until barrier
            # C releases the slots for reuse).
            san.collective_entry(self, idx, deposit, trace_name or "<anonymous>")
        rec = rt.trace
        if rec is not None:
            wrank = self.world_ranks[idx]
            t0 = float(rt.clocks[wrank])
            seq = self._seq[idx]
            self._seq[idx] = seq + 1
        self.slots[idx] = deposit
        op = trace_name or "<anonymous>"
        try:
            who = self._checked_barrier_wait(idx, op)
            if who == 0:
                # Entry clocks are still untouched here (extract sets the
                # new ones after barrier B), so the leader can publish the
                # last arrival for every rank's idle accounting; barrier B
                # orders this write before the readers below.
                if rec is not None:
                    self._entry_max = float(rt.clocks[self.world_ranks].max())
                try:
                    self.cell = leader_fn(self.slots)
                except BaseException:
                    self.runtime.abort()
                    raise
            self._checked_barrier_wait(idx, op)
            try:
                out = extract_fn(self.slots, self.cell, idx)
            except BaseException:
                self.runtime.abort()
                raise
            if san is not None:
                # Extraction edge, still before barrier C: every member's
                # deposit is live here, so the alias check sees the true
                # sharing relation between this result and peer deposits.
                san.collective_exit(self, idx, out, op)
            self._checked_barrier_wait(idx, op)
        except threading.BrokenBarrierError:
            if chk is not None:
                chk.maybe_raise_deadlock()
            if not self.aborted:
                if self.revoked:
                    raise CommRevokedError(
                        f"communicator #{self.trace_id} was revoked during "
                        f"'{op}'"
                    ) from None
                failed = rt.failed_ranks & self._members_set
                if failed:
                    raise RankFailedError(
                        f"rank(s) {sorted(failed)} failed during "
                        f"collective '{op}' on comm#{self.trace_id}",
                        failed,
                    ) from None
            raise Aborted("runtime aborted during a collective") from None
        if rec is not None and trace_name is not None:
            t1 = float(rt.clocks[wrank])
            last = self._entry_max
            idle = min(max(last - t0, 0.0), max(t1 - t0, 0.0))
            rec.record(
                wrank,
                trace_name,
                "collective",
                t0,
                t1,
                idle=idle,
                bytes=int(trace_bytes),
                nranks=self.size,
                level=self._group_level(),
                comm=self.trace_id,
                seq=seq,
                last_arrival=last,
            )
        return out

    # ------------------------------------------------ fault-tolerant path

    def _ft_try_complete(self, gen: int, combine, cost_fn) -> None:
        """Complete rendezvous generation ``gen`` if every live member has
        deposited (caller holds ``ft_cond``)."""
        if gen in self.ft_results:
            return
        deps = self.ft_deposits.get(gen, {})
        failed = self.runtime.failed_ranks
        live = [i for i in range(self.size)
                if self.world_ranks[i] not in failed]
        if not live or any(i not in deps for i in live):
            return
        order = sorted(deps)
        values = [deps[i][0] for i in order]
        entry = max(deps[i][1] for i in order)
        live_world = [self.world_ranks[i] for i in live]
        result = combine(values, order, live)
        self.ft_results[gen] = (result, entry + float(cost_fn(live_world)), live)
        self.ft_cond.notify_all()

    def _ft_quorum(self, gen: int) -> bool:
        """Lock-free completion test for the timeout arbiter (monotone:
        deposits and failures only grow)."""
        deps = self.ft_deposits.get(gen)
        if deps is None:
            return False
        failed = self.runtime.failed_ranks
        return all(idx in deps or self.world_ranks[idx] in failed
                   for idx in range(self.size))

    def _pending_protocol(
        self, idx: int, exclude: tuple[int, int] | None = None
    ) -> bool:
        """Any reliable-layer wire message sitting in ``idx``'s mailbox?
        Read without the mailbox lock — callers are the quiescence arbiter
        (mailboxes stable) and the ft wait loop (re-checked under
        ``ft_cond``, which orders against the sender's post-append
        notification).  ``exclude`` mirrors
        :func:`~repro.mpi.reliable.service_pending`: messages matching
        that receive pattern belong to the wait itself, not the channel
        servicer.  Data the rank may not ack yet — a crash-pending rank's
        clock-bounded servicing, :func:`~repro.mpi.reliable.deferred` —
        does not count: waking for it would spin, since the drain leaves
        it in place."""
        comm = None
        for m in self.mailboxes[idx].messages:
            if RELIABLE_BASE <= m.tag < RELIABLE_BASE + NAMESPACE_WIDTH:
                if exclude is not None \
                        and (exclude[0] < 0 or m.src == exclude[0]) \
                        and (exclude[1] < 0 or m.tag == exclude[1]):
                    continue
                if comm is None:
                    from .reliable import deferred
                    comm = Comm(self, idx)
                if deferred(comm, m):
                    continue
                return True
        return False

    def ft_collective(self, idx: int, value: Any, combine, cost_fn,
                      name: str, comm: "Comm | None" = None) -> Any:
        """Fault-tolerant rendezvous (``agree``/``shrink``).

        Completes over the set of *live* members without touching the
        (possibly broken) collective barrier: each member's Nth ft op
        joins generation N; a generation completes once every live member
        has deposited, and rank crashes shrink that requirement and wake
        the waiters, so completion never hangs on a dead rank.  This path
        contains no crash checkpoints: a rank that deposits is guaranteed
        to read the result, which is what makes completion sound.

        While waiting, the rank keeps *servicing reliable-channel traffic*
        (acknowledging data, buffering payloads) via ``comm`` — the ULFM
        agreement runs over a live transport.  Without this, a peer whose
        last ack of the epoch was dropped would retransmit into the void:
        everyone it could reach has moved into the rendezvous and would
        never re-ack, so its retry ladder is doomed no matter the policy.
        """
        rt = self.runtime
        reg = rt._registry
        wr = self.world_ranks[idx]
        drain = comm is not None and rt._faults is not None

        def pending() -> bool:
            # ``comm`` may live on a *different* communicator state than the
            # rendezvous (the spare-pool protocol runs on the world state
            # while ARQ channels run on the work communicator): the drain
            # check must look at the servicing comm's own mailbox.
            return comm._state._pending_protocol(comm.rank)

        if self.aborted:
            raise Aborted(f"runtime aborted before '{name}'")
        with self.ft_cond:
            gen = self.ft_count[idx]
            self.ft_count[idx] = gen + 1
            deps = self.ft_deposits.setdefault(gen, {})
            deps[idx] = (value, float(rt.clocks[wr]))
            self._ft_try_complete(gen, combine, cost_fn)
            done = gen in self.ft_results
        if not done:
            def can_progress() -> bool:
                return (self.aborted or gen in self.ft_results
                        or self._ft_quorum(gen)
                        or (drain and pending()))

            def wake() -> None:
                with self.ft_cond:
                    self.ft_cond.notify_all()

            reg.block(wr, "ft", f"'{name}' on comm#{self.trace_id}",
                      can_progress=can_progress, notify=wake)
            try:
                while True:
                    with self.ft_cond:
                        if self.aborted:
                            raise Aborted(f"runtime aborted during '{name}'")
                        self._ft_try_complete(gen, combine, cost_fn)
                        if gen in self.ft_results:
                            break
                        if not (drain and pending()):
                            reg.rearm(wr)
                            self.ft_cond.wait()
                        # Mark the wake in flight (or the drain below) so
                        # the arbiter holds its fire until repoll.
                        reg.wake_ack(wr)
                    if drain:
                        # Outside ft_cond: acking sends would self-deadlock
                        # on its notification otherwise.
                        comm._service_channels()
                        reg.repoll(wr)
            finally:
                reg.unblock(wr)
        result, newclock, live = self.ft_results[gen]
        t0 = float(rt.clocks[wr])
        rt.clocks[wr] = max(t0, newclock)
        rec = rt.trace
        if rec is not None:
            rec.record(wr, name, "collective", t0, float(rt.clocks[wr]),
                       comm=self.trace_id, nranks=len(live),
                       level=self._group_level())
        return result


class Comm:
    """One rank's handle on a communicator."""

    def __init__(self, state: _CommState, rank: int):
        self._state = state
        self._rank = rank
        self._rt = state.runtime

    # ------------------------------------------------------------- identity

    @property
    def rank(self) -> int:
        """This rank's index within the communicator."""
        return self._rank

    @property
    def size(self) -> int:
        """Number of ranks in the communicator."""
        return self._state.size

    @property
    def world_rank(self) -> int:
        """This rank's index in the world communicator."""
        return self._state.world_ranks[self._rank]

    @property
    def world_ranks(self) -> list[int]:
        """World ranks of all members, indexed by group rank."""
        return list(self._state.world_ranks)

    @property
    def cost(self):
        """The runtime's :class:`~repro.machine.cost.CostModel`."""
        return self._rt.cost

    # -------------------------------------------------------------- tracing

    @property
    def tracer(self) -> "RankTracer | NullTracer":
        """This rank's span tracer (a shared no-op when tracing is off)."""
        rec = self._rt.trace
        if rec is None:
            return NULL_TRACER
        return rec.tracer(self.world_rank)

    @property
    def trace_recorder(self):
        """The runtime's :class:`~repro.trace.TraceRecorder`, or ``None``."""
        return self._rt.trace

    def ensure_tracing(self):
        """Enable tracing on the runtime (idempotent, collective-safe)."""
        return self._rt.enable_tracing()

    def _pair_level(self, world_peer: int) -> str:
        placement = getattr(self._rt.cost, "placement", None)
        if placement is None:
            return "self"
        return placement.level(self.world_rank, world_peer).name.lower()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Comm rank {self._rank}/{self.size} (world {self.world_rank})>"

    # ---------------------------------------------------------- virtual time

    @property
    def clock(self) -> float:
        """This rank's virtual clock, in seconds."""
        return float(self._rt.clocks[self.world_rank])

    @clock.setter
    def clock(self, value: float) -> None:
        self._rt.clocks[self.world_rank] = value

    def compute(self, seconds: float) -> None:
        """Charge ``seconds`` of modelled local compute to this rank."""
        if seconds < 0:
            raise ValueError("compute time must be >= 0")
        wr = self.world_rank
        rec = self._rt.trace
        t0 = float(self._rt.clocks[wr]) if rec is not None else 0.0
        self._rt.clocks[wr] += seconds
        self._rt.stats.record_compute(wr, seconds)
        if rec is not None:
            rec.record(wr, "compute", "compute", t0, float(self._rt.clocks[wr]))

    # ------------------------------------------------------------------- p2p

    def send(self, obj: Any, dest: int, tag: int = 0, *,
             _at: float | None = None, _stream: int = 0,
             _event: tuple[int, ...] | None = None,
             _control: str | None = None) -> None:
        """Buffered (eager) send: never blocks.

        Under a fault plan the message may be dropped, duplicated, or
        tagged with a delay penalty — decided deterministically from the
        plan's seed and this link's per-stream send counter.  Sends to
        crashed ranks are silently buffered into the dead mailbox (like
        an eager MPI send whose peer died): failure surfaces at the
        *receiving* side, which keeps the sender's behaviour independent
        of crash timing.

        ``_at`` (protocol-internal, used for the reliable layer's acks)
        stamps the message with the given causal departure time instead
        of this rank's clock and leaves the clock untouched, so the
        timestamp is independent of what else this rank happened to be
        doing — a prerequisite for deterministic virtual times under
        faults.  ``_at`` sends are not crash checkpoints.

        ``_control`` classifies the payload as control-plane traffic of
        the named kind (``"arq"`` acks/retransmissions, ``"checkpoint"``
        buddy replication, ``"heartbeat"``): it is tallied in
        :meth:`Stats.record_control` instead of the data-plane
        ``bytes_sent`` counters, keeping ``wire_bytes`` comparable across
        runs with and without the recovery machinery.
        """
        self._check_peer(dest)
        rt = self._rt
        plan = rt._faults
        if plan is not None and _at is None:
            rt.maybe_crash(self.world_rank)
        nbytes = payload_nbytes(obj)
        t0 = self.clock if _at is None else _at
        departure = t0 + rt.cost.software_overhead
        if _at is None:
            self.clock = departure
        msg = _Message(self._rank, tag, copy_payload(obj), departure, nbytes)
        if _control is None:
            rt.stats.record_send(self.world_rank, nbytes)
        else:
            rt.stats.record_control(self.world_rank, nbytes, _control)
        rec = rt.trace
        wdest = self._state.world_ranks[dest]
        san = rt.sanitizer
        if san is not None and _at is None:
            # Protocol (``_at``) sends are reactive retransmissions; their
            # delivery timing is thread-scheduling dependent, so they carry
            # no happens-before annotation (the data-plane copy already did).
            msg.san = san.on_send(self.world_rank, obj, wdest, tag)
        if rec is not None:
            rec.record(
                self.world_rank,
                "send",
                "p2p",
                t0,
                departure,
                peer=wdest,
                tag=tag,
                bytes=nbytes,
                level=self._pair_level(wdest),
            )
        fault = None
        if plan is not None:
            fault = plan.link_event(self.world_rank, wdest, _stream, _event)
            penalty = fault.delay_factor + plan.degrade_factor(
                self.world_rank, wdest, departure
            )
            # Protocol (``_at``) sends are reactive — whether the very last
            # ack of a dying epoch goes out depends on thread scheduling —
            # so only data-plane faults are tallied; that keeps FaultStats
            # a pure function of the seed.
            if penalty:
                msg.penalty = penalty
                if _at is None:
                    rt._count_fault("delayed")
            if fault.drop:
                if _at is None:
                    rt._count_fault("dropped")
                if rec is not None:
                    rec.record(self.world_rank, "drop", "fault", t0, departure,
                               peer=wdest, tag=tag, bytes=nbytes)
                return
        chk = rt.checker
        if chk is not None:
            # Shadow-table update must precede the mailbox append so the
            # deadlock analyzer can only over-estimate wakeups, never miss
            # one (see repro.analyze.runtime_check lock-ordering notes).
            chk.note_send(self._state, dest, self._rank, tag)
        mb = self._state.mailboxes[dest]
        # Reliable wire traffic to a crashed rank diverts to the
        # post-mortem path — the failed check shares the mailbox
        # condition with the crash-time drain's scan, so a message is
        # always either drained by the dying rank or diverted here,
        # never stranded in the dead mailbox by the race between the
        # deposit and the crash.
        divert = (plan is not None
                  and RELIABLE_BASE <= tag < RELIABLE_BASE + NAMESPACE_WIDTH)
        with mb.cond:
            dead = divert and wdest in rt.failed_ranks
            if not dead:
                mb.messages.append(msg)
                mb.cond.notify_all()
        if dead:
            self._post_mortem(msg, dest, wdest, _at is not None)
        if fault is not None and fault.duplicate:
            if _at is None:
                rt._count_fault("duplicated")
            if rec is not None:
                rec.record(self.world_rank, "dup", "fault", t0, departure,
                           peer=wdest, tag=tag, bytes=nbytes)
            dup = _Message(self._rank, tag, copy_payload(msg.payload),
                           departure, nbytes, penalty=msg.penalty, san=msg.san)
            if chk is not None:
                chk.note_send(self._state, dest, self._rank, tag)
            with mb.cond:
                dead = divert and wdest in rt.failed_ranks
                if not dead:
                    mb.messages.append(dup)
                    mb.cond.notify_all()
            if dead:
                self._post_mortem(dup, dest, wdest, _at is not None)
        if plan is not None and \
                RELIABLE_BASE <= tag < RELIABLE_BASE + NAMESPACE_WIDTH:
            # Wake ft-blocked members so they service the channel (the
            # dest may already sit in agree/shrink; see ft_collective).
            with self._state.ft_cond:
                self._state.ft_cond.notify_all()
            # The dest may instead be waiting in the spare-pool rendezvous,
            # which lives on the *world* state while this channel lives on
            # the work communicator — poke that condition too (waiters
            # re-check their predicates, so a spurious wake is harmless).
            ws = rt.world_state
            if ws is not self._state:
                with ws.ft_cond:
                    ws.ft_cond.notify_all()

    def _post_mortem(self, msg: "_Message", dest: int, wdest: int,
                     protocol: bool) -> None:
        """Deterministic fate for reliable wire traffic addressed to a
        crashed rank: if the message's virtual arrival precedes the
        crash instant, process it on the dead rank's behalf — the same
        cut :func:`~repro.mpi.reliable.crash_drain` applies to traffic
        deposited before the crash — so the ack it owes goes out with
        its causal timestamp.  Later arrivals, and protocol (ack)
        messages that could only release a wait the dead rank no longer
        runs, die with the rank.  Serialized per dead rank against the
        crash-time drain and other senders; channel dict entries are
        keyed by the dead rank, which never touches them again."""
        if protocol:
            return
        rt = self._rt
        lock = rt._dead_channel_locks.get(wdest)
        t_c = rt.crash_clocks.get(wdest)
        if lock is None or t_c is None:
            # Dead for a reason other than an injected crash (e.g. an
            # error unwound the rank): no cut is defined, message dies.
            return
        dcomm = type(self)(self._state, dest)
        if dcomm._arrival(msg) > t_c:
            return
        from .reliable import _process  # circular at module level

        with lock:
            _process(dcomm, msg, msg.tag - RELIABLE_BASE)

    def recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        *,
        timeout: float | None = None,
        return_status: bool = False,
        _span_name: str = "recv",
    ) -> Any:
        """Blocking receive; with ``return_status`` returns ``(obj, (src, tag))``.

        ``timeout`` is a *virtual-time* deadline: if no matching message
        can arrive before ``clock + timeout`` — decided by the runtime's
        quiescence arbiter, never by wall clock — the rank's clock jumps
        to the deadline and :class:`MessageTimeoutError` is raised.  A
        receive whose named source has crashed (and left no matching
        message behind) raises :class:`RankFailedError`; a receive on a
        revoked communicator that can no longer be satisfied raises
        :class:`CommRevokedError`.
        """
        rt = self._rt
        if rt._faults is not None:
            rt.maybe_crash(self.world_rank)
        rec = rt.trace
        t0 = self.clock if rec is not None else 0.0
        msg = self._recv_message(source, tag, timeout=timeout,
                                 span_name=_span_name)
        wsrc = self._state.world_ranks[msg.src]
        self.clock = max(self.clock, self._arrival(msg))
        san = rt.sanitizer
        if san is not None:
            san.on_recv(self.world_rank, msg.payload, msg.san, wsrc, msg.tag,
                        op=_span_name)
        if rec is not None:
            # The rank blocks from t0 until the message departs, then pays
            # the transfer: idle is the blocked share, the remainder is
            # transfer time (both zero if the message completed in the past).
            t1 = self.clock
            idle = max(0.0, min(msg.departure, t1) - t0) if t1 > t0 else 0.0
            if msg.penalty:
                rec.record(
                    self.world_rank, _span_name, "p2p", t0, t1,
                    src=wsrc, tag=msg.tag, bytes=msg.nbytes,
                    departure=msg.departure, idle=idle,
                    level=self._pair_level(wsrc), fault_delay=msg.penalty,
                )
            else:
                rec.record(
                    self.world_rank,
                    _span_name,
                    "p2p",
                    t0,
                    t1,
                    src=wsrc,
                    tag=msg.tag,
                    bytes=msg.nbytes,
                    departure=msg.departure,
                    idle=idle,
                    level=self._pair_level(wsrc),
                )
        if return_status:
            return msg.payload, (msg.src, msg.tag)
        return msg.payload

    def _arrival(self, msg: _Message) -> float:
        """Virtual arrival time of a received message (departure + priced
        transfer, inflated by any injected delay penalty)."""
        wsrc = self._state.world_ranks[msg.src]
        cost = self._rt.cost.ptp(wsrc, self.world_rank, msg.nbytes)
        if msg.penalty:
            cost = cost * (1.0 + msg.penalty)
        return msg.departure + cost

    def _recv_message(
        self, source: int, tag: int, *, timeout: float | None = None,
        fail_source: int | None = None, span_name: str = "recv",
        visible=None,
    ) -> _Message:
        """Clock-neutral matching receive: returns the raw message without
        advancing this rank's clock or recording a span (the caller decides
        when the arrival is merged — the reliable layer consumes channel
        traffic on behalf of *later* operations).  ``fail_source`` names a
        group rank whose death fails the wait even under ``ANY_SOURCE``
        matching; a named ``source`` implies it.  ``visible`` filters the
        mailbox match (see :meth:`_Mailbox.find`)."""
        if source != ANY_SOURCE:
            self._check_peer(source)
            if fail_source is None:
                fail_source = source
        chk = self._rt.checker
        mb = self._state.mailboxes[self._rank]
        with mb.cond:
            if self._state.aborted:
                if chk is not None:
                    chk.maybe_raise_deadlock()
                raise Aborted("runtime aborted during recv")
            msg = mb.find(source, tag, remove=True, visible=visible)
            if msg is not None and chk is not None:
                chk.note_consume(self._state, self._rank, msg.src, msg.tag)
        if msg is None:
            msg = self._recv_wait(mb, source, tag, timeout, span_name,
                                  fail_source, visible)
        return msg

    def _recv_wait(
        self, mb: _Mailbox, source: int, tag: int, timeout: float | None,
        span_name: str, fail_source: int | None, visible=None,
    ) -> _Message:
        """Slow path of :meth:`recv`: block until a matching message, an
        abort/revocation/failure wake-up, or a fired virtual deadline."""
        rt = self._rt
        state = self._state
        chk = rt.checker
        reg = rt._registry
        rank = self._rank
        wr = self.world_rank
        entry = float(rt.clocks[wr])
        deadline = None if timeout is None else entry + timeout

        # With faults active, a blocked receive doubles as a channel
        # servicer (like the ft waits): reliable wire traffic on *other*
        # tags is acked/buffered from here, so a serviceable message can
        # never sit stranded at quiescence — whether its ack goes out
        # before a peer's virtual deadline must not depend on thread
        # scheduling.  The wait's own (source, tag) pattern is excluded:
        # consuming the quarry from the servicer would starve the wait.
        drain = rt._faults is not None

        def pending() -> bool:
            return state._pending_protocol(rank, exclude=(source, tag))

        def can_progress() -> bool:
            # Mirrors the wake conditions of the loop below; called by the
            # timeout arbiter at quiescence only (mailbox lists are stable
            # there, so reading without the condition is safe).  A revoked
            # communicator deliberately does NOT count as progress: the
            # message may still be (causally) in flight, and whether it
            # beats the revocation wake-up is a thread-scheduling race.
            # The arbiter hoists revoked waits at quiescence instead.
            if state.aborted:
                return True
            if mb.find(source, tag, remove=False, visible=visible) is not None:
                return True
            if drain and pending():
                return True
            failed = rt.failed_ranks
            if failed:
                if fail_source is not None and \
                        state.world_ranks[fail_source] in failed:
                    return True
                if fail_source is None and source == ANY_SOURCE and all(
                    r in failed
                    for i, r in enumerate(state.world_ranks)
                    if i != rank
                ):
                    return True
            return False

        def wake() -> None:
            with mb.cond:
                mb.cond.notify_all()

        detail = (
            f"recv(source={'ANY' if source < 0 else source}, "
            f"tag={'ANY' if tag < 0 else tag}) on comm#{state.trace_id}"
        )
        w = reg.block(wr, "recv", detail, deadline=deadline,
                      can_progress=can_progress, notify=wake,
                      revocable=lambda: state.revoked)
        try:
            while True:
                with mb.cond:
                    while True:
                        if state.aborted:
                            if chk is not None:
                                chk.maybe_raise_deadlock()
                            raise Aborted("runtime aborted during recv")
                        msg = mb.find(source, tag, remove=True,
                                      visible=visible)
                        if msg is not None:
                            if chk is not None:
                                chk.note_consume(state, rank, msg.src, msg.tag)
                            return msg
                        failed = rt.failed_ranks
                        if failed:
                            comm_failed = failed & state._members_set
                            if fail_source is not None and \
                                    state.world_ranks[fail_source] in failed:
                                raise RankFailedError(
                                    f"recv: peer rank {fail_source} (world "
                                    f"{state.world_ranks[fail_source]}) has "
                                    "failed",
                                    comm_failed,
                                )
                            if fail_source is None and source == ANY_SOURCE \
                                    and all(
                                        r in failed
                                        for i, r in enumerate(state.world_ranks)
                                        if i != rank
                                    ):
                                raise RankFailedError(
                                    "recv: every peer on "
                                    f"comm#{state.trace_id} has failed",
                                    comm_failed,
                                )
                        if w.hoisted:
                            raise CommRevokedError(
                                f"communicator #{state.trace_id} was revoked "
                                "while blocked in recv"
                            )
                        if w.fired:
                            rt.clocks[wr] = max(float(rt.clocks[wr]), w.deadline)
                            rec = rt.trace
                            if rec is not None:
                                rec.record(wr, f"{span_name}_timeout", "fault",
                                           entry, float(rt.clocks[wr]),
                                           tag=tag, deadline=w.deadline)
                            raise MessageTimeoutError(
                                f"{detail} timed out at virtual "
                                f"t={w.deadline:.6g}s (timeout={timeout:g}s)"
                            )
                        if drain and pending():
                            # Serviceable channel traffic: mark the wake in
                            # flight so the arbiter holds its fire until the
                            # repoll below, then drain outside the mailbox
                            # condition (acking acquires peers' conditions —
                            # holding ours across that inverts lock order).
                            reg.wake_ack(wr)
                            break
                        if chk is not None:
                            chk.block_recv(state, rank, source, tag)
                        reg.rearm(wr)
                        mb.cond.wait()
                        reg.wake_ack(wr)
                        if chk is not None:
                            chk.unblock(wr)
                self._service_channels(exclude=(source, tag))
                reg.repoll(wr)
        finally:
            reg.unblock(wr)

    def sendrecv(
        self, obj: Any, dest: int, source: int | None = None, tag: int = 0
    ) -> Any:
        """Combined exchange; safe against deadlock because sends are eager."""
        if source is None:
            source = dest
        self.send(obj, dest, tag)
        return self.recv(source, tag)

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        self._check_peer(dest)
        san = self._rt.sanitizer
        record = None
        if san is not None:
            # Fingerprint the *user's* buffers before the eager copy: the
            # request re-checks them at wait()/test() and reports
            # WRITE-AFTER-ISEND if the sender mutated one in flight.
            record = san.begin_isend(
                self.world_rank, obj, self._state.world_ranks[dest], tag
            )
        self.send(obj, dest, tag)
        req = _DoneRequest()
        if record is not None:
            req._san = san
            req._san_record = record
        return req

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        req = _IRecvRequest(self, source, tag)
        chk = self._rt.checker
        if chk is not None:
            req._record = chk.note_irecv(self.world_rank, source, tag)
        return req

    # ------------------------------------------------------------ sanitizer

    def mark_read(self, obj: Any) -> None:
        """Annotate a read of an object shared across rank closures.

        No-op unless the runtime was built with ``sanitize=True``; with
        the sanitizer attached, the access joins this rank's vector clock
        into the object's happens-before history and reports an HB-RACE
        if it is concurrent with another rank's write.
        """
        san = self._rt.sanitizer
        if san is not None:
            san.mark_read(self.world_rank, obj)

    def mark_write(self, obj: Any) -> None:
        """Annotate a write to an object shared across rank closures.

        No-op unless the runtime was built with ``sanitize=True``; with
        the sanitizer attached, the write is checked against every other
        rank's unordered reads and writes of the same object.
        """
        san = self._rt.sanitizer
        if san is not None:
            san.mark_write(self.world_rank, obj)

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        """Non-blocking check whether a matching message is pending."""
        mb = self._state.mailboxes[self._rank]
        with mb.cond:
            return mb.find(source, tag, remove=False) is not None

    # ------------------------------------------------------------ collectives

    def _entry_clocks(self, slots_world: Sequence[int]) -> np.ndarray:
        return self._rt.clocks[slots_world]

    def _simple_collective(
        self,
        name: str,
        deposit: Any,
        combine: Callable[[list[Any]], Any],
        cost_fn: Callable[[list[Any]], Any],
        *,
        result_for_all: bool = True,
        root: int | None = None,
        check_root: int | None = None,
    ) -> Any:
        """Collective with a uniform (or per-rank) cost and one combined value.

        ``root`` gates the result to one rank; ``check_root`` feeds the
        congruence checker for rooted collectives whose result still goes
        to everyone (bcast).
        """
        state = self._state
        wr = state.world_ranks
        rt = self._rt

        def leader(slots: list[Any]) -> Any:
            entry = rt.clocks[wr]
            cost = cost_fn(slots)
            newclocks = entry.max() + np.asarray(cost, dtype=np.float64)
            total_bytes = sum(payload_nbytes(s) for s in slots)
            rt.stats.record_collective(name, total_bytes, state.size)
            return combine(slots), newclocks

        def extract(slots: list[Any], cell: Any, idx: int) -> Any:
            result, newclocks = cell
            nc = newclocks if np.ndim(newclocks) == 0 else newclocks[idx]
            rt.clocks[wr[idx]] = nc
            if root is not None and idx != root:
                return None
            return copy_payload(result) if result_for_all else result

        return state.collective(
            self._rank,
            deposit,
            leader,
            extract,
            trace_name=name,
            trace_bytes=payload_nbytes(deposit),
            root=root if root is not None else check_root,
        )

    def barrier(self) -> None:
        """Synchronize all ranks (and their virtual clocks)."""
        ranks = self._state.world_ranks
        self._simple_collective(
            "barrier", None, lambda s: None, lambda s: self._rt.cost.barrier(ranks)
        )

    def bcast(self, obj: Any, root: int = 0) -> Any:
        self._check_peer(root)
        ranks = self._state.world_ranks
        deposit = obj if self._rank == root else None
        return self._simple_collective(
            "bcast",
            deposit,
            lambda s: s[root],
            lambda s: self._rt.cost.bcast(payload_nbytes(s[root]), ranks),
            check_root=root,
        )

    def reduce(self, value: Any, op: ReduceOp = SUM, root: int = 0) -> Any:
        self._check_peer(root)
        ranks = self._state.world_ranks
        return self._simple_collective(
            "reduce",
            value,
            lambda s: functools.reduce(op, s),
            lambda s: self._rt.cost.reduce(payload_nbytes(s[0]), ranks),
            root=root,
        )

    def allreduce(self, value: Any, op: ReduceOp = SUM) -> Any:
        ranks = self._state.world_ranks
        return self._simple_collective(
            "allreduce",
            value,
            lambda s: functools.reduce(op, s),
            lambda s: self._rt.cost.allreduce(payload_nbytes(s[0]), ranks),
        )

    def gather(self, value: Any, root: int = 0) -> list[Any] | None:
        self._check_peer(root)
        ranks = self._state.world_ranks
        return self._simple_collective(
            "gather",
            value,
            lambda s: list(s),
            lambda s: self._rt.cost.gather(payload_nbytes(s[0]), ranks),
            root=root,
        )

    def allgather(self, value: Any) -> list[Any]:
        ranks = self._state.world_ranks
        return self._simple_collective(
            "allgather",
            value,
            lambda s: list(s),
            lambda s: self._rt.cost.allgather(payload_nbytes(s[0]), ranks),
        )

    def scatter(self, values: Sequence[Any] | None, root: int = 0) -> Any:
        self._check_peer(root)
        ranks = self._state.world_ranks
        size = self.size
        if self._rank == root:
            if values is None or len(values) != size:
                raise CommunicatorError(
                    f"scatter at root needs exactly {size} values"
                )
        state = self._state
        rt = self._rt

        def leader(slots: list[Any]) -> Any:
            vals = slots[root]
            entry = rt.clocks[ranks]
            per = payload_nbytes(vals) / max(size, 1)
            cost = rt.cost.scatter(per, ranks)
            rt.stats.record_collective("scatter", payload_nbytes(vals), size)
            return vals, entry.max() + cost

        def extract(slots: list[Any], cell: Any, idx: int) -> Any:
            vals, newclock = cell
            rt.clocks[ranks[idx]] = newclock
            return copy_payload(vals[idx])

        return state.collective(
            self._rank,
            values if self._rank == root else None,
            leader,
            extract,
            trace_name="scatter",
            trace_bytes=payload_nbytes(values) if self._rank == root else 0,
            root=root,
        )

    def alltoall(self, values: Sequence[Any]) -> list[Any]:
        """Personalized exchange of one payload per peer."""
        if len(values) != self.size:
            raise CommunicatorError(f"alltoall needs {self.size} values")
        state = self._state
        ranks = state.world_ranks
        rt = self._rt

        def leader(slots: list[Any]) -> Any:
            entry = rt.clocks[ranks]
            total = sum(payload_nbytes(row) for row in slots)
            per_pair = total / max(state.size**2, 1)
            cost = rt.cost.alltoall(per_pair, ranks)
            rt.stats.record_collective("alltoall", total, state.size)
            return entry.max() + cost

        def extract(slots: list[Any], newclock: float, idx: int) -> list[Any]:
            rt.clocks[ranks[idx]] = newclock
            return [copy_payload(slots[j][idx]) for j in range(state.size)]

        return state.collective(
            self._rank,
            list(values),
            leader,
            extract,
            trace_name="alltoall",
            trace_bytes=payload_nbytes(list(values)),
        )

    def alltoallv(self, chunks: Sequence[np.ndarray]) -> list[np.ndarray]:
        """Irregular personalized exchange of NumPy arrays.

        ``chunks[j]`` is what this rank sends to group rank ``j``; the return
        value is the list of arrays received, indexed by source rank.  Costs
        come from :meth:`CostModel.alltoallv_per_rank` over the full volume
        matrix.
        """
        if len(chunks) != self.size:
            raise CommunicatorError(f"alltoallv needs {self.size} chunks")
        chunks = [np.asarray(c) for c in chunks]
        state = self._state
        ranks = state.world_ranks
        rt = self._rt

        def leader(slots: list[Any]) -> Any:
            entry = rt.clocks[ranks]
            vols = np.array(
                [[c.nbytes for c in row] for row in slots], dtype=np.float64
            )
            per_rank = rt.cost.alltoallv_per_rank(vols, ranks)
            rt.stats.record_collective("alltoallv", float(vols.sum()), state.size)
            return entry.max() + per_rank

        def extract(slots: list[Any], newclocks: np.ndarray, idx: int) -> list[np.ndarray]:
            rt.clocks[ranks[idx]] = newclocks[idx]
            return [slots[j][idx].copy() for j in range(state.size)]

        return state.collective(
            self._rank,
            chunks,
            leader,
            extract,
            trace_name="alltoallv",
            trace_bytes=int(sum(c.nbytes for c in chunks)),
        )

    def scan(self, value: Any, op: ReduceOp = SUM) -> Any:
        """Inclusive prefix reduction over ranks."""
        ranks = self._state.world_ranks
        state = self._state
        rt = self._rt

        def leader(slots: list[Any]) -> Any:
            entry = rt.clocks[ranks]
            prefix, acc = [], None
            for s in slots:
                acc = s if acc is None else op(acc, s)
                prefix.append(acc)
            cost = rt.cost.scan(payload_nbytes(slots[0]), ranks)
            rt.stats.record_collective("scan", sum(payload_nbytes(s) for s in slots), state.size)
            return prefix, entry.max() + cost

        def extract(slots: list[Any], cell: Any, idx: int) -> Any:
            prefix, newclock = cell
            rt.clocks[ranks[idx]] = newclock
            return copy_payload(prefix[idx])

        return state.collective(
            self._rank, value, leader, extract,
            trace_name="scan", trace_bytes=payload_nbytes(value),
        )

    def exscan(self, value: Any, op: ReduceOp = SUM) -> Any:
        """Exclusive prefix reduction; rank 0 receives ``None``."""
        ranks = self._state.world_ranks
        state = self._state
        rt = self._rt

        def leader(slots: list[Any]) -> Any:
            entry = rt.clocks[ranks]
            prefix: list[Any] = [None]
            acc = None
            for s in slots[:-1]:
                acc = s if acc is None else op(acc, s)
                prefix.append(acc)
            cost = rt.cost.scan(payload_nbytes(slots[0]), ranks)
            rt.stats.record_collective("exscan", sum(payload_nbytes(s) for s in slots), state.size)
            return prefix, entry.max() + cost

        def extract(slots: list[Any], cell: Any, idx: int) -> Any:
            prefix, newclock = cell
            rt.clocks[ranks[idx]] = newclock
            return copy_payload(prefix[idx])

        return state.collective(
            self._rank, value, leader, extract,
            trace_name="exscan", trace_bytes=payload_nbytes(value),
        )

    # -------------------------------------------------------- comm management

    def split(self, color: int | None, key: int = 0) -> "Comm | None":
        """Partition the communicator by ``color``; order members by ``key``.

        ``color=None`` (MPI_UNDEFINED) yields ``None`` for that rank.
        """
        state = self._state
        ranks = state.world_ranks
        rt = self._rt

        def leader(slots: list[Any]) -> Any:
            entry = rt.clocks[ranks]
            groups: dict[int, list[tuple[int, int]]] = {}
            for idx, (col, k) in enumerate(slots):
                if col is not None:
                    groups.setdefault(col, []).append((k, idx))
            assignment: dict[int, tuple[_CommState, int]] = {}
            for col in sorted(groups):
                members = sorted(groups[col])
                new_state = _CommState(rt, [ranks[idx] for _, idx in members])
                for new_rank, (_, idx) in enumerate(members):
                    assignment[idx] = (new_state, new_rank)
            cost = rt.cost.comm_split(ranks)
            rt.stats.record_collective("split", 16 * state.size, state.size)
            return assignment, entry.max() + cost

        def extract(slots: list[Any], cell: Any, idx: int) -> "Comm | None":
            assignment, newclock = cell
            rt.clocks[ranks[idx]] = newclock
            if idx not in assignment:
                return None
            new_state, new_rank = assignment[idx]
            return Comm(new_state, new_rank)

        return state.collective(
            self._rank, (color, key), leader, extract,
            trace_name="split", trace_bytes=16,
        )

    def dup(self) -> "Comm":
        """Duplicate the communicator (fresh collective/p2p context)."""
        dup = self.split(0, self._rank)
        assert dup is not None
        return dup

    # ------------------------------------------------------- fault tolerance

    @property
    def revoked(self) -> bool:
        """True once any member has called :meth:`revoke`."""
        return self._state.revoked

    @property
    def failed(self) -> frozenset[int]:
        """World ranks of this communicator's members that have crashed."""
        return frozenset(self._rt.failed_ranks) & self._state._members_set

    def revoke(self) -> None:
        """ULFM ``MPI_Comm_revoke``: poison the communicator.

        Every member blocked in (or later entering) a p2p or plain
        collective operation on this communicator raises
        :class:`CommRevokedError`.  The fault-tolerant rendezvous
        operations :meth:`agree` and :meth:`shrink` remain usable — that
        is the whole point: survivors revoke, agree on the outcome, and
        shrink to continue.  Idempotent and deliberately *local*: it
        returns without waiting for other ranks.
        """
        state = self._state
        if state.revoked:
            return
        state.revoked = True
        rec = self._rt.trace
        if rec is not None:
            now = float(self._rt.clocks[self.world_rank])
            rec.record(self.world_rank, "revoke", "fault", now, now,
                       comm=state.trace_id)
        # Wake everyone: break the collective barrier and poke mailboxes so
        # blocked peers re-check `state.revoked`.
        state.barrier.abort()
        for mb in state.mailboxes:
            with mb.cond:
                mb.cond.notify_all()

    def agree(self, flag: Any = True) -> bool:
        """ULFM ``MPI_Comm_agree``: fault-tolerant logical-AND over the
        *live* members.  Completes even with crashed members and on a
        revoked communicator; all live members get the same result."""
        rt = self._rt

        def combine(values: list[Any], order: list[int], live: list[int]) -> bool:
            return all(bool(v) for v in values)

        def cost_fn(live_world: list[int]) -> float:
            return rt.cost.allreduce(8, live_world)

        return self._state.ft_collective(
            self._rank, flag, combine, cost_fn, "agree", comm=self
        )

    def shrink(self) -> "Comm":
        """ULFM ``MPI_Comm_shrink``: build a new communicator containing
        exactly the live members (preserving rank order).  Fault-tolerant
        and revoke-immune, like :meth:`agree`."""
        rt = self._rt
        state = self._state

        def combine(values: list[Any], order: list[int], live: list[int]):
            new_state = _CommState(rt, [state.world_ranks[i] for i in live])
            mapping = {idx: new_rank for new_rank, idx in enumerate(live)}
            return new_state, mapping

        def cost_fn(live_world: list[int]) -> float:
            return rt.cost.comm_split(live_world)

        new_state, mapping = self._state.ft_collective(
            self._rank, None, combine, cost_fn, "shrink", comm=self
        )
        return type(self)(new_state, mapping[self._rank])

    def _service_channels(self, exclude: tuple[int, int] | None = None) -> int:
        """Drain and process pending reliable-layer wire traffic (clock
        neutral; see :func:`repro.mpi.reliable.service_pending`)."""
        from .reliable import service_pending  # circular at module level

        return service_pending(self, exclude)

    # --------------------------------------------------------------- helpers

    def _check_peer(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise CommunicatorError(
                f"peer rank {rank} out of range [0, {self.size})"
            )
