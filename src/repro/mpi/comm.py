"""Communicators: the rank-facing API of the SPMD runtime.

A :class:`Comm` is one rank's handle on a communicator.  The API follows
mpi4py's lowercase object interface (``send``/``recv``/``bcast``/``allreduce``
/ ``alltoallv`` / ``split`` ...), and every call advances the calling rank's
*virtual clock* according to the machine's cost model.

Implementation notes
--------------------
Collectives use a deposit / leader / extract protocol around a cyclic
three-phase barrier:

1. every rank writes its contribution into its slot and enters barrier A;
2. the leader (the rank that drew index 0 at barrier A) combines the slots
   and computes the group's new virtual clocks, then everyone passes B;
3. every rank reads its result and its new clock, then everyone passes C so
   the slots may be reused by the next collective.

This is deterministic in values (combines fold in rank order) and matches
MPI's requirement that all ranks issue collectives in the same order.
"""

from __future__ import annotations

import functools
import threading
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from ..trace.events import NULL_TRACER, NullTracer, RankTracer
from .errors import Aborted, CommunicatorError
from .ops import SUM, ReduceOp
from .payload import copy_payload, payload_nbytes
from .requests import Request, _DoneRequest, _IRecvRequest

ANY_SOURCE = -1
ANY_TAG = -1


@dataclass
class _Message:
    src: int          # group rank of the sender
    tag: int
    payload: Any
    departure: float  # sender's virtual clock when the message left
    nbytes: int


class _Mailbox:
    """Per-rank FIFO of in-flight messages with a condition variable."""

    def __init__(self) -> None:
        self.cond = threading.Condition()
        self.messages: list[_Message] = []

    def find(self, source: int, tag: int, *, remove: bool) -> _Message | None:
        """First message matching (source, tag); wildcards are ``-1``."""
        for i, m in enumerate(self.messages):
            if (source == ANY_SOURCE or m.src == source) and (
                tag == ANY_TAG or m.tag == tag
            ):
                return self.messages.pop(i) if remove else m
        return None


class _CommState:
    """State shared by all ranks of one communicator."""

    def __init__(self, runtime, world_ranks: Sequence[int]):
        self.runtime = runtime
        self.world_ranks: list[int] = [int(r) for r in world_ranks]
        self.size = len(self.world_ranks)
        self.barrier = threading.Barrier(self.size)
        self.slots: list[Any] = [None] * self.size
        self.cell: Any = None
        self.mailboxes = [_Mailbox() for _ in range(self.size)]
        self.aborted = False
        #: serial number of this communicator (set by the runtime registry);
        #: together with the per-rank collective sequence number it matches
        #: the spans of one collective invocation across ranks.
        self.trace_id = -1
        self._seq = [0] * self.size
        self._entry_max = 0.0
        self._span_level: str | None = None
        runtime._register_state(self)

    def _group_level(self) -> str:
        """Locality level spanned by this communicator (cached)."""
        if self._span_level is None:
            placement = getattr(self.runtime.cost, "placement", None)
            if placement is None or self.size == 1:
                self._span_level = "self"
            else:
                self._span_level = placement.span_level(self.world_ranks).name.lower()
        return self._span_level

    def abort(self) -> None:
        self.aborted = True
        self.barrier.abort()
        for mb in self.mailboxes:
            with mb.cond:
                mb.cond.notify_all()

    def _checked_barrier_wait(self, idx: int, op: str) -> int:
        """``barrier.wait()`` with blocked-rank registration for the checker."""
        chk = self.runtime.checker
        if chk is None:
            return self.barrier.wait()
        chk.block_collective(self, idx, op)
        try:
            return self.barrier.wait()
        finally:
            chk.unblock(self.world_ranks[idx])

    def collective(
        self,
        idx: int,
        deposit: Any,
        leader_fn: Callable[[list[Any]], Any],
        extract_fn: Callable[[list[Any], Any, int], Any],
        trace_name: str | None = None,
        trace_bytes: int = 0,
        root: int | None = None,
    ) -> Any:
        if self.aborted:
            chk = self.runtime.checker
            if chk is not None:
                chk.maybe_raise_deadlock()
            raise Aborted("communicator already aborted")
        rt = self.runtime
        chk = rt.checker
        if chk is not None:
            chk.collective_op(self, idx, trace_name or "<anonymous>", root)
        rec = rt.trace
        if rec is not None:
            wrank = self.world_ranks[idx]
            t0 = float(rt.clocks[wrank])
            seq = self._seq[idx]
            self._seq[idx] = seq + 1
        self.slots[idx] = deposit
        op = trace_name or "<anonymous>"
        try:
            who = self._checked_barrier_wait(idx, op)
            if who == 0:
                # Entry clocks are still untouched here (extract sets the
                # new ones after barrier B), so the leader can publish the
                # last arrival for every rank's idle accounting; barrier B
                # orders this write before the readers below.
                if rec is not None:
                    self._entry_max = float(rt.clocks[self.world_ranks].max())
                try:
                    self.cell = leader_fn(self.slots)
                except BaseException:
                    self.runtime.abort()
                    raise
            self._checked_barrier_wait(idx, op)
            try:
                out = extract_fn(self.slots, self.cell, idx)
            except BaseException:
                self.runtime.abort()
                raise
            self._checked_barrier_wait(idx, op)
        except threading.BrokenBarrierError:
            if chk is not None:
                chk.maybe_raise_deadlock()
            raise Aborted("runtime aborted during a collective") from None
        if rec is not None and trace_name is not None:
            t1 = float(rt.clocks[wrank])
            last = self._entry_max
            idle = min(max(last - t0, 0.0), max(t1 - t0, 0.0))
            rec.record(
                wrank,
                trace_name,
                "collective",
                t0,
                t1,
                idle=idle,
                bytes=int(trace_bytes),
                nranks=self.size,
                level=self._group_level(),
                comm=self.trace_id,
                seq=seq,
                last_arrival=last,
            )
        return out


class Comm:
    """One rank's handle on a communicator."""

    def __init__(self, state: _CommState, rank: int):
        self._state = state
        self._rank = rank
        self._rt = state.runtime

    # ------------------------------------------------------------- identity

    @property
    def rank(self) -> int:
        """This rank's index within the communicator."""
        return self._rank

    @property
    def size(self) -> int:
        """Number of ranks in the communicator."""
        return self._state.size

    @property
    def world_rank(self) -> int:
        """This rank's index in the world communicator."""
        return self._state.world_ranks[self._rank]

    @property
    def world_ranks(self) -> list[int]:
        """World ranks of all members, indexed by group rank."""
        return list(self._state.world_ranks)

    @property
    def cost(self):
        """The runtime's :class:`~repro.machine.cost.CostModel`."""
        return self._rt.cost

    # -------------------------------------------------------------- tracing

    @property
    def tracer(self) -> "RankTracer | NullTracer":
        """This rank's span tracer (a shared no-op when tracing is off)."""
        rec = self._rt.trace
        if rec is None:
            return NULL_TRACER
        return rec.tracer(self.world_rank)

    @property
    def trace_recorder(self):
        """The runtime's :class:`~repro.trace.TraceRecorder`, or ``None``."""
        return self._rt.trace

    def ensure_tracing(self):
        """Enable tracing on the runtime (idempotent, collective-safe)."""
        return self._rt.enable_tracing()

    def _pair_level(self, world_peer: int) -> str:
        placement = getattr(self._rt.cost, "placement", None)
        if placement is None:
            return "self"
        return placement.level(self.world_rank, world_peer).name.lower()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Comm rank {self._rank}/{self.size} (world {self.world_rank})>"

    # ---------------------------------------------------------- virtual time

    @property
    def clock(self) -> float:
        """This rank's virtual clock, in seconds."""
        return float(self._rt.clocks[self.world_rank])

    @clock.setter
    def clock(self, value: float) -> None:
        self._rt.clocks[self.world_rank] = value

    def compute(self, seconds: float) -> None:
        """Charge ``seconds`` of modelled local compute to this rank."""
        if seconds < 0:
            raise ValueError("compute time must be >= 0")
        wr = self.world_rank
        rec = self._rt.trace
        t0 = float(self._rt.clocks[wr]) if rec is not None else 0.0
        self._rt.clocks[wr] += seconds
        self._rt.stats.record_compute(wr, seconds)
        if rec is not None:
            rec.record(wr, "compute", "compute", t0, float(self._rt.clocks[wr]))

    # ------------------------------------------------------------------- p2p

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Buffered (eager) send: never blocks."""
        self._check_peer(dest)
        nbytes = payload_nbytes(obj)
        t0 = self.clock
        departure = t0 + self._rt.cost.software_overhead
        self.clock = departure
        msg = _Message(self._rank, tag, copy_payload(obj), departure, nbytes)
        self._rt.stats.record_send(self.world_rank, nbytes)
        rec = self._rt.trace
        if rec is not None:
            wdest = self._state.world_ranks[dest]
            rec.record(
                self.world_rank,
                "send",
                "p2p",
                t0,
                departure,
                peer=wdest,
                tag=tag,
                bytes=nbytes,
                level=self._pair_level(wdest),
            )
        chk = self._rt.checker
        if chk is not None:
            # Shadow-table update must precede the mailbox append so the
            # deadlock analyzer can only over-estimate wakeups, never miss
            # one (see repro.analyze.runtime_check lock-ordering notes).
            chk.note_send(self._state, dest, self._rank, tag)
        mb = self._state.mailboxes[dest]
        with mb.cond:
            mb.messages.append(msg)
            mb.cond.notify_all()

    def recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        *,
        return_status: bool = False,
        _span_name: str = "recv",
    ) -> Any:
        """Blocking receive; with ``return_status`` returns ``(obj, (src, tag))``."""
        if source != ANY_SOURCE:
            self._check_peer(source)
        rec = self._rt.trace
        chk = self._rt.checker
        t0 = self.clock if rec is not None else 0.0
        mb = self._state.mailboxes[self._rank]
        with mb.cond:
            while True:
                if self._state.aborted:
                    if chk is not None:
                        chk.maybe_raise_deadlock()
                    raise Aborted("runtime aborted during recv")
                msg = mb.find(source, tag, remove=True)
                if msg is not None:
                    if chk is not None:
                        chk.note_consume(self._state, self._rank, msg.src, msg.tag)
                    break
                if chk is not None:
                    chk.block_recv(self._state, self._rank, source, tag)
                mb.cond.wait()
                if chk is not None:
                    chk.unblock(self.world_rank)
        wsrc = self._state.world_ranks[msg.src]
        cost = self._rt.cost.ptp(wsrc, self.world_rank, msg.nbytes)
        self.clock = max(self.clock, msg.departure + cost)
        if rec is not None:
            # The rank blocks from t0 until the message departs, then pays
            # the transfer: idle is the blocked share, the remainder is
            # transfer time (both zero if the message completed in the past).
            t1 = self.clock
            idle = max(0.0, min(msg.departure, t1) - t0) if t1 > t0 else 0.0
            rec.record(
                self.world_rank,
                _span_name,
                "p2p",
                t0,
                t1,
                src=wsrc,
                tag=msg.tag,
                bytes=msg.nbytes,
                departure=msg.departure,
                idle=idle,
                level=self._pair_level(wsrc),
            )
        if return_status:
            return msg.payload, (msg.src, msg.tag)
        return msg.payload

    def sendrecv(
        self, obj: Any, dest: int, source: int | None = None, tag: int = 0
    ) -> Any:
        """Combined exchange; safe against deadlock because sends are eager."""
        if source is None:
            source = dest
        self.send(obj, dest, tag)
        return self.recv(source, tag)

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        self.send(obj, dest, tag)
        return _DoneRequest()

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        req = _IRecvRequest(self, source, tag)
        chk = self._rt.checker
        if chk is not None:
            req._record = chk.note_irecv(self.world_rank, source, tag)
        return req

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        """Non-blocking check whether a matching message is pending."""
        mb = self._state.mailboxes[self._rank]
        with mb.cond:
            return mb.find(source, tag, remove=False) is not None

    # ------------------------------------------------------------ collectives

    def _entry_clocks(self, slots_world: Sequence[int]) -> np.ndarray:
        return self._rt.clocks[slots_world]

    def _simple_collective(
        self,
        name: str,
        deposit: Any,
        combine: Callable[[list[Any]], Any],
        cost_fn: Callable[[list[Any]], Any],
        *,
        result_for_all: bool = True,
        root: int | None = None,
        check_root: int | None = None,
    ) -> Any:
        """Collective with a uniform (or per-rank) cost and one combined value.

        ``root`` gates the result to one rank; ``check_root`` feeds the
        congruence checker for rooted collectives whose result still goes
        to everyone (bcast).
        """
        state = self._state
        wr = state.world_ranks
        rt = self._rt

        def leader(slots: list[Any]) -> Any:
            entry = rt.clocks[wr]
            cost = cost_fn(slots)
            newclocks = entry.max() + np.asarray(cost, dtype=np.float64)
            total_bytes = sum(payload_nbytes(s) for s in slots)
            rt.stats.record_collective(name, total_bytes, state.size)
            return combine(slots), newclocks

        def extract(slots: list[Any], cell: Any, idx: int) -> Any:
            result, newclocks = cell
            nc = newclocks if np.ndim(newclocks) == 0 else newclocks[idx]
            rt.clocks[wr[idx]] = nc
            if root is not None and idx != root:
                return None
            return copy_payload(result) if result_for_all else result

        return state.collective(
            self._rank,
            deposit,
            leader,
            extract,
            trace_name=name,
            trace_bytes=payload_nbytes(deposit),
            root=root if root is not None else check_root,
        )

    def barrier(self) -> None:
        """Synchronize all ranks (and their virtual clocks)."""
        ranks = self._state.world_ranks
        self._simple_collective(
            "barrier", None, lambda s: None, lambda s: self._rt.cost.barrier(ranks)
        )

    def bcast(self, obj: Any, root: int = 0) -> Any:
        self._check_peer(root)
        ranks = self._state.world_ranks
        deposit = obj if self._rank == root else None
        return self._simple_collective(
            "bcast",
            deposit,
            lambda s: s[root],
            lambda s: self._rt.cost.bcast(payload_nbytes(s[root]), ranks),
            check_root=root,
        )

    def reduce(self, value: Any, op: ReduceOp = SUM, root: int = 0) -> Any:
        self._check_peer(root)
        ranks = self._state.world_ranks
        return self._simple_collective(
            "reduce",
            value,
            lambda s: functools.reduce(op, s),
            lambda s: self._rt.cost.reduce(payload_nbytes(s[0]), ranks),
            root=root,
        )

    def allreduce(self, value: Any, op: ReduceOp = SUM) -> Any:
        ranks = self._state.world_ranks
        return self._simple_collective(
            "allreduce",
            value,
            lambda s: functools.reduce(op, s),
            lambda s: self._rt.cost.allreduce(payload_nbytes(s[0]), ranks),
        )

    def gather(self, value: Any, root: int = 0) -> list[Any] | None:
        self._check_peer(root)
        ranks = self._state.world_ranks
        return self._simple_collective(
            "gather",
            value,
            lambda s: list(s),
            lambda s: self._rt.cost.gather(payload_nbytes(s[0]), ranks),
            root=root,
        )

    def allgather(self, value: Any) -> list[Any]:
        ranks = self._state.world_ranks
        return self._simple_collective(
            "allgather",
            value,
            lambda s: list(s),
            lambda s: self._rt.cost.allgather(payload_nbytes(s[0]), ranks),
        )

    def scatter(self, values: Sequence[Any] | None, root: int = 0) -> Any:
        self._check_peer(root)
        ranks = self._state.world_ranks
        size = self.size
        if self._rank == root:
            if values is None or len(values) != size:
                raise CommunicatorError(
                    f"scatter at root needs exactly {size} values"
                )
        state = self._state
        rt = self._rt

        def leader(slots: list[Any]) -> Any:
            vals = slots[root]
            entry = rt.clocks[ranks]
            per = payload_nbytes(vals) / max(size, 1)
            cost = rt.cost.scatter(per, ranks)
            rt.stats.record_collective("scatter", payload_nbytes(vals), size)
            return vals, entry.max() + cost

        def extract(slots: list[Any], cell: Any, idx: int) -> Any:
            vals, newclock = cell
            rt.clocks[ranks[idx]] = newclock
            return copy_payload(vals[idx])

        return state.collective(
            self._rank,
            values if self._rank == root else None,
            leader,
            extract,
            trace_name="scatter",
            trace_bytes=payload_nbytes(values) if self._rank == root else 0,
            root=root,
        )

    def alltoall(self, values: Sequence[Any]) -> list[Any]:
        """Personalized exchange of one payload per peer."""
        if len(values) != self.size:
            raise CommunicatorError(f"alltoall needs {self.size} values")
        state = self._state
        ranks = state.world_ranks
        rt = self._rt

        def leader(slots: list[Any]) -> Any:
            entry = rt.clocks[ranks]
            total = sum(payload_nbytes(row) for row in slots)
            per_pair = total / max(state.size**2, 1)
            cost = rt.cost.alltoall(per_pair, ranks)
            rt.stats.record_collective("alltoall", total, state.size)
            return entry.max() + cost

        def extract(slots: list[Any], newclock: float, idx: int) -> list[Any]:
            rt.clocks[ranks[idx]] = newclock
            return [copy_payload(slots[j][idx]) for j in range(state.size)]

        return state.collective(
            self._rank,
            list(values),
            leader,
            extract,
            trace_name="alltoall",
            trace_bytes=payload_nbytes(list(values)),
        )

    def alltoallv(self, chunks: Sequence[np.ndarray]) -> list[np.ndarray]:
        """Irregular personalized exchange of NumPy arrays.

        ``chunks[j]`` is what this rank sends to group rank ``j``; the return
        value is the list of arrays received, indexed by source rank.  Costs
        come from :meth:`CostModel.alltoallv_per_rank` over the full volume
        matrix.
        """
        if len(chunks) != self.size:
            raise CommunicatorError(f"alltoallv needs {self.size} chunks")
        chunks = [np.asarray(c) for c in chunks]
        state = self._state
        ranks = state.world_ranks
        rt = self._rt

        def leader(slots: list[Any]) -> Any:
            entry = rt.clocks[ranks]
            vols = np.array(
                [[c.nbytes for c in row] for row in slots], dtype=np.float64
            )
            per_rank = rt.cost.alltoallv_per_rank(vols, ranks)
            rt.stats.record_collective("alltoallv", float(vols.sum()), state.size)
            return entry.max() + per_rank

        def extract(slots: list[Any], newclocks: np.ndarray, idx: int) -> list[np.ndarray]:
            rt.clocks[ranks[idx]] = newclocks[idx]
            return [slots[j][idx].copy() for j in range(state.size)]

        return state.collective(
            self._rank,
            chunks,
            leader,
            extract,
            trace_name="alltoallv",
            trace_bytes=int(sum(c.nbytes for c in chunks)),
        )

    def scan(self, value: Any, op: ReduceOp = SUM) -> Any:
        """Inclusive prefix reduction over ranks."""
        ranks = self._state.world_ranks
        state = self._state
        rt = self._rt

        def leader(slots: list[Any]) -> Any:
            entry = rt.clocks[ranks]
            prefix, acc = [], None
            for s in slots:
                acc = s if acc is None else op(acc, s)
                prefix.append(acc)
            cost = rt.cost.scan(payload_nbytes(slots[0]), ranks)
            rt.stats.record_collective("scan", sum(payload_nbytes(s) for s in slots), state.size)
            return prefix, entry.max() + cost

        def extract(slots: list[Any], cell: Any, idx: int) -> Any:
            prefix, newclock = cell
            rt.clocks[ranks[idx]] = newclock
            return copy_payload(prefix[idx])

        return state.collective(
            self._rank, value, leader, extract,
            trace_name="scan", trace_bytes=payload_nbytes(value),
        )

    def exscan(self, value: Any, op: ReduceOp = SUM) -> Any:
        """Exclusive prefix reduction; rank 0 receives ``None``."""
        ranks = self._state.world_ranks
        state = self._state
        rt = self._rt

        def leader(slots: list[Any]) -> Any:
            entry = rt.clocks[ranks]
            prefix: list[Any] = [None]
            acc = None
            for s in slots[:-1]:
                acc = s if acc is None else op(acc, s)
                prefix.append(acc)
            cost = rt.cost.scan(payload_nbytes(slots[0]), ranks)
            rt.stats.record_collective("exscan", sum(payload_nbytes(s) for s in slots), state.size)
            return prefix, entry.max() + cost

        def extract(slots: list[Any], cell: Any, idx: int) -> Any:
            prefix, newclock = cell
            rt.clocks[ranks[idx]] = newclock
            return copy_payload(prefix[idx])

        return state.collective(
            self._rank, value, leader, extract,
            trace_name="exscan", trace_bytes=payload_nbytes(value),
        )

    # -------------------------------------------------------- comm management

    def split(self, color: int | None, key: int = 0) -> "Comm | None":
        """Partition the communicator by ``color``; order members by ``key``.

        ``color=None`` (MPI_UNDEFINED) yields ``None`` for that rank.
        """
        state = self._state
        ranks = state.world_ranks
        rt = self._rt

        def leader(slots: list[Any]) -> Any:
            entry = rt.clocks[ranks]
            groups: dict[int, list[tuple[int, int]]] = {}
            for idx, (col, k) in enumerate(slots):
                if col is not None:
                    groups.setdefault(col, []).append((k, idx))
            assignment: dict[int, tuple[_CommState, int]] = {}
            for col in sorted(groups):
                members = sorted(groups[col])
                new_state = _CommState(rt, [ranks[idx] for _, idx in members])
                for new_rank, (_, idx) in enumerate(members):
                    assignment[idx] = (new_state, new_rank)
            cost = rt.cost.comm_split(ranks)
            rt.stats.record_collective("split", 16 * state.size, state.size)
            return assignment, entry.max() + cost

        def extract(slots: list[Any], cell: Any, idx: int) -> "Comm | None":
            assignment, newclock = cell
            rt.clocks[ranks[idx]] = newclock
            if idx not in assignment:
                return None
            new_state, new_rank = assignment[idx]
            return Comm(new_state, new_rank)

        return state.collective(
            self._rank, (color, key), leader, extract,
            trace_name="split", trace_bytes=16,
        )

    def dup(self) -> "Comm":
        """Duplicate the communicator (fresh collective/p2p context)."""
        dup = self.split(0, self._rank)
        assert dup is not None
        return dup

    # --------------------------------------------------------------- helpers

    def _check_peer(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise CommunicatorError(
                f"peer rank {rank} out of range [0, {self.size})"
            )
