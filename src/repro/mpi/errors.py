"""Error types of the SPMD runtime."""

from __future__ import annotations


class SPMDError(RuntimeError):
    """One or more ranks raised; carries the per-rank exceptions.

    The first failing rank's exception is chained as ``__cause__`` so that
    pytest tracebacks point at the real failure.
    """

    def __init__(self, failures: dict[int, BaseException]):
        self.failures = dict(failures)
        ranks = ", ".join(str(r) for r in sorted(self.failures))
        first = self.failures[min(self.failures)]
        super().__init__(
            f"SPMD program failed on rank(s) {ranks}: "
            f"{type(first).__name__}: {first}"
        )


class Aborted(RuntimeError):
    """Raised inside surviving ranks when the runtime aborts.

    This is the in-process analogue of ``MPI_Abort`` tearing down the job:
    when any rank raises, all pending waits are interrupted with this
    exception so the whole SPMD program unwinds instead of deadlocking.
    """


class CommunicatorError(RuntimeError):
    """Misuse of a communicator (bad rank, mismatched collective, ...)."""


class CollectiveMismatchError(CommunicatorError):
    """Two ranks issued incongruent collectives on the same communicator.

    Raised by the ``check=True`` runtime verifier when the Nth collective
    of one rank disagrees with the Nth collective of another on operation
    name or root; the message carries both ranks' call sites.
    """


class DeadlockError(CommunicatorError):
    """The ``check=True`` wait-for-graph detector found a deadlock.

    Every non-finished rank is blocked (recv / collective) and no pending
    message or collective completion can wake any of them; the message
    contains the per-rank waits and, when one exists, the wait-for cycle.
    """


class MessageLeakError(CommunicatorError):
    """A ``check=True`` run finished with undelivered messages or pending
    requests; the message lists every orphaned (source, dest, tag)."""
