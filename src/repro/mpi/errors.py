"""Error types of the SPMD runtime."""

from __future__ import annotations

import traceback


def _frame_of(exc: BaseException) -> str | None:
    """``file:line (function)`` of the innermost traceback frame."""
    tb = traceback.extract_tb(exc.__traceback__)
    if not tb:
        return None
    f = tb[-1]
    return f"{f.filename}:{f.lineno} ({f.name})"


class SPMDError(RuntimeError):
    """One or more ranks raised; carries the per-rank exceptions.

    The first failing rank's exception is chained as ``__cause__`` so that
    pytest tracebacks point at the real failure; the message carries a
    one-line traceback summary for *every* failed rank, so failures on
    higher-numbered ranks are diagnosable without re-running.
    """

    def __init__(self, failures: dict[int, BaseException]):
        self.failures = dict(failures)
        ranks = ", ".join(str(r) for r in sorted(self.failures))
        first = self.failures[min(self.failures)]
        lines = [
            f"SPMD program failed on rank(s) {ranks}: "
            f"{type(first).__name__}: {first}"
        ]
        for r in sorted(self.failures):
            exc = self.failures[r]
            where = _frame_of(exc)
            at = f" at {where}" if where else ""
            lines.append(f"  rank {r}: {type(exc).__name__}: {exc}{at}")
        super().__init__("\n".join(lines))


class Aborted(RuntimeError):
    """Raised inside surviving ranks when the runtime aborts.

    This is the in-process analogue of ``MPI_Abort`` tearing down the job:
    when any rank raises, all pending waits are interrupted with this
    exception so the whole SPMD program unwinds instead of deadlocking.
    """


class CommunicatorError(RuntimeError):
    """Misuse of a communicator (bad rank, mismatched collective, ...)."""


class CollectiveMismatchError(CommunicatorError):
    """Two ranks issued incongruent collectives on the same communicator.

    Raised by the ``check=True`` runtime verifier when the Nth collective
    of one rank disagrees with the Nth collective of another on operation
    name or root; the message carries both ranks' call sites.
    """


class DeadlockError(CommunicatorError):
    """The ``check=True`` wait-for-graph detector found a deadlock.

    Every non-finished rank is blocked (recv / collective) and no pending
    message or collective completion can wake any of them; the message
    contains the per-rank waits and, when one exists, the wait-for cycle.
    """


class MessageLeakError(CommunicatorError):
    """A ``check=True`` run finished with undelivered messages or pending
    requests; the message lists every orphaned (source, dest, tag)."""


class RankFailedError(CommunicatorError):
    """An operation involved a rank that has crashed (ULFM ERR_PROC_FAILED).

    Raised from collectives whose membership includes a dead rank and from
    receives whose (named) source is dead with no deliverable message.
    Survivors recover by agreeing on the failure (:meth:`Comm.agree`) and
    continuing on a shrunken communicator (:meth:`Comm.shrink`).
    """

    def __init__(self, msg: str, failed: frozenset[int] = frozenset()):
        super().__init__(msg)
        #: world ranks known dead on this communicator when the error rose
        self.failed = frozenset(failed)


class CommRevokedError(CommunicatorError):
    """The communicator was revoked (ULFM MPI_Comm_revoke).

    After any member calls :meth:`Comm.revoke`, every pending and future
    operation on the communicator raises this — except the recovery calls
    :meth:`Comm.shrink` and :meth:`Comm.agree` — so all survivors converge
    on the recovery path instead of blocking on peers that already left it.
    """


class MessageTimeoutError(CommunicatorError):
    """A ``recv(timeout=...)`` virtual-time deadline expired.

    The deadline is priced on the virtual clock: the receiving rank's
    clock is advanced to the deadline before this is raised, exactly as if
    it had idled the full timeout.  The retry layer
    (:mod:`repro.mpi.reliable`) turns this into retransmissions.
    """


class CircuitOpenError(MessageTimeoutError):
    """A reliable link's circuit breaker is open (ULFM-adjacent degradation).

    After ``RetryPolicy.breaker_threshold`` consecutive reliable sends on
    one ``(dest, tag)`` channel exhausted their retry budgets, further
    sends on that channel fail fast with this error instead of paying
    another doomed retry ladder.  A subclass of
    :class:`MessageTimeoutError`, so recovery loops that absorb timeouts
    absorb open breakers identically; the breaker is per communicator and
    resets when recovery shrinks or substitutes onto a fresh one.
    """


class RankCrashed(BaseException):
    """Internal signal unwinding a rank that a fault plan just killed.

    Deliberately a ``BaseException``: an injected crash must terminate the
    rank's program even through ``except Exception`` handlers, like a real
    process death would.  The runtime catches it in the rank worker; user
    code should never handle it.
    """
