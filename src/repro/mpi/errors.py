"""Error types of the SPMD runtime."""

from __future__ import annotations


class SPMDError(RuntimeError):
    """One or more ranks raised; carries the per-rank exceptions.

    The first failing rank's exception is chained as ``__cause__`` so that
    pytest tracebacks point at the real failure.
    """

    def __init__(self, failures: dict[int, BaseException]):
        self.failures = dict(failures)
        ranks = ", ".join(str(r) for r in sorted(self.failures))
        first = self.failures[min(self.failures)]
        super().__init__(
            f"SPMD program failed on rank(s) {ranks}: "
            f"{type(first).__name__}: {first}"
        )


class Aborted(RuntimeError):
    """Raised inside surviving ranks when the runtime aborts.

    This is the in-process analogue of ``MPI_Abort`` tearing down the job:
    when any rank raises, all pending waits are interrupted with this
    exception so the whole SPMD program unwinds instead of deadlocking.
    """


class CommunicatorError(RuntimeError):
    """Misuse of a communicator (bad rank, mismatched collective, ...)."""
