"""Non-blocking request objects (MPI_Request analogues).

``wait()`` is idempotent: once a request completes it caches its payload
and every later ``wait()``/``test()`` returns the same value without
touching the mailbox again; if the first ``wait()`` was torn down by an
abort, later waits re-raise the same exception instead of hanging on a
dead communicator.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable

if TYPE_CHECKING:  # pragma: no cover
    from ..analyze.runtime_check import RequestRecord
    from ..sanitize import Sanitizer
    from ..sanitize.shadow import InflightRecord
    from .comm import Comm


class Request:
    """Handle on an in-flight non-blocking operation."""

    def wait(self) -> Any:
        """Block until completion; returns the received payload (or None)."""
        raise NotImplementedError

    def test(self) -> tuple[bool, Any]:
        """Non-blocking completion check: ``(done, payload-or-None)``."""
        raise NotImplementedError


class _DoneRequest(Request):
    """An already-completed operation (eager sends complete immediately).

    Under ``sanitize=True`` an ``isend``'s request carries the sanitizer's
    fingerprint record of the user's buffers; the first ``wait()`` /
    ``test()`` is the operation's completion edge and re-checks them
    (WRITE-AFTER-ISEND).  The check runs once — completion is a single
    event even when ``wait()`` is called repeatedly.
    """

    #: sanitizer plumbing, set by ``Comm.isend`` when sanitizing
    _san: "Sanitizer | None" = None
    _san_record: "InflightRecord | None" = None

    def _complete(self) -> None:
        san, record = self._san, self._san_record
        if san is not None and record is not None:
            self._san = self._san_record = None
            san.check_inflight(record)

    def wait(self) -> None:
        self._complete()
        return None

    def test(self) -> tuple[bool, Any]:
        self._complete()
        return True, None


class _IRecvRequest(Request):
    """A pending receive; completes on :meth:`wait` or a successful test."""

    def __init__(self, comm: "Comm", source: int, tag: int):
        self._comm = comm
        self._source = source
        self._tag = tag
        self._done = False
        self._payload: Any = None
        self._exc: BaseException | None = None
        #: finalize-accounting entry, set by Comm.irecv under check=True
        self._record: "RequestRecord | None" = None

    def wait(self) -> Any:
        if self._done:
            return self._payload
        if self._exc is not None:
            raise self._exc
        try:
            # Traced under the "wait" span name so blocked time on request
            # completion is distinguishable from a plain blocking recv.
            self._payload = self._comm.recv(self._source, self._tag, _span_name="wait")
        except BaseException as exc:
            self._exc = exc
            raise
        self._done = True
        if self._record is not None:
            self._record.done = True
        return self._payload

    def test(self) -> tuple[bool, Any]:
        if self._done:
            return True, self._payload
        if self._exc is not None:
            raise self._exc
        if self._comm.iprobe(self._source, self._tag):
            return True, self.wait()
        return False, None


def waitall(requests: Iterable[Request]) -> list[Any]:
    """Wait for every request; returns their payloads in order."""
    return [req.wait() for req in requests]
