"""Point-to-point tag namespaces — the repo-wide tag registry.

Every module that sends tagged p2p traffic owns one *namespace*: a
disjoint, generously sized range of tag values.  Call sites derive their
tags as ``<BASE> + offset`` (offset = round/stage number), which keeps a
message's origin readable in traces and makes cross-module collisions
impossible by construction.

The static analyzer's ``SPMD-TAG-COLLISION`` rule reads :data:`NAMESPACES`
below: a literal tag that lands inside a namespace owned by another module
(or the same literal appearing in two modules) is reported.  New p2p code
should claim the next free base here rather than invent a literal.

Audit notes (PR 2)
------------------
* ``repro.core.exchange`` / ``repro.core.multiselect`` / ``repro.core.dselect``
  are collective-only (ALLTOALLV / ALLREDUCE / ALLGATHER) and send no
  tagged p2p messages; they reserve nothing.
* ``repro.core.overlap`` previously used the raw literal ``1000 + round``;
  ``repro.baselines.bitonic`` counted tags up from 1 and
  ``repro.baselines.hyperquicksort`` used the bare round number — the
  three overlapped for small rounds.  All now draw from disjoint bases.
* Tag ``0`` is the untagged default (:data:`TAG_DEFAULT`) and is excluded
  from collision checking.
"""

from __future__ import annotations

__all__ = [
    "TAG_DEFAULT",
    "NAMESPACE_WIDTH",
    "OVERLAP_ROUND_BASE",
    "BITONIC_STAGE_BASE",
    "HYPERQUICKSORT_ROUND_BASE",
    "RELIABLE_BASE",
    "RESILIENT_COLL_TAG",
    "CHECKPOINT_TAG",
    "USER_BASE",
    "NAMESPACES",
    "round_tag",
]

#: the implicit tag of untagged ``send``/``recv`` calls
TAG_DEFAULT = 0

#: tags available to one namespace (offsets must stay below this)
NAMESPACE_WIDTH = 1_000_000

#: 1-factor exchange/merge rounds of :mod:`repro.core.overlap`
OVERLAP_ROUND_BASE = 1 * NAMESPACE_WIDTH

#: compare-split stages of :mod:`repro.baselines.bitonic`
BITONIC_STAGE_BASE = 2 * NAMESPACE_WIDTH

#: halving rounds of :mod:`repro.baselines.hyperquicksort`
HYPERQUICKSORT_ROUND_BASE = 3 * NAMESPACE_WIDTH

#: channel messages (data *and* acks share one wire tag, so a blocked
#: reliable operation can service both) of the drop/duplicate-tolerant
#: p2p layer (:mod:`repro.mpi.reliable`): user tag ``t`` → ``BASE + t``
RELIABLE_BASE = 4 * NAMESPACE_WIDTH

#: first base free for application / example code
USER_BASE = 8 * NAMESPACE_WIDTH

#: channel tag (inside the reliable namespaces) that the collectives of
#: :class:`repro.mpi.resilient.ResilientComm` multiplex over
RESILIENT_COLL_TAG = 500_000

#: channel tag of the buddy-checkpoint replication ring and restore
#: transfers (:mod:`repro.mpi.checkpoint`); disjoint from the resilient
#: collective channel so recovery traffic never reorders data traffic
CHECKPOINT_TAG = 500_001

#: namespace name -> (base, owner module); consumed by the TAG-COLLISION rule
NAMESPACES: dict[str, tuple[int, str]] = {
    "overlap_round": (OVERLAP_ROUND_BASE, "repro.core.overlap"),
    "bitonic_stage": (BITONIC_STAGE_BASE, "repro.baselines.bitonic"),
    "hyperquicksort_round": (HYPERQUICKSORT_ROUND_BASE, "repro.baselines.hyperquicksort"),
    "reliable": (RELIABLE_BASE, "repro.mpi.reliable"),
}


def round_tag(base: int, offset: int) -> int:
    """``base + offset`` with a bounds check against the namespace width."""
    if not 0 <= offset < NAMESPACE_WIDTH:
        raise ValueError(
            f"tag offset {offset} outside namespace width {NAMESPACE_WIDTH}"
        )
    return base + offset
