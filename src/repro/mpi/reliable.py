"""Drop/duplicate-tolerant p2p: sequence numbers, acks, retries.

Plain :meth:`~repro.mpi.comm.Comm.send` is fire-and-forget: under a
:class:`~repro.faults.FaultPlan` a message may be dropped (never
delivered) or duplicated.  This module layers a stop-and-wait ARQ
protocol on top:

* :func:`reliable_send` stamps each payload with a per
  ``(sender, dest, tag)`` sequence number and blocks for the matching
  acknowledgement with a *virtual-time* deadline.  No ack in time →
  resend with exponential backoff per :class:`RetryPolicy`; still
  nothing after ``max_attempts`` → :class:`MessageTimeoutError`.
* :func:`reliable_recv` delivers the next in-order payload of one
  channel, acknowledging every arrival — acks for already-delivered
  sequence numbers are what terminate sender retries when it was the
  *ack* that got dropped — and deduplicating retransmissions and
  injected duplicates.

Data and acks share one wire tag (``RELIABLE_BASE + tag``), and — the
part that makes the protocol live — **every blocked reliable operation
services the whole channel**: a sender waiting for its ack still
receives, acknowledges, and buffers incoming data (delivered later, in
order, by ``reliable_recv``), and a receiver waiting for one peer still
acknowledges retransmissions from others.  Without this, a dropped ack
starves its sender: the receiver has moved on and would only re-ack at
its *next* receive on that channel, which may itself be blocked behind
the stuck sender.

Determinism of virtual time
---------------------------
Channel servicing is *causal*, not clocked: :func:`_dispatch` consumes
wire messages without advancing the servicing rank's clock, and each
message carries its own arrival time (departure + priced transfer).
Acks are stamped with the causal arrival of the data they acknowledge
(``send(..., _at=arrival)``) rather than the acking rank's current —
schedule-dependent — clock, and they draw their fault decisions from a
separate per-link stream, so their interleaving with ordinary sends
cannot perturb which data message the k-th drop lands on.  A rank's
clock advances only at *logical* consumption: ``reliable_recv`` merges
the stored arrival of the payload it delivers, ``reliable_send`` merges
the arrival of the ack that releases it.  Per-channel mailbox order is
FIFO, so those arrivals — and therefore the modelled makespan — are a
pure function of the fault plan's seed, independent of thread
scheduling.

Stop-and-wait keeps each ``(sender, dest, tag)`` channel in-order, so
higher layers (:class:`~repro.mpi.resilient.ResilientComm`) can multiplex
entire collectives over one channel tag.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from .comm import ANY_SOURCE, Comm
from .errors import MessageTimeoutError
from .tags import NAMESPACE_WIDTH, RELIABLE_BASE

__all__ = ["RetryPolicy", "DEFAULT_POLICY", "reliable_send", "reliable_recv",
           "service_pending"]

_DATA = "d"
_ACK = "a"

#: fault-decision stream of acknowledgement messages (see FaultPlan.link_event)
_ACK_STREAM = 1


@dataclass(frozen=True)
class RetryPolicy:
    """Retry schedule of :func:`reliable_send`.

    Attempt ``k`` (0-based) waits ``base_timeout * backoff**k`` virtual
    seconds for the ack before retransmitting; after ``max_attempts``
    unacknowledged sends the operation fails with
    :class:`MessageTimeoutError`.
    """

    max_attempts: int = 8
    base_timeout: float = 1e-3
    backoff: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_timeout <= 0.0:
            raise ValueError("base_timeout must be positive")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1.0")

    def timeout(self, attempt: int) -> float:
        """Ack deadline (virtual seconds) for 0-based ``attempt``."""
        return self.base_timeout * self.backoff**attempt


DEFAULT_POLICY = RetryPolicy()


def _process(comm: Comm, msg, tag: int) -> None:
    """Process one received channel message (data or ack), clock-neutral.

    Data is acknowledged *unconditionally* — with the causal arrival time
    as the ack's departure — and, when new, buffered with that arrival for
    :func:`reliable_recv`; acks advance the per-peer high-water mark that
    :func:`reliable_send` polls.
    """
    state = comm._state
    rank = comm.rank
    wire = RELIABLE_BASE + tag
    src = msg.src
    arrival = comm._arrival(msg)
    payload = msg.payload
    key = (rank, src, tag)
    if payload[0] == _ACK:
        seq = payload[1]
        cur = state.rel_acked.get(key)
        if cur is None or seq > cur[0]:
            state.rel_acked[key] = (seq, arrival)
        return
    _, seq, obj = payload
    # Acks draw their fault decision from (comm, tag, seq, ack#) — an
    # identity, not a link counter — so a teardown race over whether this
    # very ack goes out cannot skew later decisions on the link (see
    # FaultPlan.link_event).  The communicator id matters: per-channel
    # state resets when recovery shrinks to a new communicator, and
    # without it a retry epoch would replay the exact ack fates that
    # doomed the previous one.
    kkey = (rank, src, tag, seq)
    k = state.rel_ackseq.get(kkey, 0)
    state.rel_ackseq[kkey] = k + 1
    comm.send((_ACK, seq), src, wire, _at=arrival, _stream=_ACK_STREAM,
              _event=(state.trace_id, tag, seq, k))
    if seq > state.rel_delivered.get(key, -1):
        state.rel_delivered[key] = seq
        state.rel_buf.setdefault(key, []).append((obj, arrival))
    elif comm.tracer.enabled:
        comm.tracer.instant("dedup", src=src, tag=tag, seq=seq)


def _dispatch(
    comm: Comm, tag: int, timeout: float | None, fail_source: int | None
) -> None:
    """Blocking-receive and process one channel message.

    ``fail_source`` is the rank whose death should fail the wait (the
    channel peer the caller is really blocked on).  Raises
    :class:`MessageTimeoutError` when nothing arrives before the virtual
    deadline.
    """
    wire = RELIABLE_BASE + tag
    msg = comm._recv_message(ANY_SOURCE, wire, timeout=timeout,
                             fail_source=fail_source,
                             span_name="reliable_wait")
    _process(comm, msg, tag)


def service_pending(comm: Comm) -> int:
    """Drain every reliable wire message already sitting in this rank's
    mailbox and process it; returns how many were handled.

    Non-blocking and clock-neutral.  Called by ft rendezvous waits
    (``agree``/``shrink``) so a rank that has moved past its last channel
    operation still acknowledges peers' retransmissions — without this, a
    peer whose epoch-final ack was dropped could never complete.
    """
    state = comm._state
    mb = state.mailboxes[comm.rank]
    chk = comm._rt.checker
    got = []
    with mb.cond:
        if state.aborted:
            return 0
        kept = []
        for m in mb.messages:
            if RELIABLE_BASE <= m.tag < RELIABLE_BASE + NAMESPACE_WIDTH:
                got.append(m)
            else:
                kept.append(m)
        if got:
            mb.messages[:] = kept
            if chk is not None:
                for m in got:
                    chk.note_consume(state, comm.rank, m.src, m.tag)
    for m in got:
        _process(comm, m, m.tag - RELIABLE_BASE)
    return len(got)


def reliable_send(
    comm: Comm,
    obj: Any,
    dest: int,
    tag: int = 0,
    policy: RetryPolicy = DEFAULT_POLICY,
) -> int:
    """Send ``obj`` to ``dest`` surviving drops and duplications.

    Blocks until the matching ack (the clock merges the ack's causal
    arrival time, like a rendezvous send).  Returns the number of
    transmission attempts used (1 = no retry).  Raises
    :class:`MessageTimeoutError` when every attempt went unacknowledged,
    and propagates :class:`RankFailedError` / :class:`CommRevokedError`
    from the underlying waits.
    """
    state = comm._state
    akey = (comm.rank, dest, tag)
    seq = state.rel_seq.get(akey, 0)
    state.rel_seq[akey] = seq + 1
    wire = RELIABLE_BASE + tag
    tracer = comm.tracer

    def acked() -> tuple[int, float] | None:
        cur = state.rel_acked.get(akey)
        return cur if cur is not None and cur[0] >= seq else None

    for attempt in range(policy.max_attempts):
        t0 = comm.clock
        comm.send((_DATA, seq, obj), dest, wire)
        try:
            while acked() is None:
                _dispatch(comm, tag, policy.timeout(attempt), dest)
            comm.clock = max(comm.clock, acked()[1])
            return attempt + 1
        except MessageTimeoutError:
            if attempt + 1 >= policy.max_attempts:
                raise MessageTimeoutError(
                    f"reliable_send(dest={dest}, tag={tag}, seq={seq}) gave "
                    f"up after {policy.max_attempts} attempts"
                ) from None
            if tracer.enabled:
                tracer.record("retry", t0, cat="fault", dest=dest, tag=tag,
                              seq=seq, attempt=attempt + 1)
    raise AssertionError("unreachable")


def reliable_recv(
    comm: Comm,
    source: int,
    tag: int = 0,
    *,
    timeout: float | None = None,
) -> Any:
    """Receive the next in-order reliable message from ``source``.

    ``source`` must be a concrete rank: ordering and deduplication state
    is per channel.  ``timeout`` bounds each internal wait in virtual
    seconds (:class:`MessageTimeoutError` on expiry).
    """
    if source < 0:
        raise ValueError("reliable_recv requires a concrete source rank")
    rt = comm._rt
    if rt._faults is not None:
        # Channel servicing (_dispatch) is not a crash checkpoint, so the
        # op count a crash triggers on stays schedule-independent; check
        # once per logical receive instead.
        rt.maybe_crash(comm.world_rank)
    state = comm._state
    key = (comm.rank, source, tag)
    tracer = comm.tracer
    t0 = comm.clock
    while True:
        buf = state.rel_buf.get(key)
        if buf:
            obj, arrival = buf.pop(0)
            comm.clock = max(comm.clock, arrival)
            if tracer.enabled:
                tracer.record("reliable_recv", t0, cat="p2p", src=source,
                              tag=tag, idle=max(0.0, comm.clock - t0))
            return obj
        _dispatch(comm, tag, timeout, source)
